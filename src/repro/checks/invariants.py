"""Bounded exhaustive model checking of the scheduler's paper invariants.

Algorithm 1 (the k-tuple backtracking search) and the preference lists are
the two pieces of scheduler math the paper *states* properties about but the
code only implicitly assumes. This module cross-checks the real
implementations against those properties over every small configuration:

k-tuple search (:func:`check_ktuple_invariants`), for each generated
``(r, k, m)`` instance:

1. **monotonicity** — the returned tuple satisfies ``a_i <= a_j`` for
   ``i < j`` (heavier classes never run slower than lighter ones);
2. **feasibility** — ``sum_i CC[a_i][i] <= m``;
3. **completeness** — the search returns a solution iff a feasible
   monotone tuple exists at all (checked against brute-force enumeration);
4. **bottom-up minimality** — no feasible monotone tuple is pointwise
   slower (``b_i >= a_i`` for all ``i``, ``b != a``): because the search
   explores lowest frequencies first with full backtracking, its greedy
   answer must be undominated in the slow direction.

Preference lists (:func:`check_preference_invariants`), for every group
count ``u`` up to a bound: the order for ``G_i`` is exactly
``{G_i, G_{i+1}, ..., G_{u-1}, G_{i-1}, ..., G_0}`` (Fig. 5's
rob-the-weaker-first shape), a permutation starting at the own group with
all weaker groups (ascending) before all stronger groups (descending).

``search_fn`` is injectable so the test suite can hand the checker a
deliberately broken copy of the search and assert a counterexample finding
appears — the mutation test that proves the checker has teeth.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator, Optional, Sequence

from repro.checks.findings import Finding, Severity
from repro.core.cc_table import CCTable, cc_table_from_values
from repro.core.ktuple import KTupleSolution, search_ktuple
from repro.core.preference import preference_order
from repro.errors import ReproError
from repro.machine.frequency import FrequencyScale

SearchFn = Callable[[CCTable, int], Optional[KTupleSolution]]

#: Per-class core demands (at the fastest level) used to generate CC tables.
#: The values cross the interesting regimes: sub-core classes that share,
#: unit classes, and heavy classes that only fit at fast levels.
DEFAULT_DEMAND_VALUES = (0.5, 1.0, 2.5)

#: Tolerance mirroring the search's own feasibility slack.
_EPS = 1e-9


def _scale_for(r: int) -> FrequencyScale:
    """A strictly-descending ladder with ``r`` levels: F_j = F0 * (r-j)/r."""
    base = 2.0e9
    return FrequencyScale(tuple(base * (r - j) / r for j in range(r)))


def generate_tables(
    max_r: int,
    max_k: int,
    demand_values: Sequence[float] = DEFAULT_DEMAND_VALUES,
) -> Iterator[CCTable]:
    """Every CC table with ``r <= max_r``, ``k <= max_k`` whose fastest-row
    demands are a non-increasing (heaviest-first) choice from
    ``demand_values``."""
    values_desc = tuple(sorted(set(demand_values), reverse=True))
    for r in range(1, max_r + 1):
        scale = _scale_for(r)
        slowdowns = [scale.slowdown(j) for j in range(r)]
        for k in range(1, max_k + 1):
            for base_row in itertools.combinations_with_replacement(values_desc, k):
                values = [[s * d for d in base_row] for s in slowdowns]
                yield cc_table_from_values(values, scale)


def _feasible_monotone_tuples(table: CCTable, m: int) -> list[tuple[int, ...]]:
    """Brute-force enumeration of feasible monotone assignments."""
    r, k = table.r, table.k
    out = []
    for combo in itertools.combinations_with_replacement(range(r), k):
        demand = sum(table[j, i] for i, j in enumerate(combo))
        if demand <= m + _EPS:
            out.append(combo)
    return out


def _config_label(table: CCTable, m: int) -> str:
    row0 = ", ".join(f"{table[0, i]:g}" for i in range(table.k))
    return f"invariants(r={table.r}, k={table.k}, m={m}, CC[0]=[{row0}])"


def _finding(rule_id: str, label: str, message: str) -> Finding:
    return Finding(
        check="invariants",
        rule_id=rule_id,
        severity=Severity.ERROR,
        location=label,
        message=message,
    )


def check_ktuple_invariants(
    *,
    max_r: int = 4,
    max_k: int = 4,
    max_m: int = 16,
    search_fn: SearchFn = search_ktuple,
    demand_values: Sequence[float] = DEFAULT_DEMAND_VALUES,
) -> list[Finding]:
    """Model-check ``search_fn`` over every generated ``(r, k, m)`` instance.

    Returns one finding per violated property per configuration; an empty
    list means the search is correct on the whole bounded space.
    """
    findings: list[Finding] = []
    for table in generate_tables(max_r, max_k, demand_values):
        feasible_cache: Optional[list[tuple[int, ...]]] = None
        for m in range(1, max_m + 1):
            label = _config_label(table, m)
            try:
                solution = search_fn(table, m)
            except ReproError as exc:
                findings.append(
                    _finding("EEWA101", label, f"search raised {type(exc).__name__}: {exc}")
                )
                continue
            if feasible_cache is None:
                feasible_cache = _feasible_monotone_tuples(table, max_m)
            feasible = [
                t
                for t in feasible_cache
                if sum(table[j, i] for i, j in enumerate(t)) <= m + _EPS
            ]
            if solution is None:
                if feasible:
                    findings.append(
                        _finding(
                            "EEWA102",
                            label,
                            f"search found nothing but {len(feasible)} feasible "
                            f"monotone tuple(s) exist, e.g. {feasible[0]}",
                        )
                    )
                continue
            a = tuple(solution.assignment)
            if any(x < 0 or x >= table.r for x in a):
                findings.append(
                    _finding("EEWA103", label, f"assignment {a} has out-of-range levels")
                )
                continue
            if not all(x <= y for x, y in zip(a, a[1:])):
                findings.append(
                    _finding(
                        "EEWA103",
                        label,
                        f"assignment {a} violates monotonicity a_i <= a_j (i < j)",
                    )
                )
            demand = sum(table[j, i] for i, j in enumerate(a))
            if demand > m + _EPS:
                findings.append(
                    _finding(
                        "EEWA104",
                        label,
                        f"assignment {a} demands {demand:g} cores on an "
                        f"m={m} machine (infeasible)",
                    )
                )
            reported = solution.total_cores
            if abs(reported - demand) > _EPS:
                findings.append(
                    _finding(
                        "EEWA104",
                        label,
                        f"solution reports {reported:g} cores but the table "
                        f"says {demand:g}",
                    )
                )
            dominating = [
                b
                for b in feasible
                if b != a and all(bi >= ai for bi, ai in zip(b, a))
            ]
            if dominating:
                findings.append(
                    _finding(
                        "EEWA105",
                        label,
                        f"assignment {a} is not bottom-up minimal: feasible "
                        f"pointwise-slower tuple {dominating[0]} exists",
                    )
                )
    return findings


def check_preference_invariants(*, max_groups: int = 8) -> list[Finding]:
    """Model-check the preference-order implementation for every ``u``."""
    findings: list[Finding] = []
    for u in range(1, max_groups + 1):
        for i in range(u):
            label = f"invariants(preference u={u}, group={i})"
            try:
                order = preference_order(i, u)
            except ReproError as exc:
                findings.append(
                    _finding("EEWA111", label, f"raised {type(exc).__name__}: {exc}")
                )
                continue
            expected = tuple(range(i, u)) + tuple(range(i - 1, -1, -1))
            if sorted(order) != list(range(u)):
                findings.append(
                    _finding(
                        "EEWA112",
                        label,
                        f"order {order} is not a permutation of the {u} groups",
                    )
                )
                continue
            if order != expected:
                findings.append(
                    _finding(
                        "EEWA113",
                        label,
                        f"order {order} deviates from the paper's "
                        f"{{G_i..G_{{u-1}}, G_{{i-1}}..G_0}} shape {expected}",
                    )
                )
    return findings


def check_invariants(
    *,
    max_r: int = 4,
    max_k: int = 4,
    max_m: int = 16,
    max_groups: int = 8,
    search_fn: SearchFn = search_ktuple,
) -> list[Finding]:
    """Run both model checkers with the default bounded spaces."""
    return check_ktuple_invariants(
        max_r=max_r, max_k=max_k, max_m=max_m, search_fn=search_fn
    ) + check_preference_invariants(max_groups=max_groups)
