"""Run-length encodings.

Two variants, matching the two places bzip2-style pipelines use RLE:

* :func:`rle_encode` / :func:`rle_decode` — classic escaped byte-level RLE
  (any run of 4+ identical bytes becomes ``4 literals + count``), bzip2's
  "RLE1" front stage that defuses pathological repetitive inputs before the
  BWT.
* :func:`rle2_encode_zeros` / :func:`rle2_decode_zeros` — zero-run
  encoding of the post-MTF symbol stream (bzip2's "RLE2"): runs of zeros
  are written in bijective base-2 using the RUNA/RUNB symbols, every other
  symbol is shifted up by one.
"""

from __future__ import annotations

from repro.errors import KernelError

_RUN_THRESHOLD = 4
_MAX_RUN_EXTRA = 255

#: RLE2 alphabet: 0 -> RUNA, 1 -> RUNB, symbol s>=1 -> s+1.
RUNA = 0
RUNB = 1


def rle_encode(data: bytes) -> bytes:
    """bzip2-style RLE1: runs of >= 4 bytes become 4 bytes + a count byte."""
    out = bytearray()
    i = 0
    n = len(data)
    while i < n:
        byte = data[i]
        run = 1
        while i + run < n and data[i + run] == byte and run < _RUN_THRESHOLD + _MAX_RUN_EXTRA:
            run += 1
        if run >= _RUN_THRESHOLD:
            out.extend([byte] * _RUN_THRESHOLD)
            out.append(run - _RUN_THRESHOLD)
        else:
            out.extend([byte] * run)
        i += run
    return bytes(out)


def rle_decode(data: bytes) -> bytes:
    """Inverse of :func:`rle_encode`."""
    out = bytearray()
    i = 0
    n = len(data)
    while i < n:
        byte = data[i]
        run = 1
        while i + run < n and data[i + run] == byte and run < _RUN_THRESHOLD:
            run += 1
        if run == _RUN_THRESHOLD:
            if i + _RUN_THRESHOLD >= n:
                raise KernelError("truncated RLE run: missing count byte")
            extra = data[i + _RUN_THRESHOLD]
            out.extend([byte] * (_RUN_THRESHOLD + extra))
            i += _RUN_THRESHOLD + 1
        else:
            out.extend([byte] * run)
            i += run
    return bytes(out)


def rle2_encode_zeros(symbols: list[int]) -> list[int]:
    """Encode zero runs in bijective base-2 (RUNA/RUNB); shift others by +1.

    The output alphabet is ``{RUNA, RUNB} | {s+1 : s in input, s >= 1}``.
    """
    out: list[int] = []
    run = 0

    def flush_run() -> None:
        nonlocal run
        # Bijective base-2: n = sum over digits d_i in {1,2} of d_i * 2^i.
        n = run
        while n > 0:
            n -= 1
            out.append(RUNA if n % 2 == 0 else RUNB)
            n //= 2
        run = 0

    for s in symbols:
        if s < 0:
            raise KernelError("RLE2 symbols must be non-negative")
        if s == 0:
            run += 1
        else:
            flush_run()
            out.append(s + 1)
    flush_run()
    return out


def rle2_decode_zeros(symbols: list[int]) -> list[int]:
    """Inverse of :func:`rle2_encode_zeros`."""
    out: list[int] = []
    run = 0
    place = 1

    def flush_run() -> None:
        nonlocal run, place
        out.extend([0] * run)
        run = 0
        place = 1

    for s in symbols:
        if s in (RUNA, RUNB):
            run += place * (1 if s == RUNA else 2)
            place *= 2
        else:
            flush_run()
            if s < 2:
                raise KernelError(f"invalid RLE2 symbol {s}")
            out.append(s - 1)
    flush_run()
    return out
