"""Canonical fingerprints of simulation results.

A *trace fingerprint* is a SHA-256 over every observable of a run — the
:class:`~repro.sim.engine.SimResult` scalars, the per-batch trace, the DVFS
transition log, the per-task execution records, and (when recorded) the
deep task-event trace. Floats are rendered with :func:`repr`, which is the
shortest round-trip representation, so two fingerprints match *iff* the
runs are bit-identical — the property the golden-trace regression suite
pins and any engine refactor must preserve.

The same canonical encoding keys the parallel runner's result cache
(:mod:`repro.experiments.parallel`): identical inputs hash identically
across processes and across Python sessions (no reliance on ``hash()``,
which is salted per-process for strings).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import SimResult


def canonical_value(value: Any) -> Any:
    """Encode dataclasses/enums/containers into nested lists of scalars.

    Field *names* are included so reordering or renaming a config field
    changes the encoding, and every float round-trips through ``repr``
    inside :func:`canonical_blob`. This is the shared canonical form behind
    both the result-cache keys (:mod:`repro.experiments.parallel`) and
    scenario digests (:mod:`repro.scenario.spec`).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        parts: list[Any] = [type(value).__name__]
        for f in dataclasses.fields(value):
            parts.append(f.name)
            parts.append(canonical_value(getattr(value, f.name)))
        return parts
    if isinstance(value, enum.Enum):
        return [type(value).__name__, value.value]
    if isinstance(value, (list, tuple)):
        return [canonical_value(v) for v in value]
    if isinstance(value, dict):
        return [[canonical_value(k), canonical_value(v)] for k, v in sorted(value.items())]
    return value


def _encode(parts: Iterable[Any], out: list[str]) -> None:
    for part in parts:
        if isinstance(part, float):
            out.append(repr(part))
        elif isinstance(part, (list, tuple)):
            out.append("[")
            _encode(part, out)
            out.append("]")
        else:
            out.append(repr(part))
        out.append("|")


def canonical_blob(parts: Iterable[Any]) -> bytes:
    """Deterministic byte encoding of a nested structure of scalars."""
    out: list[str] = []
    _encode(parts, out)
    return "".join(out).encode()


def digest(parts: Iterable[Any]) -> str:
    """Hex SHA-256 of :func:`canonical_blob`."""
    return hashlib.sha256(canonical_blob(parts)).hexdigest()


def result_scalars(result: "SimResult") -> dict[str, Any]:
    """The scalar observables the golden suite pins, by name."""
    return {
        "total_time": result.total_time,
        "total_joules": result.total_joules,
        "core_joules": result.core_joules,
        "baseline_joules": result.baseline_joules,
        "spin_joules": result.spin_joules,
        "running_joules": result.running_joules,
        "tasks_executed": result.tasks_executed,
        "batches_executed": result.batches_executed,
        "adjust_overhead_seconds": result.adjust_overhead_seconds,
    }


def trace_fingerprint(result: "SimResult") -> str:
    """SHA-256 over every observable of one run.

    Covers the result scalars, batch traces, DVFS transitions, per-task
    execution records (id, function, placement, timing, steal bit) and —
    when the run recorded them — the deep task-event and plan traces.
    """
    trace = result.trace
    parts: list[Any] = ["scalars"]
    scalars = result_scalars(result)
    for name in sorted(scalars):
        parts.append(name)
        parts.append(scalars[name])
    parts.append("batches")
    for bt in trace.batches:
        parts.append(
            (
                bt.batch_index,
                bt.start_time,
                bt.duration,
                bt.tasks_completed,
                bt.level_histogram,
                bt.adjust_overhead_seconds,
            )
        )
    parts.append("transitions")
    for tr in trace.transitions:
        parts.append((tr.time, tr.core_id, tr.from_level, tr.to_level))
    parts.append("tasks")
    for task in result.tasks:
        parts.append(
            (
                task.task_id,
                task.function,
                task.batch_index,
                task.stolen,
                task.start_time,
                task.finish_time,
                task.executed_on,
                task.executed_level,
            )
        )
    parts.append("task_events")
    for ev in trace.task_events:
        parts.append(
            (ev.seq, ev.time, ev.kind.value, ev.actor, ev.task_id,
             ev.pool_core, ev.pool_index)
        )
    parts.append("plan_events")
    for ev in trace.plan_events:
        parts.append((ev.seq, ev.time, ev.group_of_core, ev.group_levels))
    return digest(parts)
