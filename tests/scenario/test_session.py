"""The Session facade: parity with the serial runner, grids, caching."""

import pytest

from repro.errors import ScenarioError
from repro.machine.topology import small_test_machine
from repro.scenario import MachineSpec, PolicySpec, ScenarioSpec, Session, run_grid
from repro.scenario import session as session_mod
from repro.experiments import parallel as parallel_mod
from repro.experiments.runner import run_benchmark

SMALL = MachineSpec(preset="small-test")


def _fingerprint(result):
    """The scalar outcome of one simulation (EnergyMeter has no __eq__,
    so whole-SimResult equality never holds across independent runs)."""
    return (
        result.policy_name,
        result.total_time,
        result.total_joules,
        result.tasks_executed,
    )


def _same_outcome(a, b):
    return (
        (a.benchmark, a.policy) == (b.benchmark, b.policy)
        and [_fingerprint(r) for r in a.results]
        == [_fingerprint(r) for r in b.results]
    )


def _spec(policy="cilk", seeds=(3, 5), **kwargs):
    return ScenarioSpec(
        workload="SHA-1",
        policy=policy,
        machine=SMALL,
        seeds=seeds,
        batches=2,
        **kwargs,
    )


def test_default_cache_dir_mirrors_parallel():
    # session.py duplicates the constant to break an import cycle; keep
    # the two spellings in lock-step.
    assert session_mod.DEFAULT_CACHE_DIR == parallel_mod.DEFAULT_CACHE_DIR


class TestSingleScenario:
    def test_from_spec_run_matches_run_benchmark(self):
        spec = _spec()
        outcome = Session.from_spec(spec).run()
        legacy = run_benchmark(
            "SHA-1",
            "cilk",
            machine=small_test_machine(num_cores=4, levels=(2.0e9, 1.5e9, 1.0e9)),
            batches=2,
            seeds=(3, 5),
        )
        assert _same_outcome(outcome, legacy)

    def test_run_accepts_explicit_spec(self):
        session = Session()
        outcome = session.run(_spec(seeds=(3,)))
        assert (outcome.benchmark, outcome.policy) == ("SHA-1", "cilk")
        assert len(outcome.results) == 1

    def test_unbound_session_raises(self):
        with pytest.raises(ScenarioError, match="no scenario bound"):
            Session().run()

    def test_run_single_defaults_to_first_seed(self):
        session = Session.from_spec(_spec(seeds=(3, 5)))
        assert _fingerprint(session.run_single()) == _fingerprint(
            session.run_single(seed=3)
        )

    def test_run_detailed_carries_provenance(self):
        cells = Session.from_spec(_spec(seeds=(3, 5))).run_detailed()
        assert [c.spec.seed for c in cells] == [3, 5]
        assert all(not c.from_cache for c in cells)


class TestGrid:
    def test_run_grid_groups_per_spec(self):
        specs = [_spec("cilk"), _spec("cilk-d")]
        outcomes = Session().run_grid(specs)
        assert [(o.benchmark, o.policy) for o in outcomes] == [
            ("SHA-1", "cilk"), ("SHA-1", "cilk-d"),
        ]
        assert all(len(o.results) == 2 for o in outcomes)

    def test_module_level_run_grid(self):
        (outcome,) = run_grid([_spec(seeds=(3,))])
        assert _same_outcome(outcome, Session().run(_spec(seeds=(3,))))

    def test_identical_cells_deduplicated(self):
        session = Session()
        session.run_grid([_spec(seeds=(3,)), _spec(seeds=(3,))])
        assert session.stats.executed == 1
        assert session.stats.deduplicated == 1


class TestCaching:
    def test_second_session_hits_the_cache(self, tmp_path):
        spec = _spec(seeds=(3,))
        first = Session.from_spec(spec, cache_dir=tmp_path)
        a = first.run()
        assert first.stats.executed == 1 and first.stats.cache_hits == 0
        second = Session.from_spec(spec, cache_dir=tmp_path)
        b = second.run()
        assert second.stats.executed == 0 and second.stats.cache_hits == 1
        assert _same_outcome(a, b)

    def test_for_experiment_serial_is_uncached(self):
        session = Session.for_experiment(parallel=False)
        assert session._runner._cache is None

    def test_for_experiment_parallel_uses_shared_cache(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        session = Session.for_experiment(parallel=True, workers=0)
        assert str(session._runner._cache.root) == session_mod.DEFAULT_CACHE_DIR


class TestModalLevels:
    def test_modal_levels_match_machine_width(self):
        spec = _spec(policy="eewa", seeds=(3,))
        levels = Session().modal_eewa_levels(spec)
        machine = spec.build_machine()
        assert len(levels) == machine.num_cores
        assert all(0 <= lv < machine.r for lv in levels)

    def test_wats_runs_on_modal_levels(self):
        session = Session()
        spec = _spec(policy="cilk", seeds=(3,))
        levels = session.modal_eewa_levels(spec)
        wats = spec.with_policy(PolicySpec("wats", core_levels=tuple(levels)))
        result = session.run_single(wats)
        assert result.tasks_executed > 0
