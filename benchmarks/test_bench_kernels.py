"""Micro-benchmarks of the real benchmark kernels.

These are genuine pytest-benchmark measurements (many rounds) of the
algorithms in :mod:`repro.kernels` — the numbers behind
``REFERENCE_COSTS`` and hence the workload calibration.
"""

import numpy as np
import pytest

from repro.kernels.bwt import bwc_compress, bwt_forward
from repro.kernels.bzip2 import compress_block
from repro.kernels.dmc import dmc_compress
from repro.kernels.jpeg import forward_blocks, jpeg_encode
from repro.kernels.lzw import lzw_compress
from repro.kernels.md5 import md5_digest
from repro.kernels.sha1 import sha1_digest


@pytest.fixture(scope="module")
def text4k() -> bytes:
    words = [b"the", b"quick", b"brown", b"fox", b"jumps", b"over", b"lazy", b"dog"]
    rng = np.random.default_rng(0)
    out = bytearray()
    while len(out) < 4096:
        out += words[int(rng.integers(len(words)))] + b" "
    return bytes(out[:4096])


@pytest.fixture(scope="module")
def image64() -> np.ndarray:
    rng = np.random.default_rng(0)
    x, y = np.meshgrid(np.arange(64), np.arange(64))
    img = 128 + 60 * np.sin(x / 9.0) + 50 * np.cos(y / 7.0) + rng.normal(0, 6, (64, 64))
    return np.clip(img, 0, 255).astype(np.uint8)


def test_bench_kernel_bwt(benchmark, text4k):
    result = benchmark(bwt_forward, text4k)
    assert len(result.transformed) == len(text4k)


def test_bench_kernel_bwc(benchmark, text4k):
    block = benchmark(bwc_compress, text4k)
    assert block.raw_length == len(text4k)


def test_bench_kernel_bzip2_block(benchmark, text4k):
    block = benchmark(compress_block, text4k)
    assert block.rle1_length > 0


def test_bench_kernel_dmc(benchmark, text4k):
    payload = benchmark(dmc_compress, text4k[:1024])
    assert len(payload) > 4


def test_bench_kernel_jpeg_dct(benchmark, image64):
    quantised, _ = benchmark(forward_blocks, image64, 75)
    assert quantised.shape[0] == 64


def test_bench_kernel_jpeg_full(benchmark, image64):
    encoded = benchmark(jpeg_encode, image64, 75)
    assert encoded.symbol_count > 0


def test_bench_kernel_lzw(benchmark, text4k):
    payload = benchmark(lzw_compress, text4k)
    assert len(payload) < len(text4k)


def test_bench_kernel_md5(benchmark, text4k):
    digest = benchmark(md5_digest, text4k)
    assert len(digest) == 16


def test_bench_kernel_sha1(benchmark, text4k):
    digest = benchmark(sha1_digest, text4k)
    assert len(digest) == 20
