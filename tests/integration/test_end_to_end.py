"""End-to-end integration tests: full benchmarks under every policy."""

import pytest

from repro.core.eewa import EEWAConfig, EEWAScheduler
from repro.machine.topology import opteron_8380_machine
from repro.runtime.cilk import CilkScheduler
from repro.runtime.cilk_d import CilkDScheduler
from repro.runtime.wats import WATSScheduler
from repro.sim.engine import simulate
from repro.workloads.benchmarks import BENCHMARK_NAMES, benchmark_program


@pytest.fixture(scope="module")
def machine():
    return opteron_8380_machine()


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_every_benchmark_under_every_policy(name, machine):
    """Smoke + conservation on all 7 x 4 combinations."""
    program = benchmark_program(name, batches=4, seed=3)
    total = sum(len(b) for b in program)
    policies = [
        CilkScheduler(),
        CilkDScheduler(),
        EEWAScheduler(),
        WATSScheduler([0] * 8 + [3] * 8),
    ]
    for policy in policies:
        result = simulate(program, policy, machine, seed=3)
        assert result.tasks_executed == total, policy.name
        assert result.total_time > 0
        assert result.total_joules > 0
        assert result.batches_executed == 4


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_paper_headline_ordering(name, machine):
    """EEWA's energy never exceeds Cilk's; time stays within a few percent."""
    program = benchmark_program(name, batches=8, seed=11)
    cilk = simulate(program, CilkScheduler(), machine, seed=11)
    eewa = simulate(program, EEWAScheduler(), machine, seed=11)
    assert eewa.total_joules < cilk.total_joules
    assert eewa.total_time < 1.08 * cilk.total_time


def test_fig6_band_across_benchmarks(machine):
    """Energy reductions span roughly the paper's 8.7%-29.8% band."""
    reductions = {}
    for name in BENCHMARK_NAMES:
        program = benchmark_program(name, batches=8, seed=11)
        cilk = simulate(program, CilkScheduler(), machine, seed=11)
        eewa = simulate(program, EEWAScheduler(), machine, seed=11)
        reductions[name] = 100.0 * (1 - eewa.total_joules / cilk.total_joules)
    assert min(reductions.values()) > 4.0
    assert max(reductions.values()) > 20.0
    assert max(reductions.values()) < 40.0


def test_energy_decomposition_consistent(machine):
    program = benchmark_program("DMC", batches=4, seed=5)
    result = simulate(program, EEWAScheduler(), machine, seed=5)
    assert result.total_joules == pytest.approx(
        result.core_joules + result.baseline_joules
    )
    assert result.spin_joules + result.running_joules <= result.core_joules + 1e-9


def test_memory_bound_app_falls_back(machine):
    from repro.workloads.benchmarks import memory_bound_spec
    from repro.workloads.generators import generate_program

    program = generate_program(memory_bound_spec(), batches=4, seed=2)
    policy = EEWAScheduler()
    result = simulate(program, policy, machine, seed=2)
    assert result.policy_stats.get("fallback_memory_bound") == 1.0
    for hist in result.trace.level_histograms():
        assert hist == (16, 0, 0, 0)


def test_exhaustive_search_config_runs(machine):
    program = benchmark_program("SHA-1", batches=4, seed=7)
    config = EEWAConfig(search="exhaustive")
    result = simulate(program, EEWAScheduler(config), machine, seed=7)
    assert result.tasks_executed == sum(len(b) for b in program)
