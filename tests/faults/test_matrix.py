"""The standard fault matrix and the resilience gate built on it."""

from repro.faults.matrix import (
    STANDARD_FAULT_MATRIX,
    ResilienceRow,
    format_resilience,
    policy_resilience,
    standard_program,
)
from repro.runtime.cilk import CilkScheduler


class TestMatrixShape:
    def test_names_are_unique(self):
        names = [name for name, _ in STANDARD_FAULT_MATRIX]
        assert len(set(names)) == len(names)

    def test_every_mix_is_active(self):
        # An inactive mix would silently test nothing.
        assert all(spec.active for _, spec in STANDARD_FAULT_MATRIX)

    def test_standard_program_tasks_carry_counters(self):
        # Counter corruption needs PMU readings to corrupt.
        for batch in standard_program(1):
            assert all(spec.counters is not None for spec in batch.specs)


class TestPolicyResilience:
    def test_cilk_survives_the_whole_matrix(self):
        rows = policy_resilience(lambda: CilkScheduler())
        assert [row.fault for row in rows] == [
            name for name, _ in STANDARD_FAULT_MATRIX
        ]
        for row in rows:
            assert row.policy == "cilk"
            assert row.completed, f"lost tasks under {row.fault}"
            assert row.time_ratio > 0 and row.energy_ratio > 0


class TestReport:
    def test_format_flags_incomplete_rows(self):
        rows = [
            ResilienceRow("eewa", "core-stall", 30, 30, 1.1, 1.2),
            ResilienceRow("eewa", "combined", 29, 30, 1.1, 1.2),
        ]
        text = format_resilience(rows)
        lines = text.splitlines()
        assert "FAIL" not in lines[1]
        assert "FAIL" in lines[2]
