"""Multi-client load harness for ``repro serve`` — writes ``BENCH_serve.json``.

Spins one :class:`~repro.service.server.SweepServer` on an ephemeral port
(fresh temp cache), then throws ``--clients`` concurrent streaming
clients at it, every client requesting the *same* grid. Two phases:

* **cold** — fresh cache: one client's cells simulate, every other
  client's identical cells coalesce in flight or hit the shared
  cache/memo. The cross-client dedup rate is exact: with C clients over
  U distinct cells, ``(C-1)*U`` of ``C*U`` submissions must be served
  without a second simulation.
* **warm** — the same fleet again: nothing simulates; every cell streams
  from the cache/memo.

Per-cell stream latency is measured client-side, request start to frame
arrival, and reported as p50/p99/max per phase.

Usage::

    PYTHONPATH=src python benchmarks/serve_load.py [--clients 4]
        [--out BENCH_serve.json] [--batches 2] [--no-check]

The acceptance gate (``--no-check`` disables it) asserts the cold phase
simulated each distinct cell exactly once (full cross-client dedup) and
the warm phase simulated nothing. Timings are machine-dependent;
correctness is gated by ``tests/service/``.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import statistics
import sys
import tempfile
import threading
import time

from repro.service.client import SweepServiceClient
from repro.service.server import serve

#: The shared grid every client requests (duplicate-heavy *across* clients).
BENCHMARKS = ("SHA-1", "MD5")
POLICIES = ("cilk", "eewa")
SEEDS = (11, 23)


def grid(batches: int) -> list[dict]:
    return [
        {
            "schema": 3,
            "workload": bench,
            "policy": policy,
            "seeds": list(SEEDS),
            "batches": batches,
        }
        for bench in BENCHMARKS
        for policy in POLICIES
    ]


def distinct_cells() -> int:
    return len(BENCHMARKS) * len(POLICIES) * len(SEEDS)


def _percentiles_ms(latencies: list[float]) -> dict[str, float]:
    ordered = sorted(latencies)
    qs = statistics.quantiles(ordered, n=100, method="inclusive")
    return {
        "p50_ms": 1e3 * qs[49],
        "p99_ms": 1e3 * qs[98],
        "max_ms": 1e3 * ordered[-1],
    }


def run_phase(
    url: str, scenarios: list[dict], clients: int
) -> tuple[dict[str, object], dict[str, object]]:
    """All clients stream the grid concurrently; returns (report, stats)."""
    latencies: list[list[float]] = [[] for _ in range(clients)]
    streamed = [0] * clients
    from_cache = [0] * clients
    failures: list[str] = []
    gate = threading.Barrier(clients)

    def hit(slot: int) -> None:
        client = SweepServiceClient(url, jitter_seed=slot)
        gate.wait()
        started = time.perf_counter()
        try:
            for frame in client.stream(scenarios):
                if frame["frame"] == "error":
                    failures.append(frame["detail"])
                    return
                if frame["frame"] == "cell":
                    latencies[slot].append(time.perf_counter() - started)
                    streamed[slot] += 1
                    from_cache[slot] += int(frame["from_cache"])
        except Exception as exc:  # surfaced in the report, fails acceptance
            failures.append(f"{type(exc).__name__}: {exc}")

    before = SweepServiceClient(url).stats()["engine"]
    started = time.perf_counter()
    workers = [
        threading.Thread(target=hit, args=(slot,)) for slot in range(clients)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    wall = time.perf_counter() - started
    after = SweepServiceClient(url).stats()["engine"]

    flat = [lat for per_client in latencies for lat in per_client]
    submissions = after["cells"] - before["cells"]
    executed = after["executed"] - before["executed"]
    shared = (
        (after["deduplicated"] - before["deduplicated"])
        + (after["cache_hits"] - before["cache_hits"])
    )
    report: dict[str, object] = {
        "clients": clients,
        "cells_per_client": sum(len(s["seeds"]) for s in scenarios),
        "streamed": sum(streamed),
        "from_cache": sum(from_cache),
        "failures": failures,
        "wall_seconds": wall,
        "throughput_cells_per_sec": sum(streamed) / wall if wall > 0 else 0.0,
        "engine_submissions": submissions,
        "cells_simulated": executed,
        "served_without_resimulation": shared,
        "cross_client_dedup_rate": (
            shared / submissions if submissions else 0.0
        ),
        **_percentiles_ms(flat),
    }
    return report, after


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--batches", type=int, default=2)
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument(
        "--no-check", action="store_true",
        help="skip the dedup/warm-phase acceptance assertions",
    )
    args = parser.parse_args(argv)
    if args.clients < 2:
        parser.error("--clients must be >= 2 (the point is cross-client load)")

    scenarios = grid(args.batches)
    cache_dir = tempfile.mkdtemp(prefix="serve-load-")
    server = serve(port=0, cache_dir=cache_dir)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    if not server.wait_until_serving():
        raise RuntimeError("server failed to start")
    url = f"http://127.0.0.1:{server.server_port}"
    try:
        print(
            f"serving on {url}: {args.clients} clients x "
            f"{distinct_cells()} cells ({args.batches} batches each)"
        )
        cold, _ = run_phase(url, scenarios, args.clients)
        print(
            f"cold: {cold['wall_seconds']:.3f}s "
            f"({cold['cells_simulated']} simulated, "
            f"{100 * cold['cross_client_dedup_rate']:.1f}% served by "
            f"coalescing/cache, p99 {cold['p99_ms']:.1f} ms)"
        )
        warm, engine_after = run_phase(url, scenarios, args.clients)
        print(
            f"warm: {warm['wall_seconds']:.3f}s "
            f"({warm['cells_simulated']} simulated, "
            f"{warm['from_cache']} streamed from cache, "
            f"p99 {warm['p99_ms']:.1f} ms)"
        )
        shutdown_log = None
    finally:
        shutdown_log = server.drain_and_close()
        thread.join(timeout=30)
        shutil.rmtree(cache_dir, ignore_errors=True)

    expected_shared = (args.clients - 1) * distinct_cells()
    report = {
        "generated_by": "benchmarks/serve_load.py",
        "host": {
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
        },
        "load": {
            "clients": args.clients,
            "distinct_cells": distinct_cells(),
            "benchmarks": list(BENCHMARKS),
            "policies": list(POLICIES),
            "seeds": list(SEEDS),
            "batches": args.batches,
        },
        "cold": cold,
        "warm": warm,
        "engine_final": engine_after,
        "shutdown_log": shutdown_log,
        "acceptance": {
            "cold_cells_simulated": cold["cells_simulated"],
            "cold_served_without_resimulation":
                cold["served_without_resimulation"],
            "expected_served_without_resimulation": expected_shared,
            "warm_cells_simulated": warm["cells_simulated"],
            "clean_streams": not (cold["failures"] or warm["failures"]),
        },
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")

    if not args.no_check:
        assert not cold["failures"] and not warm["failures"], (
            f"stream failures: cold={cold['failures']} warm={warm['failures']}"
        )
        assert cold["cells_simulated"] == distinct_cells(), (
            f"cold phase simulated {cold['cells_simulated']} cells; "
            f"expected exactly {distinct_cells()} (one per distinct cell)"
        )
        assert cold["served_without_resimulation"] == expected_shared, (
            f"cold phase shared {cold['served_without_resimulation']} "
            f"submissions across clients; expected {expected_shared}"
        )
        assert warm["cells_simulated"] == 0, (
            f"warm phase simulated {warm['cells_simulated']} cells; "
            "expected everything from cache/memo"
        )
        print(
            "acceptance: full cross-client dedup cold, 0 simulated warm — OK"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
