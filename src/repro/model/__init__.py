"""Analytic companion model: O(1) cell prediction with sim-validated bounds.

The simulator answers "what happens" by replaying every event; this
package answers the same question for the *analytically expressible*
policies (cilk, cilk-d, eewa's modal steady state) directly from the cell
inputs: the CC-table math, the operating-point capacities, and the power
model's per-operating-point busy/idle watts. Three modules:

* :mod:`repro.model.predict` — the deterministic pure-python predictor
  (:func:`~repro.model.predict.predict_cell`) plus the structural
  eligibility test (:func:`~repro.model.predict.decline_reason`);
* :mod:`repro.model.bounds` — the calibrated error envelope and the
  model-eligibility classification the sweep engine's ``fidelity="auto"``
  tier consults;
* :mod:`repro.model.validate` — cross-validation of the model against the
  simulator over the full golden grid (30 jittered cells + 8 long-horizon
  cells), the source of the calibrated envelope and the CI gate.

The model never shadows simulation results: predictions are cached under
a distinct model-versioned key (:func:`~repro.model.predict.model_key`)
and carried in a :class:`~repro.model.predict.ModelResult` whose
provenance is visible as ``CellOutcome.source == "model"``.
"""

from repro.model.bounds import MAX_RELATIVE_ERROR, Eligibility, classify_cell
from repro.model.predict import (
    MODEL_POLICIES,
    MODEL_VERSION,
    ModelResult,
    decline_reason,
    model_key,
    predict_cell,
)

__all__ = [
    "MAX_RELATIVE_ERROR",
    "MODEL_POLICIES",
    "MODEL_VERSION",
    "Eligibility",
    "ModelResult",
    "classify_cell",
    "decline_reason",
    "model_key",
    "predict_cell",
]
