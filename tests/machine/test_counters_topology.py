"""Tests for performance counters and machine configuration."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.counters import PerfCounters, ZERO_MISS_COUNTERS
from repro.machine.topology import (
    MachineConfig,
    opteron_8380_machine,
    small_test_machine,
)


class TestPerfCounters:
    def test_miss_intensity(self):
        c = PerfCounters(retired_instructions=1000, cache_misses=20)
        assert c.miss_intensity == pytest.approx(0.02)

    def test_zero_misses(self):
        assert ZERO_MISS_COUNTERS.miss_intensity == 0.0

    def test_merge_adds(self):
        a = PerfCounters(retired_instructions=100, cache_misses=5)
        b = PerfCounters(retired_instructions=300, cache_misses=15)
        merged = a.merged(b)
        assert merged.retired_instructions == 400
        assert merged.cache_misses == 20
        assert merged.miss_intensity == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PerfCounters(retired_instructions=0, cache_misses=0)
        with pytest.raises(ConfigurationError):
            PerfCounters(retired_instructions=10, cache_misses=-1)


class TestMachineConfig:
    def test_opteron_preset_matches_paper(self):
        machine = opteron_8380_machine()
        assert machine.num_cores == 16
        assert machine.r == 4
        assert machine.scale.fastest == pytest.approx(2.5e9)
        assert machine.scale.slowest == pytest.approx(0.8e9)

    def test_with_cores_scales(self):
        machine = opteron_8380_machine()
        smaller = machine.with_cores(4)
        assert smaller.num_cores == 4
        assert smaller.scale is machine.scale

    def test_zero_cores_rejected(self):
        machine = small_test_machine()
        with pytest.raises(ConfigurationError):
            machine.with_cores(0)

    def test_negative_latency_rejected(self):
        machine = small_test_machine()
        with pytest.raises(ConfigurationError):
            MachineConfig(
                num_cores=2,
                scale=machine.scale,
                power=machine.power,
                steal_cycles=-1.0,
            )
