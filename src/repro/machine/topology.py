"""Machine configuration and presets.

A :class:`MachineConfig` bundles everything the engine needs to know about
the hardware being simulated: core count, operating-point space, power
model, and the latency constants that make scheduling decisions cost
something. Heterogeneous (big.LITTLE-style) machines declare ``core_types``
— an ordered partition of the cores into named types, each with its own
ladder inside the machine's :class:`~repro.machine.operating_point.OperatingPointSpace`
— and optionally ``type_powers``, a per-type power model (per-type kappa,
voltage curve, idle draw). A machine without ``core_types`` is the
homogeneous special case: one implicit type owning every core.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.machine.frequency import opteron_8380_scale
from repro.machine.operating_point import (
    OperatingPointSpace,
    homogeneous_space,
    space_from_ladders,
)
from repro.machine.power import PowerModel, VoltageCurve, calibrated_power_model


@dataclass(frozen=True)
class MachineConfig:
    """Static description of the simulated multicore machine.

    Parameters
    ----------
    num_cores:
        Number of cores ``m``.
    scale:
        The machine's operating-point space (a flat DVFS ladder on
        homogeneous machines; the merged per-type ladders on
        heterogeneous ones).
    power:
        Power model used by the energy meter — the whole-machine baseline
        always comes from here, and it is every core's model unless
        ``type_powers`` overrides per type.
    steal_cycles:
        Cycles charged to a core for one successful steal (victim scan +
        deque CAS). Converted to seconds at the thief's effective speed.
    pop_cycles:
        Cycles charged for a local pool pop (cheap, lock-free path).
    failed_scan_cycles:
        Cycles charged for scanning all victims and finding nothing before
        the core settles into its spin-wait.
    dvfs_latency_s:
        Seconds a core is stalled while switching P-states.
    dvfs_domains:
        Optional partition of core ids into shared-frequency domains
        (voltage planes). Within a domain the hardware runs every core at
        the *fastest* requested level — the semantics of per-socket DVFS,
        which is what the real Opteron 8380 actually had (the paper
        assumes per-core control; the per-socket preset is the ablation).
        ``None`` (default) means fully independent per-core DVFS. On
        heterogeneous machines a domain must not span core types (levels
        are type-local indices).
    core_types:
        Optional ordered ``((type_name, count), ...)`` partition of the
        cores. Core ids are assigned contiguously in declaration order
        (the first ``count`` ids to the first type, and so on). Required
        when ``scale`` holds more than one core type; on a one-type scale
        it may be given explicitly (the operating-point-parity conformance
        check does) and must then name exactly that type.
    type_powers:
        Optional ordered ``((type_name, PowerModel), ...)`` per-type power
        models. Types without an entry fall back to ``power``.
    """

    num_cores: int
    scale: OperatingPointSpace
    power: PowerModel
    steal_cycles: float = 6000.0
    pop_cycles: float = 400.0
    failed_scan_cycles: float = 12000.0
    dvfs_latency_s: float = 100e-6
    dvfs_domains: Optional[tuple[tuple[int, ...], ...]] = None
    core_types: Optional[tuple[tuple[str, int], ...]] = None
    type_powers: Optional[tuple[tuple[str, PowerModel], ...]] = None

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigurationError("a machine needs at least one core")
        for name in ("steal_cycles", "pop_cycles", "failed_scan_cycles", "dvfs_latency_s"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.core_types is None:
            if not self.scale.is_homogeneous:
                raise ConfigurationError(
                    "a machine whose operating-point space holds multiple "
                    f"core types {self.scale.types} must declare core_types"
                )
        else:
            names = tuple(name for name, _ in self.core_types)
            if names != self.scale.types:
                raise ConfigurationError(
                    f"core_types names {names} must match the scale's "
                    f"types {self.scale.types} in order"
                )
            if any(count < 1 for _, count in self.core_types):
                raise ConfigurationError(
                    "every core type needs at least one core"
                )
            total = sum(count for _, count in self.core_types)
            if total != self.num_cores:
                raise ConfigurationError(
                    f"core_types counts sum to {total}, expected "
                    f"{self.num_cores} cores"
                )
        if self.type_powers is not None:
            known = set(self.scale.types)
            for name, _ in self.type_powers:
                if name not in known:
                    raise ConfigurationError(
                        f"type_powers names unknown core type {name!r} "
                        f"(types: {self.scale.types})"
                    )
        # Per-core derived views, stored as non-field attributes so the
        # canonical dataclass encoding (cache keys, scenario digests)
        # hashes the declared fields alone.
        type_by_core: list[str] = []
        if self.core_types is None:
            type_by_core = [self.scale.types[0]] * self.num_cores
        else:
            for name, count in self.core_types:
                type_by_core.extend([name] * count)
        object.__setattr__(self, "_type_by_core", tuple(type_by_core))
        ladder_by_type = {t: self.scale.ladder(t) for t in self.scale.types}
        object.__setattr__(self, "_ladder_by_type", ladder_by_type)
        op_index_by_type = {
            t: tuple(
                self.scale.index_for(t, level)
                for level in range(ladder_by_type[t].r)
            )
            for t in self.scale.types
        }
        object.__setattr__(self, "_op_index_by_type", op_index_by_type)
        power_by_type = {t: self.power for t in self.scale.types}
        if self.type_powers is not None:
            power_by_type.update(dict(self.type_powers))
        object.__setattr__(self, "_power_by_type", power_by_type)
        if self.dvfs_domains is not None:
            seen = [c for dom in self.dvfs_domains for c in dom]
            if sorted(seen) != list(range(self.num_cores)):
                raise ConfigurationError(
                    "dvfs_domains must partition the core ids exactly"
                )
            if any(len(dom) == 0 for dom in self.dvfs_domains):
                raise ConfigurationError("dvfs_domains must be non-empty")
            for dom in self.dvfs_domains:
                types = {type_by_core[c] for c in dom}
                if len(types) > 1:
                    raise ConfigurationError(
                        f"dvfs domain {dom} spans core types {sorted(types)}; "
                        "shared frequency planes cannot mix core types"
                    )

    @property
    def r(self) -> int:
        """Number of operating points (frequency levels when homogeneous)."""
        return self.scale.r

    @property
    def is_heterogeneous(self) -> bool:
        """Whether the machine holds more than one core type."""
        return not self.scale.is_homogeneous

    # -- per-core views ----------------------------------------------------

    def core_type_of(self, core_id: int) -> str:
        """Core type name of ``core_id``."""
        return self._type_by_core[core_id]  # type: ignore[attr-defined]

    def ladder_of(self, core_id: int) -> OperatingPointSpace:
        """The (one-type) ladder ``core_id``'s DVFS levels index into.

        On homogeneous machines this is ``scale`` itself (object
        identity), so every core keeps sharing the machine's scale.
        """
        return self._ladder_by_type[self.core_type_of(core_id)]  # type: ignore[attr-defined]

    def ipc_of(self, core_id: int) -> float:
        """IPC-scaling factor of ``core_id``'s type (1.0 when homogeneous)."""
        return self.ladder_of(core_id).points[0].ipc_scale

    def power_of(self, core_type: str) -> PowerModel:
        """Power model billing cores of ``core_type``."""
        return self._power_by_type[core_type]  # type: ignore[attr-defined]

    def op_index_map_of(self, core_id: int) -> tuple[int, ...]:
        """Type-local level → global operating-point index, per core.

        The identity map on homogeneous machines; the engine uses it to
        build the per-batch operating-point histograms.
        """
        return self._op_index_by_type[self.core_type_of(core_id)]  # type: ignore[attr-defined]

    def capacities(self) -> tuple[tuple[str, int], ...]:
        """Core count per type, synthesising the one-type partition."""
        if self.core_types is not None:
            return self.core_types
        return ((self.scale.types[0], self.num_cores),)

    def with_cores(self, num_cores: int) -> "MachineConfig":
        """Copy of this config with a different core count (Fig. 9 sweeps).

        On heterogeneous machines the per-type counts scale proportionally
        (largest-remainder rounding, every type keeping at least one core).
        """
        if self.core_types is None:
            return replace(self, num_cores=num_cores)
        if num_cores < len(self.core_types):
            raise ConfigurationError(
                f"{num_cores} cores cannot cover {len(self.core_types)} "
                "core types"
            )
        shares = [
            (count * num_cores / self.num_cores, name)
            for name, count in self.core_types
        ]
        counts = {name: max(1, int(share)) for share, name in shares}
        remainders = sorted(
            ((share - int(share), -i, name) for i, (share, name) in enumerate(shares)),
            reverse=True,
        )
        idx = 0
        while sum(counts.values()) < num_cores:
            _, _, name = remainders[idx % len(remainders)]
            counts[name] += 1
            idx += 1
        while sum(counts.values()) > num_cores:
            biggest = max(counts, key=lambda n: (counts[n], n))
            if counts[biggest] <= 1:
                break
            counts[biggest] -= 1
        return replace(
            self,
            num_cores=num_cores,
            core_types=tuple((name, counts[name]) for name, _ in self.core_types),
        )


def opteron_8380_machine(
    num_cores: int = 16,
    *,
    power: Optional[PowerModel] = None,
    per_socket_dvfs: bool = False,
) -> MachineConfig:
    """The paper's testbed: four quad-core AMD Opteron 8380 processors.

    Sixteen cores, four P-states (2.5/1.8/1.3/0.8 GHz), whole-machine power
    model calibrated in :func:`repro.machine.power.calibrated_power_model`.

    ``per_socket_dvfs=True`` groups cores into quad-core shared-frequency
    domains — the physical Opteron 8380's actual DVFS granularity — for
    the hardware-granularity ablation.
    """
    scale = opteron_8380_scale()
    if power is None:
        power = calibrated_power_model(scale)
    domains = None
    if per_socket_dvfs:
        if num_cores % 4:
            raise ConfigurationError("per-socket preset needs a multiple of 4 cores")
        domains = tuple(
            tuple(range(s, s + 4)) for s in range(0, num_cores, 4)
        )
    return MachineConfig(
        num_cores=num_cores, scale=scale, power=power, dvfs_domains=domains
    )


def dyadic_test_machine(num_cores: int = 8, r: int = 4) -> MachineConfig:
    """A machine on which every engine computation is float-exact.

    Frequencies are powers of two (halving from ``2^31`` Hz), the voltage
    curve is flat at 1.0, ``kappa`` and every latency constant are dyadic
    rationals, and cycle counts divide the frequencies exactly — so task
    durations, overheads, and per-interval energies are all dyadic and
    every ``+`` in the engine is exact (no rounding anywhere). On this
    machine a converged steady state has *bit-constant* per-batch deltas
    forever, which is what makes the steady-state fast-forward's arithmetic
    replay provably bit-identical to full simulation. The fast-forward
    tests, conformance parity check, and 100-batch benchmarks all run here.
    """
    if r < 1:
        raise ConfigurationError("need at least one frequency level")
    scale = homogeneous_space(tuple(2.0 ** (31 - i) for i in range(r)))
    curve = VoltageCurve(f_min=scale.slowest, f_max=scale.fastest, v_min=1.0, v_max=1.0)
    power = PowerModel(
        voltage_curve=curve,
        kappa=2.0**-28,
        core_idle_power=1.0,
        machine_base_power=2.0,
    )
    return MachineConfig(
        num_cores=num_cores,
        scale=scale,
        power=power,
        steal_cycles=8192.0,
        pop_cycles=512.0,
        failed_scan_cycles=16384.0,
        dvfs_latency_s=2.0**-13,
    )


def big_little_test_machine(
    big_cores: int = 4, little_cores: int = 4
) -> MachineConfig:
    """A dyadic 4+4 big.LITTLE machine: the heterogeneous test preset.

    Two core types sharing part of their electrical frequency range:

    * ``big`` — four P-states halving from ``2^31`` Hz, ``ipc_scale`` 1.0,
      ``kappa = 2^-28``, 1.0 W idle;
    * ``little`` — four P-states halving from ``2^30`` Hz, ``ipc_scale``
      0.5 (half the reference IPC), ``kappa = 2^-30``, 0.25 W idle.

    The merged operating-point space interleaves the ladders by effective
    speed and contains *cross-type effective-speed ties* (big at ``2^29``
    electrical ≡ little at ``2^30`` electrical) and *shared electrical
    frequencies with different wattages* — the case the energy meter's
    per-operating-point billing exists for. All constants are dyadic, so
    the steady-state fast-forward stays bit-exact here too.
    """
    big_freqs = tuple(2.0 ** (31 - i) for i in range(4))
    little_freqs = tuple(2.0 ** (30 - i) for i in range(4))
    scale = space_from_ladders(
        [("big", big_freqs, 1.0), ("little", little_freqs, 0.5)]
    )
    big_power = PowerModel(
        voltage_curve=VoltageCurve(
            f_min=big_freqs[-1], f_max=big_freqs[0], v_min=1.0, v_max=1.0
        ),
        kappa=2.0**-28,
        core_idle_power=1.0,
        machine_base_power=2.0,
    )
    little_power = PowerModel(
        voltage_curve=VoltageCurve(
            f_min=little_freqs[-1], f_max=little_freqs[0], v_min=1.0, v_max=1.0
        ),
        kappa=2.0**-30,
        core_idle_power=0.25,
        machine_base_power=0.0,
    )
    return MachineConfig(
        num_cores=big_cores + little_cores,
        scale=scale,
        power=big_power,
        steal_cycles=8192.0,
        pop_cycles=512.0,
        failed_scan_cycles=16384.0,
        dvfs_latency_s=2.0**-13,
        core_types=(("big", big_cores), ("little", little_cores)),
        type_powers=(("big", big_power), ("little", little_power)),
    )


def small_test_machine(
    num_cores: int = 2, levels: tuple[float, ...] = (2.0e9, 1.0e9)
) -> MachineConfig:
    """A tiny machine for unit tests and the Fig. 1 micro-experiment."""
    scale = homogeneous_space(levels)
    power = calibrated_power_model(
        scale, top_core_busy_watts=10.0, core_idle_watts=1.0, machine_base_watts=0.0
    )
    return MachineConfig(num_cores=num_cores, scale=scale, power=power)
