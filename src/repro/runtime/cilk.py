"""MIT-Cilk-style random work-stealing baseline.

This is the paper's primary baseline ("Cilk"): every core runs at the
highest frequency ``F_0`` for the whole execution, each core owns a single
task pool, idle cores steal from uniformly random victims, and — crucially
for the energy story — idle cores *spin at full power* until the program
terminates (Section II: "the idle cores have to be busily trying to steal
new tasks until all cores finish their tasks").
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.runtime.policy import (
    Action,
    BatchAdjustment,
    RunTask,
    SchedulerPolicy,
    Wait,
)
from repro.runtime.pools import PoolGrid
from repro.runtime.task import Batch, Task
from repro.sim.fingerprint import digest


class CilkScheduler(SchedulerPolicy):
    """Classic random work-stealing with all cores pinned at ``F_0``.

    Parameters
    ----------
    placement:
        How a batch's root tasks reach the pools: ``"round_robin"`` spreads
        them across cores (models a parallel spawn loop), ``"single_core"``
        puts them all on core 0 and lets stealing distribute them (the
        strict Cilk spawn-tree-root behaviour; slower to balance).
    core_levels:
        Optional fixed per-core DVFS levels. Default pins every core at
        ``F_0``; Fig. 7 runs Cilk on the *asymmetric* configuration EEWA
        chose, which is where random stealing loses badly (heavy tasks land
        on slow cores).
    """

    name = "cilk"

    def __init__(
        self,
        placement: str = "round_robin",
        *,
        core_levels: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__()
        if placement not in ("round_robin", "single_core"):
            raise ValueError(f"unknown placement {placement!r}")
        self._placement = placement
        self._core_levels = list(core_levels) if core_levels is not None else None
        self._grid: Optional[PoolGrid] = None

    # -- lifecycle ----------------------------------------------------------

    def on_program_start(self) -> BatchAdjustment:
        ctx = self._require_ctx()
        observer = getattr(ctx, "pool_observer", lambda: None)()
        self._grid = PoolGrid(ctx.machine.num_cores, 1, observer=observer)
        levels = self._core_levels
        if levels is None:
            # All cores pinned at the fastest frequency for the entire run.
            levels = [0] * ctx.machine.num_cores
        elif len(levels) != ctx.machine.num_cores:
            raise ValueError(
                f"core_levels has {len(levels)} entries for "
                f"{ctx.machine.num_cores} cores"
            )
        return BatchAdjustment(frequency_levels=list(levels))

    def on_batch_start(self, batch: Batch, tasks: Sequence[Task]) -> None:
        assert self._grid is not None
        ctx = self._require_ctx()
        n = self._grid.num_cores
        # Random per-batch rotation: a real spawn loop's tasks reach cores
        # via stealing, so which core ends up with which slice of the spawn
        # order is effectively random. A fixed rotation would correlate the
        # spawn order's tail (the heavy tasks) with specific core ids —
        # flattering or damning on asymmetric machines by pure alignment.
        offset = ctx.rng_choice("cilk.place", range(n))
        for i, task in enumerate(tasks):
            core = (i + offset) % n if self._placement == "round_robin" else 0
            self._grid.push(core, 0, task)

    def on_spawn(self, core_id: int, task: Task) -> None:
        assert self._grid is not None
        self._grid.push(core_id, 0, task)

    def state_fingerprint(self) -> Optional[str]:
        """Digest placement mode, pinned levels, and pool residue.

        Cilk draws from the ``cilk.place`` stream every batch, so its RNG
        position always advances and fast-forward never engages in
        practice; the fingerprint still exists so the equality machinery
        (and the conformance parity check) treats it uniformly.
        """
        if self._grid is None:
            return None
        return digest(
            [
                "cilk-policy-state",
                self.name,
                self._placement,
                self._core_levels,
                self._grid.state_fingerprint(),
            ]
        )

    # -- scheduling ---------------------------------------------------------

    def next_action(self, core_id: int) -> Action:
        ctx = self._require_ctx()
        grid = self._grid
        assert grid is not None

        task = grid.pop_local(core_id, 0)
        if task is not None:
            self.stats.local_pops += 1
            self.stats.tasks_executed += 1
            return RunTask(task, acquire_cycles=ctx.machine.pop_cycles)

        victims = grid.victims_with_work(0, exclude=core_id)
        if victims:
            victim = ctx.rng_choice("cilk.victim", victims)
            stolen = grid.steal(victim, 0)
            if stolen is not None:
                self.stats.tasks_stolen += 1
                self.stats.tasks_executed += 1
                return RunTask(stolen, acquire_cycles=ctx.machine.steal_cycles)

        self.stats.failed_scans += 1
        return Wait(scan_cycles=ctx.machine.failed_scan_cycles)
