"""FaultInjector determinism and per-channel stream isolation."""

from repro.faults import FaultInjector, FaultSpec
from repro.machine.counters import PerfCounters
from repro.sim.rng import RngStreams

ALL_ON = FaultSpec(
    dvfs_deny_rate=0.5,
    dvfs_deny_penalty_s=1e-4,
    dvfs_delay_rate=0.5,
    dvfs_delay_s=5e-4,
    stall_rate=0.5,
    stall_duration_s=1e-3,
    counter_noise_rate=0.5,
    counter_noise_intensity=0.3,
)


def _counters() -> PerfCounters:
    return PerfCounters(retired_instructions=10_000, cache_misses=10)


def _draw_sequence(seed: int) -> tuple:
    injector = FaultInjector(ALL_ON, RngStreams(seed))
    draws = tuple(
        (
            injector.deny_dvfs(i % 4),
            injector.dvfs_extra_latency(i % 4),
            injector.stall_seconds(i % 4),
            injector.corrupt_counters(_counters()),
        )
        for i in range(64)
    )
    return draws, dict(injector.counts)


class TestDeterminism:
    def test_same_seed_same_draws(self):
        assert _draw_sequence(7) == _draw_sequence(7)

    def test_different_seed_different_draws(self):
        assert _draw_sequence(7)[0] != _draw_sequence(8)[0]

    def test_counts_track_fired_faults(self):
        _, counts = _draw_sequence(7)
        # Rates of 0.5 over 64 opportunities: every channel fires often.
        assert all(counts[key] > 0 for key in counts)


class TestStreamIsolation:
    def test_disabled_channels_draw_nothing(self):
        # Each channel gates on its rate *before* touching its stream, so
        # enabling one fault type leaves every other sequence untouched —
        # the property that keeps fault mixes independently reproducible.
        rng = RngStreams(5)
        injector = FaultInjector(
            FaultSpec(stall_rate=1.0, stall_duration_s=1e-3), rng
        )
        before = rng.state_fingerprint()
        assert injector.deny_dvfs(0) is False
        assert injector.dvfs_extra_latency(0) == 0.0
        assert injector.corrupt_counters(_counters()) is None
        assert rng.state_fingerprint() == before
        assert injector.stall_seconds(0) == 1e-3
        assert rng.state_fingerprint() != before

    def test_counterless_tasks_draw_nothing(self):
        rng = RngStreams(5)
        injector = FaultInjector(
            FaultSpec(counter_noise_rate=1.0, counter_noise_intensity=0.5), rng
        )
        before = rng.state_fingerprint()
        assert injector.corrupt_counters(None) is None
        assert rng.state_fingerprint() == before


class TestChannels:
    def test_unit_rates_always_fire(self):
        injector = FaultInjector(
            FaultSpec(
                dvfs_deny_rate=1.0,
                dvfs_deny_penalty_s=1e-4,
                dvfs_delay_rate=1.0,
                dvfs_delay_s=5e-4,
                stall_rate=1.0,
                stall_duration_s=2e-3,
            ),
            RngStreams(3),
        )
        for core in range(8):
            assert injector.deny_dvfs(core)
            assert injector.dvfs_extra_latency(core) == 5e-4
            assert injector.stall_seconds(core) == 2e-3

    def test_corruption_adds_spurious_misses_only(self):
        injector = FaultInjector(
            FaultSpec(counter_noise_rate=1.0, counter_noise_intensity=0.5),
            RngStreams(3),
        )
        corrupted = [
            c for c in (injector.corrupt_counters(_counters()) for _ in range(16))
            if c is not None
        ]
        assert corrupted, "unit rate never corrupted anything"
        for reading in corrupted:
            assert reading.retired_instructions == 10_000
            assert reading.cache_misses > 10
        assert injector.counts["counters_corrupted"] == len(corrupted)
