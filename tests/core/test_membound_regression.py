"""Tests for memory-boundness detection and the regression extension."""

import numpy as np
import pytest

from repro.core.membound import (
    BoundKind,
    classify_application,
    classify_task,
)
from repro.core.profiler import OnlineProfiler
from repro.core.regression import (
    RegressionProfiler,
    build_regression_cc_table,
    fit_frequency_time_model,
)
from repro.errors import ProfilingError
from repro.machine.counters import PerfCounters
from repro.machine.frequency import opteron_8380_scale


class TestTaskClassification:
    def test_low_miss_is_cpu_bound(self):
        c = PerfCounters(retired_instructions=10000, cache_misses=10)
        assert classify_task(c) is BoundKind.CPU_BOUND

    def test_high_miss_is_memory_bound(self):
        c = PerfCounters(retired_instructions=10000, cache_misses=500)
        assert classify_task(c) is BoundKind.MEMORY_BOUND

    def test_threshold_is_exclusive(self):
        c = PerfCounters(retired_instructions=1000, cache_misses=10)
        assert classify_task(c, threshold=0.01) is BoundKind.CPU_BOUND
        assert classify_task(c, threshold=0.009) is BoundKind.MEMORY_BOUND


class TestApplicationClassification:
    def test_majority_rule(self):
        profiler = OnlineProfiler(scale=opteron_8380_scale())
        hot = PerfCounters(retired_instructions=1000, cache_misses=100)
        cold = PerfCounters(retired_instructions=1000, cache_misses=1)
        for _ in range(6):
            profiler.observe("a", 0.01, 0, hot)
        for _ in range(4):
            profiler.observe("b", 0.01, 0, cold)
        verdict = classify_application(profiler)
        assert verdict.kind is BoundKind.MEMORY_BOUND
        assert verdict.memory_bound_fraction == pytest.approx(0.6)
        assert verdict.tasks_observed == 10


class TestFrequencyTimeModel:
    def test_pure_cpu_model_recovered(self):
        """t = a/f data fits with b ~ 0."""
        f = np.array([2.5e9, 1.8e9, 1.3e9, 0.8e9])
        t = 1e9 / f
        model = fit_frequency_time_model(f, t)
        assert model.cpu_cycles == pytest.approx(1e9, rel=1e-6)
        assert model.stall_seconds == pytest.approx(0.0, abs=1e-9)
        assert not model.is_degenerate

    def test_mixed_model_recovered(self):
        f = np.array([2.5e9, 1.8e9, 1.3e9, 0.8e9] * 3)
        t = 5e8 / f + 0.02
        model = fit_frequency_time_model(f, t)
        assert model.cpu_cycles == pytest.approx(5e8, rel=1e-6)
        assert model.stall_seconds == pytest.approx(0.02, rel=1e-6)

    def test_prediction_interpolates(self):
        f = np.array([2.5e9, 0.8e9])
        t = 1e9 / f + 0.01
        model = fit_frequency_time_model(f, t)
        assert model.predict(1.3e9) == pytest.approx(1e9 / 1.3e9 + 0.01, rel=1e-6)

    def test_single_frequency_degenerates_to_cpu_bound(self):
        model = fit_frequency_time_model([2.5e9, 2.5e9], [0.4, 0.4])
        assert model.is_degenerate
        assert model.stall_seconds == 0.0
        assert model.cpu_cycles == pytest.approx(1e9)

    def test_noise_clamped_nonnegative(self):
        """Pathological data never yields negative cycles or stalls."""
        f = np.array([2.5e9, 0.8e9])
        t = np.array([0.5, 0.1])  # faster at LOWER frequency: nonsense
        model = fit_frequency_time_model(f, t)
        assert model.cpu_cycles >= 0.0
        assert model.stall_seconds >= 0.0

    def test_empty_rejected(self):
        with pytest.raises(ProfilingError):
            fit_frequency_time_model([], [])


class TestRegressionCCTable:
    def test_memory_bound_class_keeps_flat_rows(self):
        """A pure-stall class needs the SAME cores at every frequency — the
        correction the paper's future work is after."""
        scale = opteron_8380_scale()
        profiler = RegressionProfiler(scale=scale)
        for level in range(4):
            for _ in range(3):
                profiler.observe("stall", 0.02, level)  # time independent of f
        table = build_regression_cc_table(
            profiler, {"stall": 10}, scale, ideal_time=0.1
        )
        col = table.column(0)
        assert col[0] == pytest.approx(col[3], rel=1e-6)

    def test_cpu_bound_class_matches_eq1_scaling(self):
        """With fine-grained tasks (discrete packing ~ fluid), a CPU-bound
        class's regression rows recover the Eq. 1 slowdown ratios."""
        scale = opteron_8380_scale()
        profiler = RegressionProfiler(scale=scale)
        cycles = 5e5  # ~0.2 ms at F_0: hundreds of tasks per core per batch
        for level in range(4):
            profiler.observe("cpu", cycles / scale[level], level)
        table = build_regression_cc_table(
            profiler, {"cpu": 30000}, scale, ideal_time=0.1
        )
        col = table.column(0)
        assert col[3] / col[0] == pytest.approx(scale.slowdown(3), rel=0.05)

    def test_granularity_marks_infeasible_levels(self):
        """A class whose predicted slow-level task time exceeds T gets inf
        there, but stays schedulable at F_0 (clamp)."""
        import numpy as np

        scale = opteron_8380_scale()
        profiler = RegressionProfiler(scale=scale)
        for level in range(4):
            profiler.observe("big", 0.04 * scale.slowdown(level), level)
        table = build_regression_cc_table(profiler, {"big": 4}, scale, ideal_time=0.05)
        assert np.isfinite(table[0, 0])
        assert np.isinf(table[3, 0])

    def test_no_overlap_rejected(self):
        profiler = RegressionProfiler(scale=opteron_8380_scale())
        with pytest.raises(ProfilingError):
            build_regression_cc_table(
                profiler, {"x": 3}, opteron_8380_scale(), ideal_time=0.1
            )
