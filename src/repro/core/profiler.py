"""Online workload profiler.

Section III-A1 of the paper. As tasks retire, the profiler:

* normalises each task's execution time against the fastest frequency
  (Eq. 1: ``w = t * F_i / F_0`` for a task that ran for ``t`` seconds on a
  core at frequency ``F_i``);
* folds it into its *task class* — the running ``TC(f, n, w)`` record keyed
  by function name, updated as ``TC(f, n+1, (n*w + w_task)/(n+1))``;
* accumulates PMU readings (retired instructions, cache misses) so the
  Section IV-D memory-boundness classifier has its signal.

The duration of the first, all-fast batch becomes the *ideal iteration
time* ``T`` that every later batch is budgeted against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ProfilingError
from repro.machine.counters import PerfCounters
from repro.machine.operating_point import OperatingPointSpace


@dataclass
class TaskClassStats:
    """Running statistics for one task class ``TC(f, n, w)``.

    ``function`` is the class identity, ``count`` the number of observed
    tasks ``n``, ``mean_workload`` the running average normalised workload
    ``w`` in seconds-at-the-fastest-operating-point. On heterogeneous
    machines ``counts_by_type`` additionally splits ``n`` by the core type
    that executed each task; on homogeneous machines it stays empty.
    """

    function: str
    count: int = 0
    mean_workload: float = 0.0
    instructions: int = 0
    cache_misses: int = 0
    memory_bound_tasks: int = 0
    counts_by_type: dict[str, int] = field(default_factory=dict)

    def update(
        self,
        workload: float,
        counters: Optional[PerfCounters],
        is_mem: bool,
        core_type: Optional[str] = None,
    ) -> None:
        """Apply the paper's incremental mean update for one retired task."""
        self.mean_workload = (self.count * self.mean_workload + workload) / (self.count + 1)
        self.count += 1
        if counters is not None:
            self.instructions += counters.retired_instructions
            self.cache_misses += counters.cache_misses
        if is_mem:
            self.memory_bound_tasks += 1
        if core_type is not None:
            self.counts_by_type[core_type] = self.counts_by_type.get(core_type, 0) + 1

    @property
    def total_workload(self) -> float:
        """``n * w`` — the class's aggregate normalised work."""
        return self.count * self.mean_workload

    @property
    def miss_intensity(self) -> float:
        if self.instructions == 0:
            return 0.0
        return self.cache_misses / self.instructions


#: Default cache-misses-per-instruction threshold above which a task counts
#: as memory-bound. Roughly one LLC miss per 100 instructions saturates a
#: memory controller on the paper's era of hardware.
DEFAULT_MISS_THRESHOLD = 0.01


@dataclass
class OnlineProfiler:
    """Collects per-batch workload information for the frequency adjuster."""

    scale: OperatingPointSpace
    miss_threshold: float = DEFAULT_MISS_THRESHOLD
    ideal_time: Optional[float] = None
    _classes: dict[str, TaskClassStats] = field(default_factory=dict)
    _tasks_seen: int = 0
    _memory_bound_seen: int = 0

    # -- observation ----------------------------------------------------------

    def normalized_workload(
        self, elapsed: float, level: int, core_type: Optional[str] = None
    ) -> float:
        """Eq. 1 against the fastest operating point: ``w = t * S_i / S_0``.

        ``S_i`` is the effective speed of the operating point the task ran
        at: on homogeneous machines (``core_type=None``) ``level`` is the
        global frequency index and this is the paper's ``w = t * F_i / F_0``
        verbatim; on heterogeneous machines ``level`` is local to
        ``core_type``'s ladder and is first resolved to its global
        operating-point index.
        """
        if elapsed < 0:
            raise ProfilingError("elapsed time must be non-negative")
        if core_type is None:
            index = self.scale.validate_index(level)
        else:
            index = self.scale.index_for(core_type, level)
        return elapsed * self.scale.relative_speed(index)

    def observe(
        self,
        function: str,
        elapsed: float,
        level: int,
        counters: Optional[PerfCounters] = None,
        core_type: Optional[str] = None,
    ) -> TaskClassStats:
        """Record one retired task; returns its (updated) class record."""
        workload = self.normalized_workload(elapsed, level, core_type)
        is_mem = counters is not None and counters.miss_intensity > self.miss_threshold
        stats = self._classes.get(function)
        if stats is None:
            stats = TaskClassStats(function=function)
            self._classes[function] = stats
        stats.update(workload, counters, is_mem, core_type)
        self._tasks_seen += 1
        if is_mem:
            self._memory_bound_seen += 1
        return stats

    def reset_batch(self) -> None:
        """Forget per-batch class statistics (ideal time is retained)."""
        self._classes.clear()
        self._tasks_seen = 0
        self._memory_bound_seen = 0

    # -- queries ----------------------------------------------------------------

    @property
    def tasks_seen(self) -> int:
        return self._tasks_seen

    def has_classes(self) -> bool:
        return bool(self._classes)

    def get_class(self, function: str) -> Optional[TaskClassStats]:
        return self._classes.get(function)

    def classes_by_workload(self) -> list[TaskClassStats]:
        """Task classes sorted by mean workload, heaviest first.

        This is the column order of the CC table (Section III-A2 requires
        ``w_i`` in descending order) — the monotonicity constraint of the
        k-tuple search depends on it. Ties break by function name so the
        order is deterministic.
        """
        return sorted(
            self._classes.values(),
            key=lambda c: (-c.mean_workload, c.function),
        )

    def set_ideal_time(self, duration: float) -> None:
        """Pin the ideal iteration time ``T`` (first-batch duration)."""
        if duration <= 0:
            raise ProfilingError(f"ideal time must be positive, got {duration}")
        self.ideal_time = duration

    def require_ideal_time(self) -> float:
        if self.ideal_time is None:
            raise ProfilingError("ideal iteration time not set (first batch not profiled)")
        return self.ideal_time

    def state_fingerprint(self) -> str:
        """Digest of everything a future adjuster decision can read.

        Covers the pinned ideal time, the global counters, and every class
        accumulator field. ``scale``/``miss_threshold`` are construction
        constants (identical at every boundary of one run) and are covered
        by the policy-level fingerprint's constructor state instead.
        """
        parts = [repr(self.ideal_time), str(self._tasks_seen), str(self._memory_bound_seen)]
        for name in sorted(self._classes):
            c = self._classes[name]
            # The name is length-prefixed: function names may themselves
            # contain ":" or the "\x1f" join byte, and without the prefix
            # two distinct states could serialize identically (e.g. a class
            # named "a:1" vs a class "a" with count 1).
            entry = (
                f"{len(name)}:{name}:{c.count}:{c.mean_workload!r}:{c.instructions}:"
                f"{c.cache_misses}:{c.memory_bound_tasks}"
            )
            # Per-type counts exist only on heterogeneous machines, so
            # appending them conditionally leaves every homogeneous
            # fingerprint string byte-identical to the flat-ladder era.
            if c.counts_by_type:
                entry += f":types={sorted(c.counts_by_type.items())}"
            parts.append(entry)
        return "\x1f".join(parts)

    # -- memory-boundness (Section IV-D) -----------------------------------------

    def memory_bound_fraction(self) -> float:
        """Fraction of observed tasks classified memory-bound."""
        if self._tasks_seen == 0:
            return 0.0
        return self._memory_bound_seen / self._tasks_seen

    def application_is_memory_bound(self, majority: float = 0.5) -> bool:
        """Paper: "if most tasks of an application are memory-bound, the
        application is regarded as memory-bound"."""
        return self.memory_bound_fraction() > majority
