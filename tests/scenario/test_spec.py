"""ScenarioSpec serialisation, validation, and content digests.

The digest pins at the bottom are load-bearing: the result cache keys on
this digest layout (via ``SCENARIO_SCHEMA_VERSION``), so an accidental
change to the canonical encoding shows up here before it silently orphans
or — worse — aliases cache entries.
"""

import pytest

from repro.errors import ConfigurationError, ScenarioError
from repro.machine.topology import small_test_machine
from repro.scenario import (
    DEFAULT_SEEDS,
    SCENARIO_SCHEMA_VERSION,
    MachineSpec,
    PolicySpec,
    ScenarioSpec,
    WORKLOADS,
    spread_levels,
)


def test_scenario_error_is_a_configuration_error():
    # Callers catching the repo-wide ConfigurationError keep working.
    assert issubclass(ScenarioError, ConfigurationError)


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = ScenarioSpec(
            workload="SHA-1",
            policy=PolicySpec("eewa", params={"headroom": 0.2}),
            machine=MachineSpec(num_cores=8),
            seeds=(3, 5),
            batches=4,
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = ScenarioSpec(workload="MD5", policy="cilk-d")
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_save_load(self, tmp_path):
        spec = ScenarioSpec(workload="LZW", policy="cilk", seeds=(7,))
        path = tmp_path / "scenario.json"
        spec.save(path)
        assert ScenarioSpec.load(path) == spec

    def test_bare_policy_name_accepted(self):
        spec = ScenarioSpec.from_dict({"workload": "SHA-1", "policy": "cilk"})
        assert spec.policy == PolicySpec("cilk")

    def test_inline_workload_round_trip(self):
        inline = WORKLOADS.get("SHA-1").spec()
        spec = ScenarioSpec(workload=inline, policy="cilk", seeds=(3,))
        restored = ScenarioSpec.from_dict(spec.to_dict())
        assert restored.resolve_workload() == inline
        assert restored.digest() == spec.digest()

    def test_core_levels_round_trip(self):
        spec = ScenarioSpec(
            workload="SHA-1",
            policy=PolicySpec("wats", core_levels=(0, 0, 1, 2)),
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_faults_round_trip(self):
        from repro.faults import FaultSpec

        spec = ScenarioSpec(
            workload="SHA-1",
            policy="eewa",
            faults=FaultSpec(dvfs_deny_rate=0.25),
        )
        restored = ScenarioSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.faults.dvfs_deny_rate == 0.25

    def test_schema_v1_documents_still_read(self):
        # v1 scenarios (written before the faults axis) are a strict subset
        # of v2 and must keep loading.
        data = ScenarioSpec(workload="SHA-1", policy="cilk").to_dict()
        data["schema"] = 1
        spec = ScenarioSpec.from_dict(data)
        assert spec.faults is None

    def test_schema_v2_documents_still_read(self):
        # v2 scenarios (written before the core_types axis) keep loading.
        data = ScenarioSpec(workload="SHA-1", policy="cilk").to_dict()
        data["schema"] = 2
        assert ScenarioSpec.from_dict(data).machine.core_types is None

    def test_core_types_round_trip(self):
        spec = ScenarioSpec(
            workload="SHA-1",
            policy="eewa",
            machine=MachineSpec(
                preset="big-little-test",
                core_types=(("big", 2), ("little", 6)),
            ),
        )
        restored = ScenarioSpec.from_dict(spec.to_dict())
        assert restored == spec
        machine = restored.build_machine()
        assert machine.capacities() == (("big", 2), ("little", 6))
        assert machine.num_cores == 8


class TestValidation:
    def test_unknown_scenario_field_rejected(self):
        with pytest.raises(ScenarioError, match="unknown scenario fields"):
            ScenarioSpec.from_dict(
                {"workload": "SHA-1", "policy": "cilk", "sedes": [1]}
            )

    def test_unknown_machine_field_rejected(self):
        with pytest.raises(ScenarioError, match="unknown machine fields"):
            MachineSpec.from_dict({"preset": "opteron-8380", "cores": 8})

    def test_unknown_policy_field_rejected(self):
        with pytest.raises(ScenarioError, match="unknown policy fields"):
            PolicySpec.from_dict({"name": "eewa", "levels": [0, 1]})

    def test_schema_version_mismatch_rejected(self):
        data = ScenarioSpec(workload="SHA-1", policy="cilk").to_dict()
        data["schema"] = SCENARIO_SCHEMA_VERSION + 1
        with pytest.raises(ScenarioError, match="unsupported scenario schema"):
            ScenarioSpec.from_dict(data)

    def test_invalid_json_text(self):
        with pytest.raises(ScenarioError, match="invalid scenario JSON"):
            ScenarioSpec.from_json("{not json")

    def test_missing_required_fields(self):
        with pytest.raises(ScenarioError, match="'workload' and 'policy'"):
            ScenarioSpec.from_dict({"policy": "cilk"})

    def test_policy_needs_name(self):
        with pytest.raises(ScenarioError, match="policy needs a 'name'"):
            PolicySpec.from_dict({"params": {}})

    def test_unknown_workload_name(self):
        with pytest.raises(ScenarioError, match="unknown workload"):
            ScenarioSpec(workload="no-such-bench", policy="cilk")

    def test_empty_seeds_rejected(self):
        with pytest.raises(ScenarioError, match="at least one seed"):
            ScenarioSpec(workload="SHA-1", policy="cilk", seeds=())

    def test_inline_machine_not_serialisable(self):
        machine = small_test_machine(num_cores=4, levels=(2.0e9, 1.5e9, 1.0e9))
        spec = ScenarioSpec(
            workload="SHA-1", policy="cilk", machine=MachineSpec.inline(machine)
        )
        with pytest.raises(ScenarioError, match="cannot be serialised"):
            spec.to_dict()

    def test_inline_policy_config_not_serialisable(self):
        from repro.core.eewa import EEWAConfig

        spec = ScenarioSpec(
            workload="SHA-1", policy=PolicySpec("eewa", config=EEWAConfig())
        )
        with pytest.raises(ScenarioError, match="cannot be serialised"):
            spec.to_dict()

    def test_core_types_on_flat_preset_rejected(self):
        spec = ScenarioSpec(
            workload="SHA-1",
            policy="cilk",
            machine=MachineSpec(
                preset="small-test", core_types=(("core", 4),)
            ),
        )
        with pytest.raises(ScenarioError, match="core_types"):
            spec.build_machine()

    def test_core_types_contradicting_num_cores_rejected(self):
        spec = MachineSpec(
            preset="big-little-test",
            num_cores=6,
            core_types=(("big", 4), ("little", 4)),
        )
        with pytest.raises(ScenarioError, match="contradicts"):
            spec.build()

    def test_malformed_core_types_rejected(self):
        with pytest.raises(ScenarioError, match="core_types"):
            MachineSpec.from_dict(
                {"preset": "big-little-test", "core_types": "big"}
            )


class TestDerivation:
    def test_with_policy_keeps_everything_else(self):
        spec = ScenarioSpec(workload="SHA-1", policy="cilk", seeds=(3,), batches=2)
        derived = spec.with_policy("eewa")
        assert derived.policy.name == "eewa"
        assert (derived.workload, derived.seeds, derived.batches) == (
            spec.workload, spec.seeds, spec.batches,
        )

    def test_with_seeds(self):
        spec = ScenarioSpec(workload="SHA-1", policy="cilk")
        assert spec.with_seeds([5, 7]).seeds == (5, 7)

    def test_cells_enumerates_seeds(self):
        spec = ScenarioSpec(workload="SHA-1", policy="cilk", seeds=(3, 5))
        assert list(spec.cells()) == [(spec, 3), (spec, 5)]

    def test_default_seeds(self):
        assert ScenarioSpec(workload="SHA-1", policy="cilk").seeds == DEFAULT_SEEDS


#: Pinned content digests for the four shipped policies on the default
#: Opteron 8380 preset (SHA-1, default seeds, 3 batches). A change here
#: means every existing result-cache entry is orphaned — that must be a
#: deliberate, schema-version-bumping decision, never a side effect.
PINNED_DIGESTS = {
    "cilk": "62054d58ad8f3350fdb7ad55fce1369a420915b86fc0dd8de238aae13ed29909",
    "cilk-d": "c1bbd46df7fd3c6de4f1ff39dadebe2aaa4c543be51541291386235174a3580d",
    "wats": "594f637a239f97e63a5c2a0c96dae57758cfeaa2ac12417088dc377628372cbc",
    "eewa": "0d5af0bb19735e8b0504352558eab04c7df6c9c7ebbedbb593345fd6d11035a3",
}


def _pinned_scenario(policy_name):
    levels = (
        tuple(spread_levels(16, 4)) if policy_name == "wats" else None
    )
    return ScenarioSpec(
        workload="SHA-1",
        policy=PolicySpec(policy_name, core_levels=levels),
        batches=3,
    )


class TestDigest:
    @pytest.mark.parametrize("name", sorted(PINNED_DIGESTS))
    def test_pinned_digests(self, name):
        assert _pinned_scenario(name).digest() == PINNED_DIGESTS[name]

    def test_digest_is_stable_across_instances(self):
        assert _pinned_scenario("eewa").digest() == _pinned_scenario("eewa").digest()

    def test_digest_survives_json_round_trip(self):
        spec = _pinned_scenario("cilk")
        assert ScenarioSpec.from_json(spec.to_json()).digest() == spec.digest()

    @pytest.mark.parametrize(
        "change",
        [
            lambda s: s.with_seeds((99,)),
            lambda s: s.with_policy("cilk-d"),
            lambda s: ScenarioSpec(
                workload="MD5", policy=s.policy, seeds=s.seeds, batches=s.batches
            ),
            lambda s: ScenarioSpec(
                workload=s.workload, policy=s.policy, seeds=s.seeds, batches=5
            ),
            lambda s: ScenarioSpec(
                workload=s.workload,
                policy=s.policy,
                machine=MachineSpec(num_cores=8),
                seeds=s.seeds,
                batches=s.batches,
            ),
        ],
    )
    def test_any_field_change_changes_the_digest(self, change):
        base = _pinned_scenario("cilk")
        assert change(base).digest() != base.digest()

    def test_faults_change_the_digest(self):
        from repro.faults import FaultSpec

        base = _pinned_scenario("cilk")
        faulted = base.with_faults(FaultSpec(stall_rate=0.1, stall_duration_s=1e-3))
        assert faulted.digest() != base.digest()

    def test_policy_params_change_the_digest(self):
        base = ScenarioSpec(workload="SHA-1", policy=PolicySpec("eewa"))
        tuned = ScenarioSpec(
            workload="SHA-1", policy=PolicySpec("eewa", params={"headroom": 0.2})
        )
        assert base.digest() != tuned.digest()
