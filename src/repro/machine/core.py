"""Simulated core model.

A :class:`SimCore` is a small state machine owned by the discrete-event
engine. It tracks the core's current DVFS level and what the core is doing,
which is all the energy meter needs: the paper's energy story is entirely
"which frequency is each core burning, and is it burning at all".

States
------
``SPINNING``
    The core has no task and is busy-waiting in the steal loop. Work-stealing
    runtimes like MIT Cilk keep idle workers spinning, so a spinning core
    draws the *same* power as a running one at the same frequency — this is
    precisely the waste EEWA attacks (Section II).
``RUNNING``
    Executing a task.
``TRANSITION``
    Mid DVFS switch; the core is stalled and billed at idle power.
``PARKED``
    Not yet started / program finished; billed at idle power.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError, SimulationError
from repro.machine.operating_point import DEFAULT_CORE_TYPE, OperatingPointSpace


class CoreState(enum.Enum):
    """What a simulated core is doing right now."""

    PARKED = "parked"
    SPINNING = "spinning"
    RUNNING = "running"
    TRANSITION = "transition"

    #: Enum's default ``__hash__`` is a Python-level function and core
    #: states key the energy meter's per-state dicts on every observation;
    #: the identity slot wrapper makes those lookups C-speed. Dicts iterate
    #: in insertion order, so this cannot perturb determinism.
    __hash__ = object.__hash__


#: States billed at full busy power for the core's current frequency.
BUSY_STATES = frozenset({CoreState.RUNNING, CoreState.SPINNING})


@dataclass(slots=True)
class SimCore:
    """One simulated core.

    ``slots=True``: the engine touches core attributes on every event, and
    a few hundred instances exist per simulated machine — slot storage
    makes both the footprint and the attribute loads cheaper.

    Parameters
    ----------
    core_id:
        Dense index in ``[0, m)``.
    scale:
        The core's (one-type) ladder; the core's ``level`` indexes into
        it. On homogeneous machines this is the machine's scale itself.
    level:
        Current DVFS level (0 = fastest), local to this core's ladder.
    core_type:
        Name of this core's type ("core" on homogeneous machines).
    ipc_scale:
        Relative IPC of this core's type: reference cycles retire at
        ``ipc_scale * frequency`` per second.
    """

    core_id: int
    scale: OperatingPointSpace
    level: int = 0
    state: CoreState = CoreState.PARKED
    running_task_id: Optional[int] = None
    core_type: str = DEFAULT_CORE_TYPE
    ipc_scale: float = 1.0
    pending_level: Optional[int] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.core_id < 0:
            raise ConfigurationError("core_id must be non-negative")
        if self.ipc_scale <= 0.0:
            raise ConfigurationError("ipc_scale must be positive")
        self.scale.validate_index(self.level)

    # -- views -------------------------------------------------------------

    @property
    def frequency(self) -> float:
        """Current electrical frequency in hertz (drives power draw)."""
        return self.scale[self.level]

    @property
    def effective_hz(self) -> float:
        """Reference cycles retired per second at the current level.

        Equal to ``frequency`` on homogeneous machines — multiplying by
        an ``ipc_scale`` of 1.0 is an IEEE-754 identity, so every duration
        derived from it is bit-identical to the pre-operating-point code.
        """
        return self.scale[self.level] * self.ipc_scale

    @property
    def is_busy(self) -> bool:
        return self.state in BUSY_STATES

    @property
    def in_transition(self) -> bool:
        return self.state is CoreState.TRANSITION

    # -- transitions (invoked by the engine only) ---------------------------

    def start_task(self, task_id: int) -> None:
        if self.state not in (CoreState.SPINNING, CoreState.PARKED):
            raise SimulationError(
                f"core {self.core_id} cannot start a task from state {self.state}"
            )
        self.state = CoreState.RUNNING
        self.running_task_id = task_id

    def finish_task(self) -> int:
        if self.state is not CoreState.RUNNING or self.running_task_id is None:
            raise SimulationError(f"core {self.core_id} is not running a task")
        task_id = self.running_task_id
        self.running_task_id = None
        self.state = CoreState.SPINNING
        return task_id

    def begin_transition(self, new_level: int) -> None:
        if self.state is CoreState.RUNNING:
            raise SimulationError(
                f"core {self.core_id} cannot change frequency while running a task"
            )
        self.scale.validate_index(new_level)
        self.pending_level = new_level
        self.state = CoreState.TRANSITION

    def complete_transition(self) -> None:
        if self.state is not CoreState.TRANSITION or self.pending_level is None:
            raise SimulationError(f"core {self.core_id} is not mid-transition")
        self.level = self.pending_level
        self.pending_level = None
        self.state = CoreState.SPINNING

    def spin(self) -> None:
        if self.state is CoreState.RUNNING:
            raise SimulationError(f"core {self.core_id} is running; cannot spin")
        self.state = CoreState.SPINNING

    def park(self) -> None:
        if self.state is CoreState.RUNNING:
            raise SimulationError(f"core {self.core_id} is running; cannot park")
        self.state = CoreState.PARKED

    def exec_seconds(self, cpu_cycles: float, mem_stall_seconds: float = 0.0) -> float:
        """Wall time this core needs for a task of the given cost.

        CPU work scales with the core's effective speed (frequency times
        IPC scale); memory stalls do not (Section IV-D: memory-bound
        execution time "does not have a simple model related to CPU
        frequencies" — we model it as a frequency-independent component).
        """
        if cpu_cycles < 0 or mem_stall_seconds < 0:
            raise SimulationError("task costs must be non-negative")
        return cpu_cycles / self.effective_hz + mem_stall_seconds
