"""Benches for the extension experiments (beyond the paper's exhibits).

* thermal headroom study (per-core and per-socket RC model);
* imbalance sweep (the Fig. 3 slack-to-savings relation, quantified);
* regression-mode memory-bound scheduling (the paper's future work).
"""

from conftest import save_exhibit

from repro.core.eewa import EEWAConfig, EEWAScheduler
from repro.core.membound import MemoryBoundMode
from repro.experiments.ext_imbalance import run_imbalance_sweep
from repro.experiments.ext_thermal import run_thermal_study
from repro.experiments.report import format_table
from repro.machine.topology import opteron_8380_machine
from repro.sim.engine import simulate
from repro.workloads.benchmarks import memory_bound_spec
from repro.workloads.generators import generate_program


def test_bench_ext_thermal(benchmark, results_dir):
    study = benchmark.pedantic(
        lambda: run_thermal_study(batches=20), rounds=1, iterations=1
    )
    save_exhibit(results_dir, "ext_thermal", study.table())

    cilk = study.row("cilk")
    eewa = study.row("eewa")
    # Aggregate heat drops with EEWA...
    assert eewa.mean_peak_c < cilk.mean_peak_c - 2.0
    # ...and three of four sockets run visibly cooler.
    cooler = sum(
        1 for c, e in zip(sorted(cilk.socket_peaks_c), sorted(eewa.socket_peaks_c))
        if e < c - 2.0
    )
    assert cooler >= 3


def test_bench_ext_imbalance(benchmark, results_dir):
    sweep = benchmark.pedantic(
        lambda: run_imbalance_sweep(batches=8), rounds=1, iterations=1
    )
    save_exhibit(results_dir, "ext_imbalance", sweep.table())

    assert sweep.savings_monotone_in_slack()
    low_slack = min(sweep.points, key=lambda p: p.slack_cores)
    high_slack = max(sweep.points, key=lambda p: p.slack_cores)
    assert low_slack.energy_saving_pct < 8.0
    assert high_slack.energy_saving_pct > 25.0
    # Time held everywhere.
    assert all(abs(p.time_change_pct) < 6.0 for p in sweep.points)


def test_bench_ext_regression_membound(benchmark, results_dir):
    def run_modes():
        machine = opteron_8380_machine()
        program = generate_program(memory_bound_spec(), batches=10, seed=3)
        out = {}
        for mode in (MemoryBoundMode.FALLBACK, MemoryBoundMode.REGRESSION):
            policy = EEWAScheduler(EEWAConfig(memory_bound_mode=mode))
            out[mode.value] = simulate(program, policy, machine, seed=3)
        return out

    runs = benchmark.pedantic(run_modes, rounds=1, iterations=1)
    table = format_table(
        ["mode", "time (ms)", "energy (J)"],
        [
            (name, r.total_time * 1e3, r.total_joules)
            for name, r in runs.items()
        ],
        title="Extension — memory-bound app: fallback vs regression CC table",
    )
    save_exhibit(results_dir, "ext_regression", table)

    fallback, regression = runs["fallback"], runs["regression"]
    # The future-work extension converts the fallback's zero savings into
    # real ones at bounded time cost.
    assert regression.total_joules < 0.92 * fallback.total_joules
    assert regression.total_time < 1.12 * fallback.total_time
