"""Bit-level I/O used by the entropy coders.

A :class:`BitWriter` packs bits MSB-first into a ``bytearray``; a
:class:`BitReader` consumes them in the same order. Both are deliberately
simple and allocation-light — these run inside the benchmark kernels whose
operation counts calibrate the simulator's workloads, so the work they do
should be proportional to the data they touch.
"""

from __future__ import annotations

from repro.errors import KernelError


class BitWriter:
    """MSB-first bit packer."""

    def __init__(self) -> None:
        self._out = bytearray()
        self._acc = 0
        self._nbits = 0

    def write_bit(self, bit: int) -> None:
        self._acc = (self._acc << 1) | (bit & 1)
        self._nbits += 1
        if self._nbits == 8:
            self._out.append(self._acc)
            self._acc = 0
            self._nbits = 0

    def write_bits(self, value: int, width: int) -> None:
        """Write ``width`` bits of ``value``, most significant first."""
        if width < 0:
            raise KernelError("width must be non-negative")
        if value < 0 or (width < 64 and value >> width):
            raise KernelError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, value: int) -> None:
        """``value`` one-bits followed by a zero terminator."""
        if value < 0:
            raise KernelError("unary values must be non-negative")
        for _ in range(value):
            self.write_bit(1)
        self.write_bit(0)

    @property
    def bit_length(self) -> int:
        return len(self._out) * 8 + self._nbits

    def getvalue(self) -> bytes:
        """Flush (zero-padded to a byte boundary) and return the buffer."""
        out = bytearray(self._out)
        if self._nbits:
            out.append(self._acc << (8 - self._nbits))
        return bytes(out)


class BitReader:
    """MSB-first bit consumer over a ``bytes`` buffer."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit position

    @property
    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self._pos

    def read_bit(self) -> int:
        byte_index, bit_index = divmod(self._pos, 8)
        if byte_index >= len(self._data):
            raise KernelError("bit stream exhausted")
        self._pos += 1
        return (self._data[byte_index] >> (7 - bit_index)) & 1

    def read_bits(self, width: int) -> int:
        if width < 0:
            raise KernelError("width must be non-negative")
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        count = 0
        while self.read_bit():
            count += 1
        return count
