"""Table III — execution time and adjuster overhead per benchmark.

Two overhead numbers are reported, mirroring the substitution documented in
DESIGN.md:

* **simulated** — the decision cost charged inside the simulation (the
  adjuster's overhead model), as a percentage of simulated execution time.
  Paper shape target: total overhead tens of milliseconds, always < 2% of
  execution time.
* **measured** — real Python ``perf_counter`` time of the Algorithm 1
  invocations (what pytest-benchmark exercises separately).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.eewa import EEWAConfig
from repro.experiments.report import format_table
from repro.machine.topology import MachineConfig
from repro.scenario.session import Session
from repro.scenario.spec import MachineSpec, PolicySpec, ScenarioSpec
from repro.workloads.benchmarks import BENCHMARK_NAMES


@dataclass(frozen=True)
class Table3Row:
    benchmark: str
    execution_ms: float
    overhead_ms: float
    overhead_pct: float
    measured_wallclock_ms: float
    decisions: int


@dataclass(frozen=True)
class Table3Result:
    rows: tuple[Table3Row, ...]

    def table(self) -> str:
        return format_table(
            ["benchmark", "exec (ms)", "overhead (ms)", "overhead %", "wallclock (ms)"],
            [
                (
                    r.benchmark,
                    r.execution_ms,
                    r.overhead_ms,
                    r.overhead_pct,
                    r.measured_wallclock_ms,
                )
                for r in self.rows
            ],
            title="Table III — execution time and adjuster overhead",
            float_fmt="{:.2f}",
        )

    def max_overhead_pct(self) -> float:
        return max(r.overhead_pct for r in self.rows)


def run_table3(
    *,
    machine: Optional[MachineConfig] = None,
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    batches: int | None = None,
    seed: int = 11,
    config: Optional[EEWAConfig] = None,
    parallel: bool = False,
    workers: int | None = None,
    cache_dir: str | None = None,
) -> Table3Result:
    """Regenerate Table III.

    One single-seed EEWA scenario per benchmark, run through a Session's
    detailed path — the per-cell outcome carries the adjuster wall-clock
    bookkeeping. The simulated columns are identical with or without
    ``parallel=True``; the *measured* wall-clock column is a real timing
    and, when a cell is served from cache, reports the timing of the run
    that populated the cache.
    """
    session = Session.for_experiment(
        parallel=parallel, workers=workers, cache_dir=cache_dir
    )
    machine_spec = (
        MachineSpec() if machine is None else MachineSpec.inline(machine)
    )
    grids = session.run_grid_detailed(
        [
            ScenarioSpec(
                workload=name,
                policy=PolicySpec("eewa", config=config),
                machine=machine_spec,
                seeds=(seed,),
                batches=batches,
            )
            for name in benchmarks
        ]
    )
    rows = []
    for name, (outcome,) in zip(benchmarks, grids):
        result = outcome.result
        overhead = result.adjust_overhead_seconds
        rows.append(
            Table3Row(
                benchmark=name,
                execution_ms=result.total_time * 1e3,
                overhead_ms=overhead * 1e3,
                overhead_pct=100.0 * overhead / result.total_time,
                measured_wallclock_ms=outcome.adjuster_wallclock_s * 1e3,
                decisions=outcome.adjuster_decisions,
            )
        )
    return Table3Result(rows=tuple(rows))
