"""Simplified bzip2 pipeline (the Bzip-2 benchmark).

Real bzip2 = RLE1 -> BWT -> MTF -> RLE2 -> multi-table Huffman, applied per
block (100k-900k). This module implements exactly that pipeline with a
single Huffman table per block, block-structured so the workload generator
can treat "compress one block" as one task:

``bzip2_compress`` splits the input into blocks, applies
:func:`compress_block` per block, and concatenates; ``bzip2_decompress``
inverts block-by-block. Everything is lossless and round-trip-tested.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KernelError
from repro.kernels.bwt import BWTResult, bwt_forward, bwt_inverse
from repro.kernels.huffman import HuffmanTable, huffman_compress, huffman_decompress
from repro.kernels.mtf import mtf_decode, mtf_encode
from repro.kernels.rle import (
    rle2_decode_zeros,
    rle2_encode_zeros,
    rle_decode,
    rle_encode,
)

DEFAULT_BLOCK_SIZE = 16 * 1024


@dataclass(frozen=True)
class Bzip2Block:
    """One compressed block."""

    payload: bytes
    table: HuffmanTable
    symbol_count: int
    primary_index: int
    rle1_length: int


@dataclass(frozen=True)
class Bzip2Stream:
    """A sequence of compressed blocks plus original length."""

    blocks: tuple[Bzip2Block, ...]
    raw_length: int


def compress_block(raw: bytes) -> Bzip2Block:
    """RLE1 -> BWT -> MTF -> RLE2 -> Huffman for one block."""
    if not raw:
        raise KernelError("cannot compress an empty block")
    rle1 = rle_encode(raw)
    bwt = bwt_forward(rle1)
    symbols = rle2_encode_zeros(mtf_encode(bwt.transformed))
    if symbols:
        payload, table, count = huffman_compress(symbols)
    else:
        payload, table, count = b"", HuffmanTable.from_frequencies({0: 1}), 0
    return Bzip2Block(
        payload=payload,
        table=table,
        symbol_count=count,
        primary_index=bwt.primary_index,
        rle1_length=len(rle1),
    )


def decompress_block(block: Bzip2Block) -> bytes:
    """Inverse of :func:`compress_block`."""
    if block.symbol_count == 0:
        transformed = b""
    else:
        symbols = huffman_decompress(block.payload, block.table, block.symbol_count)
        transformed = mtf_decode(rle2_decode_zeros(symbols))
    if len(transformed) != block.rle1_length:
        raise KernelError("bzip2 block length mismatch")
    rle1 = bwt_inverse(
        BWTResult(transformed=transformed, primary_index=block.primary_index)
    )
    return rle_decode(rle1)


def bzip2_compress(data: bytes, block_size: int = DEFAULT_BLOCK_SIZE) -> Bzip2Stream:
    """Compress ``data`` block-by-block."""
    if block_size < 1:
        raise KernelError("block_size must be >= 1")
    blocks = tuple(
        compress_block(data[i : i + block_size])
        for i in range(0, len(data), block_size)
    )
    return Bzip2Stream(blocks=blocks, raw_length=len(data))


def bzip2_decompress(stream: Bzip2Stream) -> bytes:
    """Inverse of :func:`bzip2_compress`."""
    out = b"".join(decompress_block(b) for b in stream.blocks)
    if len(out) != stream.raw_length:
        raise KernelError(
            f"bzip2 stream length mismatch: {len(out)} != {stream.raw_length}"
        )
    return out
