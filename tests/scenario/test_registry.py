"""Registry behaviour: registration, aliases, metadata-driven validation."""

import warnings

import pytest

from repro.errors import ScenarioError
from repro.scenario.registry import (
    MACHINES,
    POLICIES,
    WORKLOADS,
    PolicyEntry,
    Registry,
    baseline_policy_names,
    spread_levels,
    spread_levels_for,
    workload_names,
)


def _entry(name, aliases=()):
    return PolicyEntry(name=name, builder=lambda **kw: None, aliases=tuple(aliases))


class TestRegistry:
    def test_duplicate_name_rejected(self):
        reg = Registry("policy")
        reg.register(_entry("p"))
        with pytest.raises(ScenarioError, match="duplicate policy name 'p'"):
            reg.register(_entry("p"))

    def test_duplicate_alias_rejected(self):
        reg = Registry("policy")
        reg.register(_entry("p", aliases=("old-p",)))
        with pytest.raises(ScenarioError, match="duplicate policy alias 'old-p'"):
            reg.register(_entry("q", aliases=("old-p",)))

    def test_alias_clashing_with_name_rejected(self):
        reg = Registry("policy")
        reg.register(_entry("p"))
        with pytest.raises(ScenarioError, match="duplicate policy alias 'p'"):
            reg.register(_entry("q", aliases=("p",)))

    def test_unknown_name_lists_registered(self):
        reg = Registry("policy")
        reg.register(_entry("p"))
        with pytest.raises(ScenarioError, match="unknown policy 'x'.*registered: p"):
            reg.get("x")

    def test_alias_resolves_with_deprecation_warning(self):
        reg = Registry("policy")
        reg.register(_entry("p", aliases=("old-p",)))
        with pytest.warns(DeprecationWarning, match="'old-p' is a deprecated alias"):
            assert reg.canonical("old-p") == "p"
        with pytest.warns(DeprecationWarning):
            assert reg.get("old-p").name == "p"

    def test_canonical_name_warns_nothing(self):
        reg = Registry("policy")
        reg.register(_entry("p", aliases=("old-p",)))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert reg.canonical("p") == "p"

    def test_contains_and_len(self):
        reg = Registry("policy")
        reg.register(_entry("p", aliases=("old-p",)))
        assert "p" in reg and "old-p" in reg and "q" not in reg
        assert len(reg) == 1
        assert reg.names() == ("p",)


class TestShippedEntries:
    def test_shipped_policy_names(self):
        assert POLICIES.names() == ("cilk", "cilk-d", "wats", "eewa")

    def test_cilk_d_legacy_spelling(self):
        with pytest.warns(DeprecationWarning, match="use 'cilk-d'"):
            assert POLICIES.canonical("cilk_d") == "cilk-d"

    def test_baseline_policy_names(self):
        # wats needs a caller-chosen level vector, so it is not in the
        # default Cilk-normalised comparison set.
        assert baseline_policy_names() == ("cilk", "cilk-d", "eewa")

    def test_machine_presets(self):
        assert set(MACHINES.names()) == {
            "opteron-8380", "opteron-8380-socket", "big-little-test",
            "small-test",
        }
        assert MACHINES.get("opteron-8380").build().num_cores == 16
        assert MACHINES.get("small-test").build().num_cores == 4

    def test_big_little_preset(self):
        entry = MACHINES.get("big-little-test")
        assert entry.supports_core_types
        machine = entry.build()
        assert machine.is_heterogeneous
        assert machine.capacities() == (("big", 4), ("little", 4))
        skewed = entry.build(core_types=(("big", 2), ("little", 6)))
        assert skewed.capacities() == (("big", 2), ("little", 6))
        # Plain num_cores rescales the partition proportionally.
        assert entry.build(4).capacities() == (("big", 2), ("little", 2))

    def test_flat_presets_reject_core_types(self):
        with pytest.raises(ScenarioError, match="core_types"):
            MACHINES.get("small-test").build(core_types=(("core", 4),))

    def test_workload_names(self):
        assert workload_names(table2_only=True) == (
            "BWC", "Bzip-2", "DMC", "JE", "LZW", "MD5", "SHA-1",
        )
        assert set(workload_names()) - set(workload_names(table2_only=True)) == {
            "STREAM-like", "DMC-phased", "periodic",
        }
        assert WORKLOADS.get("SHA-1").table2


class TestBuildValidation:
    def test_wats_requires_core_levels(self):
        with pytest.raises(ScenarioError, match="requires fixed core_levels"):
            POLICIES.get("wats").build()

    def test_eewa_rejects_core_levels(self):
        with pytest.raises(ScenarioError, match="does not take fixed core levels"):
            POLICIES.get("eewa").build(core_levels=[0, 1, 2, 3])

    def test_cilk_accepts_core_levels(self):
        policy = POLICIES.get("cilk").build(core_levels=[0, 0, 1, 1])
        assert policy.name == "cilk"

    def test_unknown_params_rejected(self):
        with pytest.raises(ScenarioError, match="unknown params"):
            POLICIES.get("eewa").build(params={"warp_factor": 9})

    def test_eewa_params_and_config_are_exclusive(self):
        from repro.core.eewa import EEWAConfig

        with pytest.raises(ScenarioError, match="not both"):
            POLICIES.get("eewa").build(
                params={"headroom": 0.2}, config=EEWAConfig()
            )


class TestSpreadLevels:
    def test_battery_vector(self):
        assert spread_levels(4, 3) == [0, 0, 1, 2]

    def test_opteron_vector(self):
        levels = spread_levels(16, 4)
        assert len(levels) == 16
        assert sorted(set(levels)) == [0, 1, 2, 3]
        assert levels == sorted(levels)

    def test_more_levels_than_cores(self):
        assert max(spread_levels(2, 4)) <= 3

    def test_invalid_inputs(self):
        with pytest.raises(ScenarioError):
            spread_levels(0, 3)
        with pytest.raises(ScenarioError):
            spread_levels(4, 0)

    def test_machine_aware_matches_flat_on_homogeneous(self):
        machine = MACHINES.get("opteron-8380").build()
        assert spread_levels_for(machine) == spread_levels(
            machine.num_cores, machine.r
        )

    def test_machine_aware_spreads_within_each_type(self):
        machine = MACHINES.get("big-little-test").build()
        levels = spread_levels_for(machine)
        assert levels == [0, 1, 2, 3, 0, 1, 2, 3]
        # Every entry is valid on its core's own ladder.
        for core_id, level in enumerate(levels):
            machine.ladder_of(core_id).validate_index(level)
