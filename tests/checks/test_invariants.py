"""The bounded-exhaustive model checker: clean on the real implementations,
and — the mutation test — loud on deliberately broken ones."""

from repro.checks.invariants import (
    check_invariants,
    check_ktuple_invariants,
    check_preference_invariants,
    generate_tables,
)
from repro.core.ktuple import KTupleSolution, search_ktuple


class TestRealImplementations:
    def test_ktuple_search_passes_bounded_space(self):
        """Acceptance criterion: exhaustively clean for r,k <= 4, m <= 16."""
        findings = check_ktuple_invariants(max_r=4, max_k=4, max_m=16)
        assert findings == [], [f.message for f in findings]

    def test_preference_orders_pass(self):
        findings = check_preference_invariants(max_groups=8)
        assert findings == [], [f.message for f in findings]

    def test_combined_entry_point(self):
        assert check_invariants() == []


class TestGeneratedSpace:
    def test_tables_cover_all_shapes(self):
        tables = list(generate_tables(3, 3))
        shapes = {(t.r, t.k) for t in tables}
        assert shapes == {(r, k) for r in (1, 2, 3) for k in (1, 2, 3)}

    def test_base_rows_are_heaviest_first(self):
        for table in generate_tables(2, 3):
            row0 = [table[0, i] for i in range(table.k)]
            assert row0 == sorted(row0, reverse=True)


class TestMutationKillers:
    """Hand-broken searches must produce counterexample findings — proof
    the checker can actually distinguish a wrong implementation."""

    def test_search_that_finds_nothing_is_caught(self):
        findings = check_ktuple_invariants(
            max_r=2, max_k=2, max_m=8, search_fn=lambda table, m: None
        )
        assert findings
        assert all(f.rule_id == "EEWA102" for f in findings)

    def test_non_monotone_search_is_caught(self):
        def reversed_search(table, m):
            solution = search_ktuple(table, m)
            if solution is None:
                return None
            a = tuple(reversed(solution.assignment))
            return KTupleSolution(
                assignment=a,
                core_demand=tuple(table[j, i] for i, j in enumerate(a)),
            )

        findings = check_ktuple_invariants(max_r=3, max_k=3, search_fn=reversed_search)
        assert any(f.rule_id == "EEWA103" for f in findings)
        assert any("monotonicity" in f.message for f in findings)

    def test_greedy_fastest_search_is_caught_as_not_minimal(self):
        """A search that always answers all-fastest is feasible and monotone
        but never bottom-up minimal when slower tuples fit."""

        def all_fastest(table, m):
            demand = tuple(table[0, i] for i in range(table.k))
            if sum(demand) > m:
                return search_ktuple(table, m)
            return KTupleSolution(assignment=(0,) * table.k, core_demand=demand)

        findings = check_ktuple_invariants(max_r=3, max_k=2, search_fn=all_fastest)
        assert any(f.rule_id == "EEWA105" for f in findings)

    def test_infeasible_search_is_caught(self):
        def over_budget(table, m):
            # Claims the all-fastest tuple regardless of the core budget.
            demand = tuple(table[0, i] for i in range(table.k))
            return KTupleSolution(assignment=(0,) * table.k, core_demand=demand)

        findings = check_ktuple_invariants(
            max_r=2, max_k=3, max_m=2, search_fn=over_budget
        )
        assert any(f.rule_id == "EEWA104" for f in findings)

    def test_counterexample_names_the_configuration(self):
        findings = check_ktuple_invariants(
            max_r=2, max_k=2, max_m=4, search_fn=lambda table, m: None
        )
        assert findings[0].location.startswith("invariants(r=")
        assert "m=" in findings[0].location
