"""Workload-aware frequency adjuster.

Ties the online profiler, the CC table, the k-tuple search and the c-group
builder into the single decision the paper's Fig. 2 places between batches:
given the workload information of iteration ``I_d``, produce the frequency
configuration (and task-class placement) for iteration ``I_{d+1}``.

Overhead accounting
-------------------
Table III reports the wall-clock cost of the search on the paper's machine.
We report two numbers:

* ``wallclock_seconds`` — the *measured* Python ``perf_counter`` time of the
  decision (what pytest-benchmark exercises);
* ``simulated_seconds`` — the cost charged inside the simulation, from a
  simple linear model ``base + per_cell * (k * r)`` calibrated to the
  paper's scale (sub-millisecond per invocation, tens of milliseconds over
  a full run). Simulated results must not depend on the speed of the host
  Python interpreter, hence the model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.cc_table import CC_MODES, DEFAULT_HEADROOM, CCTable, build_cc_table
from repro.core.cgroups import CGroupPlan, build_cgroup_plan, uniform_plan
from repro.core.ktuple import (
    Capacities,
    KTupleSolution,
    exhaustive_search,
    search_ktuple,
)
from repro.core.profiler import OnlineProfiler
from repro.errors import SearchError
from repro.machine.operating_point import OperatingPointSpace


@dataclass(frozen=True)
class OverheadModel:
    """Simulated decision cost: ``base + per_cell * (k * r)`` seconds."""

    base_seconds: float = 5e-4
    per_cell_seconds: float = 1e-5

    def cost(self, k: int, r: int) -> float:
        return self.base_seconds + self.per_cell_seconds * k * r


@dataclass(frozen=True)
class AdjusterDecision:
    """Outcome of one between-batch adjustment."""

    plan: CGroupPlan
    table: Optional[CCTable]
    solution: Optional[KTupleSolution]
    wallclock_seconds: float
    simulated_seconds: float
    fallback_reason: Optional[str] = None

    @property
    def fell_back(self) -> bool:
        return self.fallback_reason is not None


#: Search entry point: ``fn(table, num_cores, capacities=...)``.
SearchFn = Callable[..., Optional[KTupleSolution]]

SEARCH_ALGORITHMS: dict[str, SearchFn] = {
    "backtracking": search_ktuple,
    "exhaustive": exhaustive_search,
}


@dataclass
class WorkloadAwareFrequencyAdjuster:
    """The paper's frequency adjuster (Section III-A).

    Parameters
    ----------
    scale:
        Machine operating-point space (the frequency ladder on
        homogeneous machines).
    num_cores:
        Total cores ``m``.
    capacities:
        Ordered per-type core counts on heterogeneous machines
        (:meth:`repro.machine.topology.MachineConfig.capacities`); the
        search and the c-group builder then budget each core type
        separately. ``None`` keeps the machine-wide single budget.
    search:
        ``"backtracking"`` (Algorithm 1, the default) or ``"exhaustive"``
        (the costlier yardstick used in the ablation).
    cc_mode:
        ``"discrete"`` (granularity-aware, the reproduction default) or
        ``"fluid"`` (the paper's Table I formula) — see
        :data:`repro.core.cc_table.CC_MODES`.
    leftover_policy:
        Where cores not demanded by any class are parked
        (see :mod:`repro.core.cgroups`).
    overhead_model:
        Simulated decision-cost model.
    """

    scale: OperatingPointSpace
    num_cores: int
    search: str = "backtracking"
    cc_mode: str = "discrete"
    headroom: float = DEFAULT_HEADROOM
    leftover_policy: str = "slowest"
    capacities: Optional[Capacities] = None
    overhead_model: OverheadModel = field(default_factory=OverheadModel)
    decisions: list[AdjusterDecision] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.search not in SEARCH_ALGORITHMS:
            raise SearchError(
                f"unknown search {self.search!r}; expected one of {sorted(SEARCH_ALGORITHMS)}"
            )
        if self.cc_mode not in CC_MODES:
            raise SearchError(f"unknown cc_mode {self.cc_mode!r}")
        if self.num_cores < 1:
            raise SearchError("num_cores must be >= 1")

    # -- the decision -----------------------------------------------------------

    def decide(self, profiler: OnlineProfiler) -> AdjusterDecision:
        """Compute the frequency configuration for the next batch."""
        t0 = time.perf_counter()
        search_fn = SEARCH_ALGORITHMS[self.search]

        classes = profiler.classes_by_workload()
        if not classes:
            decision = self._fallback(t0, None, "no profiled task classes")
            self.decisions.append(decision)
            return decision

        table = build_cc_table(
            classes,
            self.scale,
            profiler.require_ideal_time(),
            mode=self.cc_mode,
            headroom=self.headroom,
        )
        solution = search_fn(table, self.num_cores, capacities=self.capacities)
        if solution is None:
            decision = self._fallback(t0, table, "no feasible k-tuple")
            self.decisions.append(decision)
            return decision

        plan = build_cgroup_plan(
            solution,
            table,
            self.num_cores,
            leftover_policy=self.leftover_policy,
            capacities=self.capacities,
        )
        wall = time.perf_counter() - t0
        decision = AdjusterDecision(
            plan=plan,
            table=table,
            solution=solution,
            wallclock_seconds=wall,
            simulated_seconds=self.overhead_model.cost(table.k, table.r),
        )
        self.decisions.append(decision)
        return decision

    def _fallback(
        self, t0: float, table: Optional[CCTable], reason: str
    ) -> AdjusterDecision:
        """All-fastest uniform plan — behaves like plain work-stealing."""
        names = table.class_names if table is not None else ()
        plan = uniform_plan(self.num_cores, level=0, class_names=tuple(names))
        wall = time.perf_counter() - t0
        k = table.k if table is not None else 1
        return AdjusterDecision(
            plan=plan,
            table=table,
            solution=None,
            wallclock_seconds=wall,
            simulated_seconds=self.overhead_model.cost(k, self.scale.r),
            fallback_reason=reason,
        )

    # -- reporting ---------------------------------------------------------------

    def total_wallclock(self) -> float:
        return sum(d.wallclock_seconds for d in self.decisions)

    def total_simulated(self) -> float:
        return sum(d.simulated_seconds for d in self.decisions)
