"""Wire schema of the sweep service.

One request, many frames back. The request body is a single JSON object::

    {
      "protocol": 1,
      "scenarios": [ <scenario-spec JSON, schema v3>, ... ],
      "fidelity": "sim" | "model" | "auto" | null,   // null: server default
      "priority": 0,                                 // lower runs first
      "deadline_s": 5.0 | null                       // per-request budget
    }

Scenario objects go through :meth:`~repro.scenario.spec.ScenarioSpec.from_dict`
— the exact validation path of ``repro run-spec`` — so schema versioning,
unknown-field rejection, and alias canonicalisation behave identically
over the wire and on the command line.

The response is a newline-delimited JSON stream (``application/x-ndjson``),
one frame per line, in completion order:

``cell``
    One resolved cell: ``index`` is the cell's position in the request's
    flattened (scenario × seed) order (the idempotency/resume key),
    ``scenario`` the index of its owning scenario, plus benchmark /
    policy / seed / cache provenance and the full
    :func:`~repro.sim.export.result_to_dict` result payload. Results are
    JSON-exact: floats round-trip bit-identically, so a streamed cell
    equals a local run of the same cell field for field.
``error``
    Terminal failure *after* streaming started (deadline expiry, engine
    failure). The stream ends after an error frame; cells streamed before
    it are valid.
``end``
    Normal termination: totals for the request. Exactly one ``end`` or
    ``error`` frame terminates every stream.

Transport-level failures *before* streaming starts are plain HTTP status
codes: 400 for validation errors, 429 + ``Retry-After`` for queue-full
backpressure, 404/405 for unknown routes.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Iterable, Mapping, Optional

from repro.errors import ScenarioError
from repro.experiments.parallel import CellOutcome, CellSpec
from repro.experiments.sweep import FIDELITIES
from repro.scenario.spec import ScenarioSpec
from repro.sim.export import result_to_dict

#: Version of the request/frame schema. Bump on any incompatible change;
#: the server rejects requests carrying a different version.
PROTOCOL_VERSION = 1

#: Frame kinds a stream may carry.
FRAME_KINDS = ("cell", "error", "end")

#: Error codes carried by ``error`` frames and pre-stream HTTP error
#: bodies. ``deadline``: the request's ``deadline_s`` expired mid-stream;
#: ``backpressure``: the engine queue was full at admission (HTTP 429);
#: ``bad-request``: validation failed (HTTP 400); ``engine``: a cell
#: failed inside the engine; ``shutdown``: the server is draining.
ERROR_CODES = ("deadline", "backpressure", "bad-request", "engine", "shutdown")


@dataclasses.dataclass(frozen=True)
class SweepRequest:
    """One validated sweep request: scenarios plus streaming options."""

    scenarios: tuple[ScenarioSpec, ...]
    fidelity: Optional[str] = None
    priority: int = 0
    deadline_s: Optional[float] = None

    def cells(self) -> list[tuple[int, CellSpec]]:
        """Flattened (scenario-index, cell) pairs in submission order."""
        out: list[tuple[int, CellSpec]] = []
        for index, scenario in enumerate(self.scenarios):
            for seed in scenario.seeds:
                out.append((index, CellSpec.from_scenario(scenario, seed)))
        return out

    def to_dict(self) -> dict[str, Any]:
        return build_sweep_request(
            [s.to_dict() for s in self.scenarios],
            fidelity=self.fidelity,
            priority=self.priority,
            deadline_s=self.deadline_s,
        )


def build_sweep_request(
    scenarios: Iterable[Mapping[str, Any]],
    *,
    fidelity: Optional[str] = None,
    priority: int = 0,
    deadline_s: Optional[float] = None,
) -> dict[str, Any]:
    """The request body as a plain dict (scenarios already JSON-shaped)."""
    body: dict[str, Any] = {
        "protocol": PROTOCOL_VERSION,
        "scenarios": list(scenarios),
    }
    if fidelity is not None:
        body["fidelity"] = fidelity
    if priority:
        body["priority"] = priority
    if deadline_s is not None:
        body["deadline_s"] = deadline_s
    return body


def parse_sweep_request(data: Any) -> SweepRequest:
    """Validate one request body; raises :class:`ScenarioError` on any flaw."""
    if not isinstance(data, Mapping):
        raise ScenarioError("sweep request must be a JSON object")
    unknown = set(data) - {
        "protocol", "scenarios", "fidelity", "priority", "deadline_s",
    }
    if unknown:
        raise ScenarioError(f"unknown request fields: {sorted(unknown)}")
    protocol = data.get("protocol", PROTOCOL_VERSION)
    if protocol != PROTOCOL_VERSION:
        raise ScenarioError(
            f"unsupported protocol version {protocol!r}; this server speaks "
            f"version {PROTOCOL_VERSION}"
        )
    raw = data.get("scenarios")
    if not isinstance(raw, (list, tuple)) or not raw:
        raise ScenarioError("request needs a non-empty 'scenarios' list")
    scenarios = tuple(ScenarioSpec.from_dict(item) for item in raw)
    fidelity = data.get("fidelity")
    if fidelity is not None and fidelity not in FIDELITIES:
        raise ScenarioError(
            f"fidelity must be one of {FIDELITIES}, got {fidelity!r}"
        )
    priority = data.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ScenarioError("priority must be an integer")
    deadline_s = data.get("deadline_s")
    if deadline_s is not None:
        if isinstance(deadline_s, bool) or not isinstance(deadline_s, (int, float)):
            raise ScenarioError("deadline_s must be a number of seconds")
        if deadline_s < 0:
            raise ScenarioError("deadline_s must be non-negative")
        deadline_s = float(deadline_s)
    return SweepRequest(
        scenarios=scenarios,
        fidelity=fidelity,
        priority=priority,
        deadline_s=deadline_s,
    )


# ----------------------------------------------------------------------
# response frames
# ----------------------------------------------------------------------


def cell_frame(
    index: int, scenario_index: int, outcome: CellOutcome
) -> dict[str, Any]:
    """One resolved cell as a wire frame."""
    spec = outcome.spec
    return {
        "frame": "cell",
        "index": index,
        "scenario": scenario_index,
        "benchmark": spec.benchmark,
        "policy": spec.policy,
        "seed": spec.seed,
        "key": outcome.key,
        "from_cache": outcome.from_cache,
        "source": outcome.source,
        "adjuster_wallclock_s": outcome.adjuster_wallclock_s,
        "adjuster_decisions": outcome.adjuster_decisions,
        "result": result_to_dict(outcome.result),
    }


def error_frame(code: str, detail: str) -> dict[str, Any]:
    """Terminal failure frame (also the body of 4xx/5xx responses)."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    return {"frame": "error", "code": code, "detail": detail}


def end_frame(
    *, cells: int, streamed: int, from_cache: int, sources: Mapping[str, int]
) -> dict[str, Any]:
    """Normal stream termination with per-request totals."""
    return {
        "frame": "end",
        "cells": cells,
        "streamed": streamed,
        "from_cache": from_cache,
        "sources": dict(sources),
    }


def encode_frame(frame: Mapping[str, Any]) -> bytes:
    """One frame as a compact JSON line (the only wire encoding)."""
    return json.dumps(frame, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    ) + b"\n"


def decode_frame(line: bytes | str) -> dict[str, Any]:
    """Parse and validate one received line; raises :class:`ScenarioError`."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"invalid frame JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise ScenarioError("frame must be a JSON object")
    kind = frame.get("frame")
    if kind not in FRAME_KINDS:
        raise ScenarioError(f"unknown frame kind {kind!r}")
    return frame


__all__ = [
    "ERROR_CODES",
    "FRAME_KINDS",
    "PROTOCOL_VERSION",
    "SweepRequest",
    "build_sweep_request",
    "cell_frame",
    "decode_frame",
    "encode_frame",
    "end_frame",
    "error_frame",
    "parse_sweep_request",
]
