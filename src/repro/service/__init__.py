"""Streaming sweep service — the ROADMAP's service front-end.

The execution layer (:class:`~repro.experiments.sweep.SweepEngine`) already
has the request/stream/backpressure shape of an inference-serving stack:
submit returns a ticket, tickets stream back in completion order, the
queue is bounded and deduplicated. This package puts a wire protocol in
front of it, stdlib-only:

* :mod:`repro.service.protocol` — the JSON-lines wire schema: a sweep
  request carries scenario-spec JSON (schema-v3, the exact validation
  path of ``repro run-spec``) plus fidelity/priority/deadline; responses
  are newline-delimited ``cell`` / ``error`` / ``end`` frames;
* :mod:`repro.service.server` — ``repro serve``: a
  ``ThreadingHTTPServer`` (TCP or unix socket) sharing one
  :class:`~repro.scenario.session.Session` across all clients, so
  identical cells submitted by different clients coalesce in flight and
  share cache entries. Queue-full backpressure surfaces as HTTP 429 with
  ``Retry-After``; per-request deadlines end the stream with a terminal
  error frame; shutdown drains in-flight streams before the engine
  closes;
* :mod:`repro.service.client` — ``repro sweep --remote``: a streaming
  client with bounded exponential-backoff retries (seeded jitter).
  Retries are idempotent because submissions are content-addressed cell
  keys: a replayed request re-serves finished cells from the cache and
  coalesces unfinished ones onto the jobs already in flight.
"""

from repro.service.client import ServiceError, SweepServiceClient
from repro.service.protocol import (
    PROTOCOL_VERSION,
    SweepRequest,
    cell_frame,
    decode_frame,
    encode_frame,
    end_frame,
    error_frame,
    parse_sweep_request,
)
from repro.service.server import SweepServer, serve

__all__ = [
    "PROTOCOL_VERSION",
    "ServiceError",
    "SweepRequest",
    "SweepServer",
    "SweepServiceClient",
    "cell_frame",
    "decode_frame",
    "encode_frame",
    "end_frame",
    "error_frame",
    "parse_sweep_request",
    "serve",
]
