"""Tests for bit-level I/O."""

import pytest

from repro.errors import KernelError
from repro.kernels.bitio import BitReader, BitWriter


class TestBitWriter:
    def test_single_byte(self):
        w = BitWriter()
        for bit in (1, 0, 1, 0, 1, 0, 1, 0):
            w.write_bit(bit)
        assert w.getvalue() == bytes([0b10101010])

    def test_partial_byte_zero_padded(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        assert w.getvalue() == bytes([0b10100000])

    def test_write_bits_msb_first(self):
        w = BitWriter()
        w.write_bits(0x1234, 16)
        assert w.getvalue() == b"\x12\x34"

    def test_bit_length(self):
        w = BitWriter()
        w.write_bits(0, 13)
        assert w.bit_length == 13

    def test_value_too_wide_rejected(self):
        w = BitWriter()
        with pytest.raises(KernelError):
            w.write_bits(8, 3)
        with pytest.raises(KernelError):
            w.write_bits(-1, 4)

    def test_unary(self):
        w = BitWriter()
        w.write_unary(3)
        assert w.getvalue() == bytes([0b11100000])


class TestBitReader:
    def test_roundtrip_bits(self):
        w = BitWriter()
        values = [(0b1, 1), (0b1011, 4), (0xFFFF, 16), (0, 7)]
        for v, n in values:
            w.write_bits(v, n)
        r = BitReader(w.getvalue())
        for v, n in values:
            assert r.read_bits(n) == v

    def test_roundtrip_unary(self):
        w = BitWriter()
        for v in (0, 1, 5, 12):
            w.write_unary(v)
        r = BitReader(w.getvalue())
        for v in (0, 1, 5, 12):
            assert r.read_unary() == v

    def test_exhaustion_raises(self):
        r = BitReader(b"\xff")
        r.read_bits(8)
        with pytest.raises(KernelError):
            r.read_bit()

    def test_bits_remaining(self):
        r = BitReader(b"\x00\x00")
        assert r.bits_remaining == 16
        r.read_bits(5)
        assert r.bits_remaining == 11
