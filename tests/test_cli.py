"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "BWC" in out and "SHA-1" in out
        assert "eewa" in out

    def test_run(self, capsys):
        assert main(["run", "MD5", "eewa", "--batches", "3", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "MD5 / eewa" in out
        assert "energy breakdown" in out

    def test_run_with_trace(self, capsys):
        assert main(
            ["run", "DMC", "cilk", "--batches", "2", "--trace"]
        ) == 0
        out = capsys.readouterr().out
        assert "batch   0" in out
        assert "batch   1" in out

    def test_run_small_machine(self, capsys):
        assert main(["run", "LZW", "cilk-d", "--batches", "2", "--cores", "4"]) == 0
        assert "4 cores" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "SHA-1", "--batches", "3"]) == 0
        out = capsys.readouterr().out
        for policy in ("cilk", "cilk-d", "eewa"):
            assert policy in out
        assert "E/cilk" in out

    def test_figure_fig1(self, capsys):
        assert main(["figure", "fig1"]) == 0
        assert "Fig. 1" in capsys.readouterr().out

    def test_figure_fig8(self, capsys):
        assert main(["figure", "fig8"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 8" in out and "2.5GHz" in out

    def test_figure_table3(self, capsys):
        assert main(["figure", "table3"]) == 0
        assert "Table III" in capsys.readouterr().out

    def test_calibrate(self, capsys):
        assert main(["calibrate", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "kernel stage costs" in out
        assert "bwt_block" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "SPECfp", "eewa"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestWatsCli:
    def test_run_wats_derives_modal_levels(self, capsys):
        assert main(
            ["run", "SHA-1", "wats", "--batches", "2", "--cores", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "SHA-1 / wats" in out
        assert "EEWA's modal configuration" in out

    def test_run_wats_explicit_levels(self, capsys):
        assert main(
            ["run", "SHA-1", "wats", "--batches", "2", "--cores", "4",
             "--core-levels", "0", "0", "1", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "SHA-1 / wats" in out
        assert "modal configuration" not in out

    def test_explicit_levels_rejected_for_eewa(self, capsys):
        assert main(
            ["run", "SHA-1", "eewa", "--batches", "2", "--cores", "4",
             "--core-levels", "0", "0", "1", "2"]
        ) == 2
        assert "does not take fixed core levels" in capsys.readouterr().err

    def test_compare_with_wats(self, capsys):
        assert main(
            ["compare", "SHA-1", "--batches", "2", "--cores", "4",
             "--policies", "cilk", "wats", "eewa"]
        ) == 0
        out = capsys.readouterr().out
        for policy in ("cilk", "wats", "eewa"):
            assert policy in out
        assert "t/cilk" in out and "E/cilk" in out


class TestRunSpecScenario:
    def _write(self, tmp_path, data):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(data))
        return str(path)

    def test_full_scenario_json(self, tmp_path, capsys):
        path = self._write(tmp_path, {
            "schema": 1,
            "workload": "SHA-1",
            "policy": {"name": "eewa", "params": {"headroom": 0.2}},
            "machine": {"preset": "opteron-8380", "num_cores": 8},
            "seeds": [11],
            "batches": 2,
        })
        assert main(["run-spec", path]) == 0
        out = capsys.readouterr().out
        assert "SHA-1 / eewa on 8 cores" in out

    def test_scenario_policy_override(self, tmp_path, capsys):
        path = self._write(tmp_path, {
            "workload": "MD5",
            "policy": "cilk",
            "machine": {"preset": "small-test"},
            "seeds": [3],
            "batches": 2,
        })
        assert main(["run-spec", path, "cilk-d"]) == 0
        assert "MD5 / cilk-d" in capsys.readouterr().out

    def test_unknown_scenario_field_exits_2(self, tmp_path, capsys):
        path = self._write(tmp_path, {
            "workload": "SHA-1", "policy": "cilk", "sedes": [1],
        })
        assert main(["run-spec", path]) == 2
        assert "unknown scenario fields" in capsys.readouterr().err

    def test_schema_mismatch_exits_2(self, tmp_path, capsys):
        path = self._write(tmp_path, {
            "schema": 99, "workload": "SHA-1", "policy": "cilk",
        })
        assert main(["run-spec", path]) == 2
        assert "unsupported scenario schema" in capsys.readouterr().err

    def test_bare_workload_spec_needs_policy(self, tmp_path, capsys):
        path = self._write(tmp_path, {"name": "custom", "classes": []})
        assert main(["run-spec", path]) == 2
        assert "policy argument is required" in capsys.readouterr().err

    def test_missing_file_exits_2(self, capsys):
        assert main(["run-spec", "/no/such/file.json"]) == 2
        assert "cannot read" in capsys.readouterr().err


def _sweep_args(cache_dir, *extra):
    return [
        "sweep", "--benchmarks", "SHA-1", "--policies", "cilk",
        "--seeds", "11", "--batches", "2", "--cache-dir", str(cache_dir),
        *extra,
    ]


class TestSweepCli:
    def test_sweep_streams_cells_and_reports_dedup(self, tmp_path, capsys):
        assert main(_sweep_args(tmp_path / "c", "--repeat", "3")) == 0
        out = capsys.readouterr().out
        assert out.count("done SHA-1/cilk seed 11") == 3
        assert "1 simulated" in out
        assert "2 coalesced in flight" in out
        assert "dedup rate 66.7%" in out

    def test_sweep_warm_run_writes_json(self, tmp_path, capsys):
        cache = tmp_path / "c"
        assert main(_sweep_args(cache, "--quiet")) == 0
        capsys.readouterr()
        json_path = tmp_path / "sweep.json"
        assert main(_sweep_args(cache, "--quiet", "--json", str(json_path))) == 0
        payload = json.loads(json_path.read_text())
        assert payload["stats"]["submissions"] == 1
        assert payload["stats"]["executed"] == 0
        assert payload["stats"]["cache_hits"] == 1
        assert payload["stats"]["latency_p99_s"] >= payload["stats"]["latency_p50_s"]
        (cell,) = payload["cells"]
        assert cell["from_cache"] is True

    def test_sweep_no_cache_simulates_every_distinct_cell(self, tmp_path, capsys):
        assert main(_sweep_args(tmp_path / "c", "--no-cache", "--quiet")) == 0
        assert "1 simulated" in capsys.readouterr().out
        assert not (tmp_path / "c").exists()


class TestRemoteSweepCli:
    def test_sweep_remote_streams_through_a_server(self, tmp_path, capsys):
        import threading

        from repro.service.server import serve

        srv = serve(port=0, cache_dir=tmp_path / "cache")
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        assert srv.wait_until_serving()
        try:
            url = f"http://127.0.0.1:{srv.server_port}"
            json_path = tmp_path / "remote.json"
            assert main(_sweep_args(
                tmp_path / "unused-local-cache", "--remote", url,
                "--json", str(json_path),
            )) == 0
            out = capsys.readouterr().out
            assert "done SHA-1/cilk seed 11" in out
            assert f"streamed from {url}" in out
            payload = json.loads(json_path.read_text())
            assert payload["summary"]["cells"] == 1
            (cell,) = payload["cells"]
            assert cell["benchmark"] == "SHA-1"
            assert cell["total_joules"] > 0
        finally:
            srv.drain_and_close()
            thread.join(timeout=10)


class TestInterruptExitCode:
    def test_keyboard_interrupt_maps_to_130(self, monkeypatch, capsys):
        import repro.cli as cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_cmd_sweep", interrupted)
        assert main(_sweep_args("unused")) == 130
        assert "interrupted" in capsys.readouterr().err


class TestCacheCli:
    def test_stats_migrate_prune_roundtrip(self, tmp_path, capsys):
        cache = str(tmp_path / "c")
        assert main(_sweep_args(cache, "--quiet")) == 0
        capsys.readouterr()

        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "entries: 1 (0 packed, 1 loose)" in out

        assert main(["cache", "migrate", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "packed 1 loose entries" in out

        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        assert "entries: 1 (1 packed, 0 loose)" in capsys.readouterr().out

        assert main(["cache", "prune", "--cache-dir", cache,
                     "--max-bytes", "0"]) == 0
        assert "pruned 1 entries" in capsys.readouterr().out

        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_prune_without_bounds_exits_2(self, tmp_path, capsys):
        assert main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 2
        assert "needs --max-age-days and/or --max-bytes" in capsys.readouterr().err
