"""Hypothesis property tests: every lossless kernel round-trips on
arbitrary inputs, and the hashes agree with hashlib everywhere."""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.bwt import bwc_compress, bwc_decompress, bwt_forward, bwt_inverse
from repro.kernels.bzip2 import bzip2_compress, bzip2_decompress
from repro.kernels.dmc import dmc_compress, dmc_decompress
from repro.kernels.huffman import huffman_compress, huffman_decompress
from repro.kernels.lzw import lzw_compress, lzw_decompress
from repro.kernels.md5 import md5_hexdigest
from repro.kernels.mtf import mtf_decode, mtf_encode
from repro.kernels.rle import (
    rle2_decode_zeros,
    rle2_encode_zeros,
    rle_decode,
    rle_encode,
)
from repro.kernels.sha1 import sha1_hexdigest

small_bytes = st.binary(max_size=400)
#: Low-entropy inputs stress run/dictionary handling harder.
runny_bytes = st.lists(
    st.sampled_from(list(b"abc\x00")), max_size=400
).map(bytes)


@given(small_bytes)
def test_rle1_roundtrip(data):
    assert rle_decode(rle_encode(data)) == data


@given(runny_bytes)
def test_rle1_roundtrip_runny(data):
    assert rle_decode(rle_encode(data)) == data


@given(st.lists(st.integers(min_value=0, max_value=50), max_size=200))
def test_rle2_roundtrip(symbols):
    assert rle2_decode_zeros(rle2_encode_zeros(symbols)) == symbols


@given(small_bytes)
def test_mtf_roundtrip(data):
    assert mtf_decode(mtf_encode(data)) == data


@given(small_bytes)
def test_bwt_roundtrip(data):
    assert bwt_inverse(bwt_forward(data)) == data


@given(small_bytes)
def test_bwt_is_permutation(data):
    assert sorted(bwt_forward(data).transformed) == sorted(data)


@given(st.lists(st.integers(min_value=0, max_value=300), min_size=1, max_size=300))
def test_huffman_roundtrip(symbols):
    payload, table, count = huffman_compress(symbols)
    assert huffman_decompress(payload, table, count) == symbols


@given(small_bytes)
def test_bwc_roundtrip(data):
    assert bwc_decompress(bwc_compress(data)) == data


@settings(max_examples=50)
@given(runny_bytes)
def test_bwc_roundtrip_runny(data):
    assert bwc_decompress(bwc_compress(data)) == data


@settings(max_examples=40)
@given(st.binary(max_size=1500))
def test_lzw_roundtrip(data):
    assert lzw_decompress(lzw_compress(data)) == data


@settings(max_examples=40)
@given(runny_bytes)
def test_lzw_roundtrip_runny(data):
    assert lzw_decompress(lzw_compress(data)) == data


@settings(max_examples=25)
@given(st.binary(max_size=400))
def test_dmc_roundtrip(data):
    assert dmc_decompress(dmc_compress(data)) == data


@settings(max_examples=30)
@given(st.lists(st.sampled_from(list(b"ab")), max_size=800).map(bytes))
def test_dmc_roundtrip_binaryish(data):
    assert dmc_decompress(dmc_compress(data)) == data


@settings(max_examples=30)
@given(st.binary(max_size=2000))
def test_bzip2_roundtrip(data):
    assert bzip2_decompress(bzip2_compress(data, block_size=512)) == data


@given(small_bytes)
def test_md5_matches_hashlib(data):
    assert md5_hexdigest(data) == hashlib.md5(data).hexdigest()


@given(small_bytes)
def test_sha1_matches_hashlib(data):
    assert sha1_hexdigest(data) == hashlib.sha1(data).hexdigest()
