"""Golden determinism suite.

Every shipped policy × program × seed cell must reproduce the scalars and
full trace fingerprint pinned in ``golden_hashes.json`` — the fixture was
generated from the engine *before* the fast-path rewrite, so these tests
prove the optimized engine is observably bit-identical to the original.

If an intentional behaviour change breaks these, regenerate with::

    PYTHONPATH=src python tests/sim/golden_gen.py

and justify the new hashes in review.
"""

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent))
import golden_gen  # noqa: E402

FIXTURE = json.loads(golden_gen.FIXTURE.read_text())
CELLS = list(golden_gen.cells())


def test_fixture_covers_every_cell():
    assert {f"{b}/{p}/seed{s}" for b, p, s in CELLS} == set(FIXTURE)


def test_fixture_pins_policies_and_seeds():
    # The suite must cover all shipped policies on the acceptance seeds.
    policies = {p for _, p, _ in CELLS}
    seeds = {s for _, _, s in CELLS}
    assert policies == {"cilk", "cilk-d", "wats", "eewa"}
    assert seeds == {11, 23, 37}


@pytest.mark.parametrize(
    "bench_name,policy,seed",
    CELLS,
    ids=[f"{b}-{p}-s{s}" for b, p, s in CELLS],
)
def test_golden_cell(bench_name, policy, seed):
    got = golden_gen.run_cell(bench_name, policy, seed)
    want = FIXTURE[f"{bench_name}/{policy}/seed{seed}"]
    # Scalars first for a readable diff; the fingerprint covers everything.
    assert got["total_time"] == want["total_time"]
    assert got["total_joules"] == want["total_joules"]
    assert got["tasks_executed"] == want["tasks_executed"]
    assert got["fingerprint"] == want["fingerprint"]
