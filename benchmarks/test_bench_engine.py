"""Micro-benchmarks of the simulation engine itself.

Measures simulated-task throughput (tasks retired per wall second) for the
plain and grouped schedulers — the engine's own efficiency, independent of
the paper's results.
"""

from repro.core.eewa import EEWAScheduler
from repro.machine.topology import opteron_8380_machine
from repro.runtime.cilk import CilkScheduler
from repro.runtime.task import TaskSpec, flat_batch
from repro.sim.engine import simulate

REF = 2.5e9


def small_program(batches=4, tasks=128):
    return [
        flat_batch(
            i, [TaskSpec(f"c{t % 4}", cpu_cycles=0.002 * REF) for t in range(tasks)]
        )
        for i in range(batches)
    ]


def test_bench_engine_cilk_throughput(benchmark):
    machine = opteron_8380_machine()
    program = small_program()
    result = benchmark(lambda: simulate(program, CilkScheduler(), machine, seed=1))
    assert result.tasks_executed == 4 * 128


def test_bench_engine_eewa_throughput(benchmark):
    machine = opteron_8380_machine()
    program = small_program()
    result = benchmark(lambda: simulate(program, EEWAScheduler(), machine, seed=1))
    assert result.tasks_executed == 4 * 128


def test_bench_engine_many_cores(benchmark):
    machine = opteron_8380_machine(num_cores=64)
    program = small_program(batches=2, tasks=512)
    result = benchmark(lambda: simulate(program, CilkScheduler(), machine, seed=1))
    assert result.tasks_executed == 2 * 512
