"""Tests for the event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventKind, EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.schedule(3.0, EventKind.TASK_DONE, core_id=0)
        q.schedule(1.0, EventKind.TASK_DONE, core_id=1)
        q.schedule(2.0, EventKind.TASK_DONE, core_id=2)
        assert [q.pop().core_id for _ in range(3)] == [1, 2, 0]

    def test_ties_break_by_schedule_order(self):
        q = EventQueue()
        for i in range(5):
            q.schedule(1.0, EventKind.CORE_READY, core_id=i)
        assert [q.pop().core_id for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_clock_advances_monotonically(self):
        q = EventQueue()
        q.schedule(2.0, EventKind.TASK_DONE)
        q.schedule(1.0, EventKind.TASK_DONE)
        q.pop()
        assert q.now == pytest.approx(1.0)
        q.pop()
        assert q.now == pytest.approx(2.0)

    def test_relative_delays_compound(self):
        q = EventQueue()
        q.schedule(1.0, EventKind.TASK_DONE)
        q.pop()
        q.schedule(1.0, EventKind.TASK_DONE)
        q.pop()
        assert q.now == pytest.approx(2.0)


class TestGuards:
    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_delay_rejected(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.schedule(-0.1, EventKind.TASK_DONE)

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.schedule(1.0, EventKind.TASK_DONE)
        assert q and len(q) == 1
