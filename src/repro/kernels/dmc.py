"""Dynamic Markov Coding (Cormack & Horspool, 1987).

The DMC benchmark of Table II: a bit-level predictive compressor. A
finite-state Markov model predicts each bit; a binary arithmetic coder
turns predictions into output bits; the model *grows* by cloning states
whose transitions become heavily used, specialising the context.

Components
----------
* :class:`ArithmeticEncoder` / :class:`ArithmeticDecoder` — a classic
  32-bit binary arithmetic coder with pending-bit (underflow) handling.
* :class:`DMCModel` — counts-based predictor with state cloning.
* :func:`dmc_compress` / :func:`dmc_decompress` — byte-stream interface
  (MSB-first bits, 32-bit length header).

Encoder and decoder share the model-update code path, so their state
machines stay in lockstep as long as the coded bits round-trip — which the
property tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import KernelError
from repro.kernels.bitio import BitReader, BitWriter

_TOP = 0xFFFFFFFF
_HALF = 0x80000000
_QUARTER = 0x40000000
_THREE_QUARTERS = 0xC0000000


class ArithmeticEncoder:
    """Binary arithmetic encoder over ``[low, high]`` 32-bit intervals."""

    def __init__(self) -> None:
        self._low = 0
        self._high = _TOP
        self._pending = 0
        self._writer = BitWriter()

    def _emit(self, bit: int) -> None:
        self._writer.write_bit(bit)
        inverse = bit ^ 1
        for _ in range(self._pending):
            self._writer.write_bit(inverse)
        self._pending = 0

    def encode(self, bit: int, p0: float) -> None:
        """Encode ``bit`` given probability ``p0`` of a zero bit."""
        span = self._high - self._low + 1
        split = self._low + max(1, min(span - 1, int(span * p0))) - 1
        if bit == 0:
            self._high = split
        else:
            self._low = split + 1
        while True:
            if self._high < _HALF:
                self._emit(0)
            elif self._low >= _HALF:
                self._emit(1)
                self._low -= _HALF
                self._high -= _HALF
            elif self._low >= _QUARTER and self._high < _THREE_QUARTERS:
                self._pending += 1
                self._low -= _QUARTER
                self._high -= _QUARTER
            else:
                break
            self._low = (self._low << 1) & _TOP
            self._high = ((self._high << 1) | 1) & _TOP

    def finish(self) -> bytes:
        # Disambiguate the final interval with one more bit (plus pending).
        self._pending += 1
        self._emit(0 if self._low < _QUARTER else 1)
        # Pad so the decoder can always fill its 32-bit window.
        payload = self._writer.getvalue()
        return payload + b"\x00" * 4


class ArithmeticDecoder:
    """Mirror of :class:`ArithmeticEncoder`."""

    def __init__(self, payload: bytes) -> None:
        self._reader = BitReader(payload)
        self._low = 0
        self._high = _TOP
        self._code = 0
        for _ in range(32):
            self._code = (self._code << 1) | self._next_bit()

    def _next_bit(self) -> int:
        if self._reader.bits_remaining > 0:
            return self._reader.read_bit()
        return 0

    def decode(self, p0: float) -> int:
        span = self._high - self._low + 1
        split = self._low + max(1, min(span - 1, int(span * p0))) - 1
        if self._code <= split:
            bit = 0
            self._high = split
        else:
            bit = 1
            self._low = split + 1
        while True:
            if self._high < _HALF:
                pass
            elif self._low >= _HALF:
                self._low -= _HALF
                self._high -= _HALF
                self._code -= _HALF
            elif self._low >= _QUARTER and self._high < _THREE_QUARTERS:
                self._low -= _QUARTER
                self._high -= _QUARTER
                self._code -= _QUARTER
            else:
                break
            self._low = (self._low << 1) & _TOP
            self._high = ((self._high << 1) | 1) & _TOP
            self._code = ((self._code << 1) | self._next_bit()) & _TOP
        return bit


@dataclass
class DMCModel:
    """Cloning Markov model over bits.

    Each state holds transition counts ``c[0], c[1]`` and successor ids
    ``next[0], next[1]``. On traversing ``(state, bit)``, if the transition
    is popular (``c[bit] > clone_min``) and the successor has substantial
    traffic from elsewhere (``visits(next) - c[bit] > other_min``), the
    successor is cloned and its counts split proportionally — DMC's whole
    trick for discovering longer contexts.
    """

    clone_min: float = 2.0
    other_min: float = 2.0
    max_states: int = 1 << 16
    _c0: list[float] = field(default_factory=lambda: [0.2])
    _c1: list[float] = field(default_factory=lambda: [0.2])
    _n0: list[int] = field(default_factory=lambda: [0])
    _n1: list[int] = field(default_factory=lambda: [0])
    state: int = 0

    @property
    def num_states(self) -> int:
        return len(self._c0)

    def p0(self) -> float:
        """Probability that the next bit is zero, Laplace-smoothed."""
        s = self.state
        c0, c1 = self._c0[s], self._c1[s]
        return (c0 + 0.2) / (c0 + c1 + 0.4)

    def update(self, bit: int) -> None:
        """Advance on ``bit``, counting and possibly cloning."""
        s = self.state
        counts = self._c1 if bit else self._c0
        nexts = self._n1 if bit else self._n0
        target = nexts[s]
        transition_count = counts[s]
        target_visits = self._c0[target] + self._c1[target]

        if (
            transition_count > self.clone_min
            and target_visits - transition_count > self.other_min
            and self.num_states < self.max_states
        ):
            ratio = transition_count / target_visits
            new = self.num_states
            self._c0.append(self._c0[target] * ratio)
            self._c1.append(self._c1[target] * ratio)
            self._n0.append(self._n0[target])
            self._n1.append(self._n1[target])
            self._c0[target] *= 1.0 - ratio
            self._c1[target] *= 1.0 - ratio
            nexts[s] = new
            target = new

        counts[s] = transition_count + 1.0
        self.state = target

    def reset_position(self) -> None:
        self.state = 0


#: Decompression refuses to expand beyond this many bytes — a corrupt
#: length header must not turn into a multi-gigabyte decode loop.
MAX_OUTPUT_BYTES = 1 << 26


def dmc_compress(data: bytes, *, max_states: int = 1 << 16) -> bytes:
    """Compress ``data`` with DMC; 32-bit byte-length header."""
    if len(data) > MAX_OUTPUT_BYTES:
        raise KernelError(
            f"input exceeds the {MAX_OUTPUT_BYTES}-byte codec limit"
        )
    model = DMCModel(max_states=max_states)
    encoder = ArithmeticEncoder()
    for byte in data:
        for shift in range(7, -1, -1):
            bit = (byte >> shift) & 1
            encoder.encode(bit, model.p0())
            model.update(bit)
    header = BitWriter()
    header.write_bits(len(data), 32)
    return header.getvalue() + encoder.finish()


def dmc_decompress(payload: bytes, *, max_states: int = 1 << 16) -> bytes:
    """Inverse of :func:`dmc_compress` (same ``max_states`` required)."""
    if len(payload) < 4:
        raise KernelError("DMC payload too short for header")
    length = BitReader(payload[:4]).read_bits(32)
    if length > MAX_OUTPUT_BYTES:
        raise KernelError(
            f"corrupt DMC header: {length} bytes claimed (limit {MAX_OUTPUT_BYTES})"
        )
    model = DMCModel(max_states=max_states)
    decoder = ArithmeticDecoder(payload[4:])
    out = bytearray()
    for _ in range(length):
        byte = 0
        for _ in range(8):
            bit = decoder.decode(model.p0())
            model.update(bit)
            byte = (byte << 1) | bit
        out.append(byte)
    return bytes(out)
