"""The repo-specific AST lint: every rule fires where it should, stays
quiet where it should, scopes to the right directories, and honours
suppression comments."""

import textwrap

from repro.checks.lint import lint_paths, lint_source, parse_suppressions
from repro.checks.lint.rules import RULES_BY_ID, default_rules

SIM = "src/repro/sim/mod.py"
RUNTIME = "src/repro/runtime/mod.py"
CORE = "src/repro/core/mod.py"
ENERGY = "src/repro/machine/energy.py"
ELSEWHERE = "src/repro/analysis/mod.py"


def run_lint(source, path=SIM):
    return lint_source(textwrap.dedent(source), path, default_rules())


def rule_ids(source, path=SIM):
    return sorted({f.rule_id for f in run_lint(source, path)})


class TestUnseededRandomness:
    def test_global_draw_flagged(self):
        src = """
            import random
            def f():
                return random.random()
        """
        assert rule_ids(src) == ["EEWA001"]

    def test_from_import_alias_resolved(self):
        src = """
            from random import choice as pick
            def f(xs):
                return pick(xs)
        """
        assert rule_ids(src) == ["EEWA001"]

    def test_bare_random_constructor_flagged_seeded_allowed(self):
        src = """
            import random
            a = random.Random()
            b = random.Random(42)
        """
        findings = run_lint(src)
        assert len(findings) == 1 and findings[0].line == 3

    def test_numpy_global_state_flagged_default_rng_allowed(self):
        src = """
            import numpy as np
            x = np.random.rand(3)
            rng = np.random.default_rng(7)
        """
        findings = run_lint(src)
        assert [f.rule_id for f in findings] == ["EEWA001"]
        assert findings[0].line == 3

    def test_out_of_zone_not_flagged(self):
        src = """
            import random
            def f():
                return random.random()
        """
        assert rule_ids(src, path=ELSEWHERE) == []

    def test_instance_methods_not_flagged(self):
        src = """
            def f(streams):
                return streams.stream("victim").random()
        """
        assert rule_ids(src) == []


class TestWallClock:
    def test_time_calls_flagged(self):
        src = """
            import time
            t0 = time.perf_counter()
            t1 = time.time()
        """
        findings = run_lint(src, path=RUNTIME)
        assert [f.rule_id for f in findings] == ["EEWA002", "EEWA002"]

    def test_datetime_now_flagged(self):
        src = """
            from datetime import datetime
            stamp = datetime.now()
        """
        assert rule_ids(src) == ["EEWA002"]

    def test_out_of_zone_allowed(self):
        assert rule_ids("import time\nt = time.time()\n", path=ELSEWHERE) == []


class TestSetIterationOrder:
    def test_for_loop_over_set_literal(self):
        src = """
            for x in {1, 2, 3}:
                print(x)
        """
        assert rule_ids(src) == ["EEWA003"]

    def test_comprehension_over_set_call(self):
        src = """
            def f(xs):
                return [x + 1 for x in set(xs)]
        """
        assert rule_ids(src) == ["EEWA003"]

    def test_list_of_set_flagged(self):
        assert rule_ids("xs = list({1, 2})\n") == ["EEWA003"]

    def test_sorted_set_allowed(self):
        src = """
            def f(xs):
                for x in sorted(set(xs)):
                    print(x)
        """
        assert rule_ids(src) == []


class TestFloatEquality:
    def test_float_literal_equality_in_core(self):
        assert rule_ids("ok = x == 1.0\n", path=CORE) == ["EEWA004"]
        assert rule_ids("ok = 0.5 != y\n", path=ENERGY) == ["EEWA004"]

    def test_negated_literal_counts(self):
        assert rule_ids("ok = x == -1.0\n", path=CORE) == ["EEWA004"]

    def test_int_literal_allowed(self):
        assert rule_ids("ok = x == 1\n", path=CORE) == []

    def test_out_of_zone_allowed(self):
        assert rule_ids("ok = x == 1.0\n", path=SIM) == []


class TestMutableDefault:
    def test_literal_default_flagged_everywhere(self):
        src = """
            def f(a=[]):
                return a
        """
        assert rule_ids(src, path=ELSEWHERE) == ["EEWA005"]

    def test_constructor_default_flagged(self):
        src = """
            def f(*, a=dict()):
                return a
        """
        assert rule_ids(src, path=ELSEWHERE) == ["EEWA005"]

    def test_none_default_allowed(self):
        src = """
            def f(a=None, b=()):
                return a, b
        """
        assert rule_ids(src, path=ELSEWHERE) == []


class TestSilentExcept:
    def test_except_pass_flagged(self):
        src = """
            try:
                work()
            except ValueError:
                pass
        """
        assert rule_ids(src, path=ELSEWHERE) == ["EEWA006"]

    def test_except_ellipsis_flagged(self):
        src = """
            try:
                work()
            except Exception:
                ...
        """
        assert rule_ids(src, path=ELSEWHERE) == ["EEWA006"]

    def test_handled_exception_allowed(self):
        src = """
            try:
                work()
            except ValueError as exc:
                log(exc)
        """
        assert rule_ids(src, path=ELSEWHERE) == []


class TestSuppression:
    def test_targeted_suppression(self):
        src = """
            import random
            x = random.random()  # eewa: disable=EEWA001
        """
        assert rule_ids(src) == []

    def test_blanket_suppression(self):
        src = """
            import random
            x = random.random()  # eewa: disable
        """
        assert rule_ids(src) == []

    def test_wrong_id_does_not_suppress(self):
        src = """
            import random
            x = random.random()  # eewa: disable=EEWA002
        """
        assert rule_ids(src) == ["EEWA001"]

    def test_directive_inside_string_is_not_a_directive(self):
        src = """
            import random
            x = random.random()
            note = "# eewa: disable=EEWA001"
        """
        assert rule_ids(src) == ["EEWA001"]

    def test_parse_suppressions_maps_lines(self):
        src = "a = 1  # eewa: disable=EEWA004, EEWA005\nb = 2\n"
        assert parse_suppressions(src) == {1: {"EEWA004", "EEWA005"}}


class TestFramework:
    def test_syntax_error_reported_as_finding(self):
        findings = run_lint("def f(:\n", path=ELSEWHERE)
        assert len(findings) == 1 and findings[0].rule_id == "EEWA000"

    def test_findings_carry_anchor(self):
        findings = run_lint("import random\nx = random.random()\n")
        assert findings[0].anchor() == f"{SIM}:2:5"

    def test_rule_registry_ids_are_stable(self):
        assert sorted(RULES_BY_ID) == [
            "EEWA001", "EEWA002", "EEWA003", "EEWA004", "EEWA005", "EEWA006",
        ]

    def test_lint_paths_scopes_by_relative_path(self, tmp_path):
        zone = tmp_path / "repro" / "sim"
        zone.mkdir(parents=True)
        bad = zone / "mod.py"
        bad.write_text("import random\nx = random.random()\n")
        outside = tmp_path / "script.py"
        outside.write_text("import random\nx = random.random()\n")
        findings = lint_paths([tmp_path], root=tmp_path)
        assert [f.location for f in findings] == ["repro/sim/mod.py"]

    def test_clean_tree_is_clean(self):
        """The merged tree itself carries zero lint findings — the
        ``repro check --strict`` acceptance criterion, lint engine part."""
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        findings = lint_paths([repo / "src" / "repro"], root=repo)
        assert findings == [], [f"{f.anchor()} {f.message}" for f in findings]
