#!/usr/bin/env python3
"""Bring your own workload: schedule a custom task mix with EEWA.

Models a video-transcoding-style iterative pipeline — every batch (one
group of frames) spawns a few heavy motion-search tasks, a tray of
medium DCT/quantisation tasks and many small entropy-coding tasks — and
shows how to:

* describe it as a :class:`~repro.workloads.spec.WorkloadSpec`;
* inspect the CC table and k-tuple EEWA computes for it;
* compare schedulers on it.

Usage:
    python examples/custom_workload.py
"""

from __future__ import annotations

import numpy as np

from repro import CilkScheduler, EEWAScheduler, opteron_8380_machine, simulate
from repro.workloads import TaskClassSpec, WorkloadSpec, generate_program


def main() -> None:
    spec = WorkloadSpec(
        name="transcode",
        description="per-frame-group transcode pipeline",
        classes=(
            TaskClassSpec("motion_search", count=6, mean_seconds=34e-3),
            TaskClassSpec("dct_quant", count=24, mean_seconds=4.5e-3),
            TaskClassSpec("entropy_code", count=40, mean_seconds=1.2e-3),
        ),
    )
    machine = opteron_8380_machine()
    program = generate_program(spec, batches=12, seed=42)

    print(f"workload: {spec.name} — {spec.tasks_per_batch} tasks/batch, "
          f"{spec.work_per_batch*1e3:.0f} ms of F0-work per batch")
    print(f"rough utilisation at 16 cores: {spec.utilization(16):.0%}\n")

    eewa = EEWAScheduler()
    result = simulate(program, eewa, machine, seed=42)
    cilk = simulate(program, CilkScheduler(), machine, seed=42)

    # Look inside EEWA's first decision: the CC table and the chosen tuple.
    decision = eewa.decisions[0]
    table = decision.table
    print("CC table after the profiling batch "
          f"(T = {table.ideal_time*1e3:.1f} ms, rows = frequencies, "
          "columns = classes heaviest-first):")
    print("  classes:", table.class_names)
    with np.printoptions(precision=1, suppress=True):
        print(table.values)
    print(f"k-tuple (Algorithm 1): {decision.solution.assignment} "
          f"-> cores per class {tuple(round(c,1) for c in decision.solution.core_demand)}")
    hist = decision.plan.level_histogram(machine.r)
    print(f"c-group plan: cores per level {hist}\n")

    dt = 100 * (result.total_time / cilk.total_time - 1)
    de = 100 * (result.total_joules / cilk.total_joules - 1)
    print(f"cilk : {cilk.total_time*1e3:7.1f} ms  {cilk.total_joules:7.2f} J")
    print(f"eewa : {result.total_time*1e3:7.1f} ms  {result.total_joules:7.2f} J "
          f"(time {dt:+.1f}%, energy {de:+.1f}%)")


if __name__ == "__main__":
    main()
