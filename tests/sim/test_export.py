"""Tests for result/trace export."""

import csv
import io
import json

import pytest

from repro.core.eewa import EEWAScheduler
from repro.machine.topology import opteron_8380_machine
from repro.sim.engine import simulate
from repro.sim.export import (
    batches_to_csv,
    result_to_dict,
    result_to_json,
    tasks_to_csv,
    transitions_to_csv,
)
from repro.workloads.benchmarks import benchmark_program


@pytest.fixture(scope="module")
def result():
    machine = opteron_8380_machine()
    program = benchmark_program("MD5", batches=3, seed=4)
    return simulate(program, EEWAScheduler(), machine, seed=4)


class TestDictExport:
    def test_summary_fields(self, result):
        d = result_to_dict(result)
        assert d["policy"] == "eewa"
        assert d["machine"]["num_cores"] == 16
        assert len(d["machine"]["frequencies_hz"]) == 4
        assert d["total_time_s"] == pytest.approx(result.total_time)
        assert d["total_joules"] == pytest.approx(result.total_joules)
        assert d["tasks_executed"] == result.tasks_executed
        assert len(d["batches"]) == 3
        assert "tasks" not in d

    def test_tasks_included_on_request(self, result):
        d = result_to_dict(result, include_tasks=True)
        assert len(d["tasks"]) == result.tasks_executed
        task = d["tasks"][0]
        assert {"id", "function", "batch", "core", "level", "stolen"} <= set(task)

    def test_json_round_trips(self, result):
        d = json.loads(result_to_json(result, include_tasks=True))
        assert d["batches"][0]["level_histogram"] == [16, 0, 0, 0]

    def test_domains_exported(self):
        machine = opteron_8380_machine(per_socket_dvfs=True)
        program = benchmark_program("MD5", batches=2, seed=4)
        r = simulate(program, EEWAScheduler(), machine, seed=4)
        d = result_to_dict(r)
        assert d["machine"]["dvfs_domains"] == [
            [0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11], [12, 13, 14, 15],
        ]


class TestCsvExport:
    def _parse(self, text):
        return list(csv.reader(io.StringIO(text)))

    def test_batches_csv(self, result):
        rows = self._parse(batches_to_csv(result))
        assert rows[0][:4] == ["batch", "start_s", "duration_s", "tasks"]
        assert len(rows) == 1 + 3
        # Histogram columns sum to core count.
        assert sum(int(v) for v in rows[1][5:]) == 16

    def test_tasks_csv(self, result):
        rows = self._parse(tasks_to_csv(result))
        assert len(rows) == 1 + result.tasks_executed
        header = rows[0]
        assert "elapsed_s" in header
        for row in rows[1:]:
            assert float(row[header.index("elapsed_s")]) > 0

    def test_transitions_csv(self, result):
        rows = self._parse(transitions_to_csv(result))
        assert rows[0] == ["time_s", "core", "from_level", "to_level"]
        assert len(rows) > 1  # EEWA definitely retuned something
