"""Tests for c-group assembly and preference lists."""

import pytest

from repro.core.cc_table import cc_table_from_values
from repro.core.cgroups import build_cgroup_plan, uniform_plan
from repro.core.ktuple import search_ktuple
from repro.core.preference import preference_lists, preference_order
from repro.errors import SchedulingError, SearchError
from repro.machine.frequency import FrequencyScale, opteron_8380_scale

FIG3_VALUES = [
    [2, 3, 1, 1],
    [4, 6, 2, 2],
    [6, 9, 3, 3],
    [8, 12, 4, 4],
]


def fig3_plan(num_cores=16, leftover="slowest"):
    table = cc_table_from_values(FIG3_VALUES, opteron_8380_scale())
    solution = search_ktuple(table, num_cores)
    return build_cgroup_plan(solution, table, num_cores, leftover_policy=leftover)


class TestCGroupPlan:
    def test_fig3_layout(self):
        """(1,1,2,2) on 16 cores -> 10 cores at F1, 6 at F2, fastest first."""
        plan = fig3_plan()
        assert plan.level_histogram(4) == (0, 10, 6, 0)
        assert plan.num_groups == 2
        assert plan.groups[0].level == 1 and len(plan.groups[0]) == 10
        assert plan.groups[1].level == 2 and len(plan.groups[1]) == 6

    def test_class_to_group_follows_tuple(self):
        plan = fig3_plan()
        assert plan.class_to_group["TC0"] == 0
        assert plan.class_to_group["TC1"] == 0
        assert plan.class_to_group["TC2"] == 1
        assert plan.class_to_group["TC3"] == 1

    def test_core_ids_dense_and_consistent(self):
        plan = fig3_plan()
        all_ids = [cid for g in plan.groups for cid in g.core_ids]
        assert sorted(all_ids) == list(range(16))
        for g in plan.groups:
            for cid in g.core_ids:
                assert plan.group_of_core[cid] == g.index
                assert plan.core_levels[cid] == g.level

    @staticmethod
    def _slack_plan(leftover: str):
        """A one-class table whose best tuple leaves one core unclaimed:
        demand 7 at F2 on an 8-core machine (F3 would need 11)."""
        table = cc_table_from_values(
            [[3.0], [5.0], [7.0], [11.0]], opteron_8380_scale()
        )
        solution = search_ktuple(table, 8)
        assert solution.assignment == (2,)
        return build_cgroup_plan(solution, table, 8, leftover_policy=leftover)

    def test_leftover_parks_on_slowest(self):
        """Extra cores beyond the tuple demand go to F_{r-1} — the Fig. 8
        behaviour (majority of cores at the lowest frequency)."""
        plan = self._slack_plan("slowest")
        assert plan.level_histogram(4) == (0, 0, 7, 1)

    def test_leftover_policy_fastest(self):
        plan = self._slack_plan("fastest")
        assert plan.level_histogram(4) == (1, 0, 7, 0)

    def test_leftover_policy_join_slowest_group(self):
        plan = self._slack_plan("join_slowest_group")
        assert plan.level_histogram(4) == (0, 0, 8, 0)

    def test_unknown_leftover_policy_rejected(self):
        table = cc_table_from_values(FIG3_VALUES, opteron_8380_scale())
        solution = search_ktuple(table, 16)
        with pytest.raises(SearchError):
            build_cgroup_plan(solution, table, 16, leftover_policy="random")

    def test_rounding_overflow_merges_groups(self):
        """Three levels each demanding ~0.5 cores on a 2-core machine must
        merge rather than over-allocate."""
        scale = FrequencyScale((4.0e9, 2.0e9, 1.0e9))
        table = cc_table_from_values(
            [[0.4, 0.4, 0.4], [0.8, 0.8, 0.8], [1.6, 1.6, 1.6]], scale
        )
        solution = search_ktuple(table, 2)
        plan = build_cgroup_plan(solution, table, 2)
        assert sum(plan.level_histogram(3)) == 2

    def test_uniform_plan(self):
        plan = uniform_plan(4, level=0, class_names=("a", "b"))
        assert plan.level_histogram(2) == (4, 0)
        assert plan.num_groups == 1
        assert plan.class_to_group == {"a": 0, "b": 0}


class TestPreferenceLists:
    def test_paper_order(self):
        """{G_i, G_{i+1}, ..., G_{u-1}, G_{i-1}, ..., G_0} (Fig. 5)."""
        assert preference_order(0, 4) == (0, 1, 2, 3)
        assert preference_order(1, 4) == (1, 2, 3, 0)
        assert preference_order(2, 4) == (2, 3, 1, 0)
        assert preference_order(3, 4) == (3, 2, 1, 0)

    def test_own_group_always_first(self):
        for u in range(1, 8):
            for i in range(u):
                assert preference_order(i, u)[0] == i

    def test_weaker_before_stronger(self):
        order = preference_order(2, 6)
        weaker = [g for g in order if g > 2]
        stronger = [g for g in order if g < 2]
        assert order.index(weaker[-1]) < order.index(stronger[0])

    def test_stronger_nearest_first(self):
        order = preference_order(3, 5)
        stronger = [g for g in order if g < 3]
        assert stronger == [2, 1, 0]

    def test_permutation_property(self):
        for u in range(1, 10):
            for i in range(u):
                assert sorted(preference_order(i, u)) == list(range(u))

    def test_preference_lists_per_group(self):
        lists = preference_lists(3)
        assert len(lists) == 3
        assert lists[1] == (1, 2, 0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(SchedulingError):
            preference_order(0, 0)
        with pytest.raises(SchedulingError):
            preference_order(3, 3)
