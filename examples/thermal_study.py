#!/usr/bin/env python3
"""Thermal headroom: the side benefit the paper never measured.

Integrates a first-order RC thermal model over each core's recorded power
trace for SHA-1 under Cilk, Cilk-D and EEWA. EEWA's scaled-down cores run
tens of kelvin cooler — headroom that, on a thermally constrained machine,
is the difference between sustaining the fast cores' frequency and
throttling (the "heat dissipation problem" the paper's related work
motivates energy budgets with).

Usage:
    python examples/thermal_study.py [benchmark]
"""

from __future__ import annotations

import sys

from repro.analysis.thermal import ThermalParams
from repro.experiments.ext_thermal import run_thermal_study
from repro.experiments.report import bar_chart


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "SHA-1"

    study = run_thermal_study(benchmark=benchmark)
    print(study.table())

    print()
    print(
        bar_chart(
            [r.policy for r in study.rows],
            [r.mean_peak_c for r in study.rows],
            title="mean per-core peak temperature (C)",
            width=40,
            value_fmt="{:.1f}",
        )
    )

    cilk = study.row("cilk")
    eewa = study.row("eewa")
    print(
        f"\nEEWA's mean peak runs {cilk.mean_peak_c - eewa.mean_peak_c:.1f} C "
        f"cooler than Cilk's while using "
        f"{100*(1 - eewa.energy_joules/cilk.energy_joules):.1f}% less energy."
    )
    cool = min(cilk.socket_peaks_c) - min(eewa.socket_peaks_c)
    print(
        "Per socket (shared heatsink): Cilk heats all four sockets equally; "
        f"EEWA keeps only the fast socket hot — its coolest socket runs {cool:.0f} C "
        "cooler. Spreading the fast c-group across sockets (not in the paper) "
        "would convert that into throttle headroom on every sink."
    )

    # What if the chassis were worse at shedding heat? Tighten the model
    # until the all-fast baseline throttles and see who survives.
    hot_params = ThermalParams(r_th_k_per_w=2.6, tau_s=2.5, ambient_c=55.0,
                               throttle_c=95.0)
    hot = run_thermal_study(benchmark=benchmark, params=hot_params)
    print("\nSame workload in a constrained chassis "
          f"(R={hot_params.r_th_k_per_w} K/W, ambient {hot_params.ambient_c:.0f} C):")
    print(hot.table())
    if hot.row("cilk").throttle_seconds > 0 and hot.row("eewa").throttle_seconds == 0:
        print("\n-> the all-fast baseline would throttle; EEWA would not.")


if __name__ == "__main__":
    main()
