"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "BWC" in out and "SHA-1" in out
        assert "eewa" in out

    def test_run(self, capsys):
        assert main(["run", "MD5", "eewa", "--batches", "3", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "MD5 / eewa" in out
        assert "energy breakdown" in out

    def test_run_with_trace(self, capsys):
        assert main(
            ["run", "DMC", "cilk", "--batches", "2", "--trace"]
        ) == 0
        out = capsys.readouterr().out
        assert "batch   0" in out
        assert "batch   1" in out

    def test_run_small_machine(self, capsys):
        assert main(["run", "LZW", "cilk-d", "--batches", "2", "--cores", "4"]) == 0
        assert "4 cores" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "SHA-1", "--batches", "3"]) == 0
        out = capsys.readouterr().out
        for policy in ("cilk", "cilk-d", "eewa"):
            assert policy in out
        assert "E/cilk" in out

    def test_figure_fig1(self, capsys):
        assert main(["figure", "fig1"]) == 0
        assert "Fig. 1" in capsys.readouterr().out

    def test_figure_fig8(self, capsys):
        assert main(["figure", "fig8"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 8" in out and "2.5GHz" in out

    def test_figure_table3(self, capsys):
        assert main(["figure", "table3"]) == 0
        assert "Table III" in capsys.readouterr().out

    def test_calibrate(self, capsys):
        assert main(["calibrate", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "kernel stage costs" in out
        assert "bwt_block" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "SPECfp", "eewa"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
