"""Tests for convergence/stability analysis."""

import pytest

from repro.analysis.convergence import (
    batches_to_stable,
    compare_convergence,
    config_changes,
    convergence_summary,
    deadline_misses,
    duration_stability,
)
from repro.core.eewa import EEWAScheduler
from repro.machine.topology import opteron_8380_machine
from repro.runtime.cilk import CilkScheduler
from repro.sim.engine import simulate
from repro.workloads.benchmarks import benchmark_program


@pytest.fixture(scope="module")
def sha1_run():
    machine = opteron_8380_machine()
    program = benchmark_program("SHA-1", batches=10, seed=11)
    return simulate(program, EEWAScheduler(), machine, seed=11)


class TestConvergenceMetrics:
    def test_sha1_stabilises_at_batch_one(self, sha1_run):
        """Fig. 8: a single adjustment, stable ever after."""
        assert batches_to_stable(sha1_run) == 1
        assert config_changes(sha1_run) == 1

    def test_no_deadline_misses_on_sha1(self, sha1_run):
        assert deadline_misses(sha1_run, tolerance=0.10) == []

    def test_duration_stability_low(self, sha1_run):
        assert duration_stability(sha1_run) < 0.10

    def test_summary_composes(self, sha1_run):
        summary = convergence_summary(sha1_run)
        assert summary.converged
        assert summary.met_deadlines
        assert summary.stable_from_batch == 1
        assert summary.config_changes == 1

    def test_cilk_never_changes_config(self):
        machine = opteron_8380_machine()
        program = benchmark_program("SHA-1", batches=6, seed=11)
        result = simulate(program, CilkScheduler(), machine, seed=11)
        assert config_changes(result) == 0
        assert batches_to_stable(result) == 1

    def test_compare_convergence_keys(self, sha1_run):
        machine = opteron_8380_machine()
        program = benchmark_program("SHA-1", batches=4, seed=11)
        cilk = simulate(program, CilkScheduler(), machine, seed=11)
        summaries = compare_convergence([sha1_run, cilk])
        assert set(summaries) == {"eewa", "cilk"}

    def test_deadline_miss_detection(self):
        """A workload that grows mid-run must register misses."""
        from repro.runtime.task import TaskSpec, flat_batch

        machine = opteron_8380_machine()
        program = []
        for i in range(4):
            scale = 1.0 if i < 2 else 1.6  # workload jumps 60% at batch 2
            specs = [
                TaskSpec("w", cpu_cycles=scale * 0.02 * 2.5e9) for _ in range(32)
            ]
            program.append(flat_batch(i, specs))
        result = simulate(program, CilkScheduler(), machine, seed=3)
        misses = deadline_misses(result, tolerance=0.10)
        assert 2 in misses and 3 in misses
