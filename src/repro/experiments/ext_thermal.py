"""Extension experiment: thermal headroom under each scheduler.

Not a paper exhibit — the paper's related work motivates power management
with "the heat dissipation problem" but never measures temperature. With
the recorded per-core power traces and the RC thermal model
(:mod:`repro.analysis.thermal`) we can quantify the side benefit of EEWA's
lower frequencies: peak core temperatures drop by tens of kelvin, buying
headroom before a thermal throttle would engage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.thermal import ThermalParams, socket_thermal_report, thermal_report
from repro.experiments.report import format_table
from repro.machine.topology import MachineConfig
from repro.scenario.registry import baseline_policy_names
from repro.scenario.session import Session
from repro.scenario.spec import MachineSpec, ScenarioSpec


@dataclass(frozen=True)
class ThermalRow:
    policy: str
    peak_c: float
    mean_peak_c: float
    socket_peaks_c: tuple[float, ...]
    throttle_seconds: float
    energy_joules: float


@dataclass(frozen=True)
class ThermalStudyResult:
    benchmark: str
    params: ThermalParams
    rows: tuple[ThermalRow, ...]

    def table(self) -> str:
        return format_table(
            ["policy", "hottest core (C)", "mean peak (C)",
             "socket peaks (C)", "throttle (s)", "energy (J)"],
            [
                (
                    r.policy,
                    r.peak_c,
                    r.mean_peak_c,
                    " ".join(f"{p:.0f}" for p in r.socket_peaks_c),
                    r.throttle_seconds,
                    r.energy_joules,
                )
                for r in self.rows
            ],
            title=(
                f"Extension — thermal headroom, {self.benchmark} "
                f"(throttle {self.params.throttle_c:.0f} C)"
            ),
            float_fmt="{:.2f}",
        )

    def row(self, policy: str) -> ThermalRow:
        for r in self.rows:
            if r.policy == policy:
                return r
        raise KeyError(policy)


def run_thermal_study(
    *,
    benchmark: str = "SHA-1",
    batches: int | None = 30,
    machine: Optional[MachineConfig] = None,
    seed: int = 11,
    params: Optional[ThermalParams] = None,
    policies: Optional[Sequence[str]] = None,
) -> ThermalStudyResult:
    """Run ``benchmark`` under each policy and integrate the thermal model.

    Power-series recording bypasses the result cache (traces are
    observability extras the cache does not store), so this always
    simulates in-process via :meth:`Session.run_single`.
    """
    if policies is None:
        policies = baseline_policy_names()
    if params is None:
        params = ThermalParams()
    session = Session()
    machine_spec = (
        MachineSpec() if machine is None else MachineSpec.inline(machine)
    )
    rows = []
    for policy in policies:
        scenario = ScenarioSpec(
            workload=benchmark, policy=policy, machine=machine_spec,
            seeds=(seed,), batches=batches,
        )
        result = session.run_single(scenario, record_power_series=True)
        report = thermal_report(result, params)
        sockets = socket_thermal_report(result)
        peaks = [c.peak_c for c in report.cores]
        rows.append(
            ThermalRow(
                policy=policy,
                peak_c=report.peak_c,
                mean_peak_c=sum(peaks) / len(peaks),
                socket_peaks_c=tuple(c.peak_c for c in sockets.cores),
                throttle_seconds=report.total_throttle_seconds,
                energy_joules=result.total_joules,
            )
        )
    return ThermalStudyResult(benchmark=benchmark, params=params, rows=tuple(rows))
