"""Tests for workload spec serialisation."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.benchmarks import BENCHMARK_NAMES, benchmark_spec
from repro.workloads.io import load_spec, save_spec, spec_from_dict, spec_to_dict
from repro.workloads.spec import TaskClassSpec, WorkloadSpec
from repro.workloads.synthetic import phased_spec


class TestRoundTrip:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_benchmark_specs_round_trip(self, name):
        spec = benchmark_spec(name)
        back = spec_from_dict(spec_to_dict(spec))
        assert back == spec

    def test_phased_spec_round_trips_optional_fields(self):
        spec = phased_spec(amplitude=0.2, period=6)
        back = spec_from_dict(spec_to_dict(spec))
        assert back == spec
        cls = back.class_named("refine_pass")
        assert cls.phase_amplitude == 0.2
        assert cls.phase_period == 6

    def test_file_round_trip(self, tmp_path):
        spec = benchmark_spec("DMC")
        path = tmp_path / "dmc.json"
        save_spec(spec, path)
        assert load_spec(path) == spec

    def test_defaults_omitted_from_serialisation(self):
        spec = WorkloadSpec(
            name="t",
            classes=(TaskClassSpec("w", count=2, mean_seconds=0.01),),
        )
        entry = spec_to_dict(spec)["classes"][0]
        assert set(entry) == {"name", "count", "mean_ms"}

    def test_inexact_ms_falls_back_to_seconds(self):
        spec = WorkloadSpec(
            name="t",
            classes=(TaskClassSpec("w", count=2, mean_seconds=0.0021),),
        )
        entry = spec_to_dict(spec)["classes"][0]
        assert "mean_s" in entry and "mean_ms" not in entry

    def test_both_mean_fields_rejected(self):
        with pytest.raises(WorkloadError):
            spec_from_dict(
                {
                    "name": "x",
                    "classes": [
                        {"name": "a", "count": 1, "mean_ms": 1.0, "mean_s": 0.001}
                    ],
                }
            )


class TestValidation:
    def test_missing_fields_rejected(self):
        with pytest.raises(WorkloadError):
            spec_from_dict({"name": "x"})
        with pytest.raises(WorkloadError):
            spec_from_dict({"classes": []})

    def test_unknown_class_fields_rejected(self):
        with pytest.raises(WorkloadError, match="unknown class fields"):
            spec_from_dict(
                {
                    "name": "x",
                    "classes": [
                        {"name": "a", "count": 1, "mean_ms": 1.0, "priority": 3}
                    ],
                }
            )

    def test_invalid_class_values_rejected(self):
        with pytest.raises(WorkloadError):
            spec_from_dict(
                {"name": "x", "classes": [{"name": "a", "count": 0, "mean_ms": 1.0}]}
            )

    def test_bad_file_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(WorkloadError):
            load_spec(path)
        with pytest.raises(WorkloadError):
            load_spec(tmp_path / "missing.json")

    def test_non_object_rejected(self):
        with pytest.raises(WorkloadError):
            spec_from_dict([1, 2, 3])


class TestCliRunSpec:
    def test_cli_runs_saved_spec(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "sha1.json"
        save_spec(benchmark_spec("SHA-1"), path)
        assert main(["run-spec", str(path), "eewa", "--batches", "2"]) == 0
        out = capsys.readouterr().out
        assert "SHA-1 / eewa" in out
        assert "batch   1" in out
