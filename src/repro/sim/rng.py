"""Named, seeded random streams.

Every stochastic decision in the simulator (victim selection, workload
jitter) draws from a named stream derived deterministically from the run
seed, so two runs with the same seed produce byte-identical traces — the
property the reproducibility tests assert. Separate streams keep decisions
independent: adding a draw to one stream never perturbs another.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def derive_seed(root_seed: int, stream: str) -> int:
    """Stable 64-bit sub-seed for ``stream`` under ``root_seed``."""
    digest = hashlib.sha256(f"{root_seed}:{stream}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngStreams:
    """Lazy registry of named :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        rng = self._streams.get(name)
        if rng is None:
            if not name or not name.strip():
                raise ValueError(
                    f"stream name must be non-empty and non-whitespace, got {name!r}"
                )
            rng = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = rng
        return rng

    def spawn_child(self, name: str) -> "RngStreams":
        """Independent child registry rooted under ``name``.

        The child's root seed lives in a namespace (``spawn\\x1f``) disjoint
        from ordinary stream names, so ``streams.stream("x")`` and
        ``streams.spawn_child("x").stream("y")`` can never alias — a child
        can safely reuse any stream name its parent also uses.
        """
        if not name or not name.strip():
            raise ValueError(
                f"child name must be non-empty and non-whitespace, got {name!r}"
            )
        return RngStreams(derive_seed(self.root_seed, "spawn\x1f" + name))

    def state_fingerprint(self) -> str:
        """Digest of the root seed plus every stream's exact position.

        Two equal fingerprints mean every named stream will produce the
        same future draws — the property the engine's fast-forward relies
        on to prove a steady-state batch consumed zero (or replayable)
        randomness. ``random.Random.getstate()`` captures the full
        Mersenne-Twister position, so a single extra draw anywhere changes
        the digest.
        """
        hasher = hashlib.sha256()
        hasher.update(str(self.root_seed).encode())
        for name in sorted(self._streams):
            hasher.update(b"\x1f")
            hasher.update(name.encode())
            hasher.update(repr(self._streams[name].getstate()).encode())
        return hasher.hexdigest()

    def choice(self, name: str, options: Sequence[T]) -> T:
        if not options:
            raise ValueError(f"stream {name!r}: cannot choose from empty options")
        return self.stream(name).choice(options)

    def shuffled(self, name: str, options: Sequence[T]) -> list[T]:
        out = list(options)
        self.stream(name).shuffle(out)
        return out

    def uniform(self, name: str, low: float, high: float) -> float:
        return self.stream(name).uniform(low, high)

    def lognormal_factor(self, name: str, sigma: float) -> float:
        """Multiplicative jitter centred on 1.0 (used for workload variation)."""
        if sigma <= 0.0:
            return 1.0
        return self.stream(name).lognormvariate(0.0, sigma)
