"""The conformance harness applied to every shipped policy, and to a
deliberately broken one."""

from repro.core.eewa import EEWAScheduler
from repro.runtime.cilk import CilkScheduler
from repro.runtime.cilk_d import CilkDScheduler
from repro.runtime.conformance import check_policy
from repro.runtime.policy import RunTask, SchedulerPolicy, Wait
from repro.runtime.wats import WATSScheduler
from tests.checks.fixtures import (
    BadStealOrder,
    DoubleExecutes,
    OffLadderFrequency,
)


class TestShippedPolicies:
    def test_cilk_conforms(self):
        report = check_policy(CilkScheduler)
        assert report.ok, report.failures
        assert report.checks_run == 10
        # The fault-matrix check reports degradation per standard mix.
        from repro.faults.matrix import STANDARD_FAULT_MATRIX
        assert set(report.fault_degradation) == {
            name for name, _ in STANDARD_FAULT_MATRIX
        }

    def test_cilk_d_conforms(self):
        report = check_policy(CilkDScheduler)
        assert report.ok, report.failures

    def test_eewa_conforms(self):
        report = check_policy(EEWAScheduler)
        assert report.ok, report.failures

    def test_wats_conforms(self):
        report = check_policy(lambda: WATSScheduler([0, 0, 1, 2]))
        assert report.ok, report.failures


class TestBrokenPolicies:
    def test_task_dropping_policy_detected(self):
        class DropsTasks(SchedulerPolicy):
            """Loses every third task."""

            name = "drops-tasks"

            def on_batch_start(self, batch, tasks):
                self._tasks = [t for i, t in enumerate(tasks) if i % 3]

            def on_spawn(self, core_id, task):
                self._tasks.append(task)

            def next_action(self, core_id):
                if self._tasks:
                    return RunTask(self._tasks.pop())
                return Wait()

        report = check_policy(DropsTasks)
        assert not report.ok
        # Every execution-count check fails.
        assert any("balanced-batches" in f for f in report.failures)

    def test_serialising_policy_detected(self):
        class OnlyCoreZero(SchedulerPolicy):
            """Runs everything on core 0 — legal but grossly serial."""

            name = "core-zero-only"

            def on_batch_start(self, batch, tasks):
                self._tasks = list(tasks)

            def on_spawn(self, core_id, task):
                self._tasks.append(task)

            def next_action(self, core_id):
                if core_id == 0 and self._tasks:
                    return RunTask(self._tasks.pop())
                return Wait()

        report = check_policy(OnlyCoreZero)
        # Completes all work (not a correctness failure) but may trip the
        # serialisation bound; either way it must not crash the harness.
        assert report.checks_run == 10

    def test_spawnless_policy_with_flag(self):
        class NoSpawns(SchedulerPolicy):
            name = "no-spawns"

            def on_batch_start(self, batch, tasks):
                self._tasks = list(tasks)

            def next_action(self, core_id):
                if self._tasks:
                    return RunTask(self._tasks.pop())
                return Wait()

        assert not check_policy(NoSpawns).ok  # spawns check fails
        assert check_policy(NoSpawns, check_spawns=False).ok

    def test_off_ladder_frequency_detected(self):
        report = check_policy(OffLadderFrequency, check_spawns=False)
        assert not report.ok
        assert any(
            "raised ConfigurationError" in f and "out of range" in f
            for f in report.failures
        )

    def test_double_executor_passes_shallow_count_but_not_id_check(self):
        """DoubleExecutes keeps execution *counts* balanced; only the
        duplicate-id assertion (and, below, the deep trace) exposes it."""
        report = check_policy(DoubleExecutes)
        assert not report.ok
        assert any(
            "balanced-batches" in f and "duplicate task execution" in f
            for f in report.failures
        )


class TestDeepMode:
    def test_shallow_runs_ten_checks_deep_runs_eleven(self):
        shallow = check_policy(CilkScheduler)
        deep = check_policy(CilkScheduler, deep=True)
        assert shallow.checks_run == 10
        assert deep.checks_run == 11
        assert deep.ok, deep.failures

    def test_eewa_is_race_free_in_deep_mode(self):
        report = check_policy(EEWAScheduler, deep=True)
        assert report.ok, report.failures

    def test_deep_mode_catches_double_execution(self):
        report = check_policy(DoubleExecutes, deep=True)
        failures = [f for f in report.failures if f.startswith("race-detection")]
        assert failures
        assert "executed 2 times" in failures[0]

    def test_deep_mode_catches_bad_steal_order(self):
        report = check_policy(BadStealOrder, deep=True)
        failures = [f for f in report.failures if f.startswith("race-detection")]
        assert failures, report.failures
        assert "rob-the-weaker-first" in failures[0]
