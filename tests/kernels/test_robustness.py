"""Decoder robustness: corrupted payloads fail loudly, never hang or crash
with anything but :class:`~repro.errors.KernelError` (or produce garbage
output of bounded size — codecs without integrity checks cannot always
detect flips, but they must stay safe)."""

import random

import pytest

from repro.errors import KernelError
from repro.kernels.bwt import BWTResult, bwt_inverse
from repro.kernels.dmc import MAX_OUTPUT_BYTES, dmc_compress, dmc_decompress
from repro.kernels.lzw import lzw_compress, lzw_decompress
from repro.kernels.rle import rle_decode

PAYLOAD = b"reference payload for corruption testing " * 10


def flipped(data: bytes, seed: int, flips: int = 3) -> bytes:
    rng = random.Random(seed)
    out = bytearray(data)
    for _ in range(flips):
        i = rng.randrange(len(out))
        out[i] ^= 1 << rng.randrange(8)
    return bytes(out)


class TestLzwRobustness:
    def test_corrupt_payloads_never_crash_or_hang(self):
        clean = lzw_compress(PAYLOAD)
        for seed in range(60):
            try:
                out = lzw_decompress(flipped(clean, seed))
            except KernelError:
                continue
            # Undetected corruption: output must stay bounded.
            assert len(out) <= len(PAYLOAD) * 4

    def test_huge_count_header_rejected(self):
        clean = bytearray(lzw_compress(PAYLOAD))
        clean[0:4] = (0xFFFFFFF0).to_bytes(4, "big")
        with pytest.raises(KernelError):
            lzw_decompress(bytes(clean))

    def test_truncated_payload_rejected(self):
        clean = lzw_compress(PAYLOAD)
        with pytest.raises(KernelError):
            lzw_decompress(clean[: len(clean) // 2])


class TestDmcRobustness:
    def test_corrupt_payloads_never_crash_or_hang(self):
        clean = dmc_compress(PAYLOAD[:256])
        for seed in range(25):
            try:
                out = dmc_decompress(flipped(clean, seed))
            except KernelError:
                continue
            # The length header bounds the decode; the arithmetic decoder
            # zero-fills past the stream, so output length is exact.
            assert len(out) <= MAX_OUTPUT_BYTES

    def test_huge_length_header_rejected(self):
        clean = bytearray(dmc_compress(PAYLOAD[:64]))
        clean[0:4] = (MAX_OUTPUT_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(KernelError):
            dmc_decompress(bytes(clean))

    def test_oversized_input_rejected_symmetrically(self):
        # Guard exists on the compress side too (documented codec limit).
        class FakeBytes(bytes):
            def __len__(self):
                return MAX_OUTPUT_BYTES + 1

        with pytest.raises(KernelError):
            dmc_compress(FakeBytes())


class TestBwtRobustness:
    def test_bad_primary_index_rejected(self):
        with pytest.raises(KernelError):
            bwt_inverse(BWTResult(transformed=b"abc", primary_index=99))

    def test_non_permutation_detected_or_bounded(self):
        """A last column that is not a permutation either raises or produces
        output of the declared length — never an unbounded walk."""
        try:
            out = bwt_inverse(BWTResult(transformed=b"\x00" * 8, primary_index=3))
        except KernelError:
            return
        assert len(out) == 8


class TestRleRobustness:
    def test_truncated_run_detected(self):
        with pytest.raises(KernelError):
            rle_decode(b"aaaa")  # missing count byte

    def test_random_bytes_safe(self):
        rng = random.Random(1)
        for _ in range(40):
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 64)))
            try:
                out = rle_decode(blob)
            except KernelError:
                continue
            assert len(out) <= len(blob) * 260  # max expansion: 4+255 per run
