"""Task runtime: tasks, work-stealing pools, and scheduler policies."""

from repro.runtime.barrier import BatchBarrier
from repro.runtime.conformance import ConformanceReport, check_policy
from repro.runtime.cilk import CilkScheduler
from repro.runtime.cilk_d import CilkDScheduler
from repro.runtime.deque import WorkStealingDeque
from repro.runtime.grouped import GroupedStealingPolicy
from repro.runtime.policy import (
    Action,
    BatchAdjustment,
    PolicyStats,
    RunTask,
    RuntimeContext,
    SchedulerPolicy,
    SetFrequency,
    Wait,
)
from repro.runtime.pools import PoolGrid
from repro.runtime.task import Batch, Task, TaskFactory, TaskSpec, flat_batch
from repro.runtime.wats import WATSScheduler, allocate_classes_by_capacity, plan_from_levels

__all__ = [
    "Action",
    "ConformanceReport",
    "check_policy",
    "Batch",
    "BatchAdjustment",
    "BatchBarrier",
    "CilkDScheduler",
    "CilkScheduler",
    "GroupedStealingPolicy",
    "PolicyStats",
    "PoolGrid",
    "RunTask",
    "RuntimeContext",
    "SchedulerPolicy",
    "SetFrequency",
    "Task",
    "TaskFactory",
    "TaskSpec",
    "WATSScheduler",
    "Wait",
    "WorkStealingDeque",
    "allocate_classes_by_capacity",
    "flat_batch",
    "plan_from_levels",
]
