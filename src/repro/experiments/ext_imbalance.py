"""Extension experiment: savings as a function of workload imbalance.

Formalises the Fig. 3 discussion ("workload imbalance causes the
underutilization of the computational capacity of the cores ... this is
why EEWA can ... reduce energy consumption"): sweeping the number of heavy
anchor tasks per batch moves the machine from granularity-bound (lots of
slack) to saturated (none), and EEWA's savings track the slack almost
linearly until they hit zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.eewa import EEWAScheduler
from repro.experiments.report import format_table
from repro.machine.topology import MachineConfig, opteron_8380_machine
from repro.runtime.cilk import CilkScheduler
from repro.sim.engine import simulate
from repro.workloads.generators import generate_program
from repro.workloads.synthetic import imbalance_sweep_spec
from repro.workloads.validation import diagnose

DEFAULT_ANCHORS = (2, 4, 6, 8, 10, 12, 14)


@dataclass(frozen=True)
class ImbalancePoint:
    anchors: int
    utilization: float
    slack_cores: float
    energy_saving_pct: float
    time_change_pct: float
    modal_config: tuple[int, ...]


@dataclass(frozen=True)
class ImbalanceSweepResult:
    points: tuple[ImbalancePoint, ...]

    def table(self) -> str:
        return format_table(
            ["anchors", "util", "slack cores", "dE %", "dT %", "modal config"],
            [
                (
                    p.anchors,
                    f"{p.utilization:.0%}",
                    p.slack_cores,
                    -p.energy_saving_pct,
                    p.time_change_pct,
                    str(p.modal_config),
                )
                for p in self.points
            ],
            title="Extension — EEWA savings vs workload imbalance",
            float_fmt="{:.1f}",
        )

    def savings_monotone_in_slack(self) -> bool:
        """More slack must never yield less saving (within noise)."""
        ordered = sorted(self.points, key=lambda p: p.slack_cores)
        savings = [p.energy_saving_pct for p in ordered]
        return all(b >= a - 2.0 for a, b in zip(savings, savings[1:]))


def run_imbalance_sweep(
    *,
    anchors: Sequence[int] = DEFAULT_ANCHORS,
    machine: Optional[MachineConfig] = None,
    batches: int = 10,
    seed: int = 5,
) -> ImbalanceSweepResult:
    """Run the sweep and collect (slack -> savings) points."""
    if machine is None:
        machine = opteron_8380_machine()
    points = []
    for n in anchors:
        spec = imbalance_sweep_spec(n)
        d = diagnose(spec, machine.num_cores)
        program = generate_program(spec, batches=batches, seed=seed)
        cilk = simulate(program, CilkScheduler(), machine, seed=seed)
        eewa = simulate(program, EEWAScheduler(), machine, seed=seed)
        points.append(
            ImbalancePoint(
                anchors=n,
                utilization=d.utilization,
                slack_cores=d.slack_cores,
                energy_saving_pct=100.0 * (1 - eewa.total_joules / cilk.total_joules),
                time_change_pct=100.0 * (eewa.total_time / cilk.total_time - 1),
                modal_config=eewa.trace.modal_histogram() or (),
            )
        )
    return ImbalanceSweepResult(points=tuple(points))
