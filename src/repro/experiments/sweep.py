"""Persistent work-queue sweep engine.

:class:`SweepEngine` replaces the one-shot ``ProcessPoolExecutor`` fan-out
the exhibits used through PR 5 with the scheduling shape the ROADMAP's
sweep service needs — and that Berg/Dorsman/Harchol-Balter frame in
"Towards Optimality in Parallel Scheduling": many parallelizable jobs
arriving over time, one fixed worker pool, response time as the metric.
Four mechanisms carry the load:

* **priority work-queue** — submissions enter a heap keyed by
  ``(priority, arrival)``; lower priority values dispatch first, ties are
  FIFO. Queued cells can be *cancelled* before dispatch, and a bounded
  queue applies **backpressure**: past ``max_pending`` queued cells, a
  pooled submit blocks until the dispatcher drains, and an in-process
  submit pays for its own backlog by draining a chunk inline.
* **persistent warm workers** — one long-lived ``ProcessPoolExecutor``
  per engine, created lazily and reused across every ``run_cells`` /
  ``submit`` for the engine's lifetime. Workers pre-import the scenario
  registries, kernels, and the simulation engine once (the pool
  initializer), so spawn + import cost is amortized over the whole sweep
  instead of paid per call.
* **chunked dispatch** — cells are batched per IPC round-trip. The chunk
  size adapts to the observed per-cell simulation cost (an exponential
  moving average fed back from the workers): expensive cells ship one at
  a time for latency, cheap cells ship ``chunk_target_seconds`` worth at
  once so the pickling round-trip is amortized.
* **in-flight dedup + memo** — a submission whose ``cell_key`` matches a
  queued or running cell coalesces onto the same job (one simulation,
  many tickets); a submission matching an already-finished cell is served
  from a bounded in-memory memo of decoded cache payloads before the
  sharded on-disk :class:`~repro.experiments.parallel.ResultCache` is
  consulted at all.
* **analytic model tier** — with ``fidelity="auto"`` a cell inside the
  calibrated envelope (:func:`repro.model.bounds.classify_cell`) is
  served in O(1) by the analytic predictor instead of being queued at
  all; ``fidelity="model"`` forces the predictor wherever it is
  structurally expressible. Predictions carry
  ``CellOutcome.source == "model"`` and are cached under a
  model-versioned key (:func:`repro.model.predict.model_key`), so a
  simulation result is never shadowed — and a cached *sim* result for
  the same cell always wins over a fresh prediction.

Results stream: :meth:`SweepEngine.submit` returns a :class:`SweepTicket`
immediately, :meth:`SweepEngine.iter_cells` yields outcomes in submission
order as they resolve, and :meth:`SweepEngine.as_completed` yields them in
completion order. :meth:`SweepEngine.run_cells` keeps the classic
list-in-submission-order contract of ``ParallelRunner.run_cells``.

Determinism contract: the engine changes *where and when* cells run,
never *what* they compute — every simulation remains a pure seeded
function of its ``cell_key`` inputs, so results are bit-identical
in-process, pooled, chunked, or cached (gated by
``tests/experiments/test_sweep_golden.py`` over the golden cells).

With ``workers`` ≤ 1 the engine is fully synchronous and thread-free:
queued work executes lazily, in priority order, inside whichever caller
first waits on a ticket. This keeps single-CPU hosts and the test suite
deterministic while exercising the identical queue/chunk/dedup code
paths as the pooled mode.
"""

from __future__ import annotations

import heapq
import itertools
import os
import threading
import time
import warnings
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor
from concurrent.futures import wait as _futures_wait
from typing import Any, Iterator, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.parallel import (
    DEFAULT_CACHE_DIR,
    CellOutcome,
    CellSpec,
    ResultCache,
    SweepStats,
    _resolve_program,
    _simulate_cell,
    cell_key,
)
from repro.machine.topology import MachineConfig, opteron_8380_machine
from repro.model.bounds import classify_cell
from repro.model.predict import (
    MODEL_VERSION,
    decline_reason,
    model_key,
    predict_cell,
)
from repro.sim.engine import ENGINE_VERSION

#: Job lifecycle states.
_QUEUED, _DISPATCHED, _DONE, _CANCELLED = range(4)

#: Valid values of the engine's ``fidelity`` axis.
FIDELITIES = ("sim", "model", "auto")


def _warm_worker() -> None:
    """Pool initializer: pre-import the heavy modules once per worker.

    Importing the scenario registries pulls in every shipped policy,
    machine preset, and workload; the kernels package is the cost model's
    backing data. Paying this once per *worker* instead of once per
    *pickled callable invocation* is what makes the pool "warm".
    """
    import repro.kernels  # noqa: F401
    import repro.scenario.registry  # noqa: F401
    import repro.sim.engine  # noqa: F401
    import repro.workloads.benchmarks  # noqa: F401


def _simulate_chunk(
    argsets: Sequence[tuple],
) -> list[tuple[dict[str, Any], float]]:
    """Run a chunk of cells in one IPC round-trip.

    Returns ``(payload, seconds)`` per cell; the wall seconds feed the
    dispatcher's chunk-size estimator only and never enter a payload.
    """
    out: list[tuple[dict[str, Any], float]] = []
    for args in argsets:
        started = time.perf_counter()
        payload = _simulate_cell(*args)
        out.append((payload, time.perf_counter() - started))
    return out


class _Job:
    """One unique in-flight cell; many tickets may share it."""

    __slots__ = ("key", "args", "priority", "seq", "state", "tickets")

    def __init__(self, key: str, args: tuple, priority: int, seq: int) -> None:
        self.key = key
        self.args = args
        self.priority = priority
        self.seq = seq
        self.state = _QUEUED
        self.tickets: list[SweepTicket] = []


class SweepTicket:
    """Handle for one submitted cell: await, poll, or cancel it.

    Tickets coalesced onto one in-flight job each resolve to their own
    :class:`~repro.experiments.parallel.CellOutcome` (same result object,
    per-ticket spec). ``result()`` raises ``CancelledError`` for a
    successfully cancelled ticket.
    """

    __slots__ = ("spec", "key", "future", "_engine", "_job")

    def __init__(
        self,
        engine: "SweepEngine",
        spec: CellSpec,
        key: str,
        job: Optional[_Job] = None,
    ) -> None:
        self.spec = spec
        self.key = key
        self.future: Future = Future()
        self._engine = engine
        self._job = job

    def result(self, timeout: Optional[float] = None) -> CellOutcome:
        """Block until this cell resolves (driving the queue if in-process).

        ``timeout`` raises ``TimeoutError`` when exceeded. In-process the
        deadline is checked between chunks (a running chunk is never
        interrupted), so the wait can overshoot by one chunk's runtime;
        ``timeout=0`` is a pure non-blocking poll.
        """
        return self._engine._wait(self, timeout)

    def done(self) -> bool:
        return self.future.done()

    def cancelled(self) -> bool:
        return self.future.cancelled()

    def cancel(self) -> bool:
        """Cancel if still queued; ``False`` once dispatched or resolved."""
        return self._engine.cancel(self)


class SweepEngine:
    """Priority work-queue over a persistent warm worker pool.

    Parameters
    ----------
    machine:
        Default machine for cells that do not carry their own.
    workers:
        Worker process count; ``0``/``1`` runs in-process (synchronous,
        thread-free), ``None`` uses ``os.cpu_count()``.
    cache_dir:
        Sharded result-cache root; ``None`` disables the on-disk cache
        *and* the in-memory memo (every distinct cell then simulates).
    fast_forward:
        Engine steady-state fast-forward (part of every cell key).
    max_pending:
        Backpressure bound on queued-but-undispatched cells.
    chunk_target_seconds:
        Per-IPC-round-trip budget the adaptive chunk sizer aims for.
    max_chunk:
        Hard cap on cells per dispatch chunk.
    memo_entries:
        Size of the in-memory LRU of decoded cache payloads.
    fidelity:
        ``"sim"`` (default) simulates every cell; ``"auto"`` serves
        model-eligible cells from the analytic predictor and falls back
        to simulation outside the calibrated envelope; ``"model"``
        forces the predictor wherever it is structurally expressible
        (including cells the envelope does not vouch for).
    """

    def __init__(
        self,
        *,
        machine: Optional[MachineConfig] = None,
        workers: Optional[int] = None,
        cache_dir: str | os.PathLike[str] | None = DEFAULT_CACHE_DIR,
        fast_forward: bool = True,
        max_pending: int = 10_000,
        chunk_target_seconds: float = 0.25,
        max_chunk: int = 32,
        memo_entries: int = 1024,
        fidelity: str = "sim",
    ) -> None:
        if workers is not None and workers < 0:
            raise ConfigurationError("workers must be non-negative")
        if fidelity not in FIDELITIES:
            raise ConfigurationError(
                f"fidelity must be one of {FIDELITIES}, got {fidelity!r}"
            )
        if max_pending < 1:
            raise ConfigurationError("max_pending must be positive")
        if max_chunk < 1:
            raise ConfigurationError("max_chunk must be positive")
        self.machine = machine if machine is not None else opteron_8380_machine()
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.stats = SweepStats()
        self.fidelity = fidelity
        self._fast_forward = fast_forward
        self._max_pending = max_pending
        self._chunk_target = chunk_target_seconds
        self._max_chunk = max_chunk
        self._memo_entries = memo_entries
        self._pool_workers = workers if workers is not None else (os.cpu_count() or 1)
        self._pooled = self._pool_workers > 1

        self._lock = threading.RLock()
        self._not_full = threading.Condition(self._lock)
        self._work = threading.Condition(self._lock)
        self._heap: list[tuple[int, int, _Job]] = []
        self._queued = 0  # live queued (not dispatched/cancelled) jobs
        self._inflight: dict[str, _Job] = {}
        self._memo: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._seq = itertools.count()
        self._ema_cell_seconds: Optional[float] = None
        self._submit_gate = 0  # >0: a batch submit is enqueueing; hold dispatch
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_inflight = 0  # chunks currently at the pool
        self._dispatcher: Optional[threading.Thread] = None
        self._closed = False

    def configure(
        self,
        *,
        chunk_target_seconds: Optional[float] = None,
        max_pending: Optional[int] = None,
        max_chunk: Optional[int] = None,
    ) -> "SweepEngine":
        """Adjust queue/chunk tunables on a live engine; returns ``self``."""
        with self._lock:
            if chunk_target_seconds is not None:
                self._chunk_target = chunk_target_seconds
            if max_pending is not None:
                if max_pending < 1:
                    raise ConfigurationError("max_pending must be positive")
                self._max_pending = max_pending
            if max_chunk is not None:
                if max_chunk < 1:
                    raise ConfigurationError("max_chunk must be positive")
                self._max_chunk = max_chunk
        return self

    # -- submission ------------------------------------------------------

    def submit(
        self,
        spec: CellSpec,
        *,
        priority: int = 0,
        fidelity: Optional[str] = None,
    ) -> SweepTicket:
        """Enqueue one cell; returns immediately with a ticket.

        A submission coalesces onto an identical in-flight cell, resolves
        instantly from the memo/disk cache, or joins the priority queue.
        ``fidelity`` overrides the engine default for this one cell —
        consumers that need a full :class:`~repro.sim.engine.SimResult`
        (per-batch traces, task lists) pass ``"sim"`` to bypass the model
        tier regardless of the engine's setting.
        """
        if fidelity is not None and fidelity not in FIDELITIES:
            raise ConfigurationError(
                f"fidelity must be one of {FIDELITIES}, got {fidelity!r}"
            )
        cell_fidelity = fidelity if fidelity is not None else self.fidelity
        machine = spec.machine if spec.machine is not None else self.machine
        program = _resolve_program(spec)
        key = cell_key(
            program, spec.policy, machine, spec.seed,
            core_levels=spec.core_levels, eewa_config=spec.eewa_config,
            policy_params=spec.policy_params,
            fast_forward=self._fast_forward,
            faults=spec.faults,
        )
        with self._lock:
            if self._closed:
                raise RuntimeError("SweepEngine is closed")
            self.stats.cells += 1

            job = self._inflight.get(key)
            if job is not None:
                ticket = SweepTicket(self, spec, key, job)
                job.tickets.append(ticket)
                self.stats.deduplicated += 1
                return ticket

            payload = self._lookup_cached(key)
            if payload is not None:
                self.stats.cache_hits += 1
                ticket = SweepTicket(self, spec, key)
                ticket.future.set_result(
                    self._outcome(spec, key, payload, from_cache=True)
                )
                return ticket

            if cell_fidelity != "sim":
                ticket = self._model_ticket(
                    spec, key, program, machine, cell_fidelity
                )
                if ticket is not None:
                    return ticket

            self._apply_backpressure()
            args = (
                program, spec.policy, machine, spec.seed,
                spec.core_levels, spec.eewa_config, spec.policy_params,
                self._fast_forward, spec.faults,
            )
            job = _Job(key, args, priority, next(self._seq))
            ticket = SweepTicket(self, spec, key, job)
            job.tickets.append(ticket)
            self._inflight[key] = job
            heapq.heappush(self._heap, (priority, job.seq, job))
            self._queued += 1
            if self._pooled:
                self._ensure_dispatcher()
                self._work.notify()
            return ticket

    def submit_many(
        self,
        specs: Sequence[CellSpec],
        *,
        priority: int = 0,
        fidelity: Optional[str] = None,
    ) -> list[SweepTicket]:
        """Submit a batch atomically with respect to dispatch.

        The dispatcher holds off until the whole batch is enqueued, so
        duplicates *within* the batch coalesce — the accounting a grid
        sweep's dedup statistics rely on. One exception keeps batches
        bigger than ``max_pending`` from deadlocking against their own
        backpressure: at the bound the dispatcher drains even mid-batch.
        Duplicates still resolve to one simulation (a dispatched job
        coalesces until it completes, after which the memo serves it).
        ``fidelity`` overrides the engine default for the whole batch
        (the per-request axis the sweep service forwards).
        """
        with self._lock:
            self._submit_gate += 1
        try:
            return [
                self.submit(spec, priority=priority, fidelity=fidelity)
                for spec in specs
            ]
        finally:
            with self._lock:
                self._submit_gate -= 1
                self._work.notify_all()

    def cancel(self, ticket: SweepTicket) -> bool:
        """Cancel a queued ticket; its future moves to ``CancelledError``.

        Coalesced tickets cancel independently — the underlying cell is
        only withdrawn from the queue when its last ticket cancels. A
        dispatched or resolved ticket cannot be cancelled.
        """
        with self._lock:
            job = ticket._job
            if job is None or job.state != _QUEUED:
                return False
            if not ticket.future.cancel():
                return False
            self.stats.cancelled += 1
            job.tickets.remove(ticket)
            if not job.tickets:
                job.state = _CANCELLED  # heap entry is dropped lazily
                self._inflight.pop(job.key, None)
                self._queued -= 1
                self._not_full.notify_all()
            return True

    # -- retrieval -------------------------------------------------------

    def run_cells(self, specs: Sequence[CellSpec]) -> list[CellOutcome]:
        """All cells, results in submission order (the classic contract)."""
        tickets = self.submit_many(specs)
        return [ticket.result() for ticket in tickets]

    def iter_cells(
        self, specs: Sequence[CellSpec], *, priority: int = 0
    ) -> Iterator[CellOutcome]:
        """Generator over outcomes in *submission* order.

        Streaming: each outcome is yielded as soon as that cell (and every
        earlier one) has resolved, without barriering on the full grid.
        """
        tickets = self.submit_many(specs, priority=priority)
        for ticket in tickets:
            yield ticket.result()

    def as_completed(
        self, tickets: Sequence[SweepTicket], *, timeout: Optional[float] = None
    ) -> Iterator[SweepTicket]:
        """Yield tickets in *completion* order (cache hits first).

        Keyed by ticket identity, not by future: tickets coalesced onto
        one deduplicated cell share a future but are still yielded one
        each — exactly as many tickets come out as went in. ``timeout``
        bounds the *total* wait; when it expires a ``TimeoutError`` is
        raised with the already-yielded tickets consumed and the rest
        still pending (in-process, a chunk already running is never
        interrupted, so the deadline can overshoot by one chunk).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        pending = list(tickets)
        while pending:
            done_now = [t for t in pending if t.future.done()]
            if done_now:
                done_ids = {id(t) for t in done_now}
                pending = [t for t in pending if id(t) not in done_ids]
                yield from done_now
                continue
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"{len(pending)} of {len(tickets)} cells unresolved "
                    f"after {timeout} s"
                )
            if self._pooled:
                remaining = (
                    None if deadline is None
                    else max(0.0, deadline - time.monotonic())
                )
                _futures_wait(
                    {t.future for t in pending},
                    timeout=remaining,
                    return_when=FIRST_COMPLETED,
                )
            else:
                with self._lock:
                    if not self._run_one_chunk_locked():
                        # Nothing runnable is left; whatever remains must
                        # already be resolved (or cancelled) — drain it.
                        yield from pending
                        return

    # -- lifecycle -------------------------------------------------------

    #: Seconds :meth:`close` waits for the dispatcher thread to exit
    #: before declaring it wedged (class attribute so tests and embedders
    #: can tighten it per instance).
    dispatcher_join_seconds: float = 5.0

    def close(self, *, wait: bool = True) -> None:
        """Cancel queued work and shut the pool down (idempotent).

        A dispatcher thread that fails to join within
        :attr:`dispatcher_join_seconds` is reported with a
        ``RuntimeWarning`` instead of leaking silently — a wedged
        dispatcher means a pool round-trip never returned and the engine
        should not be trusted for reuse in this process.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for _, _, job in self._heap:
                if job.state != _QUEUED:
                    continue
                job.state = _CANCELLED
                self._inflight.pop(job.key, None)
                for ticket in job.tickets:
                    if ticket.future.cancel():
                        self.stats.cancelled += 1
            self._heap.clear()
            self._queued = 0
            self._work.notify_all()
            self._not_full.notify_all()
            pool, self._pool = self._pool, None
            dispatcher, self._dispatcher = self._dispatcher, None
        if dispatcher is not None:
            dispatcher.join(timeout=self.dispatcher_join_seconds)
            if dispatcher.is_alive():
                warnings.warn(
                    "SweepEngine dispatcher thread failed to join within "
                    f"{self.dispatcher_join_seconds:.1f} s and is leaked; "
                    "a pool round-trip is likely wedged",
                    RuntimeWarning,
                    stacklevel=2,
                )
        if pool is not None:
            pool.shutdown(wait=wait)

    def __enter__(self) -> "SweepEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- observability ---------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Cells queued but not yet dispatched."""
        with self._lock:
            return self._queued

    @property
    def chunk_size(self) -> int:
        """Cells the next dispatch round-trip would carry."""
        with self._lock:
            return self._chunk_size_locked()

    @property
    def max_pending(self) -> int:
        """Backpressure bound on queued-but-undispatched cells."""
        with self._lock:
            return self._max_pending

    @property
    def ema_cell_seconds(self) -> Optional[float]:
        """Smoothed observed per-cell simulation cost (``None`` until fed)."""
        with self._lock:
            return self._ema_cell_seconds

    # -- internals: model tier ------------------------------------------

    def _model_ticket(
        self,
        spec: CellSpec,
        key: str,
        program: tuple,
        machine: MachineConfig,
        fidelity: str,
    ) -> Optional[SweepTicket]:
        """Serve one cell from the analytic model, or ``None`` to simulate.

        Called with the lock held, after the in-flight and sim-cache
        checks — a cell that was ever *simulated* is therefore always
        served from its simulation result, never re-predicted. The model
        payload lives under :func:`~repro.model.predict.model_key` (the
        sim key never aliases it), versioned by ``MODEL_VERSION`` in both
        the key and the payload.
        """
        if fidelity == "auto":
            if not classify_cell(
                program, spec.policy, machine,
                core_levels=spec.core_levels, eewa_config=spec.eewa_config,
                policy_params=spec.policy_params, faults=spec.faults,
            ):
                return None
        elif decline_reason(
            program, spec.policy, machine,
            core_levels=spec.core_levels, eewa_config=spec.eewa_config,
            policy_params=spec.policy_params, faults=spec.faults,
        ) is not None:
            return None
        mkey = model_key(key)
        payload = self._lookup_cached(mkey)
        if payload is not None and payload.get("model_version") == MODEL_VERSION:
            self.stats.cache_hits += 1
            ticket = SweepTicket(self, spec, mkey)
            ticket.future.set_result(
                self._outcome(spec, mkey, payload, from_cache=True)
            )
            return ticket
        result = predict_cell(
            program, spec.policy, machine, spec.seed,
            core_levels=spec.core_levels, eewa_config=spec.eewa_config,
            policy_params=spec.policy_params, faults=spec.faults,
        )
        if result is None:
            return None
        payload = {
            "engine_version": ENGINE_VERSION,
            "model_version": MODEL_VERSION,
            "result": result,
            "adjuster_wallclock_s": 0.0,
            "adjuster_decisions": result.adjuster_decisions,
            "source": "model",
        }
        if self.cache is not None:
            self.cache.put(mkey, payload)
            self._memo_put(mkey, payload)
        self.stats.model_cells += 1
        ticket = SweepTicket(self, spec, mkey)
        ticket.future.set_result(
            self._outcome(spec, mkey, payload, from_cache=False)
        )
        return ticket

    # -- internals: cache/memo ------------------------------------------

    def _lookup_cached(self, key: str) -> Optional[dict[str, Any]]:
        if self.cache is None:
            return None
        payload = self._memo.get(key)
        if payload is not None:
            self._memo.move_to_end(key)
            self.stats.memo_hits += 1
            return payload
        payload = self.cache.get(key)
        if payload is not None:
            self._memo_put(key, payload)
        return payload

    def _memo_put(self, key: str, payload: dict[str, Any]) -> None:
        self._memo[key] = payload
        self._memo.move_to_end(key)
        while len(self._memo) > self._memo_entries:
            self._memo.popitem(last=False)

    @staticmethod
    def _outcome(
        spec: CellSpec, key: str, payload: dict[str, Any], *, from_cache: bool
    ) -> CellOutcome:
        return CellOutcome(
            spec=spec,
            key=key,
            result=payload["result"],
            from_cache=from_cache,
            adjuster_wallclock_s=payload["adjuster_wallclock_s"],
            adjuster_decisions=payload["adjuster_decisions"],
            source=payload.get("source", "sim"),
        )

    # -- internals: queue/backpressure ----------------------------------

    def _apply_backpressure(self) -> None:
        # Called with the lock held, before enqueueing a new job.
        while not self._closed and self._queued >= self._max_pending:
            if self._pooled:
                # Wake the dispatcher: once the queue is at the bound it
                # dispatches even while a batch submit holds the gate
                # (see _dispatch_loop) — that drain is what makes room
                # for this submit to proceed.
                self._work.notify()
                self._not_full.wait()
            else:
                # In-process there is no one else to drain the queue: the
                # submitter pays for its own backlog.
                if not self._run_one_chunk_locked():
                    break
        if self._closed:
            # close() raced us while we were parked above; enqueueing now
            # would create a job no dispatcher will ever resolve.
            raise RuntimeError("SweepEngine is closed")

    def _chunk_size_locked(self) -> int:
        ema = self._ema_cell_seconds
        if ema is None or ema <= 0:
            return 1  # no cost estimate yet: smallest chunk, fast feedback
        return max(1, min(self._max_chunk, int(self._chunk_target / ema)))

    def _pop_chunk_locked(self) -> list[_Job]:
        size = self._chunk_size_locked()
        chunk: list[_Job] = []
        while self._heap and len(chunk) < size:
            _, _, job = heapq.heappop(self._heap)
            if job.state != _QUEUED:
                continue  # cancelled entry, dropped lazily
            job.state = _DISPATCHED
            self._queued -= 1
            chunk.append(job)
        if chunk:
            self._not_full.notify_all()
        return chunk

    def _observe_cell_seconds(self, seconds: float) -> None:
        if seconds <= 0:
            return
        if self._ema_cell_seconds is None:
            self._ema_cell_seconds = seconds
        else:
            self._ema_cell_seconds = 0.7 * self._ema_cell_seconds + 0.3 * seconds

    def _complete_chunk(
        self,
        chunk: Sequence[_Job],
        results: Sequence[tuple[dict[str, Any], float]],
    ) -> None:
        # Called with the lock held.
        for job, (payload, seconds) in zip(chunk, results):
            self._observe_cell_seconds(seconds)
            self.stats.executed += 1
            if self.cache is not None:
                self.cache.put(job.key, payload)
                self._memo_put(job.key, payload)
            job.state = _DONE
            self._inflight.pop(job.key, None)
            for ticket in job.tickets:
                if not ticket.future.cancelled():
                    ticket.future.set_result(
                        self._outcome(
                            ticket.spec, job.key, payload, from_cache=False
                        )
                    )
        self.stats.chunks += 1

    def _fail_chunk(self, chunk: Sequence[_Job], exc: BaseException) -> None:
        # Called with the lock held.
        for job in chunk:
            job.state = _DONE
            self._inflight.pop(job.key, None)
            for ticket in job.tickets:
                if not ticket.future.cancelled():
                    ticket.future.set_exception(exc)

    # -- internals: in-process execution --------------------------------

    def _run_one_chunk_locked(self) -> bool:
        chunk = self._pop_chunk_locked()
        if not chunk:
            return False
        try:
            results = _simulate_chunk([job.args for job in chunk])
        except BaseException as exc:
            self._fail_chunk(chunk, exc)
            return True
        self._complete_chunk(chunk, results)
        return True

    def _wait(
        self, ticket: SweepTicket, timeout: Optional[float] = None
    ) -> CellOutcome:
        if not self._pooled:
            # In-process, queued work executes inside this call, so the
            # timeout is honoured *between* chunks: a chunk already
            # running is never interrupted, and a wait can overshoot the
            # deadline by up to one chunk's runtime.
            deadline = (
                None if timeout is None else time.monotonic() + timeout
            )
            with self._lock:
                while not ticket.future.done():
                    if deadline is not None and time.monotonic() >= deadline:
                        raise TimeoutError(
                            f"cell {ticket.key} unresolved after {timeout} s"
                        )
                    if not self._run_one_chunk_locked():
                        break  # cancelled, or resolved by another waiter
            if deadline is not None:
                timeout = max(0.0, deadline - time.monotonic())
        return ticket.future.result(timeout)

    # -- internals: pooled execution ------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self._pool_workers, initializer=_warm_worker
            )
        return self._pool

    def _ensure_dispatcher(self) -> None:
        if self._dispatcher is None:
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="sweep-dispatcher", daemon=True
            )
            self._dispatcher.start()

    def _dispatch_loop(self) -> None:
        max_inflight = 2 * self._pool_workers
        while True:
            with self._lock:
                # The submit gate holds dispatch only while the queue is
                # below the backpressure bound: a batch bigger than
                # max_pending parks its own submit on _not_full, so the
                # gate must yield there or batch and dispatcher deadlock
                # waiting on each other. Dispatched jobs stay in
                # _inflight until they resolve, so later duplicates in
                # the batch still coalesce.
                while not self._closed and (
                    self._queued == 0
                    or (
                        self._submit_gate > 0
                        and self._queued < self._max_pending
                    )
                    or self._pool_inflight >= max_inflight
                ):
                    self._work.wait(timeout=0.1)
                if self._closed:
                    return
                chunk = self._pop_chunk_locked()
                if not chunk:
                    continue
                self._pool_inflight += 1
                try:
                    pool = self._ensure_pool()
                    future = pool.submit(
                        _simulate_chunk, [job.args for job in chunk]
                    )
                except BaseException as exc:  # pool spawn/submit failure
                    self._pool_inflight -= 1
                    self._fail_chunk(chunk, exc)
                    continue
            future.add_done_callback(
                lambda f, chunk=chunk: self._on_chunk_done(chunk, f)
            )

    def _on_chunk_done(self, chunk: list[_Job], future: Future) -> None:
        with self._lock:
            self._pool_inflight -= 1
            try:
                results = future.result()
            except BaseException as exc:
                self._fail_chunk(chunk, exc)
            else:
                self._complete_chunk(chunk, results)
            self._work.notify_all()


__all__ = ["FIDELITIES", "SweepEngine", "SweepTicket"]
