"""Experiment runner: one call from (benchmark, policy, machine) to results.

Centralises policy construction and multi-seed averaging so every figure
module (fig6, fig7, ...) shares identical conventions: the *same* generated
program is fed to every policy being compared, and runs repeat over seeds
(the simulated stand-in for the paper's 100 repeated hardware runs).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.core.eewa import EEWAConfig, EEWAScheduler
from repro.experiments.outcome import RunOutcome, modal_levels_from_result
from repro.machine.topology import MachineConfig, opteron_8380_machine
from repro.runtime.policy import SchedulerPolicy
from repro.runtime.task import Batch
from repro.scenario.registry import POLICIES
from repro.scenario.spec import DEFAULT_SEEDS
from repro.sim.engine import simulate
from repro.workloads.benchmarks import benchmark_program

__all__ = [
    "DEFAULT_SEEDS",
    "PolicyFactory",
    "RunOutcome",
    "make_policy",
    "modal_eewa_levels",
    "modal_levels_from_result",
    "run_benchmark",
]

PolicyFactory = Callable[[], SchedulerPolicy]


def make_policy(
    name: str,
    *,
    core_levels: Optional[Sequence[int]] = None,
    eewa_config: Optional[EEWAConfig] = None,
) -> SchedulerPolicy:
    """Construct a scheduler policy by registry name.

    A thin compatibility wrapper over the policy registry
    (:data:`repro.scenario.registry.POLICIES`): ``core_levels`` applies to
    the fixed-configuration policies (``cilk`` on an asymmetric machine,
    ``wats``); ``eewa_config`` to ``eewa``. Legacy alias spellings
    (``cilk_d``) resolve with a deprecation warning.
    """
    return POLICIES.get(name).build(core_levels=core_levels, config=eewa_config)


def run_benchmark(
    benchmark: str,
    policy: str,
    *,
    machine: Optional[MachineConfig] = None,
    batches: int | None = None,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    core_levels: Optional[Sequence[int]] = None,
    eewa_config: Optional[EEWAConfig] = None,
    program_override: Optional[Sequence[Batch]] = None,
) -> RunOutcome:
    """Run ``benchmark`` under ``policy`` once per seed.

    Each seed regenerates the program (workload jitter/drift) *and* reseeds
    the scheduler's victim selection, so repetitions are genuinely
    independent — but for a fixed seed every policy sees the identical
    program, keeping comparisons paired.
    """
    if machine is None:
        machine = opteron_8380_machine()
    results = []
    for seed in seeds:
        if program_override is not None:
            program = program_override
        else:
            program = benchmark_program(benchmark, batches=batches, seed=seed)
        policy_obj = make_policy(
            policy, core_levels=core_levels, eewa_config=eewa_config
        )
        results.append(simulate(program, policy_obj, machine, seed=seed))
    return RunOutcome(benchmark=benchmark, policy=policy, results=tuple(results))


def modal_eewa_levels(
    benchmark: str,
    *,
    machine: Optional[MachineConfig] = None,
    batches: int | None = None,
    seed: int = DEFAULT_SEEDS[0],
    eewa_config: Optional[EEWAConfig] = None,
) -> list[int]:
    """The per-core level vector of EEWA's most-used configuration.

    Fig. 7 fixes the asymmetric machine to "the most often used frequency
    configurations in different batches of the benchmark"; this runs EEWA
    once and reads that configuration off the trace.
    """
    if machine is None:
        machine = opteron_8380_machine()
    program = benchmark_program(benchmark, batches=batches, seed=seed)
    result = simulate(
        program, EEWAScheduler(eewa_config), machine, seed=seed
    )
    return modal_levels_from_result(result, machine.num_cores, machine)
