"""Serve sweeps over HTTP and stream them back — the full service loop.

Launches ``repro serve`` as a subprocess on an ephemeral port, streams an
8-cell grid (2 benchmarks x 2 policies x 2 seeds) through
:class:`~repro.service.client.SweepServiceClient`, verifies every streamed
result is bit-identical to a local in-process run of the same grid, then
stops the server with SIGINT and checks it drains cleanly.

This doubles as the CI serve-smoke gate::

    PYTHONPATH=src python examples/serve_sweeps.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile

from repro.scenario.session import Session
from repro.scenario.spec import ScenarioSpec
from repro.service.client import SweepServiceClient
from repro.sim.export import result_to_dict

GRID = [
    {
        "schema": 3,
        "workload": workload,
        "policy": policy,
        "seeds": [11, 23],
        "batches": 3,
    }
    for workload in ("SHA-1", "MD5")
    for policy in ("cilk", "eewa")
]


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="serve-sweeps-") as tmp:
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--cache-dir", os.path.join(tmp, "cache"),
            ],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env={**os.environ, "PYTHONUNBUFFERED": "1"},
        )
        try:
            # The banner names the bound (ephemeral) port:
            #   serving sweeps on http://127.0.0.1:NNNNN (...)
            banner = server.stdout.readline().strip()
            url = banner.split(" on ", 1)[1].split(" ", 1)[0]
            print(f"server up at {url}")

            client = SweepServiceClient(url)
            cells, end = client.run(GRID)
            print(
                f"streamed {end['streamed']}/{end['cells']} cells "
                f"({end['from_cache']} from cache, sources {end['sources']})"
            )
            assert end["cells"] == 8 and len(cells) == 8

            # Bit-identity: the streamed payloads must equal a local run of
            # the same grid, field for field. JSON round-trips floats
            # exactly, so dict equality is the bit-level check.
            with Session(cache_dir=os.path.join(tmp, "local")) as session:
                specs = [ScenarioSpec.from_dict(s) for s in GRID]
                local = {
                    (o.spec.benchmark, o.spec.policy, o.spec.seed): o.result
                    for group in session.run_grid_detailed(specs)
                    for o in group
                }
            for frame in cells:
                key = (frame["benchmark"], frame["policy"], frame["seed"])
                expected = json.loads(json.dumps(result_to_dict(local[key])))
                assert frame["result"] == expected, f"cell {key} diverged"
            print("bit-identity: all 8 streamed cells equal the local run")

            stats = client.stats()
            assert stats["engine"]["cells"] >= 8
            assert stats["server"]["requests"] == 1
        finally:
            server.send_signal(signal.SIGINT)
            exit_code = server.wait(timeout=60)
            tail = server.stdout.read()
        assert exit_code == 0, f"server exited {exit_code}: {tail}"
        assert "server closed" in tail, f"no clean shutdown banner: {tail}"
        print("server drained and closed cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
