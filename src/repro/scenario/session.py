"""The Session facade: one entry point from a scenario to results.

Every consumer — the CLI commands, the ``fig*``/``table3`` exhibit
modules, and ad-hoc API use — runs simulations the same way::

    from repro.scenario import ScenarioSpec, PolicySpec, Session

    spec = ScenarioSpec(workload="SHA-1", policy=PolicySpec("eewa"))
    outcome = Session.from_spec(spec).run()          # RunOutcome over seeds

Sweeps go through :meth:`Session.run_grid`, which fans every (scenario ×
seed) cell through one :class:`~repro.experiments.parallel.ParallelRunner`
— since the sweep-engine refactor a persistent
:class:`~repro.experiments.sweep.SweepEngine` work-queue: deduplicated
in-flight, optionally cached on disk (sharded, with packed per-shard
indexes) and spread over a long-lived warm worker pool. Results are
bit-identical whether a session runs in-process, pooled, or from cache.
:meth:`Session.iter_grid_cells` streams per-cell outcomes as they
complete instead of barriering on the full grid; the engine itself is
reachable as :attr:`Session.engine` for priority/cancellation use.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional, Sequence

from repro.errors import ScenarioError
from repro.scenario.spec import DEFAULT_SEEDS, ScenarioSpec
from repro.sim.engine import SimResult, simulate

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.outcome import RunOutcome
    from repro.experiments.parallel import CellOutcome, SweepStats

#: The exhibit modules' shared on-disk cache default (mirrors
#: ``repro.experiments.parallel.DEFAULT_CACHE_DIR``; asserted in tests).
DEFAULT_CACHE_DIR = ".repro-cache"


def _parallel():
    # Imported lazily: repro.experiments.* modules import this module (the
    # exhibits are scenario grids), so a module-level import would be
    # circular through the experiments package __init__.
    from repro.experiments import parallel

    return parallel


class Session:
    """Runs scenarios; owns the cache/worker configuration.

    Parameters
    ----------
    spec:
        Optional bound scenario (see :meth:`from_spec`); grid methods
        accept explicit specs regardless.
    workers:
        Worker process count: ``0``/``1`` runs in-process (the default —
        deterministic and dependency-free), ``None`` uses the CPU count.
    cache_dir:
        On-disk result cache root; ``None`` (default) disables caching.
    fast_forward:
        Engine steady-state fast-forward (default on); ``False`` forces
        full event-by-event simulation of every cell.
    fidelity:
        ``"sim"`` (default) simulates every cell; ``"auto"`` serves
        model-eligible cells from the analytic predictor
        (:mod:`repro.model`) and simulates the rest; ``"model"`` forces
        the predictor wherever it is structurally expressible.
    """

    def __init__(
        self,
        spec: Optional[ScenarioSpec] = None,
        *,
        workers: Optional[int] = 0,
        cache_dir: str | os.PathLike[str] | None = None,
        fast_forward: bool = True,
        fidelity: str = "sim",
    ) -> None:
        self.spec = spec
        self._fast_forward = fast_forward
        self._runner = _parallel().ParallelRunner(
            workers=workers, cache_dir=cache_dir, fast_forward=fast_forward,
            fidelity=fidelity,
        )

    @classmethod
    def from_spec(
        cls,
        spec: ScenarioSpec,
        *,
        workers: Optional[int] = 0,
        cache_dir: str | os.PathLike[str] | None = None,
        fast_forward: bool = True,
        fidelity: str = "sim",
    ) -> "Session":
        """Bind ``spec``: ``Session.from_spec(spec).run()`` → RunOutcome."""
        return cls(
            spec, workers=workers, cache_dir=cache_dir,
            fast_forward=fast_forward, fidelity=fidelity,
        )

    @classmethod
    def for_experiment(
        cls,
        *,
        parallel: bool = False,
        workers: Optional[int] = None,
        cache_dir: str | os.PathLike[str] | None = None,
        fast_forward: bool = True,
        fidelity: str = "sim",
    ) -> "Session":
        """The exhibit modules' convention: serial and uncached by default;
        ``parallel=True`` fans out over processes with the shared on-disk
        cache."""
        if not parallel:
            return cls(
                workers=0, cache_dir=None, fast_forward=fast_forward,
                fidelity=fidelity,
            )
        return cls(
            workers=workers,
            cache_dir=cache_dir if cache_dir is not None else DEFAULT_CACHE_DIR,
            fast_forward=fast_forward,
            fidelity=fidelity,
        )

    # -- lifecycle -------------------------------------------------------

    @property
    def engine(self):
        """The session's :class:`~repro.experiments.sweep.SweepEngine`."""
        return self._runner.engine

    def close(self) -> None:
        """Shut down the engine's queue and worker pool (idempotent)."""
        self._runner.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- execution -------------------------------------------------------

    def _bound(self, spec: Optional[ScenarioSpec]) -> ScenarioSpec:
        resolved = spec if spec is not None else self.spec
        if resolved is None:
            raise ScenarioError(
                "no scenario bound to this session; pass one or use "
                "Session.from_spec"
            )
        return resolved

    def run(self, spec: Optional[ScenarioSpec] = None) -> RunOutcome:
        """Run one scenario over its seeds → a multi-seed RunOutcome."""
        (outcome,) = self.run_grid([self._bound(spec)])
        return outcome

    def run_detailed(
        self, spec: Optional[ScenarioSpec] = None
    ) -> list[CellOutcome]:
        """Like :meth:`run`, but per-seed CellOutcomes (cache provenance,
        adjuster wall-clock bookkeeping for Table III)."""
        (cells,) = self.run_grid_detailed([self._bound(spec)])
        return cells

    def run_grid(self, specs: Sequence[ScenarioSpec]) -> list[RunOutcome]:
        """Run many scenarios in one fan-out, one RunOutcome per spec."""
        from repro.experiments.outcome import RunOutcome

        return [
            RunOutcome(
                benchmark=spec.workload_name,
                policy=spec.policy.name,
                results=tuple(cell.result for cell in cells),
            )
            for spec, cells in zip(specs, self.run_grid_detailed(specs))
        ]

    def run_grid_detailed(
        self, specs: Sequence[ScenarioSpec]
    ) -> list[list[CellOutcome]]:
        """Run many scenarios in one fan-out, grouped per spec.

        All cells go through a single
        :meth:`~repro.experiments.parallel.ParallelRunner.run_cells` call,
        so identical cells across scenarios are simulated once and the
        process pool sees the whole sweep at once.
        """
        cell_spec = _parallel().CellSpec
        cells = []
        counts: list[int] = []
        for spec in specs:
            counts.append(len(spec.seeds))
            cells.extend(cell_spec.from_scenario(spec, seed) for seed in spec.seeds)
        outcomes = self._runner.run_cells(cells)
        grouped: list[list[CellOutcome]] = []
        pos = 0
        for count in counts:
            grouped.append(outcomes[pos : pos + count])
            pos += count
        return grouped

    def iter_grid_cells(self, specs: Sequence[ScenarioSpec]):
        """Stream ``(scenario, CellOutcome)`` pairs for a whole grid.

        All cells are submitted up front (one dedup/cache pass over the
        full grid, exactly like :meth:`run_grid`), then yielded in
        submission order as each resolves — no barrier on the grid.
        """
        cell_spec = _parallel().CellSpec
        owners: list[ScenarioSpec] = []
        cells = []
        for spec in specs:
            for seed in spec.seeds:
                owners.append(spec)
                cells.append(cell_spec.from_scenario(spec, seed))
        tickets = self.engine.submit_many(cells)
        for owner, ticket in zip(owners, tickets):
            yield owner, ticket.result()

    def run_single(
        self,
        spec: Optional[ScenarioSpec] = None,
        *,
        seed: Optional[int] = None,
        record_power_series: bool = False,
    ) -> SimResult:
        """One seed's full :class:`SimResult` (default: the first seed).

        ``record_power_series=True`` runs outside the runner/cache — power
        traces are observability extras the content-addressed cache does
        not store. Always simulates regardless of the session's
        ``fidelity``: a *full* result (per-batch trace) is the contract,
        and the analytic model does not produce one.
        """
        resolved = self._bound(spec)
        if seed is None:
            seed = resolved.seeds[0]
        if record_power_series:
            # fast_forward is passed for uniformity; the engine disables it
            # anyway when recording power series.
            return simulate(
                resolved.program(seed),
                resolved.build_policy(),
                resolved.build_machine(),
                seed=seed,
                record_power_series=True,
                fast_forward=self._fast_forward,
                faults=resolved.faults,
            )
        outcome = self.engine.submit(
            _parallel().CellSpec.from_scenario(resolved, seed), fidelity="sim"
        ).result()
        return outcome.result

    def modal_eewa_levels(
        self, spec: Optional[ScenarioSpec] = None, *, seed: Optional[int] = None
    ) -> list[int]:
        """Per-core level vector of EEWA's most-used configuration.

        Runs the scenario under EEWA for one seed (default
        ``DEFAULT_SEEDS[0]``, the Fig. 7 convention) and reads the modal
        configuration off the trace. Shares its cell — and any cache entry
        — with plain EEWA runs of the same scenario and seed.
        """
        resolved = self._bound(spec).with_policy("eewa")
        if seed is None:
            seed = DEFAULT_SEEDS[0]
        from repro.experiments.outcome import modal_levels_from_result

        result = self.run_single(resolved, seed=seed)
        machine = resolved.build_machine()
        return modal_levels_from_result(result, machine.num_cores, machine)

    # -- bookkeeping -----------------------------------------------------

    @property
    def stats(self) -> SweepStats:
        """Cumulative cell accounting (executed / cache hits / deduped)."""
        return self._runner.stats


def run_grid(
    specs: Sequence[ScenarioSpec],
    *,
    workers: Optional[int] = 0,
    cache_dir: str | os.PathLike[str] | None = None,
) -> list[RunOutcome]:
    """One-shot sweep: ``Session(...).run_grid(specs)``."""
    return Session(workers=workers, cache_dir=cache_dir).run_grid(specs)


__all__ = ["Session", "run_grid"]
