"""Workload specifications and deterministic batch generators."""

from repro.workloads.benchmarks import (
    BENCHMARK_NAMES,
    benchmark_program,
    benchmark_spec,
    bwc_spec,
    bzip2_spec,
    dmc_spec,
    je_spec,
    lzw_spec,
    md5_spec,
    memory_bound_spec,
    sha1_spec,
)
from repro.workloads.generators import (
    DEFAULT_REF_FREQUENCY,
    generate_program,
    program_total_work,
)
from repro.workloads.spec import TaskClassSpec, WorkloadSpec, scaled
from repro.workloads.synthetic import (
    fig1_program,
    imbalance_sweep_spec,
    phased_spec,
    uniform_spec,
)
from repro.workloads.io import load_spec, save_spec, spec_from_dict, spec_to_dict
from repro.workloads.validation import (
    ClassDiagnostics,
    WorkloadDiagnostics,
    diagnose,
)

__all__ = [
    "BENCHMARK_NAMES",
    "ClassDiagnostics",
    "WorkloadDiagnostics",
    "diagnose",
    "load_spec",
    "save_spec",
    "spec_from_dict",
    "spec_to_dict",
    "phased_spec",
    "DEFAULT_REF_FREQUENCY",
    "TaskClassSpec",
    "WorkloadSpec",
    "benchmark_program",
    "benchmark_spec",
    "bwc_spec",
    "bzip2_spec",
    "dmc_spec",
    "fig1_program",
    "generate_program",
    "imbalance_sweep_spec",
    "je_spec",
    "lzw_spec",
    "md5_spec",
    "memory_bound_spec",
    "program_total_work",
    "scaled",
    "sha1_spec",
    "uniform_spec",
]
