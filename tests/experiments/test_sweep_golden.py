"""Bit-identity gate for the sweep engine.

Every golden cell — the 30 jittered-benchmark cells pinned in
``tests/sim/golden_hashes.json`` and the 8 long-horizon periodic cells in
``tests/sim/golden_longhorizon.json`` — must hash identically when run
through the :class:`~repro.experiments.sweep.SweepEngine`, both **cold**
(simulated via the queue/chunk path) and **warm** (served from the packed
on-disk cache by a second engine). The engine is allowed to change where
and when cells run, never what they compute.
"""

import json
import pathlib
import sys

import pytest

from repro.core.eewa import EEWAConfig
from repro.experiments.parallel import CellSpec, ResultCache
from repro.experiments.sweep import SweepEngine
from repro.sim.fingerprint import trace_fingerprint

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "sim"))
import golden_gen  # noqa: E402
import golden_longhorizon_gen as longhorizon_gen  # noqa: E402

GOLDEN = json.loads(golden_gen.FIXTURE.read_text())
LONGHORIZON = json.loads(longhorizon_gen.FIXTURE.read_text())


def golden_cells():
    """The 30 golden cells as (CellSpec, pinned fixture entry) pairs."""
    spawn = tuple(golden_gen.spawn_program())
    pairs = []
    for benchmark, policy, seed in golden_gen.cells():
        spec = CellSpec(
            benchmark=benchmark,
            policy=policy,
            seed=seed,
            batches=(
                None if benchmark == "spawn-tree" else golden_gen.GOLDEN_BATCHES
            ),
            core_levels=(
                tuple(golden_gen.WATS_LEVELS_16) if policy == "wats" else None
            ),
            program=spawn if benchmark == "spawn-tree" else None,
        )
        pairs.append((spec, GOLDEN[f"{benchmark}/{policy}/seed{seed}"]))
    return pairs


def longhorizon_cells():
    """The 8 long-horizon cells as (CellSpec, pinned fixture entry) pairs."""
    program = tuple(
        longhorizon_gen.periodic_program(longhorizon_gen.BATCHES, 4, 8)
    )
    machine = longhorizon_gen.dyadic_test_machine(num_cores=8)
    pairs = []
    for policy, seed in longhorizon_gen.cells():
        spec = CellSpec(
            benchmark="periodic-120",
            policy=policy,
            seed=seed,
            program=program,
            machine=machine,
            core_levels=(
                tuple(longhorizon_gen.WATS_LEVELS_8)
                if policy == "wats" else None
            ),
            eewa_config=(
                EEWAConfig(overhead_model=longhorizon_gen.DYADIC_OVERHEAD)
                if policy == "eewa" else None
            ),
        )
        pairs.append((spec, LONGHORIZON[f"{policy}/seed{seed}"]))
    return pairs


def _assert_matches_fixture(outcomes, pairs):
    for outcome, (spec, want) in zip(outcomes, pairs):
        label = (spec.benchmark, spec.policy, spec.seed)
        # Scalars first for a readable diff; the fingerprint covers the
        # complete observable trace.
        assert outcome.result.total_time == want["total_time"], label
        assert outcome.result.total_joules == want["total_joules"], label
        assert trace_fingerprint(outcome.result) == want["fingerprint"], label
        if "batches_fast_forwarded" in want:
            assert (
                outcome.result.batches_fast_forwarded
                == want["batches_fast_forwarded"]
            ), label


@pytest.mark.parametrize(
    "cells", [golden_cells, longhorizon_cells], ids=["golden", "longhorizon"]
)
def test_sweep_engine_bit_identical_cold_and_warm(cells, tmp_path):
    pairs = cells()
    specs = [spec for spec, _ in pairs]
    cache_dir = tmp_path / "cache"

    # Cold: every cell simulates through the queue/chunk/dedup path.
    with SweepEngine(workers=0, cache_dir=cache_dir) as engine:
        cold = engine.run_cells(specs)
        assert engine.stats.executed == len(specs)  # all distinct
    _assert_matches_fixture(cold, pairs)

    # Warm: a fresh engine over the *packed* cache must serve every cell
    # without simulating anything — and still hash identically.
    ResultCache(cache_dir).compact()
    with SweepEngine(workers=0, cache_dir=cache_dir) as engine:
        warm = engine.run_cells(specs)
        assert engine.stats.executed == 0
        assert engine.stats.cache_hits == len(specs)
    _assert_matches_fixture(warm, pairs)
