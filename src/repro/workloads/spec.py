"""Workload specifications.

A :class:`WorkloadSpec` describes an iteration-based parallel application
the way the paper's benchmarks behave: every batch launches a fixed mix of
task classes; per-task execution times jitter around the class mean; class
means drift slowly across batches ("the workloads of tasks may change
slightly in different iterations", Section II-A) — the drift is what the
preference-based stealing has to absorb and what makes frozen plans stale.

Task costs are expressed in seconds *on the fastest core* (``F_0``); the
generator converts them to cycles with the reference frequency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class TaskClassSpec:
    """One task class of a workload.

    Parameters
    ----------
    name:
        Function name (the class identity the profiler groups by).
    count:
        Tasks of this class per batch.
    mean_seconds:
        Mean execution time at ``F_0``, in seconds.
    jitter_sigma:
        Lognormal sigma of per-task variation within a batch.
    drift_sigma:
        Lognormal sigma of the class mean's random walk across batches.
    miss_intensity:
        Simulated cache misses per retired instruction (drives the
        Section IV-D memory-bound classifier).
    mem_stall_fraction:
        Fraction of the task's time that is frequency-*independent* memory
        stall (0 for the CPU-bound Table II benchmarks).
    phase_amplitude, phase_period:
        Slow sinusoidal modulation of the class's per-batch task count:
        ``count_b = round(count * (1 + A * sin(2*pi*b/P)))``. Real iterative
        programs process phases of differing composition — this is why the
        paper's Fig. 8 configurations differ between batches, and why a
        *fixed* asymmetric configuration (WATS in Fig. 7) loses to EEWA's
        per-batch re-adjustment. Amplitude 0 disables phases.
    """

    name: str
    count: int
    mean_seconds: float
    jitter_sigma: float = 0.08
    drift_sigma: float = 0.02
    miss_intensity: float = 0.001
    mem_stall_fraction: float = 0.0
    phase_amplitude: float = 0.0
    phase_period: int = 5

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("task class needs a name")
        if self.count < 1:
            raise WorkloadError(f"class {self.name}: count must be >= 1")
        if self.mean_seconds <= 0:
            raise WorkloadError(f"class {self.name}: mean_seconds must be positive")
        if self.jitter_sigma < 0 or self.drift_sigma < 0:
            raise WorkloadError(f"class {self.name}: sigmas must be non-negative")
        if not 0 <= self.mem_stall_fraction < 1:
            raise WorkloadError(
                f"class {self.name}: mem_stall_fraction must be in [0, 1)"
            )
        if self.miss_intensity < 0:
            raise WorkloadError(f"class {self.name}: miss_intensity must be >= 0")
        if not 0 <= self.phase_amplitude < 1:
            raise WorkloadError(
                f"class {self.name}: phase_amplitude must be in [0, 1)"
            )
        if self.phase_period < 1:
            raise WorkloadError(f"class {self.name}: phase_period must be >= 1")

    def count_in_batch(self, batch_index: int) -> int:
        """Task count for one batch, after phase modulation (>= 1)."""
        if self.phase_amplitude == 0.0:
            return self.count
        import math

        factor = 1.0 + self.phase_amplitude * math.sin(
            2.0 * math.pi * batch_index / self.phase_period
        )
        return max(1, round(self.count * factor))

    @property
    def total_seconds(self) -> float:
        """Aggregate per-batch work of this class at ``F_0``."""
        return self.count * self.mean_seconds


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete iteration-based application description."""

    name: str
    classes: tuple[TaskClassSpec, ...]
    default_batches: int = 12
    description: str = ""

    def __post_init__(self) -> None:
        if not self.classes:
            raise WorkloadError(f"workload {self.name} has no task classes")
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise WorkloadError(f"workload {self.name} has duplicate class names")
        if self.default_batches < 1:
            raise WorkloadError("default_batches must be >= 1")

    @property
    def tasks_per_batch(self) -> int:
        return sum(c.count for c in self.classes)

    @property
    def work_per_batch(self) -> float:
        """Total per-batch work in seconds at ``F_0``."""
        return sum(c.total_seconds for c in self.classes)

    def utilization(self, num_cores: int) -> float:
        """Rough fraction of machine capacity the batch needs, assuming the
        iteration time is bound by the longest class task.

        This is the knob the benchmark calibration turns: low utilisation is
        the slack EEWA converts into energy savings (Fig. 3 discussion).
        """
        longest = max(c.mean_seconds for c in self.classes)
        return self.work_per_batch / (num_cores * longest)

    def class_named(self, name: str) -> TaskClassSpec:
        for c in self.classes:
            if c.name == name:
                return c
        raise WorkloadError(f"workload {self.name} has no class {name!r}")


def scaled(spec: WorkloadSpec, factor: float, *, name: str | None = None) -> WorkloadSpec:
    """Scale every class mean by ``factor`` (bigger/smaller problem sizes)."""
    if factor <= 0:
        raise WorkloadError("scale factor must be positive")
    return WorkloadSpec(
        name=name or f"{spec.name}x{factor:g}",
        classes=tuple(
            TaskClassSpec(
                name=c.name,
                count=c.count,
                mean_seconds=c.mean_seconds * factor,
                jitter_sigma=c.jitter_sigma,
                drift_sigma=c.drift_sigma,
                miss_intensity=c.miss_intensity,
                mem_stall_fraction=c.mem_stall_fraction,
                phase_amplitude=c.phase_amplitude,
                phase_period=c.phase_period,
            )
            for c in spec.classes
        ),
        default_batches=spec.default_batches,
        description=spec.description,
    )
