"""Public API surface: the names downstream code may rely on.

This is a stability snapshot — removing or renaming anything here is a
breaking change and must be deliberate.
"""

import repro
import repro.analysis
import repro.core
import repro.experiments
import repro.kernels
import repro.machine
import repro.runtime
import repro.scenario
import repro.service
import repro.sim
import repro.workloads

TOP_LEVEL = {
    "Batch", "CilkDScheduler", "CilkScheduler", "EEWAConfig", "EEWAScheduler",
    "FrequencyScale", "MachineConfig", "SimResult", "Simulator", "TaskSpec",
    "WATSScheduler", "flat_batch", "opteron_8380_machine", "simulate",
    "small_test_machine",
}

CORE = {
    "CCTable", "EEWAConfig", "EEWAScheduler", "KTupleSolution",
    "MemoryBoundMode", "OnlineProfiler", "WorkloadAwareFrequencyAdjuster",
    "build_cc_table", "build_cgroup_plan", "exhaustive_search",
    "preference_order", "search_ktuple",
}

RUNTIME = {
    "CilkDScheduler", "CilkScheduler", "GroupedStealingPolicy", "PoolGrid",
    "RunTask", "SchedulerPolicy", "SetFrequency", "WATSScheduler", "Wait",
    "WorkStealingDeque", "check_policy",
}

KERNELS = {
    "bwc_compress", "bwc_decompress", "bwt_forward", "bwt_inverse",
    "bzip2_compress", "bzip2_decompress", "dmc_compress", "dmc_decompress",
    "jpeg_decode", "jpeg_encode", "lzw_compress", "lzw_decompress",
    "md5_hexdigest", "sha1_hexdigest",
}

WORKLOADS = {
    "BENCHMARK_NAMES", "TaskClassSpec", "WorkloadSpec", "benchmark_program",
    "benchmark_spec", "diagnose", "generate_program", "load_spec",
    "save_spec",
}

EXPERIMENTS = {
    "run_fig6", "run_fig7", "run_fig8", "run_fig9", "run_table3",
    "format_table", "bar_chart", "frequency_timeline",
    "CellOutcome", "CellSpec", "ParallelRunner", "ResultCache",
    "SweepEngine", "SweepStats", "SweepTicket",
}

ANALYSIS = {
    "aggregate", "energy_reduction_percent", "normalized_energy",
    "normalized_time", "thermal_report", "socket_thermal_report",
}

SIM = {"SimResult", "Simulator", "simulate", "result_to_json", "batches_to_csv"}

SCENARIO = {
    "MACHINES", "MachineSpec", "POLICIES", "PolicySpec",
    "SCENARIO_SCHEMA_VERSION", "ScenarioSpec", "Session", "WORKLOADS",
    "baseline_policy_names", "register_machine", "register_policy",
    "register_workload", "run_grid", "spread_levels", "workload_names",
}

SERVICE = {
    "PROTOCOL_VERSION", "ServiceError", "SweepRequest", "SweepServer",
    "SweepServiceClient", "decode_frame", "encode_frame",
    "parse_sweep_request", "serve",
}


def _check(module, names):
    exported = set(module.__all__)
    missing = names - exported
    assert not missing, f"{module.__name__} lost exports: {sorted(missing)}"
    for name in names:
        assert hasattr(module, name), f"{module.__name__}.{name} not importable"


def test_top_level_surface():
    _check(repro, TOP_LEVEL)


def test_core_surface():
    _check(repro.core, CORE)


def test_runtime_surface():
    _check(repro.runtime, RUNTIME)


def test_kernels_surface():
    _check(repro.kernels, KERNELS)


def test_workloads_surface():
    _check(repro.workloads, WORKLOADS)


def test_experiments_surface():
    _check(repro.experiments, EXPERIMENTS)


def test_analysis_surface():
    _check(repro.analysis, ANALYSIS)


def test_sim_surface():
    _check(repro.sim, SIM)


def test_scenario_surface():
    _check(repro.scenario, SCENARIO)


def test_service_surface():
    _check(repro.service, SERVICE)


def test_version_string():
    assert repro.__version__.count(".") == 2
