"""Memory-boundness detection and fallback — Section IV-D.

The CC table's frequency scaling (``CC[j][i] = (F_0/F_j) * CC[0][i]``)
assumes execution time is inversely proportional to frequency, which holds
only for CPU-bound tasks. The paper's runtime check: while profiling the
first batch it also reads cache-miss and retired-instruction counters; a
task whose miss intensity exceeds a threshold is memory-bound, and "if most
tasks of an application are memory-bound, the application is regarded as
memory-bound by EEWA" — in which case EEWA "simply adopts the traditional
work-stealing for the rest of the batches".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.profiler import DEFAULT_MISS_THRESHOLD, OnlineProfiler
from repro.machine.counters import PerfCounters


class BoundKind(enum.Enum):
    """Classification of a task or application."""

    CPU_BOUND = "cpu"
    MEMORY_BOUND = "memory"


class MemoryBoundMode(enum.Enum):
    """What EEWA does with a memory-bound application."""

    #: Paper behaviour: plain work-stealing at F_0 for the rest of the run.
    FALLBACK = "fallback"
    #: Paper's proposed future work: model t(f) per class by regression and
    #: keep adjusting frequencies (see :mod:`repro.core.regression`).
    REGRESSION = "regression"
    #: Pretend everything is CPU-bound (ablation: shows why the check exists).
    IGNORE = "ignore"


def classify_task(counters: PerfCounters, threshold: float = DEFAULT_MISS_THRESHOLD) -> BoundKind:
    """Single-task classification by cache-miss intensity."""
    if counters.miss_intensity > threshold:
        return BoundKind.MEMORY_BOUND
    return BoundKind.CPU_BOUND


@dataclass(frozen=True)
class ApplicationClassification:
    """Verdict for a whole application after the first profiled batch."""

    kind: BoundKind
    memory_bound_fraction: float
    tasks_observed: int


def classify_application(
    profiler: OnlineProfiler, *, majority: float = 0.5
) -> ApplicationClassification:
    """Apply the paper's most-tasks-memory-bound rule."""
    fraction = profiler.memory_bound_fraction()
    kind = (
        BoundKind.MEMORY_BOUND
        if profiler.application_is_memory_bound(majority)
        else BoundKind.CPU_BOUND
    )
    return ApplicationClassification(
        kind=kind,
        memory_bound_fraction=fraction,
        tasks_observed=profiler.tasks_seen,
    )
