"""Thermal-headroom analysis over recorded power traces.

An extension beyond the paper (whose related work motivates energy budgets
with "the heat dissipation problem"): given a run executed with
``record_power_series=True``, integrate a first-order RC thermal model per
core

``dT/dt = (P * R_th - (T - T_amb)) / tau``

over the piecewise-constant power trace (exact exponential update per
piece) and report peak temperatures and time spent above a throttling
threshold. EEWA's lower per-core power translates directly into thermal
headroom — cores that would throttle under all-fast scheduling stay cool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.engine import SimResult


@dataclass(frozen=True)
class ThermalParams:
    """First-order RC thermal model parameters.

    Defaults approximate a 2009-era 45 nm core under a shared heatsink:
    ~1.8 K/W thermal resistance, a few seconds of time constant, 45 °C
    ambient-at-heatsink, 95 °C throttle trip point.
    """

    r_th_k_per_w: float = 1.8
    tau_s: float = 2.5
    ambient_c: float = 45.0
    throttle_c: float = 95.0

    def __post_init__(self) -> None:
        if self.r_th_k_per_w <= 0 or self.tau_s <= 0:
            raise ConfigurationError("thermal parameters must be positive")
        if self.throttle_c <= self.ambient_c:
            raise ConfigurationError("throttle point must exceed ambient")

    def steady_state_c(self, watts: float) -> float:
        """Equilibrium temperature under constant power."""
        return self.ambient_c + watts * self.r_th_k_per_w


@dataclass(frozen=True)
class CoreThermalSummary:
    """Thermal outcome for one core."""

    core_id: int
    peak_c: float
    final_c: float
    seconds_above_throttle: float


@dataclass(frozen=True)
class ThermalReport:
    """Whole-machine thermal outcome."""

    params: ThermalParams
    cores: tuple[CoreThermalSummary, ...]

    @property
    def peak_c(self) -> float:
        return max(c.peak_c for c in self.cores)

    @property
    def total_throttle_seconds(self) -> float:
        return sum(c.seconds_above_throttle for c in self.cores)

    @property
    def would_throttle(self) -> bool:
        return self.total_throttle_seconds > 0.0


def _piece_update(
    t0: float, dt: float, watts: float, params: ThermalParams
) -> tuple[float, float, float]:
    """Evolve temperature over one constant-power piece.

    Returns (T_end, piece_peak, seconds_above_throttle). The trajectory is
    monotone within a piece (exponential approach to the steady state), so
    the peak is at whichever end is hotter, and the threshold crossing has
    a closed form.
    """
    target = params.steady_state_c(watts)
    decay = math.exp(-dt / params.tau_s)
    t1 = target + (t0 - target) * decay
    peak = max(t0, t1)

    thr = params.throttle_c
    above = 0.0
    lo, hi = min(t0, t1), max(t0, t1)
    if lo >= thr:
        above = dt
    elif hi > thr:
        # Time at which T(t) crosses thr: T(t) = target + (t0-target)e^{-t/tau}.
        ratio = (thr - target) / (t0 - target)
        t_cross = -params.tau_s * math.log(ratio)
        above = dt - t_cross if t1 > t0 else t_cross
        above = min(max(above, 0.0), dt)
    return t1, peak, above


def _integrate(pieces: list[tuple[float, float, float]], params: ThermalParams):
    temp = params.ambient_c
    peak = temp
    above = 0.0
    for t_start, t_end, watts in pieces:
        temp, piece_peak, piece_above = _piece_update(
            temp, t_end - t_start, watts, params
        )
        peak = max(peak, piece_peak)
        above += piece_above
    return temp, peak, above


def thermal_report(
    result: SimResult, params: ThermalParams | None = None
) -> ThermalReport:
    """Integrate the thermal model over a run's recorded power series."""
    if params is None:
        params = ThermalParams()
    series = result.meter.power_series
    if series is None:
        raise ConfigurationError(
            "run the simulation with record_power_series=True for thermal analysis"
        )
    cores = []
    for core_id, pieces in enumerate(series):
        temp, peak, above = _integrate(pieces, params)
        cores.append(
            CoreThermalSummary(
                core_id=core_id,
                peak_c=peak,
                final_c=temp,
                seconds_above_throttle=above,
            )
        )
    return ThermalReport(params=params, cores=tuple(cores))


def _merge_power_series(
    series: list[list[tuple[float, float, float]]]
) -> list[tuple[float, float, float]]:
    """Sum piecewise-constant power traces over a group of cores."""
    boundaries = sorted({t for s in series for piece in s for t in piece[:2]})
    merged: list[tuple[float, float, float]] = []
    cursors = [0] * len(series)
    for t0, t1 in zip(boundaries, boundaries[1:]):
        total = 0.0
        mid = (t0 + t1) / 2
        for i, s in enumerate(series):
            while cursors[i] < len(s) and s[cursors[i]][1] <= t0:
                cursors[i] += 1
            if cursors[i] < len(s) and s[cursors[i]][0] <= mid < s[cursors[i]][1]:
                total += s[cursors[i]][2]
        if merged and merged[-1][2] == total and merged[-1][1] == t0:
            merged[-1] = (merged[-1][0], t1, total)
        else:
            merged.append((t0, t1, total))
    return merged


def socket_thermal_report(
    result: SimResult,
    groups: tuple[tuple[int, ...], ...] | None = None,
    params: ThermalParams | None = None,
) -> ThermalReport:
    """Thermal report treating each core *group* as one thermal node.

    Models a shared heatsink per socket: the group's power traces are
    summed and integrated against group-level parameters (default: the
    per-core resistance divided by the group size — the same silicon area
    under one sink). ``groups`` defaults to the machine's DVFS domains, or
    quad-core sockets when none are configured.
    """
    series = result.meter.power_series
    if series is None:
        raise ConfigurationError(
            "run the simulation with record_power_series=True for thermal analysis"
        )
    if groups is None:
        groups = result.machine.dvfs_domains
    if groups is None:
        n = result.machine.num_cores
        size = 4 if n % 4 == 0 else n
        groups = tuple(tuple(range(s, s + size)) for s in range(0, n, size))
    if params is None:
        base = ThermalParams()
        params = ThermalParams(
            r_th_k_per_w=base.r_th_k_per_w / max(len(g) for g in groups),
            tau_s=base.tau_s,
            ambient_c=base.ambient_c,
            throttle_c=base.throttle_c,
        )
    nodes = []
    for gid, group in enumerate(groups):
        merged = _merge_power_series([series[c] for c in group])
        temp, peak, above = _integrate(merged, params)
        nodes.append(
            CoreThermalSummary(
                core_id=gid, peak_c=peak, final_c=temp,
                seconds_above_throttle=above,
            )
        )
    return ThermalReport(params=params, cores=tuple(nodes))
