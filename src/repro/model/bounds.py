"""Calibrated error envelope: when is the analytic model *trusted*?

:func:`repro.model.predict.decline_reason` answers the structural
question — does the closed form exist. This module answers the
operational one — is the closed form *close enough* to serve in place of
the simulator. The envelope below was calibrated by
:mod:`repro.model.validate` against the full golden grid (30 jittered
cells + 8 long-horizon cells); ``fidelity="auto"`` in the sweep engine
serves a cell from the model only when :func:`classify_cell` says
eligible, and falls back to full simulation otherwise.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional, Sequence

from repro.machine.topology import MachineConfig
from repro.model.predict import decline_reason
from repro.runtime.task import Batch

#: The promise ``fidelity="auto"`` makes: every served prediction's
#: makespan and energy are within this relative error of the simulator
#: on the calibration grid. Enforced by ``python -m repro.model.validate``
#: (CI-gating) and by conformance check #10.
MAX_RELATIVE_ERROR = 0.02


@dataclasses.dataclass(frozen=True)
class Eligibility:
    """Verdict on one cell: serve from the model, or simulate."""

    eligible: bool
    reason: Optional[str] = None

    def __bool__(self) -> bool:
        return self.eligible


def classify_cell(
    program: Sequence[Batch],
    policy: str,
    machine: MachineConfig,
    *,
    core_levels: Optional[Sequence[int]] = None,
    eewa_config: Any = None,
    policy_params: Optional[tuple[tuple[str, Any], ...]] = None,
    faults: Any = None,
) -> Eligibility:
    """Classify one cell against the calibrated envelope.

    Structural declines come first (no closed form at all); the remaining
    conditions mark cells the closed form covers but the calibration grid
    does not, so ``auto`` refuses to vouch for them:

    * heterogeneous machines — the golden grid calibrates homogeneous
      ladders only; big.LITTLE cells simulate until a hetero grid lands;
    * sub-core batches — with fewer tasks than cores the makespan is one
      task's runtime and steal-scan timing noise is no longer amortised.
    """
    reason = decline_reason(
        program,
        policy,
        machine,
        core_levels=core_levels,
        eewa_config=eewa_config,
        policy_params=policy_params,
        faults=faults,
    )
    if reason is not None:
        return Eligibility(False, reason)
    if machine.is_heterogeneous:
        return Eligibility(
            False, "heterogeneous machines are outside the calibrated grid"
        )
    if any(len(batch.specs) < machine.num_cores for batch in program):
        return Eligibility(
            False, "batch smaller than the machine; steal noise unamortised"
        )
    return Eligibility(True)


__all__ = ["MAX_RELATIVE_ERROR", "Eligibility", "classify_cell"]
