"""Fig. 6 bench — normalised time & energy, 7 benchmarks x 3 schedulers.

Paper shape targets asserted here:
* EEWA cuts energy 8.7-29.8% below Cilk (we accept a 4-40% envelope);
* Cilk-D's energy sits between Cilk's and (for most benchmarks) EEWA's;
* EEWA's execution time stays within a few percent of Cilk's.
"""

from conftest import BENCH_SEEDS, save_exhibit

from repro.experiments.fig6 import run_fig6


def test_bench_fig6(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig6(seeds=BENCH_SEEDS), rounds=1, iterations=1
    )
    save_exhibit(results_dir, "fig6", result.table())

    reductions = [row.eewa_energy_reduction_pct for row in result.rows]
    time_changes = [row.eewa_time_change_pct for row in result.rows]
    benchmark.extra_info["eewa_energy_reduction_pct"] = {
        row.benchmark: round(row.eewa_energy_reduction_pct, 1) for row in result.rows
    }
    benchmark.extra_info["eewa_time_change_pct"] = {
        row.benchmark: round(row.eewa_time_change_pct, 1) for row in result.rows
    }

    # Shape: every benchmark saves energy; the band spans near the paper's.
    assert min(reductions) > 4.0
    assert max(reductions) > 20.0
    assert max(reductions) < 40.0
    # Shape: time is held within a few percent either way.
    assert all(-12.0 < dt < 8.0 for dt in time_changes)
    # Shape: EEWA beats Cilk-D on energy for every benchmark.
    for row in result.rows:
        assert row.energy_eewa < row.energy_cilk_d
        # And Cilk-D itself beats Cilk.
        assert row.energy_cilk_d < row.energy_cilk
