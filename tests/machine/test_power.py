"""Tests for the power model."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.frequency import opteron_8380_scale
from repro.machine.power import PowerModel, VoltageCurve, calibrated_power_model


@pytest.fixture
def model() -> PowerModel:
    return calibrated_power_model(opteron_8380_scale())


class TestVoltageCurve:
    def test_endpoints(self):
        curve = VoltageCurve(f_min=1e9, f_max=2e9, v_min=1.0, v_max=1.3)
        assert curve.voltage(1e9) == pytest.approx(1.0)
        assert curve.voltage(2e9) == pytest.approx(1.3)

    def test_midpoint_interpolates(self):
        curve = VoltageCurve(f_min=1e9, f_max=2e9, v_min=1.0, v_max=1.3)
        assert curve.voltage(1.5e9) == pytest.approx(1.15)

    def test_clamps_outside_range(self):
        curve = VoltageCurve(f_min=1e9, f_max=2e9, v_min=1.0, v_max=1.3)
        assert curve.voltage(0.5e9) == pytest.approx(1.0)
        assert curve.voltage(3e9) == pytest.approx(1.3)

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ConfigurationError):
            VoltageCurve(f_min=2e9, f_max=1e9, v_min=1.0, v_max=1.3)
        with pytest.raises(ConfigurationError):
            VoltageCurve(f_min=1e9, f_max=2e9, v_min=1.3, v_max=1.0)
        with pytest.raises(ConfigurationError):
            VoltageCurve(f_min=1e9, f_max=2e9, v_min=-1.0, v_max=1.3)


class TestPowerModel:
    def test_busy_power_monotone_in_frequency(self, model):
        scale = opteron_8380_scale()
        powers = [model.busy_power(f) for f in scale]
        assert all(a > b for a, b in zip(powers, powers[1:]))

    def test_busy_exceeds_idle(self, model):
        scale = opteron_8380_scale()
        for f in scale:
            assert model.busy_power(f) > model.idle_power()

    def test_halving_frequency_saves_more_than_half_dynamic(self, model):
        """V^2 scaling: energy per cycle drops at lower frequency —
        the premise of Section II's example (p_0 + p_1 < 2 p_0)."""
        scale = opteron_8380_scale()
        top, bottom = scale.fastest, scale.slowest
        # dynamic power per hertz (== energy per cycle) strictly decreases
        per_cycle_top = model.dynamic_power(top) / top
        per_cycle_bottom = model.dynamic_power(bottom) / bottom
        assert per_cycle_bottom < per_cycle_top

    def test_calibration_hits_target_busy_watts(self):
        scale = opteron_8380_scale()
        model = calibrated_power_model(scale, top_core_busy_watts=20.0)
        assert model.busy_power(scale.fastest) == pytest.approx(20.0)

    def test_machine_power_composition(self, model):
        scale = opteron_8380_scale()
        p = model.machine_power([scale.fastest, scale.slowest], idle_cores=2)
        expected = (
            model.machine_base_power
            + model.busy_power(scale.fastest)
            + model.busy_power(scale.slowest)
            + 2 * model.idle_power()
        )
        assert p == pytest.approx(expected)

    def test_invalid_calibration_rejected(self):
        scale = opteron_8380_scale()
        with pytest.raises(ConfigurationError):
            calibrated_power_model(scale, top_core_busy_watts=1.0, core_idle_watts=2.0)

    def test_negative_kappa_rejected(self):
        curve = VoltageCurve(f_min=1e9, f_max=2e9, v_min=1.0, v_max=1.3)
        with pytest.raises(ConfigurationError):
            PowerModel(voltage_curve=curve, kappa=-1.0, core_idle_power=1.0,
                       machine_base_power=0.0)
