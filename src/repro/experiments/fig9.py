"""Fig. 9 — scalability: DMC on 4/8/12/16 cores under Cilk, Cilk-D, EEWA.

Paper shape targets: with few cores (4) the machine is saturated — EEWA
keeps everything fast, saves nothing, and loses only fractions of a percent
to overhead; savings grow monotonically with core count (23.8% at 12 cores
vs Cilk with only 2.8% slowdown; more at 16).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.report import format_table
from repro.machine.topology import MachineConfig, opteron_8380_machine
from repro.scenario.registry import baseline_policy_names
from repro.scenario.session import Session
from repro.scenario.spec import DEFAULT_SEEDS, MachineSpec, ScenarioSpec

DEFAULT_CORE_COUNTS = (4, 8, 12, 16)


@dataclass(frozen=True)
class Fig9Point:
    """Normalised metrics at one core count (Cilk at that count = 1.0)."""

    cores: int
    time_cilk_d: float
    time_eewa: float
    energy_cilk_d: float
    energy_eewa: float


@dataclass(frozen=True)
class Fig9Result:
    benchmark: str
    points: tuple[Fig9Point, ...]

    def table(self) -> str:
        return format_table(
            ["cores", "t(cilk-d)", "t(eewa)", "E(cilk-d)", "E(eewa)", "eewa dE%"],
            [
                (
                    p.cores,
                    p.time_cilk_d,
                    p.time_eewa,
                    p.energy_cilk_d,
                    p.energy_eewa,
                    100.0 * (p.energy_eewa - 1.0),
                )
                for p in self.points
            ],
            title=f"Fig. 9 — {self.benchmark} scalability (Cilk = 1.0 per core count)",
        )

    def eewa_savings_by_cores(self) -> dict[int, float]:
        """Core count -> EEWA energy reduction percent vs Cilk."""
        return {p.cores: 100.0 * (1.0 - p.energy_eewa) for p in self.points}


def run_fig9(
    *,
    benchmark: str = "DMC",
    core_counts: Sequence[int] = DEFAULT_CORE_COUNTS,
    base_machine: Optional[MachineConfig] = None,
    batches: int | None = None,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    parallel: bool = False,
    workers: int | None = None,
    cache_dir: str | None = None,
) -> Fig9Result:
    """Regenerate Fig. 9's core-count sweep.

    One scenario grid — (core count × baseline policy) — through a
    Session. ``parallel=True`` fans every cell across a process pool with
    result caching; results are identical either way.
    """
    if base_machine is None:
        base_machine = opteron_8380_machine()
    session = Session.for_experiment(
        parallel=parallel, workers=workers, cache_dir=cache_dir
    )
    policies = baseline_policy_names()
    grid = [
        ScenarioSpec(
            workload=benchmark,
            policy=policy,
            machine=MachineSpec.inline(base_machine, num_cores=cores),
            seeds=tuple(seeds),
            batches=batches,
        )
        for cores in core_counts
        for policy in policies
    ]
    outcomes = dict(
        zip(
            [(cores, policy) for cores in core_counts for policy in policies],
            session.run_grid(grid),
        )
    )
    points = []
    for cores in core_counts:
        base_t = outcomes[(cores, "cilk")].time_mean
        base_e = outcomes[(cores, "cilk")].energy_mean
        points.append(
            Fig9Point(
                cores=cores,
                time_cilk_d=outcomes[(cores, "cilk-d")].time_mean / base_t,
                time_eewa=outcomes[(cores, "eewa")].time_mean / base_t,
                energy_cilk_d=outcomes[(cores, "cilk-d")].energy_mean / base_e,
                energy_eewa=outcomes[(cores, "eewa")].energy_mean / base_e,
            )
        )
    return Fig9Result(benchmark=benchmark, points=tuple(points))
