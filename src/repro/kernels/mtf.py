"""Move-to-front transform.

The middle stage of BWT-based compressors: after the BWT clusters equal
bytes, MTF converts locality into a zero-heavy symbol stream that RLE2 and
the entropy coder exploit.
"""

from __future__ import annotations

from repro.errors import KernelError


def mtf_encode(data: bytes) -> list[int]:
    """Replace each byte by its index in a move-to-front alphabet."""
    alphabet = list(range(256))
    out: list[int] = []
    for byte in data:
        index = alphabet.index(byte)
        out.append(index)
        if index:
            del alphabet[index]
            alphabet.insert(0, byte)
    return out


def mtf_decode(symbols: list[int]) -> bytes:
    """Inverse of :func:`mtf_encode`."""
    alphabet = list(range(256))
    out = bytearray()
    for index in symbols:
        if not 0 <= index < 256:
            raise KernelError(f"MTF symbol {index} out of range")
        byte = alphabet[index]
        out.append(byte)
        if index:
            del alphabet[index]
            alphabet.insert(0, byte)
    return bytes(out)
