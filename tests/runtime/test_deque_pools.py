"""Tests for the work-stealing deque and the pool grid."""

import pytest

from repro.errors import SchedulingError
from repro.runtime.deque import WorkStealingDeque
from repro.runtime.pools import PoolGrid
from repro.runtime.task import TaskFactory, TaskSpec


def make_tasks(n: int):
    factory = TaskFactory()
    return [factory.make(TaskSpec(f"f{i}", 1.0), 0) for i in range(n)]


class TestWorkStealingDeque:
    def test_owner_pops_lifo(self):
        d = WorkStealingDeque()
        d.push_bottom(1)
        d.push_bottom(2)
        d.push_bottom(3)
        assert d.pop_bottom() == 3
        assert d.pop_bottom() == 2

    def test_thief_steals_fifo(self):
        d = WorkStealingDeque()
        for i in range(3):
            d.push_bottom(i)
        assert d.steal_top() == 0
        assert d.steal_top() == 1

    def test_owner_and_thief_disjoint(self):
        d = WorkStealingDeque()
        for i in range(4):
            d.push_bottom(i)
        assert d.steal_top() == 0
        assert d.pop_bottom() == 3
        assert d.steal_top() == 1
        assert d.pop_bottom() == 2
        assert d.pop_bottom() is None
        assert d.steal_top() is None

    def test_len_and_clear(self):
        d = WorkStealingDeque()
        d.push_bottom(1)
        assert len(d) == 1 and bool(d)
        d.clear()
        assert len(d) == 0 and not d


class TestPoolGrid:
    def test_push_pop_local(self):
        grid = PoolGrid(num_cores=2, num_pools=2)
        (task,) = make_tasks(1)
        grid.push(0, 1, task)
        assert grid.local_len(0, 1) == 1
        assert grid.pop_local(0, 1) is task
        assert grid.pop_local(0, 1) is None

    def test_steal_marks_task(self):
        grid = PoolGrid(2, 1)
        (task,) = make_tasks(1)
        grid.push(0, 0, task)
        stolen = grid.steal(0, 0)
        assert stolen is task
        assert stolen.stolen is True

    def test_pool_index_counter_tracks_pushes_pops(self):
        grid = PoolGrid(2, 2)
        tasks = make_tasks(4)
        for i, t in enumerate(tasks):
            grid.push(i % 2, 0, t)
        assert grid.queued_in_pool_index(0) == 4
        assert grid.pool_index_empty(1)
        grid.pop_local(0, 0)
        grid.steal(1, 0)
        assert grid.queued_in_pool_index(0) == 2
        assert grid.total_queued() == 2

    def test_victims_with_work(self):
        grid = PoolGrid(3, 1)
        (task,) = make_tasks(1)
        grid.push(1, 0, task)
        assert grid.victims_with_work(0, exclude=0) == [1]
        assert grid.victims_with_work(0, exclude=1) == []
        assert grid.victims_with_work(0, exclude=2) == [1]

    def test_victims_with_candidates_subset(self):
        grid = PoolGrid(4, 1)
        tasks = make_tasks(2)
        grid.push(1, 0, tasks[0])
        grid.push(3, 0, tasks[1])
        assert grid.victims_with_work(0, exclude=0, candidates=[1, 2]) == [1]

    def test_bounds_checked(self):
        grid = PoolGrid(2, 2)
        (task,) = make_tasks(1)
        with pytest.raises(SchedulingError):
            grid.push(2, 0, task)
        with pytest.raises(SchedulingError):
            grid.pop_local(0, 2)

    def test_clear_resets_counters(self):
        grid = PoolGrid(2, 2)
        for t in make_tasks(3):
            grid.push(0, 0, t)
        grid.clear()
        assert grid.total_queued() == 0
        assert grid.pool_index_empty(0)
