"""Tests for batch-barrier bookkeeping."""

import pytest

from repro.errors import SimulationError
from repro.runtime.barrier import BatchBarrier


class TestBarrier:
    def test_open_add_done_close(self):
        b = BatchBarrier()
        b.open(0, now=1.0)
        b.add_task()
        b.add_task()
        assert b.task_done() is False
        assert b.task_done() is True
        assert b.close(now=1.5) == pytest.approx(0.5)
        assert b.history == [(0, 2, 1.0, pytest.approx(0.5))]

    def test_tasks_added_mid_batch_counted(self):
        b = BatchBarrier()
        b.open(0, now=0.0)
        b.add_task()
        assert b.task_done() is True  # would drain...
        b.add_task()  # ...but a spawn arrives
        assert b.outstanding == 1

    def test_double_open_rejected(self):
        b = BatchBarrier()
        b.open(0, now=0.0)
        with pytest.raises(SimulationError):
            b.open(1, now=0.0)

    def test_done_without_open_rejected(self):
        with pytest.raises(SimulationError):
            BatchBarrier().task_done()

    def test_close_with_outstanding_rejected(self):
        b = BatchBarrier()
        b.open(0, now=0.0)
        b.add_task()
        with pytest.raises(SimulationError):
            b.close(now=1.0)

    def test_excess_done_rejected(self):
        b = BatchBarrier()
        b.open(0, now=0.0)
        b.add_task()
        b.task_done()
        with pytest.raises(SimulationError):
            b.task_done()

    def test_sequential_batches_accumulate_history(self):
        b = BatchBarrier()
        for i in range(3):
            b.open(i, now=float(i))
            b.add_task()
            b.task_done()
            b.close(now=float(i) + 0.25)
        assert [h[0] for h in b.history] == [0, 1, 2]
