"""Conservation laws the simulator must obey regardless of policy."""

import pytest

from repro.core.eewa import EEWAScheduler
from repro.machine.core import CoreState
from repro.machine.topology import opteron_8380_machine
from repro.runtime.cilk import CilkScheduler
from repro.runtime.cilk_d import CilkDScheduler
from repro.sim.engine import simulate
from repro.workloads.benchmarks import benchmark_program

POLICIES = [CilkScheduler, CilkDScheduler, EEWAScheduler]


@pytest.fixture(scope="module")
def runs():
    machine = opteron_8380_machine()
    program = benchmark_program("Bzip-2", batches=5, seed=13)
    return machine, program, [
        simulate(program, cls(), machine, seed=13) for cls in POLICIES
    ]


def test_every_task_retires_exactly_once(runs):
    _, program, results = runs
    expected = sum(len(b) for b in program)
    for result in results:
        assert result.tasks_executed == expected
        ids = [t.task_id for t in result.tasks]
        assert len(set(ids)) == len(ids)


def test_metered_time_covers_all_cores(runs):
    machine, _, results = runs
    for result in results:
        for account in result.meter.accounts:
            assert account.seconds == pytest.approx(result.total_time, rel=1e-9)


def test_running_time_matches_task_time(runs):
    """Core-seconds in RUNNING equal task execution time plus acquire costs
    (pop/steal), which are bounded by a small fraction."""
    _, _, results = runs
    for result in results:
        running = sum(
            a.seconds_by_state.get(CoreState.RUNNING, 0.0)
            for a in result.meter.accounts
        )
        task_time = sum(t.finish_time - t.start_time for t in result.tasks)
        assert running >= task_time - 1e-9
        assert (running - task_time) < 0.02 * running + 1e-6


def test_task_exec_time_consistent_with_frequency(runs):
    """Each task's observed elapsed equals cycles / F(level) + stalls."""
    machine, _, results = runs
    for result in results:
        for task in result.tasks:
            f = machine.scale[task.executed_level]
            expected = task.spec.cpu_cycles / f + task.spec.mem_stall_seconds
            assert task.elapsed == pytest.approx(expected, rel=1e-9)


def test_energy_is_power_times_time_bounded(runs):
    """Total energy lies between all-idle and all-max-power envelopes."""
    machine, _, results = runs
    for result in results:
        p_min = machine.power.machine_power([], machine.num_cores)
        p_max = machine.power.machine_power(
            [machine.scale.fastest] * machine.num_cores, 0
        )
        assert p_min * result.total_time <= result.total_joules + 1e-6
        assert result.total_joules <= p_max * result.total_time + 1e-6


def test_batches_do_not_overlap(runs):
    _, _, results = runs
    for result in results:
        batches = sorted(result.trace.batches, key=lambda b: b.batch_index)
        for earlier, later in zip(batches, batches[1:]):
            assert later.start_time >= earlier.start_time + earlier.duration - 1e-9


def test_tasks_execute_within_their_batch_window(runs):
    _, _, results = runs
    for result in results:
        windows = {
            b.batch_index: (b.start_time, b.start_time + b.duration)
            for b in result.trace.batches
        }
        for task in result.tasks:
            lo, hi = windows[task.batch_index]
            assert task.start_time >= lo - 1e-9
            assert task.finish_time <= hi + 1e-9
