"""The finding model, reporters, exit codes, and the ``repro check`` CLI."""

import json

from repro.checks.findings import (
    Finding,
    Severity,
    exit_code,
    render_json,
    render_text,
    sort_findings,
)
from repro.checks.runner import main
from repro.cli import main as cli_main


def _finding(rule_id="EEWA001", severity=Severity.ERROR, line=3):
    return Finding(
        check="lint",
        rule_id=rule_id,
        severity=severity,
        location="src/repro/sim/mod.py",
        message="boom",
        line=line,
        column=5,
    )


class TestFindingModel:
    def test_anchor_with_and_without_line(self):
        assert _finding().anchor() == "src/repro/sim/mod.py:3:5"
        config = Finding(
            check="invariants", rule_id="EEWA102", severity=Severity.ERROR,
            location="invariants(r=2, k=2, m=4)", message="missed",
        )
        assert config.anchor() == "invariants(r=2, k=2, m=4)"

    def test_sort_puts_errors_first(self):
        warning = _finding(severity=Severity.WARNING, line=1)
        error = _finding(severity=Severity.ERROR, line=9)
        assert sort_findings([warning, error]) == [error, warning]

    def test_exit_code_thresholds(self):
        warning = [_finding(severity=Severity.WARNING)]
        error = [_finding(severity=Severity.ERROR)]
        assert exit_code([]) == 0 and exit_code([], strict=True) == 0
        assert exit_code(warning) == 0
        assert exit_code(warning, strict=True) == 1
        assert exit_code(error) == 1


class TestReporters:
    def test_text_summary_line(self):
        text = render_text([_finding(), _finding(severity=Severity.WARNING)])
        assert text.endswith("2 finding(s): 1 error(s), 1 warning(s)")
        assert "src/repro/sim/mod.py:3:5: error EEWA001 [lint] boom" in text

    def test_text_clean(self):
        assert render_text([]) == "no findings"

    def test_json_round_trips(self):
        payload = json.loads(render_json([_finding()]))
        assert payload["summary"] == {"total": 1, "errors": 1, "warnings": 0}
        assert payload["findings"][0]["rule_id"] == "EEWA001"
        assert payload["findings"][0]["severity"] == "error"


class TestRunnerCli:
    def test_missing_path_is_usage_error(self, capsys):
        assert main(["does/not/exist.py"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        code = main(["--no-invariants", "--no-races", str(target)])
        assert code == 0
        assert "no findings" in capsys.readouterr().out

    def test_dirty_file_exits_one_with_finding(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("try:\n    pass\nexcept ValueError:\n    pass\n")
        code = main(["--no-invariants", "--no-races", str(target)])
        out = capsys.readouterr().out
        assert code == 1
        assert "EEWA006" in out

    def test_json_format(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("def f(a=[]):\n    return a\n")
        code = main(["--no-invariants", "--no-races", "--format", "json", str(target)])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 1
        assert payload["findings"][0]["rule_id"] == "EEWA005"

    def test_cli_subcommand_delegates(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        code = cli_main(["check", "--no-invariants", "--no-races", str(target)])
        assert code == 0
        assert "no findings" in capsys.readouterr().out

    def test_full_battery_on_merged_tree_is_clean(self, capsys):
        """``repro check --strict`` over src/repro — the PR's headline
        acceptance criterion: zero findings from all three engines."""
        assert main(["--strict"]) == 0
        assert "no findings" in capsys.readouterr().out
