"""Exception hierarchy for the EEWA reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate untouched.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A machine / workload / scheduler configuration is invalid."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class SchedulingError(ReproError):
    """A scheduler policy violated the runtime contract."""


class SearchError(ReproError):
    """The k-tuple search was invoked with inconsistent inputs."""


class ProfilingError(ReproError):
    """Online profiling was queried before the data it needs exists."""


class KernelError(ReproError):
    """A benchmark kernel was fed malformed input."""


class WorkloadError(ReproError):
    """A workload specification cannot be realised."""


class ScenarioError(ConfigurationError):
    """A scenario spec or registry lookup is invalid.

    Subclasses :class:`ConfigurationError` so callers that predate the
    scenario layer (``except ConfigurationError``) keep working.
    """
