"""Strictly periodic programs for steady-state fast-forward tests.

Every batch is *identical* — same specs in the same order, no jitter —
which is the iteration-based shape EEWA targets (Fig. 2: "iterations of
similar computation"). On :func:`repro.machine.topology.dyadic_test_machine`
the task cycle counts below are dyadic multiples of the frequency ladder,
so all durations and energies are float-exact and the engine's fast-forward
replay is provably bit-identical.

This module is deliberately *not* registered in the ``WORKLOADS`` registry:
it is a test/bench harness workload, not a paper benchmark.
"""

from __future__ import annotations

from repro.runtime.task import Batch, TaskSpec, flat_batch

#: Reference frequency the cycle counts below are dyadic fractions of
#: (``F_0`` of :func:`~repro.machine.topology.dyadic_test_machine`).
DYADIC_REF_FREQUENCY = 2.0**31

#: Heavy tasks run ``2^-5`` seconds at ``F_0``; light ones ``2^-8``.
HEAVY_CYCLES = (2.0**-5) * DYADIC_REF_FREQUENCY
LIGHT_CYCLES = (2.0**-8) * DYADIC_REF_FREQUENCY


def periodic_batch_specs(
    heavy: int = 4,
    light: int = 8,
    *,
    heavy_cycles: float = HEAVY_CYCLES,
    light_cycles: float = LIGHT_CYCLES,
) -> list[TaskSpec]:
    """The spec list one batch repeats: ``heavy`` + ``light`` flat tasks."""
    return [TaskSpec("heavy", cpu_cycles=heavy_cycles) for _ in range(heavy)] + [
        TaskSpec("light", cpu_cycles=light_cycles) for _ in range(light)
    ]


def periodic_program(
    batches: int,
    heavy: int = 4,
    light: int = 8,
    *,
    heavy_cycles: float = HEAVY_CYCLES,
    light_cycles: float = LIGHT_CYCLES,
) -> list[Batch]:
    """``batches`` identical flat batches of heavy+light two-class work."""
    specs = periodic_batch_specs(
        heavy, light, heavy_cycles=heavy_cycles, light_cycles=light_cycles
    )
    return [flat_batch(i, list(specs)) for i in range(batches)]
