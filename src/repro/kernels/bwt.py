"""Burrows-Wheeler transform and the BWC compression pipeline.

The forward transform uses a prefix-doubling suffix-array construction
(O(n log^2 n), no O(n^2) rotation sort) over the input with a unique
sentinel, matching how real BWT compressors index rotations. The inverse
uses the standard LF-mapping walk.

:func:`bwc_compress` / :func:`bwc_decompress` chain BWT -> MTF -> RLE2 ->
canonical Huffman — the "Burrows Wheeler Transforming Compression" (BWC)
benchmark of the paper's Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KernelError
from repro.kernels.huffman import HuffmanTable, huffman_compress, huffman_decompress
from repro.kernels.mtf import mtf_decode, mtf_encode
from repro.kernels.rle import rle2_decode_zeros, rle2_encode_zeros


def suffix_array(data: bytes) -> list[int]:
    """Suffix array by prefix doubling (Manber-Myers style)."""
    n = len(data)
    if n == 0:
        return []
    rank = list(data)
    sa = list(range(n))
    tmp = [0] * n
    k = 1
    while True:
        def key(i: int) -> tuple[int, int]:
            return (rank[i], rank[i + k] if i + k < n else -1)

        sa.sort(key=key)
        tmp[sa[0]] = 0
        for idx in range(1, n):
            tmp[sa[idx]] = tmp[sa[idx - 1]] + (key(sa[idx]) != key(sa[idx - 1]))
        rank = tmp[:]
        if rank[sa[-1]] == n - 1:
            break
        k *= 2
    return sa


@dataclass(frozen=True)
class BWTResult:
    """Output of the forward transform."""

    transformed: bytes
    primary_index: int  # row of the original string in the sorted matrix


def bwt_forward(data: bytes) -> BWTResult:
    """Forward BWT via the suffix array of ``data`` + sentinel.

    We conceptually append a unique sentinel smaller than every byte; the
    sentinel itself is not emitted — its position is returned as the
    primary index, the form the inverse transform needs.
    """
    n = len(data)
    if n == 0:
        return BWTResult(transformed=b"", primary_index=0)
    # Suffixes of data+sentinel: the sentinel suffix sorts first and is
    # dropped; remaining order equals the suffix order of `data` because the
    # sentinel terminates every comparison.
    sa = suffix_array(data)
    out = bytearray()
    primary = 0
    # Row 0 of the conceptual matrix is the sentinel rotation; its BWT char
    # is data[-1]. Each suffix sa[i] contributes data[sa[i]-1], or the
    # sentinel when sa[i] == 0 — that row is the primary index.
    out.append(data[-1])
    for i, start in enumerate(sa):
        if start == 0:
            primary = i + 1  # +1 for the sentinel row prepended above
            continue
        out.append(data[start - 1])
    return BWTResult(transformed=bytes(out), primary_index=primary)


def bwt_inverse(result: BWTResult) -> bytes:
    """Inverse BWT via LF mapping."""
    bwt = result.transformed
    n = len(bwt)
    if n == 0:
        return b""
    primary = result.primary_index
    if not 0 <= primary < n + 1:
        raise KernelError(f"primary index {primary} out of range")

    # The conceptual last column includes the sentinel at row `primary`.
    # Counting sort of the last column (sentinel sorts before byte 0).
    counts = [0] * 256
    for b in bwt:
        counts[b] += 1
    starts = [0] * 256
    total = 1  # sentinel occupies first-column position 0
    for b in range(256):
        starts[b] = total
        total += counts[b]

    # lf[i]: first-column position of last-column row i.
    lf = [0] * (n + 1)
    occ = [0] * 256
    for i in range(n + 1):
        if i == primary:
            lf[i] = 0
            continue
        b = bwt[i] if i < primary else bwt[i - 1]
        lf[i] = starts[b] + occ[b]
        occ[b] += 1

    out = bytearray()
    row = primary
    for _ in range(n):
        row = lf[row]
        if row == primary:
            raise KernelError("corrupt BWT: walked into the sentinel early")
        b = bwt[row] if row < primary else bwt[row - 1]
        out.append(b)
    return bytes(reversed(out))


@dataclass(frozen=True)
class BWCBlock:
    """One entropy-coded BWC block."""

    payload: bytes
    table: HuffmanTable
    symbol_count: int
    primary_index: int
    raw_length: int


def bwc_compress(data: bytes) -> BWCBlock:
    """BWT -> MTF -> RLE2 -> Huffman (the BWC benchmark pipeline)."""
    bwt = bwt_forward(data)
    symbols = rle2_encode_zeros(mtf_encode(bwt.transformed))
    if not symbols:
        # Empty input: represent with an empty payload and a dummy table.
        return BWCBlock(
            payload=b"",
            table=HuffmanTable.from_frequencies({0: 1}),
            symbol_count=0,
            primary_index=bwt.primary_index,
            raw_length=0,
        )
    payload, table, count = huffman_compress(symbols)
    return BWCBlock(
        payload=payload,
        table=table,
        symbol_count=count,
        primary_index=bwt.primary_index,
        raw_length=len(data),
    )


def bwc_decompress(block: BWCBlock) -> bytes:
    """Inverse of :func:`bwc_compress`."""
    if block.symbol_count == 0:
        return b""
    symbols = huffman_decompress(block.payload, block.table, block.symbol_count)
    mtf_symbols = rle2_decode_zeros(symbols)
    transformed = mtf_decode(mtf_symbols)
    if len(transformed) != block.raw_length:
        raise KernelError(
            f"BWC length mismatch: got {len(transformed)}, expected {block.raw_length}"
        )
    return bwt_inverse(BWTResult(transformed=transformed, primary_index=block.primary_index))
