"""Core-Count (CC) table construction — Table I of the paper.

For ``k`` task classes (heaviest first) and ``r`` operating points (fastest
first), ``CC[j][i]`` is the number of cores at operating point ``j`` needed
to finish every task of class ``TC_i`` within the ideal iteration time
``T``:

``CC[0][i] = n_i * w_i / T``      (cores at the fastest operating point)
``CC[j][i] = (S_0 / S_j) * CC[0][i]``   (slower cores, proportionally more)

where ``S_j`` is the operating point's effective speed. On a homogeneous
machine the operating points are exactly the frequency ladder and this is
the paper's ``CC[j][i] = (F_0 / F_j) * CC[0][i]`` verbatim; on a
heterogeneous machine the rows cover the merged per-type ladders, so the
shape is ``|OP| x k`` rather than ``r x k``.

Entries are real-valued; integer rounding happens later when cores are
actually allocated to c-groups (:mod:`repro.core.cgroups`), mirroring the
paper's example table in Fig. 3 which happens to be integral.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import SearchError
from repro.core.profiler import TaskClassStats
from repro.machine.operating_point import OperatingPointSpace


@dataclass(frozen=True)
class CCTable:
    """An ``|OP| x k`` core-count table bound to its classes and scale."""

    scale: OperatingPointSpace
    class_names: tuple[str, ...]
    values: np.ndarray  # shape (r, k), float64
    ideal_time: float

    def __post_init__(self) -> None:
        r, k = self.values.shape
        if r != self.scale.r:
            raise SearchError(f"CC table has {r} rows for {self.scale.r} frequencies")
        if k != len(self.class_names):
            raise SearchError(f"CC table has {k} columns for {len(self.class_names)} classes")
        if k == 0:
            raise SearchError("CC table needs at least one task class")
        if np.any(self.values < 0):
            raise SearchError("CC table entries must be non-negative")

    @property
    def r(self) -> int:
        return self.values.shape[0]

    @property
    def k(self) -> int:
        return self.values.shape[1]

    def __getitem__(self, ji: tuple[int, int]) -> float:
        j, i = ji
        return float(self.values[j, i])

    def column(self, i: int) -> np.ndarray:
        return self.values[:, i]

    def row(self, j: int) -> np.ndarray:
        return self.values[j, :]

    def fastest_row_total(self) -> float:
        """Sum of row ``F_0`` — cores needed if everything ran fast.

        The paper (Fig. 3 discussion) observes this can be far below ``m``
        when workloads are imbalanced; the gap is exactly the slack EEWA
        converts into energy savings.
        """
        return float(self.values[0, :].sum())


#: CC construction modes. ``"fluid"`` is the paper's Table I formula, which
#: treats a class's workload as infinitely divisible. ``"discrete"`` accounts
#: for task granularity: a class of ``n`` tasks each taking ``t`` seconds at
#: level ``j`` needs ``ceil(n / floor(T / t))`` cores, and a level where a
#: single task exceeds ``T`` is infeasible (``inf``). The paper's testbed
#: tolerated the fluid approximation; our simulator honestly charges
#: granularity, so the reproduction defaults to ``"discrete"`` (see
#: DESIGN.md's ablation list — the fluid mode shows the degradation the
#: approximation causes).
CC_MODES = ("fluid", "discrete")


#: Default jitter headroom for discrete-mode feasibility: a level is usable
#: for a class only if a single task fits in ``T / (1 + headroom)`` — tasks
#: jitter batch to batch, and a class whose per-task time exactly equals the
#: budget will routinely overshoot it.
DEFAULT_HEADROOM = 0.10


def build_cc_table(
    classes: Sequence[TaskClassStats],
    scale: OperatingPointSpace,
    ideal_time: float,
    *,
    mode: str = "fluid",
    headroom: float = DEFAULT_HEADROOM,
) -> CCTable:
    """Construct the CC table from profiled task classes.

    ``classes`` must be ordered heaviest-first (use
    :meth:`~repro.core.profiler.OnlineProfiler.classes_by_workload`); the
    order is validated because the k-tuple search's monotonicity constraint
    assumes it.
    """
    if mode not in CC_MODES:
        raise SearchError(f"unknown CC mode {mode!r}; expected one of {CC_MODES}")
    if not classes:
        raise SearchError("cannot build a CC table with no task classes")
    if ideal_time <= 0:
        raise SearchError(f"ideal time must be positive, got {ideal_time}")
    workloads = [c.mean_workload for c in classes]
    if any(a < b - 1e-12 for a, b in zip(workloads, workloads[1:])):
        raise SearchError("task classes must be sorted by mean workload, heaviest first")

    totals = np.array([c.total_workload for c in classes], dtype=np.float64)
    fastest_row = totals / ideal_time  # CC[0][i] = n_i * w_i / T
    slowdowns = np.array([scale.slowdown(j) for j in range(scale.r)], dtype=np.float64)
    values = np.outer(slowdowns, fastest_row)  # CC[j][i] = (F_0/F_j) * CC[0][i]

    if mode == "discrete":
        if headroom < 0:
            raise SearchError("headroom must be non-negative")
        counts = np.array([c.count for c in classes], dtype=np.float64)
        means = np.array([c.mean_workload for c in classes], dtype=np.float64)
        for j in range(scale.r):
            task_time = means * slowdowns[j]  # per-task seconds at level j
            # Pack against a deflated budget: per-task times jitter batch to
            # batch, so planning to land exactly on T systematically
            # overruns it.
            with np.errstate(divide="ignore"):
                per_core = np.floor(
                    ideal_time / np.maximum(task_time * (1.0 + headroom), 1e-300)
                )
            for i in range(len(classes)):
                if task_time[i] <= 0:
                    values[j, i] = 0.0
                elif task_time[i] * (1.0 + headroom) > ideal_time:
                    values[j, i] = np.inf  # one task alone blows the budget
                else:
                    values[j, i] = np.ceil(counts[i] / per_core[i])
        # A class that no longer fits T even at F_0 (workload drifted past
        # the first batch's level) must still be schedulable — F_0 is the
        # best the machine can do, so pin its F_0 demand to the fluid core
        # count instead of abandoning the whole search to the fallback.
        for i in range(len(classes)):
            if not np.isfinite(values[0, i]):
                values[0, i] = min(
                    float(np.ceil(fastest_row[i])), float(max(1, counts[i]))
                )

    return CCTable(
        scale=scale,
        class_names=tuple(c.function for c in classes),
        values=values,
        ideal_time=ideal_time,
    )


def cc_table_from_values(
    values: Sequence[Sequence[float]],
    scale: OperatingPointSpace,
    *,
    class_names: Sequence[str] | None = None,
    ideal_time: float = 1.0,
) -> CCTable:
    """Build a CC table directly from numbers (tests, the Fig. 3 example)."""
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 2:
        raise SearchError("CC values must be a 2-D array")
    k = array.shape[1]
    names = tuple(class_names) if class_names is not None else tuple(f"TC{i}" for i in range(k))
    return CCTable(scale=scale, class_names=names, values=array, ideal_time=ideal_time)
