"""Command-line interface.

``python -m repro <command>``:

* ``list`` — registered workloads, policies, machine presets and exhibits;
* ``run`` — one benchmark under one policy, with timing/energy and traces;
* ``compare`` — one benchmark under several policies, normalised to the
  first (``--policies`` defaults to the Cilk-normalised baseline set);
* ``figure`` — regenerate one exhibit (fig1/fig6/fig7/fig8/fig9/table3,
  plus the heterogeneous extension ``fig_hetero``);
* ``run-spec`` — run a JSON file: either a full scenario spec
  (:class:`repro.scenario.ScenarioSpec`) or a bare workload spec;
* ``bench`` — parallel cached sweep over (workload × policy × seed) cells
  (see :mod:`repro.experiments.parallel`);
* ``sweep`` — the same grid through the persistent
  :class:`~repro.experiments.sweep.SweepEngine`, streaming per-cell
  results as they complete (duplicate-heavy loads coalesce in flight);
  ``--fidelity model|auto`` serves cells from the analytic model tier;
* ``predict`` — the analytic companion model (:mod:`repro.model`) for
  one cell: O(1) makespan/energy prediction, no simulation;
* ``cache`` — result-cache maintenance: ``stats``, ``prune``, ``migrate``
  (see :mod:`repro.experiments.cachectl`);
* ``calibrate`` — re-measure the real kernels behind the workload costs;
* ``check`` — determinism lint, invariant model checking, race detection
  (see :mod:`repro.checks`).

Every command resolves workloads, policies, and machines through the
scenario registries (:mod:`repro.scenario.registry`) and runs simulations
through one :class:`~repro.scenario.session.Session`, so a policy or
workload registered by a plugin is immediately available everywhere.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.errors import ScenarioError
from repro.experiments import (
    fig1_rows,
    format_table,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig_hetero,
    run_table3,
)
from repro.scenario.registry import (
    MACHINES,
    POLICIES,
    WORKLOADS,
    baseline_policy_names,
    workload_names,
)
from repro.scenario.session import Session
from repro.scenario.spec import MachineSpec, PolicySpec, ScenarioSpec

EXHIBITS = ("fig1", "fig6", "fig7", "fig8", "fig9", "fig_hetero", "table3")


def _add_machine_arg(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--machine", choices=MACHINES.names(), default=None, metavar="PRESET",
        help="machine preset (default: opteron-8380; see `repro list`)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EEWA (IPDPS 2014) reproduction: simulate, compare, regenerate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads, policies, machines and exhibits")

    run = sub.add_parser("run", help="run one benchmark under one policy")
    run.add_argument("benchmark", choices=workload_names())
    run.add_argument("policy", choices=POLICIES.names())
    run.add_argument("--batches", type=int, default=None)
    run.add_argument(
        "--cores", type=int, default=None,
        help="core count override (default: the preset's own default)",
    )
    run.add_argument("--seed", type=int, default=11)
    _add_machine_arg(run)
    run.add_argument(
        "--core-levels", nargs="+", type=int, metavar="LEVEL",
        help="fixed per-core frequency levels (policies like wats need one; "
        "derived from EEWA's modal configuration when omitted)",
    )
    run.add_argument("--trace", action="store_true", help="print per-batch traces")
    run.add_argument(
        "--per-socket-dvfs", action="store_true",
        help="quad-core shared frequency planes (the physical Opteron 8380)",
    )
    run.add_argument("--json", metavar="PATH", help="write a JSON result summary")
    run.add_argument("--csv", metavar="PATH", help="write per-batch metrics as CSV")
    run.add_argument(
        "--thermal", action="store_true",
        help="record power traces and print a thermal-headroom report",
    )
    run.add_argument(
        "--faults", metavar="PATH",
        help="fault-injection spec JSON (see repro.faults.FaultSpec)",
    )

    cmp_ = sub.add_parser("compare", help="one benchmark under several policies")
    cmp_.add_argument("benchmark", choices=workload_names())
    cmp_.add_argument(
        "--policies", nargs="+", choices=POLICIES.names(), metavar="POLICY",
        default=list(baseline_policy_names()),
        help="policies to compare, normalised to the first "
        "(default: the Cilk-normalised baseline set)",
    )
    cmp_.add_argument(
        "--core-levels", nargs="+", type=int, metavar="LEVEL",
        help="fixed per-core levels for policies that need them "
        "(default: EEWA's modal configuration, Fig. 7 style)",
    )
    cmp_.add_argument("--batches", type=int, default=None)
    cmp_.add_argument(
        "--cores", type=int, default=None,
        help="core count override (default: the preset's own default)",
    )
    cmp_.add_argument("--seed", type=int, default=11)
    _add_machine_arg(cmp_)
    cmp_.add_argument(
        "--faults", metavar="PATH",
        help="fault-injection spec JSON applied to every policy",
    )

    fig = sub.add_parser("figure", help="regenerate one paper exhibit")
    fig.add_argument("exhibit", choices=EXHIBITS)
    fig.add_argument("--seed", type=int, default=11)

    spec = sub.add_parser(
        "run-spec",
        help="run a JSON spec file (full scenario spec or bare workload spec)",
    )
    spec.add_argument(
        "spec_file",
        help="path to a scenario JSON (workload/policy/machine/seeds) or a "
        "bare workload spec JSON",
    )
    spec.add_argument(
        "policy", nargs="?", choices=POLICIES.names(),
        help="policy to run (required for bare workload specs; overrides "
        "the policy of a scenario spec)",
    )
    spec.add_argument("--batches", type=int, default=None)
    spec.add_argument("--cores", type=int, default=None)
    spec.add_argument("--seed", type=int, default=None)
    spec.add_argument("--diagnose", action="store_true",
                      help="print the static workload diagnostics first")

    bench = sub.add_parser(
        "bench",
        help="parallel cached sweep over (workload × policy × seed) cells",
    )
    bench.add_argument(
        "--benchmarks", nargs="+", default=list(workload_names(table2_only=True)),
        choices=workload_names(), metavar="NAME",
    )
    bench.add_argument(
        "--policies", nargs="+", default=list(baseline_policy_names()),
        choices=POLICIES.names(), metavar="POLICY",
    )
    bench.add_argument("--seeds", nargs="+", type=int, default=[11, 23, 37])
    bench.add_argument("--batches", type=int, default=None)
    bench.add_argument("--cores", type=int, default=None)
    _add_machine_arg(bench)
    bench.add_argument(
        "--workers", type=int, default=None,
        help="process count (default: cpu count; 0/1 runs in-process)",
    )
    bench.add_argument(
        "--cache-dir", default=".repro-cache",
        help="result cache root (default: .repro-cache)",
    )
    bench.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    bench.add_argument(
        "--no-fast-forward", action="store_true",
        help="disable steady-state fast-forward (full event-by-event simulation)",
    )
    bench.add_argument("--json", metavar="PATH", help="write sweep results as JSON")
    bench.add_argument(
        "--faults", metavar="PATH",
        help="fault-injection spec JSON; runs each cell fault-free AND "
        "faulted and prints a resilience (degradation) report",
    )

    sweep = sub.add_parser(
        "sweep",
        help="streaming sweep through the persistent work-queue engine",
    )
    sweep.add_argument(
        "--benchmarks", nargs="+", default=list(workload_names(table2_only=True)),
        choices=workload_names(), metavar="NAME",
    )
    sweep.add_argument(
        "--policies", nargs="+", default=list(baseline_policy_names()),
        choices=POLICIES.names(), metavar="POLICY",
    )
    sweep.add_argument("--seeds", nargs="+", type=int, default=[11, 23, 37])
    sweep.add_argument("--batches", type=int, default=None)
    sweep.add_argument("--cores", type=int, default=None)
    _add_machine_arg(sweep)
    sweep.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="submit the whole grid N times (duplicates coalesce in flight "
        "or hit the cache — a dedup demonstration and load generator)",
    )
    sweep.add_argument(
        "--workers", type=int, default=None,
        help="worker process count (default: cpu count; 0/1 runs in-process)",
    )
    sweep.add_argument("--cache-dir", default=".repro-cache")
    sweep.add_argument("--no-cache", action="store_true")
    sweep.add_argument("--no-fast-forward", action="store_true")
    sweep.add_argument(
        "--chunk-target", type=float, default=0.25, metavar="SECONDS",
        help="per-IPC-round-trip budget for the adaptive chunk sizer",
    )
    sweep.add_argument(
        "--max-pending", type=int, default=10_000,
        help="backpressure bound on queued-but-undispatched cells",
    )
    sweep.add_argument(
        "--fidelity", choices=("sim", "model", "auto"), default="sim",
        help="cell fidelity: sim simulates everything (default); model "
        "forces the analytic predictor wherever expressible; auto serves "
        "model-eligible cells from the predictor and simulates the rest",
    )
    sweep.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-cell streaming lines (summary only)",
    )
    sweep.add_argument("--json", metavar="PATH", help="write sweep results as JSON")
    sweep.add_argument(
        "--remote", metavar="URL", default=None,
        help="stream the sweep through a running 'repro serve' instance "
        "(http://host:port or unix:/path.sock) instead of a local engine",
    )

    srv = sub.add_parser(
        "serve",
        help="serve streaming sweeps over HTTP (one shared engine, many clients)",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--port", type=int, default=None,
        help="TCP port (default 8377; 0 binds an ephemeral port)",
    )
    srv.add_argument(
        "--unix-socket", metavar="PATH", default=None,
        help="serve on a unix domain socket instead of TCP",
    )
    srv.add_argument(
        "--workers", type=int, default=0,
        help="engine worker processes (default 0: in-process, deterministic)",
    )
    srv.add_argument("--cache-dir", default=".repro-cache")
    srv.add_argument("--no-cache", action="store_true")
    srv.add_argument("--no-fast-forward", action="store_true")
    srv.add_argument(
        "--fidelity", choices=("sim", "model", "auto"), default="sim",
        help="default cell fidelity for requests that don't pick their own",
    )
    srv.add_argument(
        "--max-pending", type=int, default=None,
        help="admission bound on queued cells (full queue answers HTTP 429)",
    )
    srv.add_argument(
        "--verbose", action="store_true",
        help="log each request to stderr (default: quiet)",
    )

    predict = sub.add_parser(
        "predict",
        help="O(1) analytic model prediction for one cell (no simulation)",
    )
    predict.add_argument("benchmark", choices=workload_names())
    predict.add_argument("policy", choices=POLICIES.names())
    predict.add_argument("--batches", type=int, default=None)
    predict.add_argument(
        "--cores", type=int, default=None,
        help="core count override (default: the preset's own default)",
    )
    predict.add_argument("--seed", type=int, default=11)
    _add_machine_arg(predict)
    predict.add_argument(
        "--core-levels", nargs="+", type=int, metavar="LEVEL",
        help="fixed per-core frequency levels (pinned-cilk prediction)",
    )
    predict.add_argument(
        "--compare", action="store_true",
        help="also run the simulator and report the model's relative error",
    )

    cache = sub.add_parser(
        "cache", help="result-cache maintenance (stats, prune, migrate)"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats_p = cache_sub.add_parser(
        "stats", help="entry/byte counts and shard distribution"
    )
    cache_stats_p.add_argument(
        "--json", action="store_true",
        help="print machine-readable JSON instead of the text summary",
    )
    cache_prune_p = cache_sub.add_parser(
        "prune", help="evict old and/or excess entries (oldest first)"
    )
    cache_prune_p.add_argument(
        "--max-age-days", type=float, default=None,
        help="evict entries older than this many days",
    )
    cache_prune_p.add_argument(
        "--max-bytes", type=int, default=None,
        help="evict oldest entries until the cache fits this many bytes",
    )
    cache_migrate_p = cache_sub.add_parser(
        "migrate",
        help="flat→sharded layout migration + pack loose entries into "
        "per-shard indexes",
    )
    for sub_p in (cache_stats_p, cache_prune_p, cache_migrate_p):
        sub_p.add_argument("--cache-dir", default=".repro-cache")

    cal = sub.add_parser("calibrate", help="re-measure real kernel costs")
    cal.add_argument("--repeats", type=int, default=3)

    # Registered only so ``repro --help`` lists it; ``main`` hands the whole
    # argv tail to the checks runner before this parser ever sees it.
    sub.add_parser(
        "check",
        add_help=False,
        help="determinism lint, invariant model checking, race detection",
    )

    return parser


def _cmd_list() -> int:
    print("benchmarks (paper Table II):", ", ".join(workload_names(table2_only=True)))
    extras = [n for n in workload_names() if n not in workload_names(table2_only=True)]
    print("extra workloads:", ", ".join(extras))
    print("policies:")
    for entry in POLICIES:
        needs = " [needs --core-levels]" if entry.needs_core_levels else ""
        print(f"  {entry.name:8s}{needs} — {entry.description}")
    print("machine presets:")
    for preset in MACHINES:
        print(f"  {preset.name:20s} — {preset.description}")
    print("exhibits:", ", ".join(EXHIBITS))
    print("checks: repro check [--strict] (lint EEWA0xx, invariants EEWA1xx, races EEWA2xx)")
    return 0


def _machine_spec(
    cores: Optional[int],
    *,
    preset: Optional[str] = None,
    per_socket_dvfs: bool = False,
) -> MachineSpec:
    if per_socket_dvfs:
        if preset not in (None, "opteron-8380"):
            raise ScenarioError(
                "--per-socket-dvfs applies to the opteron-8380 preset only"
            )
        preset = "opteron-8380-socket"
    return MachineSpec(preset=preset or "opteron-8380", num_cores=cores)


def _load_faults(path: Optional[str]):
    """Load a fault spec from ``--faults PATH`` (``None`` passes through)."""
    if path is None:
        return None
    from repro.faults.spec import FaultSpec

    return FaultSpec.load(path)


def _resolve_levels(
    session: Session, scenario: ScenarioSpec, explicit: Optional[Sequence[int]]
) -> ScenarioSpec:
    """Fill in fixed core levels for policies that require them.

    Without ``--core-levels``, uses EEWA's modal configuration for the
    scenario's workload (the Fig. 7 convention) and says so.
    """
    entry = POLICIES.get(scenario.policy.name)
    if explicit is not None:
        if not (entry.needs_core_levels or entry.accepts_core_levels):
            raise ScenarioError(
                f"{entry.name} does not take fixed core levels"
            )
        return scenario.with_policy(
            PolicySpec(scenario.policy.name, core_levels=tuple(explicit))
        )
    if not entry.needs_core_levels or scenario.policy.core_levels is not None:
        return scenario
    levels = tuple(session.modal_eewa_levels(scenario))
    print(
        f"  note: {entry.name} runs on EEWA's modal configuration "
        f"{list(levels)} (pass --core-levels to override)"
    )
    return scenario.with_policy(
        PolicySpec(scenario.policy.name, core_levels=levels)
    )


def _cmd_run(args: argparse.Namespace) -> int:
    session = Session()
    faults = _load_faults(args.faults)
    scenario = ScenarioSpec(
        workload=args.benchmark,
        policy=args.policy,
        machine=_machine_spec(
            args.cores, preset=args.machine,
            per_socket_dvfs=args.per_socket_dvfs,
        ),
        seeds=(args.seed,),
        batches=args.batches,
        faults=faults,
    )
    scenario = _resolve_levels(session, scenario, args.core_levels)
    cores = scenario.build_machine().num_cores
    result = session.run_single(scenario, record_power_series=args.thermal)
    print(
        f"{args.benchmark} / {args.policy} on {cores} cores: "
        f"{result.total_time*1e3:.1f} ms, {result.total_joules:.2f} J "
        f"(avg {result.average_power:.0f} W), {result.tasks_executed} tasks"
    )
    if faults is not None and faults.active:
        denied = result.policy_stats.get("dvfs_denied", 0.0)
        print(
            f"  faults active ({args.faults}): "
            f"{int(denied)} DVFS denials observed by the policy"
        )
    print(
        f"  energy breakdown: running {result.running_joules:.1f} J, "
        f"spinning {result.spin_joules:.1f} J, "
        f"baseline {result.baseline_joules:.1f} J"
    )
    if args.trace:
        print("  per-batch (duration ms | cores per level):")
        for bt in result.trace.batches:
            print(
                f"    batch {bt.batch_index:3d}: {bt.duration*1e3:8.2f} | "
                f"{bt.level_histogram}"
            )
    if args.thermal:
        from repro.analysis.thermal import thermal_report

        report = thermal_report(result)
        print(
            f"  thermal: peak {report.peak_c:.1f} C "
            f"(throttle at {report.params.throttle_c:.0f} C, "
            f"{report.total_throttle_seconds*1e3:.1f} ms above)"
        )
    if args.json:
        from repro.sim.export import result_to_json

        with open(args.json, "w") as fh:
            fh.write(result_to_json(result))
        print(f"  wrote {args.json}")
    if args.csv:
        from repro.sim.export import batches_to_csv

        with open(args.csv, "w") as fh:
            fh.write(batches_to_csv(result))
        print(f"  wrote {args.csv}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    session = Session()
    machine = _machine_spec(args.cores, preset=args.machine)
    cores = machine.build().num_cores
    faults = _load_faults(args.faults)
    scenarios = [
        _resolve_levels(
            session,
            ScenarioSpec(
                workload=args.benchmark, policy=name, machine=machine,
                seeds=(args.seed,), batches=args.batches, faults=faults,
            ),
            args.core_levels if POLICIES.get(name).needs_core_levels else None,
        )
        for name in args.policies
    ]
    outcomes = session.run_grid(scenarios)
    base = outcomes[0]
    rows = [
        (
            o.policy,
            o.time_mean * 1e3,
            o.energy_mean,
            o.time_mean / base.time_mean,
            o.energy_mean / base.energy_mean,
        )
        for o in outcomes
    ]
    suffix = f", faults: {args.faults}" if faults is not None else ""
    print(
        format_table(
            ["policy", "time (ms)", "energy (J)", f"t/{base.policy}", f"E/{base.policy}"],
            rows,
            title=f"{args.benchmark} on {cores} cores (seed {args.seed}{suffix})",
        )
    )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    seeds = (args.seed,)
    if args.exhibit == "fig1":
        print(
            format_table(
                ["schedule", "time (s)", "energy (J)"],
                fig1_rows(0.1),
                title="Fig. 1 — four dual-core schedules + simulated EEWA",
            )
        )
    elif args.exhibit == "fig6":
        print(run_fig6(seeds=seeds).table())
    elif args.exhibit == "fig7":
        print(run_fig7(seeds=seeds).table())
    elif args.exhibit == "fig8":
        print(run_fig8(seed=args.seed).table())
    elif args.exhibit == "fig9":
        print(run_fig9(seeds=seeds).table())
    elif args.exhibit == "fig_hetero":
        print(run_fig_hetero(seeds=seeds).table())
    elif args.exhibit == "table3":
        print(run_table3(seed=args.seed).table())
    return 0


def _load_run_spec_scenario(args: argparse.Namespace) -> ScenarioSpec:
    """Build the scenario for ``run-spec``: scenario JSON or workload JSON."""
    import json

    from repro.workloads.io import spec_from_dict

    try:
        with open(args.spec_file) as fh:
            data = json.load(fh)
    except OSError as exc:
        raise ScenarioError(f"cannot read {args.spec_file}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"{args.spec_file}: invalid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ScenarioError(f"{args.spec_file}: expected a JSON object")

    if "classes" in data:  # bare workload spec (legacy format)
        if args.policy is None:
            raise ScenarioError(
                "a policy argument is required when running a bare workload "
                "spec (or use a full scenario JSON with a 'policy' field)"
            )
        scenario = ScenarioSpec(
            workload=spec_from_dict(data),
            policy=args.policy,
            machine=MachineSpec(num_cores=args.cores or 16),
            seeds=(args.seed if args.seed is not None else 11,),
            batches=args.batches,
        )
    else:
        # Overrides go through dataclasses.replace so every field the
        # override does not touch (notably ``faults``) is preserved.
        from dataclasses import replace as _replace

        scenario = ScenarioSpec.from_dict(data)
        if args.policy is not None:
            scenario = scenario.with_policy(args.policy)
        if args.cores is not None:
            scenario = _replace(
                scenario,
                machine=MachineSpec(
                    preset=scenario.machine.preset, num_cores=args.cores
                ),
            )
        if args.seed is not None:
            scenario = scenario.with_seeds((args.seed,))
        if args.batches is not None:
            scenario = _replace(scenario, batches=args.batches)
    return scenario


def _cmd_run_spec(args: argparse.Namespace) -> int:
    from repro.workloads.validation import diagnose

    session = Session()
    scenario = _load_run_spec_scenario(args)
    scenario = _resolve_levels(session, scenario, None)
    cores = scenario.build_machine().num_cores
    if args.diagnose:
        print(diagnose(scenario.resolve_workload(), cores).summary())
        print()
    outcome = session.run(scenario)
    result = outcome.first
    seeds = list(scenario.seeds)
    suffix = f" (mean over seeds {seeds})" if len(seeds) > 1 else ""
    print(
        f"{scenario.workload_name} / {scenario.policy.name} on {cores} cores: "
        f"{outcome.time_mean*1e3:.1f} ms, {outcome.energy_mean:.2f} J, "
        f"{result.tasks_executed} tasks{suffix}"
    )
    for bt in result.trace.batches:
        print(f"  batch {bt.batch_index:3d}: {bt.duration*1e3:8.2f} ms | "
              f"{bt.level_histogram}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import time

    session = Session(
        workers=args.workers,
        cache_dir=None if args.no_cache else args.cache_dir,
        fast_forward=not args.no_fast_forward,
    )
    with session:
        machine = _machine_spec(args.cores, preset=args.machine)
        cores = machine.build().num_cores
        faults = _load_faults(args.faults)
        scenarios = [
            _resolve_levels(
                session,
                ScenarioSpec(
                    workload=name, policy=policy, machine=machine,
                    seeds=tuple(args.seeds), batches=args.batches,
                ),
                None,
            )
            for name in args.benchmarks
            for policy in args.policies
        ]
        # With --faults, the faulted twins ride in the SAME fan-out as the
        # fault-free baselines, so the pool and cache see one sweep.
        faulted_scenarios = (
            [s.with_faults(faults) for s in scenarios] if faults is not None else []
        )
        started = time.perf_counter()
        all_outcomes = session.run_grid(scenarios + faulted_scenarios)
        outcomes = all_outcomes[: len(scenarios)]
        faulted = all_outcomes[len(scenarios):]
        wall = time.perf_counter() - started
        rows = [
            (
                o.benchmark,
                o.policy,
                o.time_mean * 1e3,
                o.energy_mean,
            )
            for o in outcomes
        ]
        print(
            format_table(
                ["benchmark", "policy", "time (ms)", "energy (J)"],
                rows,
                title=(
                    f"bench sweep — {len(args.benchmarks)} benchmarks x "
                    f"{len(args.policies)} policies x {len(args.seeds)} seeds"
                ),
            )
        )
        resilience_rows = []
        if faulted:
            for clean, dirty in zip(outcomes, faulted):
                clean_tasks = sum(r.tasks_executed for r in clean.results)
                dirty_tasks = sum(r.tasks_executed for r in dirty.results)
                resilience_rows.append(
                    (
                        clean.benchmark,
                        clean.policy,
                        "ok" if dirty_tasks == clean_tasks else
                        f"LOST {clean_tasks - dirty_tasks}",
                        dirty.time_mean / clean.time_mean,
                        dirty.energy_mean / clean.energy_mean,
                    )
                )
            print()
            print(
                format_table(
                    ["benchmark", "policy", "tasks", "time x", "energy x"],
                    resilience_rows,
                    title=f"resilience report — degradation under {args.faults}",
                    float_fmt="{:.3f}",
                )
            )
        stats = session.stats
        simulated = sum(r.batches_simulated for o in outcomes for r in o.results)
        fast_forwarded = sum(
            r.batches_fast_forwarded for o in outcomes for r in o.results
        )
        print(
            f"  {stats.cells} cells in {wall:.2f} s: {stats.executed} simulated, "
            f"{stats.cache_hits} from cache, {stats.deduplicated} deduplicated"
        )
        print(
            f"  batches: {simulated} simulated, {fast_forwarded} fast-forwarded"
        )
        if args.json:
            import json
            import os as _os
            import platform

            payload = {
                "machine_cores": cores,
                "seeds": list(args.seeds),
                "wall_seconds": wall,
                "fast_forward": not args.no_fast_forward,
                "machine_info": {
                    "cpu_count": _os.cpu_count(),
                    "python": platform.python_version(),
                },
                "stats": {
                    "cells": stats.cells,
                    "executed": stats.executed,
                    "cache_hits": stats.cache_hits,
                    "deduplicated": stats.deduplicated,
                    "batches_simulated": simulated,
                    "batches_fast_forwarded": fast_forwarded,
                },
                "cells": [
                    {
                        "benchmark": o.benchmark,
                        "policy": o.policy,
                        "time_mean_s": o.time_mean,
                        "energy_mean_j": o.energy_mean,
                        "per_seed": [
                            {
                                "total_time": r.total_time,
                                "total_joules": r.total_joules,
                                "tasks_executed": r.tasks_executed,
                                "batches_simulated": r.batches_simulated,
                                "batches_fast_forwarded": r.batches_fast_forwarded,
                            }
                            for r in o.results
                        ],
                    }
                    for o in outcomes
                ],
            }
            if faulted:
                payload["faults"] = faults.to_dict()
                payload["resilience"] = [
                    {
                        "benchmark": benchmark,
                        "policy": policy,
                        "completed": status == "ok",
                        "time_ratio": time_ratio,
                        "energy_ratio": energy_ratio,
                    }
                    for benchmark, policy, status, time_ratio, energy_ratio
                    in resilience_rows
                ]
            with open(args.json, "w") as fh:
                json.dump(payload, fh, indent=2)
            print(f"  wrote {args.json}")
        return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import time

    if args.remote is not None:
        return _cmd_sweep_remote(args)
    session = Session(
        workers=args.workers,
        cache_dir=None if args.no_cache else args.cache_dir,
        fast_forward=not args.no_fast_forward,
        fidelity=args.fidelity,
    )
    with session:
        engine = session.engine.configure(
            chunk_target_seconds=args.chunk_target, max_pending=args.max_pending
        )
        machine = _machine_spec(args.cores, preset=args.machine)
        cores = machine.build().num_cores
        scenarios = [
            _resolve_levels(
                session,
                ScenarioSpec(
                    workload=name, policy=policy, machine=machine,
                    seeds=tuple(args.seeds), batches=args.batches,
                ),
                None,
            )
            for name in args.benchmarks
            for policy in args.policies
        ]
        from repro.experiments.parallel import CellSpec

        cells = [
            CellSpec.from_scenario(scenario, seed)
            for _ in range(args.repeat)
            for scenario in scenarios
            for seed in scenario.seeds
        ]
        started = time.perf_counter()
        tickets = engine.submit_many(cells)
        submitted = time.perf_counter() - started
        streamed = []
        for ticket in engine.as_completed(tickets):
            outcome = ticket.result()
            latency = time.perf_counter() - started
            streamed.append((ticket, outcome, latency))
            if not args.quiet:
                spec = ticket.spec
                if outcome.source == "model":
                    source = "model cached" if outcome.from_cache else "model"
                else:
                    source = "cached" if outcome.from_cache else "simulated"
                print(
                    f"  done {spec.benchmark}/{spec.policy} seed {spec.seed}: "
                    f"{outcome.result.total_time*1e3:.1f} ms sim, "
                    f"{outcome.result.total_joules:.2f} J [{source}]"
                )
        wall = time.perf_counter() - started
        stats = engine.stats
        dedup_rate = stats.deduplicated / stats.cells if stats.cells else 0.0
        print(
            f"  {stats.cells} submissions in {wall:.2f} s "
            f"({stats.cells / wall:.0f}/s): {stats.executed} simulated in "
            f"{stats.chunks} chunks, {stats.model_cells} model-predicted, "
            f"{stats.cache_hits} from cache "
            f"({stats.memo_hits} memo), {stats.deduplicated} coalesced in flight "
            f"(dedup rate {dedup_rate:.1%}), {stats.cancelled} cancelled"
        )
        if args.json:
            import json

            latencies = sorted(lat for _, _, lat in streamed)

            def _pct(p: float) -> float:
                if not latencies:
                    return 0.0
                idx = min(len(latencies) - 1, int(p * (len(latencies) - 1)))
                return latencies[idx]

            payload = {
                "machine_cores": cores,
                "seeds": list(args.seeds),
                "repeat": args.repeat,
                "wall_seconds": wall,
                "submit_seconds": submitted,
                "fast_forward": not args.no_fast_forward,
                "fidelity": args.fidelity,
                "stats": {
                    "submissions": stats.cells,
                    "executed": stats.executed,
                    "model_cells": stats.model_cells,
                    "cache_hits": stats.cache_hits,
                    "memo_hits": stats.memo_hits,
                    "deduplicated": stats.deduplicated,
                    "cancelled": stats.cancelled,
                    "chunks": stats.chunks,
                    "dedup_hit_rate": dedup_rate,
                    "throughput_per_sec": stats.cells / wall if wall > 0 else 0.0,
                    "latency_p50_s": _pct(0.50),
                    "latency_p99_s": _pct(0.99),
                },
                "cells": [
                    {
                        "benchmark": t.spec.benchmark,
                        "policy": t.spec.policy,
                        "seed": t.spec.seed,
                        "from_cache": o.from_cache,
                        "source": o.source,
                        "total_time": o.result.total_time,
                        "total_joules": o.result.total_joules,
                        "latency_s": lat,
                    }
                    for t, o, lat in streamed
                ],
            }
            with open(args.json, "w") as fh:
                json.dump(payload, fh, indent=2)
            print(f"  wrote {args.json}")
        return 0


def _cmd_sweep_remote(args: argparse.Namespace) -> int:
    """``repro sweep --remote URL``: same grid, streamed through a server.

    Core-level resolution for policies that need it happens server-side
    (the server owns the shared engine and its cache), so the scenarios
    ship as written.
    """
    import time

    from repro.service.client import ServiceError, SweepServiceClient

    machine = _machine_spec(args.cores, preset=args.machine)
    scenarios = [
        ScenarioSpec(
            workload=name, policy=policy, machine=machine,
            seeds=tuple(args.seeds), batches=args.batches,
        )
        for _ in range(args.repeat)
        for name in args.benchmarks
        for policy in args.policies
    ]
    client = SweepServiceClient(args.remote)
    started = time.perf_counter()
    frames: list[tuple[dict, float]] = []
    terminal: Optional[dict] = None
    try:
        for frame in client.stream(scenarios, fidelity=args.fidelity):
            if frame["frame"] != "cell":
                terminal = frame
                break
            latency = time.perf_counter() - started
            frames.append((frame, latency))
            if not args.quiet:
                if frame["source"] == "model":
                    source = "model cached" if frame["from_cache"] else "model"
                else:
                    source = "cached" if frame["from_cache"] else "simulated"
                print(
                    f"  done {frame['benchmark']}/{frame['policy']} "
                    f"seed {frame['seed']}: "
                    f"{frame['result']['total_time_s']*1e3:.1f} ms sim, "
                    f"{frame['result']['total_joules']:.2f} J [{source}]"
                )
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    wall = time.perf_counter() - started
    if terminal is None or terminal["frame"] == "error":
        detail = "" if terminal is None else terminal.get("detail", "")
        code = "disconnect" if terminal is None else terminal.get("code")
        print(
            f"error: stream ended after {len(frames)} cells "
            f"({code}): {detail}",
            file=sys.stderr,
        )
        return 1
    rate = terminal["streamed"] / wall if wall > 0 else 0.0
    sources = ", ".join(
        f"{count} {name}" for name, count in sorted(terminal["sources"].items())
    )
    print(
        f"  {terminal['cells']} cells streamed from {args.remote} in "
        f"{wall:.2f} s ({rate:.0f}/s): {terminal['from_cache']} from cache "
        f"({sources})"
    )
    if args.json:
        import json

        payload = {
            "remote": args.remote,
            "seeds": list(args.seeds),
            "repeat": args.repeat,
            "wall_seconds": wall,
            "fidelity": args.fidelity,
            "summary": {k: v for k, v in terminal.items() if k != "frame"},
            "cells": [
                {
                    "benchmark": f["benchmark"],
                    "policy": f["policy"],
                    "seed": f["seed"],
                    "from_cache": f["from_cache"],
                    "source": f["source"],
                    "total_time": f["result"]["total_time_s"],
                    "total_joules": f["result"]["total_joules"],
                    "latency_s": lat,
                }
                for f, lat in frames
            ],
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"  wrote {args.json}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import DEFAULT_PORT, serve

    server = serve(
        host=args.host,
        port=DEFAULT_PORT if args.port is None else args.port,
        unix_socket=args.unix_socket,
        workers=args.workers,
        cache_dir=None if args.no_cache else args.cache_dir,
        fast_forward=not args.no_fast_forward,
        fidelity=args.fidelity,
        max_pending=args.max_pending,
        verbose=args.verbose,
    )
    if args.unix_socket is not None:
        where = f"unix:{args.unix_socket}"
    else:
        where = f"http://{args.host}:{server.server_port}"
    print(f"serving sweeps on {where} (Ctrl-C to drain and stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\ninterrupt: draining in-flight streams...")
    finally:
        for line in server.drain_and_close(call_shutdown=False):
            print(f"  shutdown: {line}", file=sys.stderr)
    print("server closed")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.model import MAX_RELATIVE_ERROR, classify_cell, predict_cell

    scenario = ScenarioSpec(
        workload=args.benchmark,
        policy=PolicySpec(
            args.policy,
            core_levels=(
                None if args.core_levels is None else tuple(args.core_levels)
            ),
        ),
        machine=_machine_spec(args.cores, preset=args.machine),
        seeds=(args.seed,),
        batches=args.batches,
    )
    machine = scenario.build_machine()
    program = tuple(scenario.program(args.seed))
    verdict = classify_cell(
        program, args.policy, machine,
        core_levels=scenario.policy.core_levels,
    )
    result = predict_cell(
        program, args.policy, machine, args.seed,
        core_levels=scenario.policy.core_levels,
    )
    if result is None:
        reason = verdict.reason or "seed-dependent (rotation-sensitive) schedule"
        print(f"{args.benchmark} / {args.policy}: no analytic form — {reason}")
        return 2
    print(
        f"{args.benchmark} / {args.policy} on {machine.num_cores} cores "
        f"(model): {result.total_time*1e3:.1f} ms, "
        f"{result.total_joules:.2f} J (avg {result.average_power:.0f} W), "
        f"{result.tasks_executed} tasks"
    )
    print(
        f"  energy breakdown: running {result.running_joules:.1f} J, "
        f"spinning {result.spin_joules:.1f} J, "
        f"baseline {result.baseline_joules:.1f} J"
    )
    if verdict.eligible:
        print(
            f"  within the calibrated envelope "
            f"(error bound {MAX_RELATIVE_ERROR:.0%})"
        )
    else:
        print(f"  outside the calibrated envelope: {verdict.reason}")
    if args.compare:
        sim = Session().run_single(scenario)
        time_err = abs(result.total_time - sim.total_time) / sim.total_time
        joule_err = abs(result.total_joules - sim.total_joules) / sim.total_joules
        print(
            f"  simulator: {sim.total_time*1e3:.1f} ms, "
            f"{sim.total_joules:.2f} J — relative error "
            f"{time_err:.4%} time, {joule_err:.4%} energy"
        )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.experiments import cachectl

    if args.cache_command == "stats":
        stats = cachectl.cache_stats(args.cache_dir)
        if args.json:
            import dataclasses
            import json

            print(json.dumps(dataclasses.asdict(stats), indent=2, sort_keys=True))
        else:
            print(stats.summary())
        return 0
    if args.cache_command == "prune":
        if args.max_age_days is None and args.max_bytes is None:
            raise ScenarioError(
                "cache prune needs --max-age-days and/or --max-bytes"
            )
        result = cachectl.prune(
            args.cache_dir,
            max_age_days=args.max_age_days,
            max_bytes=args.max_bytes,
        )
        print(result.summary())
        return 0
    result = cachectl.migrate(args.cache_dir)
    print(result.summary())
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.kernels.profile import REFERENCE_COSTS, measure_kernel_costs

    costs = measure_kernel_costs(repeats=args.repeats)
    rows = [
        (bench, cls, costs[(bench, cls)] * 1e3, REFERENCE_COSTS[(bench, cls)] * 1e3)
        for (bench, cls) in sorted(costs)
    ]
    print(
        format_table(
            ["benchmark", "stage", "measured (ms)", "frozen (ms)"],
            rows,
            title=f"kernel stage costs ({args.repeats} repeats, median)",
            float_fmt="{:.2f}",
        )
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "check":
        from repro.checks.runner import main as check_main

        return check_main(list(argv[1:]))
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "figure":
            return _cmd_figure(args)
        if args.command == "run-spec":
            return _cmd_run_spec(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "predict":
            return _cmd_predict(args)
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "calibrate":
            return _cmd_calibrate(args)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Sessions and servers are context-managed, so the unwind that got
        # us here already closed them; 130 = 128 + SIGINT, the shell
        # convention for death-by-Ctrl-C.
        print("interrupted", file=sys.stderr)
        return 130
    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())


__all__ = ["main"]
