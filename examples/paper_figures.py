#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

Prints, in order: Fig. 1 (the motivating dual-core example), Fig. 6
(normalised time/energy for the seven benchmarks), Fig. 7 (fixed
asymmetric configurations), Fig. 8 (SHA-1 frequency histogram per batch),
Fig. 9 (DMC scalability) and Table III (adjuster overhead).

This is the long-form version of the benchmark harness
(``pytest benchmarks/ --benchmark-only`` asserts the same shapes); expect
a few minutes of simulation.

Usage:
    python examples/paper_figures.py [--quick]
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    fig1_rows,
    format_table,
    frequency_timeline,
    grouped_bar_chart,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_table3,
)


def main() -> None:
    quick = "--quick" in sys.argv
    seeds = (11,) if quick else (11, 23, 37)

    t0 = time.time()
    print("=" * 72)
    rows = fig1_rows(0.1)
    print(format_table(
        ["schedule", "time (s)", "energy (J)"], rows,
        title="Fig. 1 — four dual-core schedules + simulated EEWA",
    ))

    print("\n" + "=" * 72)
    fig6 = run_fig6(seeds=seeds)
    print(fig6.table())
    print()
    print(grouped_bar_chart(
        [r.benchmark for r in fig6.rows],
        {
            "cilk  ": [r.energy_cilk for r in fig6.rows],
            "cilk-d": [r.energy_cilk_d for r in fig6.rows],
            "eewa  ": [r.energy_eewa for r in fig6.rows],
        },
        title="normalised energy (lower is better)",
        width=36,
    ))

    print("\n" + "=" * 72)
    print(run_fig7(seeds=seeds).table())

    print("\n" + "=" * 72)
    fig8 = run_fig8()
    print(fig8.table())
    print()
    print(frequency_timeline(
        fig8.histograms, fig8.frequencies_ghz,
        title="SHA-1 per-core frequency timeline (digit = level, 0 fastest)",
    ))

    print("\n" + "=" * 72)
    print(run_fig9(seeds=seeds).table())

    print("\n" + "=" * 72)
    print(run_table3().table())

    print(f"\n[all exhibits regenerated in {time.time()-t0:.0f}s]")


if __name__ == "__main__":
    main()
