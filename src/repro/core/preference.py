"""Preference lists — the rob-the-weaker-first stealing order.

Section III-B, Fig. 5: a core in c-group ``G_i`` escalates through groups in
the order ``{G_i, G_{i+1}, ..., G_{u-1}, G_{i-1}, ..., G_0}`` — its own
group first, then progressively weaker (slower) groups, and only then
stronger groups, nearest-stronger first.

The intuition (from WATS): when a fast core runs dry it should drain the
slow cores' queues (the weaker groups struggle more with the same work),
whereas a slow core should touch a fast group's queue only as a last
resort — that is the Fig. 1(c) failure mode EEWA avoids.

Preference lists are renewed every batch because different batches may use
different c-groups (Section III-B).
"""

from __future__ import annotations

from repro.errors import SchedulingError


def preference_order(group_index: int, num_groups: int) -> tuple[int, ...]:
    """The stealing order for a core in ``G_{group_index}`` of ``u`` groups.

    >>> preference_order(1, 4)
    (1, 2, 3, 0)
    >>> preference_order(2, 4)
    (2, 3, 1, 0)
    """
    if num_groups < 1:
        raise SchedulingError("num_groups must be >= 1")
    if not 0 <= group_index < num_groups:
        raise SchedulingError(
            f"group index {group_index} out of range [0, {num_groups})"
        )
    weaker = range(group_index, num_groups)  # G_i, G_{i+1}, ..., G_{u-1}
    stronger = range(group_index - 1, -1, -1)  # G_{i-1}, ..., G_0
    return tuple(weaker) + tuple(stronger)


def preference_lists(num_groups: int) -> list[tuple[int, ...]]:
    """Preference order for every group index (one list per group)."""
    return [preference_order(i, num_groups) for i in range(num_groups)]
