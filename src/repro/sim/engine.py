"""Deterministic discrete-event engine.

The engine executes an iteration-based program (a sequence of
:class:`~repro.runtime.task.Batch` objects) on a simulated
:class:`~repro.machine.topology.MachineConfig` under a pluggable
:class:`~repro.runtime.policy.SchedulerPolicy`, producing a
:class:`SimResult` with exact timing, per-core energy, and traces.

Simulation loop
---------------
Each free core asks its policy for an :class:`~repro.runtime.policy.Action`:

* ``RunTask`` — the engine charges the acquire cost (pop or steal) and the
  task's execution time at the core's current frequency, then schedules a
  ``TASK_DONE`` event. Children of the task are spawned (pushed through the
  policy) the moment it starts, waking idle cores.
* ``SetFrequency`` — the core stalls for the DVFS latency, then asks again.
* ``Wait`` — nothing stealable: the core spins (billed at full busy power,
  like an MIT Cilk worker) until the engine wakes it on new work.

When a batch drains, the policy's ``on_batch_end`` hook may return a
:class:`~repro.runtime.policy.BatchAdjustment` — this is where EEWA's
frequency adjuster runs. Its DVFS requests are applied (with latency) and
its decision overhead delays the next batch launch, exactly the cost
Table III accounts for.

Wakeup strategy
---------------
The engine keeps an explicit *idle set*: the ids of cores that returned
``Wait`` and are spinning with no wake already in flight. A batch launch
wakes the whole set. A mid-run spawn of ``n`` children wakes only the
``min(n, len(idle))`` lowest-numbered idle cores — one candidate per new
task — instead of scheduling a ``CORE_READY`` thundering herd for every
spinning core. Because wakes are issued in ascending core-id order (the
same order the old wake-everyone scheme dispatched in) and a woken core
that finds nothing simply re-enters the idle set, observable results are
unchanged on flat programs; only redundant no-op dispatches are elided.
Cores never receive duplicate zero-delay wakes: a core leaves the idle set
the moment a wake is scheduled for it and rejoins only by waiting again.

Steady-state fast-forward
-------------------------
Iteration-based programs converge: once a policy's plan stops changing,
every remaining batch is dynamically identical and re-simulating its events
is pure waste. At each *clean* batch boundary (event heap empty, no
mid-batch DVFS request since the previous boundary) the engine digests the
boundary state — policy :meth:`~repro.runtime.policy.SchedulerPolicy.state_fingerprint`,
RNG stream positions, per-core frequency levels, pending adjuster overhead —
and snapshots every accumulator. Three consecutive boundaries with equal
fingerprints, equal upcoming batch specs, and two bitwise-equal per-batch
delta sets (Δtime, per-core Δenergy breakdowns, Δpolicy-counters, batch
trace shape, minted-task templates) prove a steady state; the engine then
*replays* the recorded delta arithmetically for every remaining identical
batch instead of simulating it. Replay performs the same additions the full
simulation would, in the same order, so on machines where the arithmetic is
float-exact (see :func:`repro.machine.topology.dyadic_test_machine`) the
:class:`SimResult` is bit-identical. Any bail-out — a policy returning
``None`` from ``state_fingerprint()``, deep tracing or power-series
recording, a mid-batch ``SetFrequency``, events pending at the boundary, or
any fingerprint/spec/delta mismatch — falls back to full simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.errors import SchedulingError, SimulationError
from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultSpec
from repro.machine.core import CoreState, SimCore
from repro.machine.energy import EnergyMeter
from repro.machine.topology import MachineConfig
from repro.runtime.barrier import BatchBarrier
from repro.runtime.policy import (
    Action,
    RunTask,
    SchedulerPolicy,
    SetFrequency,
    Wait,
)
from repro.runtime.pools import PoolObserver
from repro.runtime.task import Batch, Task, TaskFactory, iter_programs_batches
from repro.sim.events import EventKind, EventQueue
from repro.sim.rng import RngStreams
from repro.sim.trace import (
    LAUNCHER_ACTOR,
    BatchTrace,
    DvfsTransition,
    TaskEventKind,
    TraceRecorder,
)

#: Hard cap on processed events — a runaway-policy backstop, far above any
#: legitimate run (each task costs a handful of events).
DEFAULT_MAX_EVENTS = 50_000_000

#: Version tag of the engine's observable behaviour. Part of the parallel
#: runner's cache key: bump it whenever an engine change may alter any
#: simulated result, so stale cached results can never be served.
ENGINE_VERSION = "eewa-engine-4"

# Hoisted enum members: the run loop compares kinds millions of times and
# attribute loads on the Enum class are Python-level descriptor calls.
_TASK_DONE = EventKind.TASK_DONE
_DVFS_DONE = EventKind.DVFS_DONE
_CORE_READY = EventKind.CORE_READY
_BATCH_LAUNCH = EventKind.BATCH_LAUNCH

_SPINNING = CoreState.SPINNING
_RUNNING = CoreState.RUNNING
_TRANSITION = CoreState.TRANSITION
_PARKED = CoreState.PARKED


@dataclass
class SimResult:
    """Everything observable from one simulated run."""

    policy_name: str
    machine: MachineConfig
    total_time: float
    total_joules: float
    core_joules: float
    baseline_joules: float
    spin_joules: float
    running_joules: float
    tasks_executed: int
    batches_executed: int
    trace: TraceRecorder
    meter: EnergyMeter
    tasks: list[Task] = field(repr=False, default_factory=list)
    adjust_overhead_seconds: float = 0.0
    policy_stats: dict[str, float] = field(default_factory=dict)
    #: How the batches were executed: event-by-event simulation vs
    #: steady-state delta replay. Always sums to ``batches_executed``.
    #: Deliberately *not* part of the result fingerprint — a fast-forwarded
    #: run must compare bit-identical to a full one.
    batches_simulated: int = 0
    batches_fast_forwarded: int = 0

    @property
    def average_power(self) -> float:
        """Mean whole-machine power draw in watts."""
        if self.total_time <= 0:
            return 0.0
        return self.total_joules / self.total_time

    def energy_vs(self, other: "SimResult") -> float:
        """Energy of this run relative to ``other`` (1.0 = equal)."""
        return self.total_joules / other.total_joules

    def time_vs(self, other: "SimResult") -> float:
        """Time of this run relative to ``other`` (1.0 = equal)."""
        return self.total_time / other.total_time


@dataclass
class _BoundarySnapshot:
    """Everything the fast-forward detector compares between boundaries."""

    pos: int  # index of the batch about to launch
    time: float
    fingerprint: str
    #: per-core (joules, seconds, joules_by_state, seconds_by_state,
    #: seconds_by_level) copies
    accounts: list[tuple]
    #: (tasks_executed, tasks_stolen, local_pops, failed_scans,
    #: cross_group_steals, extra-dict copy)
    stats: tuple
    n_batches: int
    n_transitions: int
    n_finished: int
    factory_next: int
    tasks_executed: int


class Simulator:
    """Runs one program under one policy on one machine.

    Also implements the :class:`~repro.runtime.policy.RuntimeContext`
    protocol handed to policies.
    """

    def __init__(
        self,
        machine: MachineConfig,
        policy: SchedulerPolicy,
        *,
        seed: int = 0,
        keep_tasks: bool = True,
        max_events: int = DEFAULT_MAX_EVENTS,
        record_power_series: bool = False,
        record_task_events: bool = False,
        fast_forward: bool = True,
        faults: Optional[FaultSpec] = None,
    ) -> None:
        self._machine = machine
        self._policy = policy
        self._rng = RngStreams(seed)
        self._keep_tasks = keep_tasks
        self._max_events = max_events
        self._record_task_events = record_task_events
        # Deep traces and power series record *inside* batches, which delta
        # replay cannot reproduce — those modes force full simulation.
        self._fast_forward = (
            fast_forward and not record_task_events and not record_power_series
        )
        # Fault injection draws from its own RNG child, so a fault-free run
        # is bit-identical whether or not this feature exists. Fault draws
        # are per-event, which delta replay cannot reproduce — active
        # faults opt the run out of fast-forward entirely.
        self._injector: Optional[FaultInjector] = None
        #: core_id -> seq of the CORE_READY event that ends its stall.
        self._stalled: dict[int, int] = {}
        if faults is not None and faults.active:
            self._injector = FaultInjector(faults, self._rng.spawn_child("faults"))
            self._fast_forward = False
        self._ff_prev: Optional[_BoundarySnapshot] = None
        self._ff_delta: Optional[tuple] = None
        self._ff_saw_dvfs_request = False
        self._batches_simulated = 0
        self._batches_fast_forwarded = 0
        # Which core is currently driving policy code; the batch launcher
        # when root tasks are being placed. Only used for event attribution.
        self._trace_actor = LAUNCHER_ACTOR

        # Each core carries its own (one-type) ladder, type and IPC scale;
        # on homogeneous machines ladder_of returns machine.scale itself
        # and the op-index maps are identities, so this is the exact
        # pre-operating-point layout.
        self._cores = [
            SimCore(
                core_id=i,
                scale=machine.ladder_of(i),
                core_type=machine.core_type_of(i),
                ipc_scale=machine.ipc_of(i),
            )
            for i in range(machine.num_cores)
        ]
        self._ladders = [machine.ladder_of(i) for i in range(machine.num_cores)]
        self._op_maps = [
            machine.op_index_map_of(i) for i in range(machine.num_cores)
        ]
        self._meter = EnergyMeter(
            self._cores,
            machine.power,
            type_powers={t: machine.power_of(t) for t in machine.scale.types},
            record_series=record_power_series,
        )
        self._queue = EventQueue()
        self._barrier = BatchBarrier()
        self._trace = TraceRecorder()
        self._factory = TaskFactory()

        self._batches: list[Batch] = []
        self._next_batch_pos = 0
        self._pending_adjust_overhead = 0.0
        #: Spinning cores with no wake in flight — the targets of the next
        #: wakeup wave. See "Wakeup strategy" in the module docstring.
        self._idle: set[int] = set()
        self._inflight: dict[int, Task] = {}
        self._finished_tasks: list[Task] = []
        self._tasks_executed = 0
        self._done = False
        # Per-core *requested* DVFS levels; with dvfs_domains the effective
        # level is the fastest request in the domain (voltage-plane rule).
        self._requested: list[int] = [0] * machine.num_cores
        # Remaining-work bookkeeping for mid-run retunes (domain coercion
        # can change a RUNNING core's frequency).
        self._run_state: dict[int, dict[str, float]] = {}
        self._expected_done_seq: dict[int, int] = {}
        #: batch_index -> position in ``trace.batches`` (O(1) patching).
        self._batch_trace_pos: dict[int, int] = {}

    # ------------------------------------------------------------------
    # RuntimeContext protocol
    # ------------------------------------------------------------------

    @property
    def machine(self) -> MachineConfig:
        return self._machine

    @property
    def trace(self) -> TraceRecorder:
        """The run's trace so far — readable even after a failed run, which
        is how the race detector examines programs that deadlock."""
        return self._trace

    def now(self) -> float:
        return self._queue._now

    def core_level(self, core_id: int) -> int:
        return self._cores[core_id].level

    def requested_level(self, core_id: int) -> int:
        """The level this core has *asked* for (== effective level unless a
        shared DVFS domain is pinning it faster)."""
        return self._requested[core_id]

    def rng_choice(self, stream: str, options: Sequence[int]) -> int:
        return self._rng.choice(stream, options)

    def rng_shuffled(self, stream: str, options: Sequence[int]) -> list[int]:
        return self._rng.shuffled(stream, options)

    def pool_observer(self) -> Optional[PoolObserver]:
        """Pool-event sink for policies to hand their :class:`PoolGrid`.

        ``None`` (record nothing) unless the run was started with
        ``record_task_events=True`` — the deep-trace mode the race
        detector consumes.
        """
        if not self._record_task_events:
            return None

        kinds = {
            "push": TaskEventKind.PUSH,
            "pop": TaskEventKind.POP,
            "steal": TaskEventKind.STEAL,
        }

        def observe(op: str, pool_core: int, pool_index: int, task: Task) -> None:
            self._trace.record_task_event(
                self.now(),
                kinds[op],
                actor=self._trace_actor,
                task_id=task.task_id,
                pool_core=pool_core,
                pool_index=pool_index,
            )

        return observe

    def trace_plan(
        self, group_of_core: Sequence[int], group_levels: Sequence[int]
    ) -> None:
        """Record a c-group plan installation (no-op unless deep-tracing)."""
        if self._record_task_events:
            self._trace.record_plan(
                self.now(), tuple(group_of_core), tuple(group_levels)
            )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self, program: Sequence[Batch]) -> SimResult:
        """Execute ``program`` to completion and return the result."""
        self._batches = list(iter_programs_batches(list(program)))
        if not self._batches:
            raise SimulationError("program has no batches")

        self._policy.bind(self)
        initial = self._policy.on_program_start()
        if initial is not None and initial.frequency_levels is not None:
            # Boot-time configuration: applied instantly, before the clock runs.
            self._apply_levels_instantly(initial.frequency_levels)
        for core in self._cores:
            core.spin()
            self._idle.add(core.core_id)

        self._launch_next_batch()

        # Hot loop: bound everything touched per event to locals.
        queue_pop = self._queue.pop
        handle_task_done = self._handle_task_done
        handle_dvfs_done = self._handle_dvfs_done
        handle_core_ready = self._handle_core_ready
        launch_next_batch = self._launch_next_batch
        heap = self._queue._heap
        max_events = self._max_events

        events = 0
        while heap and not self._done:
            events += 1
            if events > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events — livelocked policy?"
                )
            _time, seq, kind, core_id, task_id, _batch = queue_pop()
            if kind is _TASK_DONE:
                handle_task_done(core_id, task_id, seq)
            elif kind is _CORE_READY:
                handle_core_ready(core_id, seq)
            elif kind is _DVFS_DONE:
                handle_dvfs_done(core_id)
            elif kind is _BATCH_LAUNCH:
                launch_next_batch()
            else:  # pragma: no cover - enum is closed
                raise SimulationError(f"unknown event kind {kind}")

        if not self._done:
            raise SimulationError(
                f"event queue drained with work outstanding "
                f"(batch={self._barrier.batch_index}, inflight={len(self._inflight)})"
            )

        return self._build_result()

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------

    def _launch_next_batch(self) -> None:
        if self._fast_forward and self._try_fast_forward():
            return
        self._batches_simulated += 1
        batch = self._batches[self._next_batch_pos]
        self._next_batch_pos += 1
        self._barrier.open(batch.index, self.now())

        factory_make = self._factory.make
        tasks = [factory_make(spec, batch.index) for spec in batch.specs]
        record_events = self._record_task_events
        for task in tasks:
            self._barrier.add_task()
            if record_events:
                self._record_lifecycle(
                    TaskEventKind.CREATE, LAUNCHER_ACTOR, task.task_id
                )
        self._trace_actor = LAUNCHER_ACTOR
        self._policy.on_batch_start(batch, tasks)

        hist = self._level_histogram()
        self._batch_trace_pos[batch.index] = len(self._trace.batches)
        self._trace.record_batch(
            BatchTrace(
                batch_index=batch.index,
                start_time=self.now(),
                duration=float("nan"),  # patched when the batch drains
                tasks_completed=0,
                level_histogram=hist,
                adjust_overhead_seconds=self._pending_adjust_overhead,
            )
        )
        self._pending_adjust_overhead = 0.0
        self._wake_idle()

    # ------------------------------------------------------------------
    # steady-state fast-forward
    # ------------------------------------------------------------------

    def _try_fast_forward(self) -> bool:
        """Detect a steady state at this batch boundary and replay it.

        Returns True when the boundary's batch (and possibly the rest of
        the program) was handled by delta replay; the caller must then not
        launch anything. Any unclean condition resets the detection chain.
        """
        if self._queue._heap or self._ff_saw_dvfs_request:
            # Pending events (DVFS transitions in flight, timed Wait
            # retries crossing the boundary) or a mid-batch SetFrequency:
            # this boundary proves nothing.
            self._ff_saw_dvfs_request = False
            self._ff_prev = None
            self._ff_delta = None
            return False
        # Bill the adjuster-overhead gap now. This is the exact addition
        # the first post-launch observe would perform for the same
        # interval at the same (still spinning) power draw — it makes the
        # account snapshot align on the boundary time and changes nothing
        # when the chain never engages (the later observe becomes a no-op).
        self._meter.observe(self._queue._now)
        snap = self._ff_snapshot()
        if snap is None:
            self._ff_prev = None
            self._ff_delta = None
            return False
        prev = self._ff_prev
        self._ff_prev = snap
        if (
            prev is None
            or snap.pos != prev.pos + 1
            or snap.fingerprint != prev.fingerprint
            or self._batches[snap.pos].specs != self._batches[prev.pos].specs
        ):
            self._ff_delta = None
            return False
        delta = self._ff_delta_between(prev, snap)
        if delta is None or self._ff_delta != delta:
            self._ff_delta = delta
            return False
        return self._ff_replay(delta)

    def _ff_snapshot(self) -> Optional[_BoundarySnapshot]:
        """Boundary state capture; ``None`` when the state is opaque."""
        policy_fp = self._policy.state_fingerprint()
        if policy_fp is None:
            return None
        cores = self._cores
        for core in cores:
            if core.state is not _SPINNING or core.pending_level is not None:
                return None
        fingerprint = "\x1f".join(
            (
                policy_fp,
                self._rng.state_fingerprint(),
                ",".join(str(core.level) for core in cores),
                ",".join(str(level) for level in self._requested),
                repr(self._pending_adjust_overhead),
            )
        )
        stats = self._policy.stats
        return _BoundarySnapshot(
            pos=self._next_batch_pos,
            time=self._queue._now,
            fingerprint=fingerprint,
            accounts=[
                (
                    a.joules,
                    a.seconds,
                    dict(a.joules_by_state),
                    dict(a.seconds_by_state),
                    dict(a.seconds_by_level),
                )
                for a in self._meter.accounts
            ],
            stats=(
                stats.tasks_executed,
                stats.tasks_stolen,
                stats.local_pops,
                stats.failed_scans,
                stats.cross_group_steals,
                dict(stats.extra),
            ),
            n_batches=len(self._trace.batches),
            n_transitions=len(self._trace.transitions),
            n_finished=len(self._finished_tasks),
            factory_next=self._factory.next_id,
            tasks_executed=self._tasks_executed,
        )

    def _ff_delta_between(
        self, prev: _BoundarySnapshot, snap: _BoundarySnapshot
    ) -> Optional[tuple]:
        """Everything one steady batch added, relative to its boundary.

        The tuple is compared with ``==`` between consecutive boundary
        pairs; any float that wobbles (non-exact arithmetic) or any shape
        change (different trace/transition/task layout, different account
        dict keys) breaks equality and keeps the engine simulating.
        """
        new_batches = self._trace.batches[prev.n_batches : snap.n_batches]
        if len(new_batches) != 1:
            return None
        bt = new_batches[0]
        per_core = []
        for (pj, ps, pjs, pss, psl), (cj, cs, cjs, css, csl) in zip(
            prev.accounts, snap.accounts
        ):
            per_core.append(
                (
                    cj - pj,
                    cs - ps,
                    tuple(
                        sorted(
                            ((k, v - pjs.get(k, 0.0)) for k, v in cjs.items()),
                            key=lambda kv: kv[0].value,
                        )
                    ),
                    tuple(
                        sorted(
                            ((k, v - pss.get(k, 0.0)) for k, v in css.items()),
                            key=lambda kv: kv[0].value,
                        )
                    ),
                    tuple(sorted((k, v - psl.get(k, 0.0)) for k, v in csl.items())),
                )
            )
        prev_extra = prev.stats[5]
        stats_delta = (
            snap.stats[0] - prev.stats[0],
            snap.stats[1] - prev.stats[1],
            snap.stats[2] - prev.stats[2],
            snap.stats[3] - prev.stats[3],
            snap.stats[4] - prev.stats[4],
            tuple(
                sorted(
                    (k, v - prev_extra.get(k, 0.0)) for k, v in snap.stats[5].items()
                )
            ),
        )
        batch_template = (
            bt.start_time - prev.time,
            bt.duration,
            bt.tasks_completed,
            bt.level_histogram,
            bt.adjust_overhead_seconds,
        )
        transitions = tuple(
            (tr.time - prev.time, tr.core_id, tr.from_level, tr.to_level)
            for tr in self._trace.transitions[prev.n_transitions : snap.n_transitions]
        )
        task_templates = tuple(
            (
                task.task_id - prev.factory_next,
                task.spec,
                task.stolen,
                task.start_time - prev.time,
                task.finish_time - prev.time,
                task.executed_on,
                task.executed_level,
            )
            for task in self._finished_tasks[prev.n_finished : snap.n_finished]
        )
        return (
            snap.time - prev.time,
            tuple(per_core),
            stats_delta,
            batch_template,
            transitions,
            task_templates,
            snap.factory_next - prev.factory_next,
            snap.tasks_executed - prev.tasks_executed,
        )

    def _ff_replay(self, delta: tuple) -> bool:
        """Apply the steady-state delta for every remaining identical batch.

        Performs the same additions, in the same order, that full
        simulation would: accumulators grow by one per-batch delta at a
        time (never a multiplication), traces and tasks are minted at
        shifted times, and the barrier history gains one entry per batch.
        Returns True when the program was completed by replay; False when a
        differing batch interrupted it, in which case the caller resumes
        normal simulation at the updated ``_next_batch_pos``.
        """
        (
            dt,
            core_deltas,
            stats_delta,
            batch_template,
            transitions,
            task_templates,
            d_created,
            d_executed,
        ) = delta
        rel_start, duration, tasks_completed, level_hist, adjust_overhead = (
            batch_template
        )
        batches = self._batches
        pos = self._next_batch_pos
        template_specs = batches[pos - 1].specs
        t = self._queue._now
        trace = self._trace
        keep = self._keep_tasks
        accounts = self._meter.accounts
        stats = self._policy.stats
        history = self._barrier._history
        while pos < len(batches) and batches[pos].specs == template_specs:
            batch = batches[pos]
            t_launch = t + rel_start
            self._batch_trace_pos[batch.index] = len(trace.batches)
            trace.batches.append(
                BatchTrace(
                    batch_index=batch.index,
                    start_time=t_launch,
                    duration=duration,
                    tasks_completed=tasks_completed,
                    level_histogram=level_hist,
                    adjust_overhead_seconds=adjust_overhead,
                )
            )
            for rel_time, core_id, from_level, to_level in transitions:
                trace.record_transition(
                    DvfsTransition(
                        time=t + rel_time,
                        core_id=core_id,
                        from_level=from_level,
                        to_level=to_level,
                    )
                )
            base = self._factory.next_id
            if keep:
                for rel_id, spec, stolen, rel_s, rel_f, on, level in task_templates:
                    self._finished_tasks.append(
                        Task(
                            task_id=base + rel_id,
                            spec=spec,
                            batch_index=batch.index,
                            stolen=stolen,
                            start_time=t + rel_s,
                            finish_time=t + rel_f,
                            executed_on=on,
                            executed_level=level,
                        )
                    )
            self._factory.advance_to(base + d_created)
            history.append((batch.index, tasks_completed, t_launch, duration))
            for account, (dj, ds, djs, dss, dsl) in zip(accounts, core_deltas):
                account.joules += dj
                account.seconds += ds
                jbs = account.joules_by_state
                for k, v in djs:
                    jbs[k] = jbs.get(k, 0.0) + v
                sbs = account.seconds_by_state
                for k, v in dss:
                    sbs[k] = sbs.get(k, 0.0) + v
                sbl = account.seconds_by_level
                for k, v in dsl:
                    sbl[k] = sbl.get(k, 0.0) + v
            stats.tasks_executed += stats_delta[0]
            stats.tasks_stolen += stats_delta[1]
            stats.local_pops += stats_delta[2]
            stats.failed_scans += stats_delta[3]
            stats.cross_group_steals += stats_delta[4]
            extra = stats.extra
            for k, v in stats_delta[5]:
                extra[k] = extra.get(k, 0.0) + v
            self._tasks_executed += d_executed
            self._batches_fast_forwarded += 1
            t += dt
            pos += 1
        self._next_batch_pos = pos
        self._queue._now = t
        # Accounts are billed through ``t`` by the deltas; realign the
        # meter so later billing (or none) starts from the right instant.
        self._meter._last_time = t
        self._ff_prev = None
        self._ff_delta = None
        if pos < len(batches):
            # A differing batch interrupted the steady state: fall back to
            # normal simulation from this boundary.
            return False
        self._policy.on_program_end()
        self._meter._finalized = True
        for core in self._cores:
            if core.state is _SPINNING:
                core.park()
        self._idle.clear()
        self._done = True
        return True

    def _handle_core_ready(self, core_id: int, seq: int) -> None:
        core = self._cores[core_id]
        if self._stalled:
            expected = self._stalled.get(core_id)
            if expected is not None:
                if expected != seq:
                    return  # stale wake arriving during a stall window
                # End of the fault-injected offline window: the core comes
                # back up and asks for work like any other woken core.
                del self._stalled[core_id]
                self._meter.observe(self._queue._now)
                core.spin()
                self._dispatch(core)
                return
        if core.state is not _SPINNING:
            return  # stale wake: core got work or is mid-transition already
        self._dispatch(core)

    def _handle_task_done(self, core_id: int, task_id: int, seq: int) -> None:
        if self._expected_done_seq.get(core_id) != seq:
            return  # superseded by a mid-run retune reschedule
        core = self._cores[core_id]
        task = self._inflight.pop(task_id)
        self._run_state.pop(core_id, None)
        now = self._queue._now
        self._meter.observe(now)
        finished_id = core.finish_task()
        if finished_id != task_id:
            raise SimulationError(
                f"core {core_id} finished task {finished_id}, expected {task_id}"
            )
        task.finish_time = now
        if self._record_task_events:
            self._record_lifecycle(TaskEventKind.DONE, core_id, task_id)
        self._tasks_executed += 1
        if self._keep_tasks:
            self._finished_tasks.append(task)
        if self._injector is not None:
            corrupted = self._injector.corrupt_counters(task.spec.counters)
            if corrupted is not None:
                # The corrupted reading is what this run observed: it goes
                # to the policy and stays on the finished-task record.
                task.spec = replace(task.spec, counters=corrupted)
        self._policy.on_task_complete(core_id, task)

        if self._barrier.task_done():
            self._idle.add(core_id)
            self._end_batch()
        else:
            self._dispatch(core)

    def _handle_dvfs_done(self, core_id: int) -> None:
        core = self._cores[core_id]
        self._meter.observe(self._queue._now)
        core.complete_transition()
        self._dispatch(core)

    def _end_batch(self) -> None:
        batch_index = self._barrier.batch_index
        assert batch_index is not None
        completed = self._barrier.completed
        duration = self._barrier.close(self.now())
        self._patch_batch_trace(batch_index, duration, completed)

        adjustment = self._policy.on_batch_end(batch_index)
        overhead = 0.0
        if adjustment is not None:
            overhead = max(0.0, adjustment.overhead_seconds)
            if adjustment.frequency_levels is not None:
                self._apply_levels_with_latency(adjustment.frequency_levels)
        self._pending_adjust_overhead = overhead

        if self._next_batch_pos >= len(self._batches):
            self._finish_program(overhead)
        else:
            self._queue.schedule(overhead, _BATCH_LAUNCH)

    def _finish_program(self, trailing_overhead: float) -> None:
        self._policy.on_program_end()
        end_time = self.now() + trailing_overhead
        self._meter.finalize(end_time)
        for core in self._cores:
            if core.state is _SPINNING:
                core.park()
        self._idle.clear()
        self._done = True

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, core: SimCore) -> None:
        """Ask the policy what ``core`` does next and enact it."""
        if core.state is not _SPINNING:
            raise SimulationError(
                f"dispatch of core {core.core_id} in state {core.state}"
            )
        core_id = core.core_id
        self._idle.discard(core_id)
        if self._injector is not None:
            stall = self._injector.stall_seconds(core_id)
            if stall > 0.0:
                # Transient offline window: the core parks (baseline power
                # only) and a seq-guarded wake brings it back. It is not in
                # the idle set, so batch launches and spawn wakes skip it;
                # work stealing routes around it meanwhile.
                self._meter.observe(self._queue._now)
                core.park()
                event = self._queue.schedule(stall, _CORE_READY, core_id=core_id)
                self._stalled[core_id] = event.seq
                return
        self._trace_actor = core_id
        action: Action = self._policy.next_action(core_id)

        if type(action) is RunTask:
            self._start_task(core, action)
        elif type(action) is Wait:
            # The core spins at full power; the failed scan consumes time
            # only in the sense that the core cannot react instantly.
            self._idle.add(core_id)
            retry = action.retry_after
            if retry is not None:
                if retry < 0:
                    raise SchedulingError("retry_after must be non-negative")
                self._queue.schedule(retry, _CORE_READY, core_id=core_id)
        elif type(action) is SetFrequency:
            if action.level == self._requested[core_id]:
                raise SchedulingError(
                    f"policy requested a no-op frequency change on core {core_id}"
                )
            self._ff_saw_dvfs_request = True
            if self._injector is not None and self._injector.deny_dvfs(core_id):
                # Denied: the core keeps spinning at its old level and asks
                # again after the platform's penalty. It is deliberately not
                # returned to the idle set — the timed retry is its wake.
                self._policy.on_dvfs_denied(core_id, action.level)
                self._queue.schedule(
                    self._injector.spec.dvfs_deny_penalty_s,
                    _CORE_READY,
                    core_id=core_id,
                )
                return
            began = self._request_levels({core_id: action.level})
            if core_id not in began:
                # The request was absorbed by the DVFS domain (a faster
                # sibling pins the plane): ask the policy again now — its
                # view (requested_level) has changed, so it will not loop.
                self._queue.schedule(0.0, _CORE_READY, core_id=core_id)
        elif isinstance(action, (RunTask, Wait, SetFrequency)):
            # Subclassed actions take the slow path (type() checks miss them).
            self._dispatch_subclassed(core, action)
        else:  # pragma: no cover - action union is closed
            raise SchedulingError(f"unknown action {action!r}")

    def _dispatch_subclassed(self, core: SimCore, action: Action) -> None:
        """Uncommon path: an action that *subclasses* one of the action
        dataclasses rather than being one (scripted test policies do this)."""
        if isinstance(action, RunTask):
            self._start_task(core, action)
        elif isinstance(action, Wait):
            self._idle.add(core.core_id)
            if action.retry_after is not None:
                if action.retry_after < 0:
                    raise SchedulingError("retry_after must be non-negative")
                self._queue.schedule(
                    action.retry_after, _CORE_READY, core_id=core.core_id
                )
        else:
            assert isinstance(action, SetFrequency)
            if action.level == self._requested[core.core_id]:
                raise SchedulingError(
                    f"policy requested a no-op frequency change on core {core.core_id}"
                )
            self._ff_saw_dvfs_request = True
            if self._injector is not None and self._injector.deny_dvfs(core.core_id):
                self._policy.on_dvfs_denied(core.core_id, action.level)
                self._queue.schedule(
                    self._injector.spec.dvfs_deny_penalty_s,
                    _CORE_READY,
                    core_id=core.core_id,
                )
                return
            began = self._request_levels({core.core_id: action.level})
            if core.core_id not in began:
                self._queue.schedule(0.0, _CORE_READY, core_id=core.core_id)

    def _record_lifecycle(self, kind: TaskEventKind, actor: int, task_id: int) -> None:
        if self._record_task_events:
            self._trace.record_task_event(
                self.now(), kind, actor=actor, task_id=task_id,
                pool_core=actor if kind is not TaskEventKind.CREATE else -1,
            )

    def _start_task(self, core: SimCore, action: RunTask) -> None:
        task = action.task
        now = self._queue._now
        self._meter.observe(now)
        if self._record_task_events:
            self._record_lifecycle(TaskEventKind.EXEC, core.core_id, task.task_id)
        core.start_task(task.task_id)
        spec = task.spec
        # Same arithmetic as SimCore.exec_seconds, with the effective-speed
        # load hoisted; spec costs were validated non-negative at
        # construction. Cycle-denominated costs (task work and the acquire
        # overhead) retire at the core's effective speed.
        effective_hz = core.scale.levels[core.level] * core.ipc_scale
        acquire_seconds = action.acquire_cycles / effective_hz
        exec_seconds = spec.cpu_cycles / effective_hz + spec.mem_stall_seconds
        task.start_time = now + acquire_seconds
        task.executed_on = core.core_id
        task.executed_level = core.level
        self._inflight[task.task_id] = task
        self._run_state[core.core_id] = {
            "cycles": action.acquire_cycles + spec.cpu_cycles,
            "stall": spec.mem_stall_seconds,
            "seg_start": now,
        }
        event = self._queue.schedule(
            acquire_seconds + exec_seconds,
            _TASK_DONE,
            core_id=core.core_id,
            task_id=task.task_id,
        )
        self._expected_done_seq[core.core_id] = event.seq
        # Cilk semantics: spawned children become stealable when the parent
        # starts running.
        children = spec.children
        if children:
            self._trace_actor = core.core_id
            record_events = self._record_task_events
            for child_spec in children:
                child = self._factory.make(child_spec, task.batch_index)
                self._barrier.add_task()
                if record_events:
                    self._record_lifecycle(
                        TaskEventKind.CREATE, core.core_id, child.task_id
                    )
                self._policy.on_spawn(core.core_id, child)
            self._wake_idle(len(children))

    def _wake_idle(self, new_tasks: Optional[int] = None) -> None:
        """Schedule wakes for idle cores, lowest core id first.

        ``new_tasks=None`` (batch launch) wakes every idle core. Otherwise
        at most ``min(new_tasks, len(idle))`` cores are woken — each new
        task can be absorbed by exactly one core, so waking more would only
        schedule stale ``CORE_READY`` events. Woken ids leave the idle set
        immediately, so a core can never accumulate duplicate wakes.
        """
        idle = self._idle
        if not idle:
            return
        targets = sorted(idle)
        if new_tasks is not None and new_tasks < len(targets):
            targets = targets[:new_tasks]
        schedule = self._queue.schedule
        for core_id in targets:
            idle.discard(core_id)
            schedule(0.0, _CORE_READY, core_id=core_id)

    # ------------------------------------------------------------------
    # frequency application helpers
    # ------------------------------------------------------------------

    def _effective_levels(self) -> list[int]:
        """Requested levels coerced by shared DVFS domains.

        Within a domain the hardware honours the *fastest* request (the
        lowest level index) — a voltage plane cannot go slower than its
        most demanding core requires.
        """
        domains = self._machine.dvfs_domains
        if domains is None:
            return list(self._requested)
        effective = list(self._requested)
        for domain in domains:
            fastest = min(self._requested[c] for c in domain)
            for c in domain:
                effective[c] = fastest
        return effective

    def _apply_levels_instantly(self, levels: Sequence[Optional[int]]) -> None:
        """Boot-time configuration: no latency, no transitions."""
        self._check_levels(levels)
        for cid, level in enumerate(levels):
            if level is not None:
                self._ladders[cid].validate_index(level)
                self._requested[cid] = level
        for core, level in zip(self._cores, self._effective_levels()):
            core.level = level

    def _apply_levels_with_latency(self, levels: Sequence[Optional[int]]) -> None:
        self._check_levels(levels)
        targets = {
            cid: level for cid, level in enumerate(levels) if level is not None
        }
        if self._injector is not None and self._injector.spec.dvfs_deny_rate > 0.0:
            # Only *actual* change requests can be denied — re-asserting the
            # current level is not a platform request, and denying it would
            # falsely signal degradation to the policy in steady state.
            for cid in sorted(targets):
                if targets[cid] != self._requested[cid] and self._injector.deny_dvfs(
                    cid
                ):
                    self._policy.on_dvfs_denied(cid, targets.pop(cid))
        self._request_levels(targets)

    def _request_levels(self, targets: dict[int, int]) -> set[int]:
        """Record DVFS requests and enact the resulting effective changes.

        Idle (spinning) cores transition with the DVFS latency; cores
        already mid-transition are redirected; RUNNING cores are retuned
        in place (their remaining work is rescaled to the new frequency) —
        this only happens under shared DVFS domains, where a sibling's
        request drags a busy core along. Returns the ids of cores that
        entered a timed transition.

        Only cores whose effective level can actually change are visited:
        the targeted cores when DVFS is per-core, or every member of a
        domain containing a targeted core under shared planes — unrelated
        cores are provably no-ops and skipping them keeps a single-core
        ``SetFrequency`` O(1) instead of O(num_cores).
        """
        ladders = self._ladders
        requested = self._requested
        for cid, level in targets.items():
            ladders[cid].validate_index(level)
            requested[cid] = level

        domains = self._machine.dvfs_domains
        if domains is None:
            # Per-core DVFS: effective == requested; only targets change.
            affected = sorted(targets)
            effective = {cid: requested[cid] for cid in affected}
        else:
            affected_set: set[int] = set()
            effective = {}
            for domain in domains:
                if any(c in targets for c in domain):
                    fastest = min(requested[c] for c in domain)
                    for c in domain:
                        affected_set.add(c)
                        effective[c] = fastest
            affected = sorted(affected_set)

        self._meter.observe(self._queue._now)
        began: set[int] = set()
        for core_id in affected:
            core = self._cores[core_id]
            target = effective[core_id]
            if core.state is _TRANSITION:
                if core.pending_level != target:
                    core.pending_level = target
                continue
            if core.level == target:
                continue
            old = core.level
            self._trace.record_transition(
                DvfsTransition(
                    time=self.now(), core_id=core_id,
                    from_level=old, to_level=target,
                )
            )
            if core.state is _RUNNING:
                self._retune_running(core, target)
                continue
            if core.state is _PARKED:
                core.level = target
                continue
            self._idle.discard(core_id)
            core.begin_transition(target)
            began.add(core_id)
            latency = self._machine.dvfs_latency_s
            if self._injector is not None:
                latency += self._injector.dvfs_extra_latency(core_id)
            self._queue.schedule(latency, _DVFS_DONE, core_id=core_id)
        return began

    def _retune_running(self, core: SimCore, level: int) -> None:
        """Change a RUNNING core's frequency mid-task.

        The remaining CPU cycles and memory stall are scaled by the
        fraction of the in-flight segment still to run, the completion
        event is rescheduled, and the old one is invalidated. Applied
        instantly — the glitch of a plane transition is microseconds and
        the running core does not stall for it in hardware.
        """
        state = self._run_state.get(core.core_id)
        if state is None:
            raise SimulationError(
                f"core {core.core_id} RUNNING without execution state"
            )
        old_duration = state["cycles"] / core.effective_hz + state["stall"]
        elapsed = self.now() - state["seg_start"]
        fraction = 0.0 if old_duration <= 0 else min(1.0, elapsed / old_duration)
        state["cycles"] *= 1.0 - fraction
        state["stall"] *= 1.0 - fraction
        state["seg_start"] = self.now()

        core.level = level
        remaining = state["cycles"] / core.effective_hz + state["stall"]
        task_id = core.running_task_id
        assert task_id is not None
        event = self._queue.schedule(
            remaining, _TASK_DONE, core_id=core.core_id, task_id=task_id
        )
        self._expected_done_seq[core.core_id] = event.seq

    def _check_levels(self, levels: Sequence[Optional[int]]) -> None:
        if len(levels) != self._machine.num_cores:
            raise SchedulingError(
                f"frequency_levels has {len(levels)} entries for "
                f"{self._machine.num_cores} cores"
            )

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def _level_histogram(self) -> tuple[int, ...]:
        """Cores per *operating point*, machine-wide.

        Indexed by the machine's global operating-point order; on
        homogeneous machines the per-core maps are identities, so this is
        the flat per-frequency-level histogram it always was.
        """
        hist = [0] * self._machine.r
        op_maps = self._op_maps
        for core in self._cores:
            # A core mid-transition counts at its destination level.
            level = core.pending_level if core.pending_level is not None else core.level
            hist[op_maps[core.core_id][level]] += 1
        return tuple(hist)

    def _patch_batch_trace(
        self, batch_index: int, duration: float, tasks_completed: int
    ) -> None:
        pos = self._batch_trace_pos.get(batch_index)
        if pos is None:
            raise SimulationError(f"no trace entry for batch {batch_index}")
        bt = self._trace.batches[pos]
        self._trace.batches[pos] = BatchTrace(
            batch_index=bt.batch_index,
            start_time=bt.start_time,
            duration=duration,
            tasks_completed=tasks_completed,
            level_histogram=bt.level_histogram,
            adjust_overhead_seconds=bt.adjust_overhead_seconds,
        )

    def _build_result(self) -> SimResult:
        stats = self._policy.stats
        return SimResult(
            policy_name=self._policy.name,
            machine=self._machine,
            total_time=self._meter.elapsed,
            total_joules=self._meter.total_joules(),
            core_joules=self._meter.core_joules(),
            baseline_joules=self._meter.baseline_joules(),
            spin_joules=self._meter.spin_joules(),
            running_joules=self._meter.running_joules(),
            tasks_executed=self._tasks_executed,
            batches_executed=len(self._trace.batches),
            trace=self._trace,
            meter=self._meter,
            tasks=self._finished_tasks,
            adjust_overhead_seconds=self._trace.total_adjust_overhead(),
            policy_stats={
                "tasks_executed": stats.tasks_executed,
                "tasks_stolen": stats.tasks_stolen,
                "local_pops": stats.local_pops,
                "failed_scans": stats.failed_scans,
                "cross_group_steals": stats.cross_group_steals,
                **stats.extra,
            },
            batches_simulated=self._batches_simulated,
            batches_fast_forwarded=self._batches_fast_forwarded,
        )


def simulate(
    program: Sequence[Batch],
    policy: SchedulerPolicy,
    machine: MachineConfig,
    *,
    seed: int = 0,
    keep_tasks: bool = True,
    record_power_series: bool = False,
    record_task_events: bool = False,
    fast_forward: bool = True,
    faults: Optional[FaultSpec] = None,
) -> SimResult:
    """One-call convenience wrapper around :class:`Simulator`."""
    return Simulator(
        machine,
        policy,
        seed=seed,
        keep_tasks=keep_tasks,
        record_power_series=record_power_series,
        record_task_events=record_task_events,
        fast_forward=fast_forward,
        faults=faults,
    ).run(program)
