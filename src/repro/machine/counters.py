"""Per-task performance counters.

Section IV-D of the paper: EEWA reads retired-instruction and cache-miss
counters in the first batch to classify tasks as CPU- or memory-bound
(miss intensity = cache misses per retired instruction). The simulator
carries those counters on every executed task so the classifier sees the
same signal the paper's PMU provided.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PerfCounters:
    """Counter values observed for one executed task.

    Parameters
    ----------
    retired_instructions:
        Number of retired instructions, > 0.
    cache_misses:
        Number of last-level cache misses, >= 0.
    """

    retired_instructions: int
    cache_misses: int

    def __post_init__(self) -> None:
        if self.retired_instructions <= 0:
            raise ConfigurationError("retired_instructions must be positive")
        if self.cache_misses < 0:
            raise ConfigurationError("cache_misses must be non-negative")

    @property
    def miss_intensity(self) -> float:
        """Cache misses per retired instruction (the paper's threshold metric)."""
        return self.cache_misses / self.retired_instructions

    def merged(self, other: "PerfCounters") -> "PerfCounters":
        """Aggregate counters from two tasks (used for per-class summaries)."""
        return PerfCounters(
            retired_instructions=self.retired_instructions + other.retired_instructions,
            cache_misses=self.cache_misses + other.cache_misses,
        )


ZERO_MISS_COUNTERS = PerfCounters(retired_instructions=1, cache_misses=0)
"""A degenerate, purely CPU-bound counter reading (useful in tests)."""
