"""Tests for the task and batch model."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.counters import PerfCounters
from repro.runtime.task import (
    Batch,
    TaskFactory,
    TaskSpec,
    flat_batch,
    iter_programs_batches,
)


class TestTaskSpec:
    def test_basic_construction(self):
        spec = TaskSpec("f", cpu_cycles=1000.0)
        assert spec.function == "f"
        assert spec.mem_stall_seconds == 0.0
        assert spec.children == ()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TaskSpec("", cpu_cycles=1.0)
        with pytest.raises(ConfigurationError):
            TaskSpec("f", cpu_cycles=-1.0)
        with pytest.raises(ConfigurationError):
            TaskSpec("f", cpu_cycles=1.0, mem_stall_seconds=-0.1)

    def test_total_cycles_recursive(self):
        leaf = TaskSpec("leaf", cpu_cycles=10.0)
        mid = TaskSpec("mid", cpu_cycles=20.0, children=(leaf, leaf))
        root = TaskSpec("root", cpu_cycles=5.0, children=(mid,))
        assert root.total_cpu_cycles() == pytest.approx(45.0)
        assert root.count_tasks() == 4

    def test_counters_attach(self):
        c = PerfCounters(retired_instructions=100, cache_misses=1)
        spec = TaskSpec("f", cpu_cycles=1.0, counters=c)
        assert spec.counters.miss_intensity == pytest.approx(0.01)


class TestBatch:
    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            Batch(index=0, specs=())

    def test_totals(self):
        b = flat_batch(0, [TaskSpec("a", 10.0), TaskSpec("b", 20.0)])
        assert len(b) == 2
        assert b.total_tasks() == 2
        assert b.total_cpu_cycles() == pytest.approx(30.0)
        assert b.functions() == {"a", "b"}

    def test_functions_include_children(self):
        child = TaskSpec("child", 1.0)
        b = flat_batch(0, [TaskSpec("root", 1.0, children=(child,))])
        assert b.functions() == {"root", "child"}


class TestTaskRecord:
    def test_factory_unique_ids(self):
        factory = TaskFactory()
        spec = TaskSpec("f", 1.0)
        ids = {factory.make(spec, 0).task_id for _ in range(100)}
        assert len(ids) == 100

    def test_elapsed_requires_completion(self):
        task = TaskFactory().make(TaskSpec("f", 1.0), 0)
        with pytest.raises(ConfigurationError):
            _ = task.elapsed
        task.start_time = 1.0
        task.finish_time = 1.5
        assert task.elapsed == pytest.approx(0.5)


class TestProgramValidation:
    def test_dense_indices_ok(self):
        batches = [flat_batch(i, [TaskSpec("f", 1.0)]) for i in range(3)]
        assert len(list(iter_programs_batches(batches))) == 3

    def test_gap_rejected(self):
        batches = [
            flat_batch(0, [TaskSpec("f", 1.0)]),
            flat_batch(2, [TaskSpec("f", 1.0)]),
        ]
        with pytest.raises(ConfigurationError):
            list(iter_programs_batches(batches))
