"""Tests for the grouped-stealing base and the WATS policy."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.topology import small_test_machine
from repro.runtime.cilk import CilkScheduler
from repro.runtime.task import TaskSpec, flat_batch
from repro.runtime.wats import (
    WATSScheduler,
    allocate_classes_by_capacity,
    plan_from_levels,
)
from repro.sim.engine import simulate

REF = 2.0e9


def mixed_program(batches=4, shuffle=False):
    import random

    rng = random.Random(17)
    out = []
    for i in range(batches):
        specs = [TaskSpec("heavy", cpu_cycles=0.08 * REF) for _ in range(2)]
        specs += [TaskSpec("light", cpu_cycles=0.01 * REF) for _ in range(8)]
        if shuffle:
            rng.shuffle(specs)
        out.append(flat_batch(i, specs))
    return out


class TestPlanFromLevels:
    def test_groups_fastest_first(self):
        plan = plan_from_levels([1, 0, 1, 0])
        assert plan.num_groups == 2
        assert plan.groups[0].level == 0
        assert plan.groups[0].core_ids == (1, 3)
        assert plan.groups[1].core_ids == (0, 2)
        assert plan.group_of_core == (1, 0, 1, 0)

    def test_single_level_single_group(self):
        plan = plan_from_levels([2, 2, 2])
        assert plan.num_groups == 1
        assert plan.groups[0].core_ids == (0, 1, 2)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_from_levels([])


class TestCapacityAllocation:
    def test_heavy_classes_go_to_fast_groups(self):
        plan = plan_from_levels([0, 0, 1, 1])
        classes = [("heavy", 10.0), ("medium", 4.0), ("light", 1.0)]
        alloc = allocate_classes_by_capacity(plan, classes, [2.0, 1.0])
        assert alloc["heavy"] == 0
        assert alloc["light"] == 1

    def test_zero_work_defaults_to_fastest(self):
        plan = plan_from_levels([0, 1])
        alloc = allocate_classes_by_capacity(plan, [("a", 0.0)], [1.0, 0.5])
        assert alloc["a"] == 0

    def test_allocation_respects_order(self):
        """Heavier class never lands in a slower group than a lighter one."""
        plan = plan_from_levels([0, 0, 1, 2])
        classes = [(f"c{i}", float(10 - i)) for i in range(6)]
        alloc = allocate_classes_by_capacity(plan, classes, [2.0, 0.7, 0.4])
        groups = [alloc[f"c{i}"] for i in range(6)]
        assert groups == sorted(groups)


class TestWATS:
    def test_requires_levels(self):
        machine = small_test_machine(num_cores=2)
        with pytest.raises(ConfigurationError):
            simulate(mixed_program(1), WATSScheduler([0]), machine)

    def test_runs_to_completion_on_asymmetric_machine(self):
        machine = small_test_machine(num_cores=4)
        program = mixed_program()
        result = simulate(program, WATSScheduler([0, 0, 1, 1]), machine, seed=1)
        assert result.tasks_executed == sum(len(b) for b in program)
        # Frequencies never change under WATS.
        assert result.trace.transitions == []

    def test_beats_cilk_on_asymmetric_machine(self):
        """The WATS claim: workload-aware placement beats random stealing
        when cores are asymmetric (heavy tasks must avoid slow cores).
        Task order is shuffled so placement cannot accidentally presort the
        heavy tasks onto fast cores; steady state (batches >= 1) dominates.
        """
        machine = small_test_machine(num_cores=4, levels=(2.0e9, 0.8e9))
        program = mixed_program(batches=12, shuffle=True)
        levels = [0, 0, 1, 1]
        cilk = simulate(program, CilkScheduler(core_levels=levels), machine, seed=1)
        wats = simulate(program, WATSScheduler(levels), machine, seed=1)
        assert wats.total_time < cilk.total_time

    def test_heavy_tasks_mostly_on_fast_cores_after_first_batch(self):
        machine = small_test_machine(num_cores=4, levels=(2.0e9, 0.8e9))
        result = simulate(
            mixed_program(batches=6), WATSScheduler([0, 0, 1, 1]), machine, seed=1
        )
        late_heavy = [
            t for t in result.tasks if t.function == "heavy" and t.batch_index >= 1
        ]
        on_fast = sum(1 for t in late_heavy if t.executed_level == 0)
        assert on_fast / len(late_heavy) > 0.8
