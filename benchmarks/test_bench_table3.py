"""Table III bench — adjuster overhead per benchmark, plus a real
micro-benchmark of Algorithm 1 itself.

Paper shape targets: overhead below 2% of execution time for every
benchmark and tens of milliseconds in absolute terms across a run.
The micro-benchmark measures the genuine Python wall time of the
backtracking search on the paper's own Fig. 3 table — this is the number
pytest-benchmark actually statistics.
"""

from conftest import save_exhibit

from repro.core.cc_table import cc_table_from_values
from repro.core.ktuple import search_ktuple
from repro.experiments.table3 import run_table3
from repro.machine.frequency import opteron_8380_scale

FIG3_VALUES = [
    [2, 3, 1, 1],
    [4, 6, 2, 2],
    [6, 9, 3, 3],
    [8, 12, 4, 4],
]


def test_bench_table3(benchmark, results_dir):
    result = benchmark.pedantic(lambda: run_table3(), rounds=1, iterations=1)
    save_exhibit(results_dir, "table3", result.table())

    benchmark.extra_info["overhead_pct"] = {
        r.benchmark: round(r.overhead_pct, 2) for r in result.rows
    }
    assert result.max_overhead_pct() < 2.0
    for row in result.rows:
        assert row.overhead_ms < 100.0  # paper: "less than 100ms"
        assert row.execution_ms > 0


def test_bench_algorithm1_search(benchmark):
    """Raw speed of the backtracking search on the paper's Fig. 3 table."""
    table = cc_table_from_values(FIG3_VALUES, opteron_8380_scale())
    solution = benchmark(search_ktuple, table, 16)
    assert solution.assignment == (1, 1, 2, 2)


def test_bench_algorithm1_scaling(benchmark):
    """Search cost on a larger table (8 classes, 6 levels) stays trivial —
    the paper's scalability argument for the O(k*r^2) bound."""
    import numpy as np

    from repro.machine.frequency import FrequencyScale

    scale = FrequencyScale(tuple(3.0e9 * 0.8**i for i in range(6)))
    rng = np.random.default_rng(0)
    row0 = rng.uniform(0.5, 3.0, size=8)
    values = np.outer([scale.slowdown(j) for j in range(6)], row0)
    table = cc_table_from_values(values, scale)
    solution = benchmark(search_ktuple, table, 24)
    assert solution is not None
