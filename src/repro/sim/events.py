"""Event records for the discrete-event engine.

Events are ordered by ``(time, seq)``; ``seq`` is a monotonically increasing
tie-breaker so simultaneous events process in scheduling order and the
simulation stays fully deterministic.

Representation
--------------
An :class:`Event` is a :class:`typing.NamedTuple` — a plain tuple at the C
level — so the heap holds ``(time, seq, kind, core_id, task_id,
batch_index)`` tuples and every comparison is a C tuple compare. Because
``seq`` is unique per queue, ordering is fully decided by the first two
slots and the comparison never reaches the (unorderable) ``kind`` member.
This replaced a frozen ``order=True`` dataclass whose generated ``__lt__``
built throwaway tuples on every heap sift; the tuple form cuts event
scheduling cost roughly in half while keeping the exact same ``(time,
seq)`` order, field names, and :class:`EventQueue` API.
"""

from __future__ import annotations

import enum
from heapq import heappop, heappush
from typing import NamedTuple, Optional

from repro.errors import SimulationError


class EventKind(enum.Enum):
    """Discriminator for engine events."""

    TASK_DONE = "task_done"
    DVFS_DONE = "dvfs_done"
    CORE_READY = "core_ready"
    BATCH_LAUNCH = "batch_launch"

    #: Enum's default ``__hash__`` is a Python-level function; events are
    #: hashed in hot dict lookups, so use the identity slot wrapper. Dicts
    #: iterate in insertion order, so this cannot perturb determinism.
    __hash__ = object.__hash__


class Event(NamedTuple):
    """One scheduled occurrence.

    A plain tuple ordered by its leading ``(time, seq)`` slots; payload
    fields are never compared because ``seq`` is unique.
    """

    time: float
    seq: int
    kind: EventKind
    core_id: Optional[int] = None
    task_id: Optional[int] = None
    batch_index: Optional[int] = None


class EventQueue:
    """Deterministic min-heap of :class:`Event` tuples."""

    __slots__ = ("_heap", "_seq", "_now")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def schedule(
        self,
        delay: float,
        kind: EventKind,
        *,
        core_id: Optional[int] = None,
        task_id: Optional[int] = None,
        batch_index: Optional[int] = None,
    ) -> Event:
        """Enqueue an event ``delay`` seconds from now and return it."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        event = Event(self._now + delay, seq, kind, core_id, task_id, batch_index)
        heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing the clock."""
        if not self._heap:
            raise SimulationError("event queue is empty")
        event = heappop(self._heap)
        time = event[0]
        if time > self._now:
            self._now = time
        elif time < self._now - 1e-12:
            raise SimulationError(
                f"event at t={time} precedes clock t={self._now}"
            )
        return event
