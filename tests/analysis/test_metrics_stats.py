"""Tests for analysis metrics and multi-seed aggregation."""

import pytest

from repro.analysis.metrics import (
    edp,
    energy_reduction_percent,
    geometric_mean,
    mean,
    normalized_energy,
    normalized_time,
    percent_change,
    std,
    time_degradation_percent,
)
from repro.analysis.stats import aggregate
from repro.machine.topology import small_test_machine
from repro.runtime.cilk import CilkScheduler
from repro.runtime.task import TaskSpec, flat_batch
from repro.sim.engine import simulate

REF = 2.0e9


def run(seed=0, scale=1.0):
    machine = small_test_machine(num_cores=2)
    program = [
        flat_batch(0, [TaskSpec("w", cpu_cycles=scale * 0.05 * REF) for _ in range(4)])
    ]
    return simulate(program, CilkScheduler(), machine, seed=seed)


class TestMetrics:
    def test_normalisation_identity(self):
        r = run()
        assert normalized_time(r, r) == pytest.approx(1.0)
        assert normalized_energy(r, r) == pytest.approx(1.0)

    def test_normalisation_scaling(self):
        small, big = run(scale=1.0), run(scale=2.0)
        assert normalized_time(big, small) == pytest.approx(2.0, rel=0.02)
        assert normalized_energy(big, small) == pytest.approx(2.0, rel=0.02)

    def test_percent_change_signs(self):
        assert percent_change(110.0, 100.0) == pytest.approx(10.0)
        assert percent_change(90.0, 100.0) == pytest.approx(-10.0)
        with pytest.raises(ZeroDivisionError):
            percent_change(1.0, 0.0)

    def test_reduction_and_degradation(self):
        a, b = run(scale=1.0), run(scale=2.0)
        assert energy_reduction_percent(a, b) == pytest.approx(50.0, rel=0.03)
        assert time_degradation_percent(b, a) == pytest.approx(100.0, rel=0.03)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_mean_std(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert std([1.0, 2.0, 3.0]) == pytest.approx(1.0)
        assert std([5.0]) == 0.0

    def test_edp(self):
        r = run()
        assert edp(r) == pytest.approx(r.total_joules * r.total_time)


class TestAggregate:
    def test_summary_over_seeds(self):
        results = [run(seed=s) for s in (1, 2, 3)]
        summary = aggregate(results)
        assert summary.runs == 3
        assert summary.policy_name == "cilk"
        assert summary.time_mean == pytest.approx(
            sum(r.total_time for r in results) / 3
        )
        assert summary.average_power > 0

    def test_mixed_policies_rejected(self):
        from repro.core.eewa import EEWAScheduler
        from repro.machine.topology import small_test_machine

        machine = small_test_machine(num_cores=2)
        program = [
            flat_batch(0, [TaskSpec("w", cpu_cycles=0.01 * REF) for _ in range(4)]),
            flat_batch(1, [TaskSpec("w", cpu_cycles=0.01 * REF) for _ in range(4)]),
        ]
        a = simulate(program, CilkScheduler(), machine)
        b = simulate(program, EEWAScheduler(), machine)
        with pytest.raises(ValueError):
            aggregate([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])
