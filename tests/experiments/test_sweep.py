"""Tests for the persistent sweep engine and the cache maintenance tooling.

Covers the queue semantics the exhibits rely on (in-flight dedup,
priority, cancellation, backpressure, streaming order), the cache's
crash-safety contract (atomic writes, torn-entry recovery, flat-layout
migration, pack compaction), and the ``repro cache`` backing functions.
"""

import os
import pickle
import threading
import time
import warnings
from concurrent.futures import CancelledError, Future

import pytest

from repro.errors import ConfigurationError
from repro.experiments import cachectl
from repro.experiments.parallel import (
    PACK_FILENAME,
    CellSpec,
    ResultCache,
)
from repro.experiments.sweep import SweepEngine
from repro.sim.engine import ENGINE_VERSION
from repro.sim.fingerprint import trace_fingerprint

BATCHES = 2


def spec(policy="cilk", seed=11, benchmark="SHA-1"):
    return CellSpec(benchmark=benchmark, policy=policy, seed=seed, batches=BATCHES)


@pytest.fixture()
def engine(tmp_path):
    with SweepEngine(workers=0, cache_dir=tmp_path / "cache") as eng:
        yield eng


class TestInflightDedup:
    def test_duplicates_coalesce_onto_one_simulation(self, engine):
        tickets = engine.submit_many([spec(), spec(), spec()])
        outcomes = [t.result() for t in tickets]
        assert engine.stats.executed == 1
        assert engine.stats.deduplicated == 2
        # One simulation, one payload: every ticket sees the same result.
        assert outcomes[0].result is outcomes[1].result is outcomes[2].result
        assert not any(o.from_cache for o in outcomes)

    def test_duplicate_after_completion_served_from_memo(self, engine):
        engine.submit(spec()).result()
        outcome = engine.submit(spec()).result()
        assert outcome.from_cache
        assert engine.stats.executed == 1
        assert engine.stats.cache_hits == 1
        assert engine.stats.memo_hits == 1  # no disk read for the repeat

    def test_dedup_works_without_cache(self, tmp_path):
        with SweepEngine(workers=0, cache_dir=None) as eng:
            outcomes = [t.result() for t in eng.submit_many([spec(), spec()])]
            assert eng.stats.executed == 1
            assert eng.stats.deduplicated == 1
            assert outcomes[0].result is outcomes[1].result

    def test_distinct_cells_do_not_coalesce(self, engine):
        engine.run_cells([spec(seed=11), spec(seed=23)])
        assert engine.stats.executed == 2
        assert engine.stats.deduplicated == 0


class TestCancellation:
    def test_cancel_mid_queue(self, engine):
        tickets = engine.submit_many([spec(seed=s) for s in (11, 23, 37)])
        assert tickets[1].cancel()
        assert tickets[1].cancelled()
        with pytest.raises(CancelledError):
            tickets[1].result()
        # The rest of the queue is unaffected.
        assert tickets[0].result().result.tasks_executed > 0
        assert tickets[2].result().result.tasks_executed > 0
        assert engine.stats.cancelled == 1
        assert engine.stats.executed == 2

    def test_cancel_one_coalesced_ticket_keeps_the_cell(self, engine):
        keep, drop = engine.submit_many([spec(), spec()])
        assert drop.cancel()
        assert keep.result().result.tasks_executed > 0
        assert engine.stats.executed == 1
        assert engine.stats.cancelled == 1

    def test_cancel_after_resolution_fails(self, engine):
        ticket = engine.submit(spec())
        ticket.result()
        assert not ticket.cancel()

    def test_close_cancels_queued_work_and_rejects_submits(self, tmp_path):
        eng = SweepEngine(workers=0, cache_dir=tmp_path / "cache")
        ticket = eng.submit(spec())
        eng.close()
        assert ticket.cancelled()
        assert eng.stats.cancelled == 1
        with pytest.raises(RuntimeError):
            eng.submit(spec())


class TestOrdering:
    def test_lower_priority_value_executes_first(self, engine):
        late = engine.submit(spec(seed=11), priority=5)
        early = engine.submit(spec(seed=23), priority=0)
        order = [t is early for t in engine.as_completed([late, early])]
        assert order == [True, False]

    def test_as_completed_yields_cache_hits_first(self, engine):
        engine.submit(spec(seed=11)).result()
        tickets = engine.submit_many([spec(seed=37), spec(seed=11)])
        first = next(iter(engine.as_completed(tickets)))
        assert first.spec.seed == 11  # already cached: resolved instantly

    def test_iter_cells_streams_in_submission_order(self, engine):
        cells = [spec(seed=s, policy=p) for s in (11, 23) for p in ("cilk", "eewa")]
        streamed = list(engine.iter_cells(cells, priority=1))
        assert [o.spec for o in streamed] == cells

    def test_streaming_order_is_deterministic(self, tmp_path):
        cells = [spec(seed=s, policy=p) for s in (37, 11) for p in ("eewa", "cilk")]
        runs = []
        for attempt in range(2):
            with SweepEngine(workers=0, cache_dir=tmp_path / f"c{attempt}") as eng:
                runs.append(
                    [trace_fingerprint(o.result) for o in eng.iter_cells(cells)]
                )
        assert runs[0] == runs[1]


class TestBackpressureAndChunking:
    def test_inprocess_backpressure_bounds_the_queue(self, tmp_path):
        with SweepEngine(
            workers=0, cache_dir=tmp_path / "cache", max_pending=4
        ) as eng:
            tickets = [eng.submit(spec(seed=s)) for s in range(1, 11)]
            # Submissions past the bound drained chunks inline.
            assert eng.queue_depth <= 4
            assert all(t.result().result.tasks_executed > 0 for t in tickets)
            assert eng.stats.executed == 10

    def test_chunk_size_adapts_to_observed_cost(self, engine):
        assert engine.chunk_size == 1  # no cost estimate yet
        engine.submit(spec()).result()
        assert engine.ema_cell_seconds > 0
        # A huge per-trip budget lifts the chunk to its configured cap.
        engine.configure(chunk_target_seconds=1e9, max_chunk=4)
        assert engine.chunk_size == 4

    def test_chunked_dispatch_batches_cells(self, engine):
        engine.configure(chunk_target_seconds=1e9)
        engine.submit(spec(seed=1)).result()  # feed the cost estimator
        engine.run_cells([spec(seed=s) for s in range(2, 8)])
        # 6 queued cells, chunk cap 32: one more dispatch round-trip.
        assert engine.stats.executed == 7
        assert engine.stats.chunks == 2

    def test_pooled_batch_larger_than_max_pending_completes(self, tmp_path):
        # Regression: the submit_many dispatch gate must yield at the
        # backpressure bound, or a pooled batch bigger than max_pending
        # deadlocks — the parked submit waits on the dispatcher to drain
        # while the dispatcher waits on the gate the submit holds.
        with SweepEngine(
            workers=2, cache_dir=tmp_path / "cache", max_pending=3
        ) as eng:
            done = {}
            run = threading.Thread(
                target=lambda: done.setdefault(
                    "outcomes",
                    eng.run_cells([spec(seed=s) for s in range(1, 9)]),
                ),
                daemon=True,
            )
            run.start()
            run.join(timeout=180)
            assert "outcomes" in done, "pooled submit_many deadlocked"
            assert len(done["outcomes"]) == 8
            assert all(o.result.tasks_executed > 0 for o in done["outcomes"])
            assert eng.stats.executed == 8

    def test_result_timeout_honoured_in_process(self, engine):
        first, second = engine.submit_many([spec(seed=11), spec(seed=23)])
        with pytest.raises(TimeoutError):
            second.result(timeout=0)
        assert engine.stats.executed == 0  # a zero wait runs no chunks
        assert second.result().result.tasks_executed > 0
        assert first.result().result.tasks_executed > 0

    def test_invalid_parameters_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SweepEngine(workers=-1)
        with pytest.raises(ConfigurationError):
            SweepEngine(max_pending=0)
        with pytest.raises(ConfigurationError):
            SweepEngine(max_chunk=0)
        with SweepEngine(workers=0, cache_dir=None) as eng:
            with pytest.raises(ConfigurationError):
                eng.configure(max_pending=0)
            with pytest.raises(ConfigurationError):
                eng.configure(max_chunk=-3)


class _StalledPool:
    """Pool stub whose chunks never complete — parks the dispatcher."""

    def __init__(self):
        self.futures = []

    def submit(self, fn, *args, **kwargs):
        future = Future()
        self.futures.append(future)
        return future

    def shutdown(self, wait=True):
        pass


class TestCloseRaces:
    def test_submit_parked_on_backpressure_raises_on_close(self):
        # A submit parked in backpressure when close() lands must raise,
        # not enqueue a job no dispatcher will ever resolve (which would
        # hang the caller on result() forever).
        eng = SweepEngine(workers=2, cache_dir=None, max_pending=1)
        stalled = _StalledPool()
        eng._ensure_pool = lambda: stalled
        failures = []

        def feed():
            try:
                eng.submit_many([spec(seed=s) for s in range(1, 9)])
            except RuntimeError as exc:
                failures.append(exc)

        feeder = threading.Thread(target=feed, daemon=True)
        feeder.start()
        # 2 workers → the dispatcher stops after 4 in-flight chunks; the
        # feeder then fills the queue and parks in backpressure.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and len(stalled.futures) < 4:
            time.sleep(0.01)
        assert len(stalled.futures) == 4
        eng.close()
        feeder.join(timeout=30)
        assert not feeder.is_alive()
        assert failures and "closed" in str(failures[0])


class TestAsCompletedTickets:
    def test_coalesced_tickets_each_yielded_exactly_once(self, engine):
        # Regression: keying completion by future dropped tickets that
        # coalesced onto one in-flight cell — exactly as many tickets must
        # come out of as_completed as went in.
        first = engine.submit(spec())
        second = engine.submit(spec())
        assert engine.stats.deduplicated == 1
        out = list(engine.as_completed([first, second]))
        assert len(out) == 2
        assert {id(t) for t in out} == {id(first), id(second)}
        assert engine.stats.executed == 1
        assert out[0].result().result is out[1].result().result

    def test_coalesced_batch_yields_one_per_ticket(self, engine):
        tickets = engine.submit_many([spec(), spec(), spec(seed=23)])
        out = list(engine.as_completed(tickets))
        assert len(out) == len(tickets)
        assert {id(t) for t in out} == {id(t) for t in tickets}

    def test_timeout_zero_raises_with_cells_unresolved(self, engine):
        tickets = engine.submit_many([spec(seed=s) for s in (11, 23)])
        with pytest.raises(TimeoutError, match="unresolved"):
            list(engine.as_completed(tickets, timeout=0))

    def test_timeout_yields_resolved_cells_before_raising(self, engine):
        engine.submit(spec()).result()  # warm the memo
        warm = engine.submit(spec())  # resolves at submit time
        cold = engine.submit(spec(seed=23))
        got = []
        with pytest.raises(TimeoutError):
            for ticket in engine.as_completed([warm, cold], timeout=0):
                got.append(ticket)
        assert got == [warm]
        assert cold.cancel()


class TestCloseDispatcherJoin:
    def test_wedged_dispatcher_join_warns_instead_of_leaking_silently(self):
        eng = SweepEngine(workers=0, cache_dir=None)
        release = threading.Event()
        wedged = threading.Thread(target=release.wait, name="wedged-dispatcher")
        wedged.start()
        eng._dispatcher = wedged
        eng.dispatcher_join_seconds = 0.05
        try:
            with pytest.warns(RuntimeWarning, match="failed to join"):
                eng.close()
        finally:
            release.set()
            wedged.join()

    def test_clean_close_emits_no_warning(self):
        eng = SweepEngine(workers=0, cache_dir=None)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            eng.close()


class TestTornEntryRecovery:
    def test_torn_loose_entry_is_deleted_and_resimulated(self, tmp_path):
        cache_dir = tmp_path / "cache"
        with SweepEngine(workers=0, cache_dir=cache_dir) as eng:
            good = eng.submit(spec()).result()
        cache = ResultCache(cache_dir)
        path = cache._path(good.key)
        path.write_bytes(path.read_bytes()[:10])  # simulate a torn write
        with SweepEngine(workers=0, cache_dir=cache_dir) as eng:
            again = eng.submit(spec()).result()
            assert eng.stats.executed == 1  # miss: recovered by re-running
            assert not again.from_cache
        assert trace_fingerprint(again.result) == trace_fingerprint(good.result)

    def test_torn_entry_removed_on_get(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        cache.put(key, {"engine_version": ENGINE_VERSION, "result": 1})
        cache._path(key).write_bytes(b"\x80garbage")
        assert cache.get(key) is None
        assert not cache._path(key).exists()

    def test_corrupt_pack_discarded_loose_survives(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "0" * 62
        payload = {"engine_version": ENGINE_VERSION, "result": 2}
        cache.put(key, payload)
        pack = tmp_path / key[:2] / PACK_FILENAME
        pack.write_bytes(b"not a pack")
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) == payload  # loose fallback
        assert not pack.exists()  # corrupt pack dropped


def _flat_entry(root, key):
    root.mkdir(parents=True, exist_ok=True)
    (root / f"{key}.pkl").write_bytes(
        pickle.dumps({"engine_version": ENGINE_VERSION, "result": key})
    )


class TestFlatMigration:
    KEYS = ["ab" + "0" * 62, "ab" + "1" * 62, "cd" + "2" * 62]

    def test_migration_moves_and_serves_flat_entries(self, tmp_path):
        for key in self.KEYS:
            _flat_entry(tmp_path, key)
        cache = ResultCache(tmp_path)
        assert cache.migrated_flat == 3
        for key in self.KEYS:
            assert cache.get(key) == {
                "engine_version": ENGINE_VERSION, "result": key,
            }
            assert not (tmp_path / f"{key}.pkl").exists()
            assert cache._path(key).exists()

    def test_migration_is_idempotent(self, tmp_path):
        for key in self.KEYS:
            _flat_entry(tmp_path, key)
        assert ResultCache(tmp_path).migrated_flat == 3
        assert ResultCache(tmp_path).migrated_flat == 0
        result = cachectl.migrate(tmp_path)
        assert result.moved_flat == 0
        assert result.packed == 3
        # A second migrate finds nothing left to move or pack.
        again = cachectl.migrate(tmp_path)
        assert (again.moved_flat, again.packed) == (0, 0)


class TestCompaction:
    def test_compact_packs_loose_entries(self, tmp_path):
        cache_dir = tmp_path / "cache"
        with SweepEngine(workers=0, cache_dir=cache_dir) as eng:
            cold = eng.run_cells([spec(seed=s) for s in (11, 23)])
        assert ResultCache(cache_dir).compact() == 2
        loose = [
            p for p in cache_dir.rglob("*.pkl")
            if ResultCache._is_entry_name(p.name)
        ]
        assert loose == []
        with SweepEngine(workers=0, cache_dir=cache_dir) as eng:
            warm = eng.run_cells([spec(seed=s) for s in (11, 23)])
            assert eng.stats.executed == 0  # served from the packs
        assert [trace_fingerprint(o.result) for o in warm] == [
            trace_fingerprint(o.result) for o in cold
        ]


class TestCachectl:
    def _warm(self, cache_dir, seeds=(11, 23)):
        with SweepEngine(workers=0, cache_dir=cache_dir) as eng:
            eng.run_cells([spec(seed=s) for s in seeds])

    def test_stats_counts_loose_and_packed(self, tmp_path):
        self._warm(tmp_path)
        stats = cachectl.cache_stats(tmp_path)
        assert stats.entries == 2
        assert stats.loose_entries == 2
        assert stats.packed_entries == 0
        assert stats.total_bytes > 0
        cachectl.migrate(tmp_path)
        stats = cachectl.cache_stats(tmp_path)
        assert (stats.entries, stats.loose_entries, stats.packed_entries) == (2, 0, 2)

    def test_prune_by_age(self, tmp_path):
        self._warm(tmp_path)
        entries = cachectl._entry_map(ResultCache(tmp_path))
        newest = max(mtime for mtime, _ in entries.values())
        # "Now" far in the future: everything is stale.
        result = cachectl.prune(
            tmp_path, max_age_days=1, now=newest + 2 * 86400
        )
        assert (result.removed, result.kept) == (2, 0)
        assert cachectl.cache_stats(tmp_path).entries == 0

    def test_prune_by_bytes_evicts_oldest_first(self, tmp_path):
        self._warm(tmp_path, seeds=(11, 23, 37))
        cache = ResultCache(tmp_path)
        entries = cachectl._entry_map(cache)
        oldest = min(entries, key=lambda k: entries[k][0])
        largest_two = sum(
            sorted((n for _, n in entries.values()), reverse=True)[:2]
        )
        result = cachectl.prune(tmp_path, max_bytes=largest_two)
        assert result.removed == 1
        assert cache.get(oldest) is None  # oldest evicted first

    def test_prune_removes_packed_entries(self, tmp_path):
        self._warm(tmp_path)
        cachectl.migrate(tmp_path)
        result = cachectl.prune(tmp_path, max_bytes=0)
        assert result.removed == 2
        assert cachectl.cache_stats(tmp_path).entries == 0

    def test_prune_keeps_entry_exactly_at_age_cutoff(self, tmp_path):
        # The age bound is strict (mtime < cutoff): an entry whose mtime
        # equals the cutoff to the second is NOT stale yet.
        self._warm(tmp_path)
        cache = ResultCache(tmp_path)
        entries = cachectl._entry_map(cache)
        at_cutoff, stale = sorted(entries)
        base = 1_700_000_000.0
        os.utime(cache._path(at_cutoff), (base, base))
        os.utime(cache._path(stale), (base - 1.0, base - 1.0))
        result = cachectl.prune(
            tmp_path, max_age_days=1, now=base + 86400.0
        )
        assert (result.removed, result.kept) == (1, 1)
        assert cache.get(at_cutoff) is not None
        assert cache.get(stale) is None

    def test_prune_by_bytes_breaks_mtime_ties_by_key(self, tmp_path):
        # Equal mtimes: eviction order falls back to the key, so the
        # victim choice stays deterministic across runs.
        self._warm(tmp_path, seeds=(11, 23, 37))
        cache = ResultCache(tmp_path)
        entries = cachectl._entry_map(cache)
        base = 1_700_000_000.0
        for key in entries:
            os.utime(cache._path(key), (base, base))
        total = sum(nbytes for _, nbytes in entries.values())
        result = cachectl.prune(tmp_path, max_bytes=total - 1)
        assert result.removed == 1
        assert cache.get(min(entries)) is None  # smallest key loses the tie
        for key in sorted(entries)[1:]:
            assert cache.get(key) is not None

    def test_prune_empty_cache_is_a_noop(self, tmp_path):
        result = cachectl.prune(
            tmp_path / "never-written", max_age_days=1, max_bytes=0
        )
        assert (result.removed, result.kept, result.bytes_freed) == (0, 0, 0)

    def test_prune_just_migrated_cache_keeps_packed_entries(self, tmp_path):
        # Migration rewrites entries into per-shard packs; generous bounds
        # must see (and keep) the packed copies, not treat them as gone.
        self._warm(tmp_path)
        cachectl.migrate(tmp_path)
        result = cachectl.prune(
            tmp_path, max_age_days=10_000, max_bytes=1 << 40
        )
        assert (result.removed, result.kept) == (0, 2)
        assert result.bytes_freed == 0
        assert cachectl.cache_stats(tmp_path).entries == 2
