"""Strictly periodic programs for steady-state fast-forward tests.

Every batch is *identical* — same specs in the same order, no jitter —
which is the iteration-based shape EEWA targets (Fig. 2: "iterations of
similar computation"). On :func:`repro.machine.topology.dyadic_test_machine`
the task cycle counts below are dyadic multiples of the frequency ladder,
so all durations and energies are float-exact and the engine's fast-forward
replay is provably bit-identical.

The raw :func:`periodic_program` harness builds batches directly (no
jitter, cycle counts pinned to the dyadic constants below). The module
also ships :func:`periodic_workload_spec`, the ``WORKLOADS``-registered
``periodic`` entry: the same two-class mix expressed as a
:class:`~repro.workloads.spec.WorkloadSpec` with zero jitter and drift,
so ``repro run periodic ...`` exercises the strictly periodic shape the
fast-forward engine and the analytic model are built around.
"""

from __future__ import annotations

from repro.runtime.task import Batch, TaskSpec, flat_batch
from repro.workloads.spec import TaskClassSpec, WorkloadSpec

#: Reference frequency the cycle counts below are dyadic fractions of
#: (``F_0`` of :func:`~repro.machine.topology.dyadic_test_machine`).
DYADIC_REF_FREQUENCY = 2.0**31

#: Heavy tasks run ``2^-5`` seconds at ``F_0``; light ones ``2^-8``.
HEAVY_CYCLES = (2.0**-5) * DYADIC_REF_FREQUENCY
LIGHT_CYCLES = (2.0**-8) * DYADIC_REF_FREQUENCY


def periodic_batch_specs(
    heavy: int = 4,
    light: int = 8,
    *,
    heavy_cycles: float = HEAVY_CYCLES,
    light_cycles: float = LIGHT_CYCLES,
) -> list[TaskSpec]:
    """The spec list one batch repeats: ``heavy`` + ``light`` flat tasks."""
    return [TaskSpec("heavy", cpu_cycles=heavy_cycles) for _ in range(heavy)] + [
        TaskSpec("light", cpu_cycles=light_cycles) for _ in range(light)
    ]


def periodic_program(
    batches: int,
    heavy: int = 4,
    light: int = 8,
    *,
    heavy_cycles: float = HEAVY_CYCLES,
    light_cycles: float = LIGHT_CYCLES,
) -> list[Batch]:
    """``batches`` identical flat batches of heavy+light two-class work."""
    specs = periodic_batch_specs(
        heavy, light, heavy_cycles=heavy_cycles, light_cycles=light_cycles
    )
    return [flat_batch(i, list(specs)) for i in range(batches)]


def periodic_workload_spec() -> WorkloadSpec:
    """The registry entry for the strictly periodic two-class workload.

    Class means are the dyadic harness constants expressed in seconds at
    the dyadic reference frequency; zero jitter, drift, and miss
    intensity make every batch identical and the generated program
    seed-independent — the pure steady-state regime (Fig. 2's
    "iterations of similar computation") where fast-forward replay and
    the analytic model are exact.
    """
    return WorkloadSpec(
        name="periodic",
        classes=(
            TaskClassSpec(
                name="heavy",
                count=4,
                mean_seconds=HEAVY_CYCLES / DYADIC_REF_FREQUENCY,
                jitter_sigma=0.0,
                drift_sigma=0.0,
                miss_intensity=0.0,
            ),
            TaskClassSpec(
                name="light",
                count=8,
                mean_seconds=LIGHT_CYCLES / DYADIC_REF_FREQUENCY,
                jitter_sigma=0.0,
                drift_sigma=0.0,
                miss_intensity=0.0,
            ),
        ),
        default_batches=12,
        description="strictly periodic two-class mix (zero jitter/drift): "
        "the steady-state regime fast-forward and the analytic model target",
    )
