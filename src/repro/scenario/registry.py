"""Plugin registries for policies, machine presets, and workloads.

Everything the paper evaluates is a point in (machine × workload × policy
× seeds) space. These registries make each axis *data*: an entry carries a
builder plus the metadata the CLI, the conformance harness, and the race
battery need (``needs_core_levels``, Table II membership, ...), so none of
them has to hard-code name tuples or ``if``-chains.

Registering a new policy::

    from repro.scenario.registry import register_policy

    @register_policy("my-policy", description="...")
    def _build_my_policy(*, core_levels=None, params=None, config=None):
        return MyPolicy()

after which ``repro run <bench> my-policy``, ``ScenarioSpec`` JSON files,
the result cache, and ``repro.runtime.conformance.main`` all pick it up.
Names are canonical and unique; legacy alias spellings (``cilk_d``) are
accepted with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Callable, Generic, Iterator, Mapping, Optional, Sequence, TypeVar

from repro.errors import ScenarioError
from repro.machine.topology import (
    MachineConfig,
    big_little_test_machine,
    opteron_8380_machine,
    small_test_machine,
)
from repro.runtime.policy import SchedulerPolicy
from repro.workloads.spec import WorkloadSpec

E = TypeVar("E")


class Registry(Generic[E]):
    """Name → entry mapping with alias resolution and duplicate rejection."""

    def __init__(self, kind: str) -> None:
        self._kind = kind
        self._entries: dict[str, E] = {}
        self._aliases: dict[str, str] = {}

    def register(self, entry: E) -> E:
        name = entry.name  # type: ignore[attr-defined]
        taken = set(self._entries) | set(self._aliases)
        if name in taken:
            raise ScenarioError(f"duplicate {self._kind} name {name!r}")
        for alias in getattr(entry, "aliases", ()):
            if alias in taken or alias == name:
                raise ScenarioError(
                    f"duplicate {self._kind} alias {alias!r} (registering {name!r})"
                )
        self._entries[name] = entry
        for alias in getattr(entry, "aliases", ()):
            self._aliases[alias] = name
        return entry

    def canonical(self, name: str) -> str:
        """Resolve ``name`` (or a legacy alias, with a deprecation note)
        to its canonical spelling."""
        if name in self._entries:
            return name
        if name in self._aliases:
            canonical = self._aliases[name]
            warnings.warn(
                f"{self._kind} name {name!r} is a deprecated alias; "
                f"use {canonical!r}",
                DeprecationWarning,
                stacklevel=3,
            )
            return canonical
        raise ScenarioError(
            f"unknown {self._kind} {name!r}; registered: {', '.join(self.names())}"
        )

    def get(self, name: str) -> E:
        return self._entries[self.canonical(name)]

    def names(self) -> tuple[str, ...]:
        """Canonical names, in registration order."""
        return tuple(self._entries)

    def entries(self) -> tuple[E, ...]:
        return tuple(self._entries.values())

    def __contains__(self, name: str) -> bool:
        return name in self._entries or name in self._aliases

    def __iter__(self) -> Iterator[E]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)


# ----------------------------------------------------------------------
# entries
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PolicyEntry:
    """One registered scheduler policy.

    ``builder`` is called as ``builder(core_levels=..., params=...,
    config=...)`` and must reject inputs the policy cannot honour (e.g.
    fixed levels for a policy that controls DVFS itself).
    """

    name: str
    builder: Callable[..., SchedulerPolicy]
    description: str = ""
    #: Policy cannot run without a fixed per-core level vector (WATS).
    needs_core_levels: bool = False
    #: Policy optionally accepts a fixed level vector (Cilk on an
    #: asymmetric machine).
    accepts_core_levels: bool = False
    #: Member of the default Cilk-normalised comparison set (Fig. 6/9,
    #: ``repro compare``).
    compare_baseline: bool = False
    #: Whether the conformance nested-spawn check applies.
    supports_spawns: bool = True
    #: Legacy spellings accepted with a deprecation warning.
    aliases: tuple[str, ...] = ()

    def build(
        self,
        *,
        core_levels: Optional[Sequence[int]] = None,
        params: Optional[Mapping[str, Any]] = None,
        config: Any = None,
    ) -> SchedulerPolicy:
        if core_levels is not None and not (
            self.needs_core_levels or self.accepts_core_levels
        ):
            raise ScenarioError(f"{self.name} does not take fixed core levels")
        if self.needs_core_levels and core_levels is None:
            raise ScenarioError(f"{self.name} requires fixed core_levels")
        return self.builder(core_levels=core_levels, params=params, config=config)


@dataclass(frozen=True)
class MachinePresetEntry:
    """One registered machine preset; ``builder(num_cores)`` → config.

    Presets with ``supports_core_types=True`` additionally accept an
    explicit ``((type_name, count), ...)`` partition (scenario schema v3's
    ``core_types`` axis) as ``builder(num_cores, core_types=...)``.
    """

    name: str
    builder: Callable[..., MachineConfig]
    description: str = ""
    default_cores: int = 16
    #: Preset builds a heterogeneous machine and takes a core_types
    #: partition (the scenario schema v3 axis).
    supports_core_types: bool = False
    aliases: tuple[str, ...] = ()

    def build(
        self,
        num_cores: Optional[int] = None,
        core_types: Optional[Sequence[tuple[str, int]]] = None,
    ) -> MachineConfig:
        if core_types is not None:
            if not self.supports_core_types:
                raise ScenarioError(
                    f"machine preset {self.name!r} does not take a "
                    "core_types partition"
                )
            return self.builder(num_cores, core_types=tuple(core_types))
        return self.builder(num_cores)


@dataclass(frozen=True)
class WorkloadEntry:
    """One registered workload; ``spec_factory()`` → fresh WorkloadSpec."""

    name: str
    spec_factory: Callable[[], WorkloadSpec]
    description: str = ""
    #: True for the paper's Table II benchmarks.
    table2: bool = False
    aliases: tuple[str, ...] = ()

    def spec(self) -> WorkloadSpec:
        return self.spec_factory()


POLICIES: Registry[PolicyEntry] = Registry("policy")
MACHINES: Registry[MachinePresetEntry] = Registry("machine preset")
WORKLOADS: Registry[WorkloadEntry] = Registry("workload")


# ----------------------------------------------------------------------
# decorator registration
# ----------------------------------------------------------------------


def register_policy(
    name: str,
    *,
    description: str = "",
    needs_core_levels: bool = False,
    accepts_core_levels: bool = False,
    compare_baseline: bool = False,
    supports_spawns: bool = True,
    aliases: Sequence[str] = (),
) -> Callable[[Callable[..., SchedulerPolicy]], Callable[..., SchedulerPolicy]]:
    def decorate(builder: Callable[..., SchedulerPolicy]):
        POLICIES.register(
            PolicyEntry(
                name=name,
                builder=builder,
                description=description,
                needs_core_levels=needs_core_levels,
                accepts_core_levels=accepts_core_levels,
                compare_baseline=compare_baseline,
                supports_spawns=supports_spawns,
                aliases=tuple(aliases),
            )
        )
        return builder

    return decorate


def register_machine(
    name: str,
    *,
    description: str = "",
    default_cores: int = 16,
    supports_core_types: bool = False,
    aliases: Sequence[str] = (),
) -> Callable[[Callable[..., MachineConfig]], Callable[..., MachineConfig]]:
    def decorate(builder: Callable[..., MachineConfig]):
        MACHINES.register(
            MachinePresetEntry(
                name=name,
                builder=builder,
                description=description,
                default_cores=default_cores,
                supports_core_types=supports_core_types,
                aliases=tuple(aliases),
            )
        )
        return builder

    return decorate


def register_workload(
    name: str,
    *,
    description: str = "",
    table2: bool = False,
    aliases: Sequence[str] = (),
) -> Callable[[Callable[[], WorkloadSpec]], Callable[[], WorkloadSpec]]:
    def decorate(spec_factory: Callable[[], WorkloadSpec]):
        WORKLOADS.register(
            WorkloadEntry(
                name=name,
                spec_factory=spec_factory,
                description=description,
                table2=table2,
                aliases=tuple(aliases),
            )
        )
        return spec_factory

    return decorate


# ----------------------------------------------------------------------
# convenience views
# ----------------------------------------------------------------------


def baseline_policy_names() -> tuple[str, ...]:
    """The default Cilk-normalised comparison set, in registration order."""
    return tuple(e.name for e in POLICIES if e.compare_baseline)


def spread_levels(num_cores: int, r: int) -> list[int]:
    """Ascending level vector spreading ``num_cores`` over ``r`` levels.

    The default fixed configuration harnesses use when a
    ``needs_core_levels`` policy must run without a caller-chosen vector
    (conformance battery, race battery): e.g. 4 cores × 3 levels →
    ``[0, 0, 1, 2]``.
    """
    if num_cores < 1 or r < 1:
        raise ScenarioError("spread_levels needs num_cores >= 1 and r >= 1")
    return [min(i * r // num_cores, r - 1) for i in range(num_cores)]


def spread_levels_for(machine: MachineConfig) -> list[int]:
    """Per-core spread vector valid on ``machine``'s per-core ladders.

    On homogeneous machines this is exactly
    ``spread_levels(machine.num_cores, machine.r)``. On heterogeneous
    machines the spread is applied *within each core type* over that
    type's own ladder — entries are type-local DVFS levels, so every
    entry is valid for the core it configures (the 4+4 big.LITTLE test
    machine gets ``[0, 1, 2, 3, 0, 1, 2, 3]``).
    """
    levels: list[int] = []
    for name, count in machine.capacities():
        levels.extend(spread_levels(count, machine.scale.ladder(name).r))
    return levels


# ----------------------------------------------------------------------
# shipped policies
# ----------------------------------------------------------------------


def _reject(name: str, *, params=None, config=None, allowed: str = "") -> None:
    if params:
        extra = f" (supported: {allowed})" if allowed else ""
        raise ScenarioError(f"{name} does not take params {sorted(params)}{extra}")
    if config is not None:
        raise ScenarioError(f"{name} does not take a config object")


def _pop_params(name: str, params: Optional[Mapping[str, Any]], allowed: Sequence[str]) -> dict:
    taken = dict(params or {})
    unknown = set(taken) - set(allowed)
    if unknown:
        raise ScenarioError(
            f"{name}: unknown params {sorted(unknown)}; supported: {sorted(allowed)}"
        )
    return taken


@register_policy(
    "cilk",
    description="classic Cilk randomized work stealing, all cores at F0 "
    "(or at a fixed asymmetric level vector)",
    accepts_core_levels=True,
    compare_baseline=True,
)
def _build_cilk(*, core_levels=None, params=None, config=None) -> SchedulerPolicy:
    from repro.runtime.cilk import CilkScheduler

    _reject("cilk", params=params, config=config)
    return CilkScheduler(core_levels=core_levels)


@register_policy(
    "cilk-d",
    description="Cilk with per-core DVFS idling: spinning cores drop to the "
    "lowest frequency after a grace period",
    compare_baseline=True,
    aliases=("cilk_d",),
)
def _build_cilk_d(*, core_levels=None, params=None, config=None) -> SchedulerPolicy:
    from repro.runtime.cilk_d import CilkDScheduler

    _reject("cilk-d", config=config)
    kwargs = _pop_params("cilk-d", params, ("idle_grace_s",))
    return CilkDScheduler(**kwargs)


@register_policy(
    "wats",
    description="workload-aware task scheduling on a fixed asymmetric "
    "configuration (rob-the-weaker-first stealing, no DVFS control)",
    needs_core_levels=True,
)
def _build_wats(*, core_levels=None, params=None, config=None) -> SchedulerPolicy:
    from repro.runtime.wats import WATSScheduler

    _reject("wats", params=params, config=config)
    return WATSScheduler(core_levels)


def eewa_config_from_params(params: Mapping[str, Any]):
    """Build an :class:`~repro.core.eewa.EEWAConfig` from JSON-scalar params.

    Supports every scalar tunable; ``memory_bound_mode`` is given by its
    lower-case enum name (``"fallback"`` / ``"regression"``).
    """
    from repro.core.eewa import EEWAConfig
    from repro.core.membound import MemoryBoundMode

    allowed = (
        "search", "cc_mode", "headroom", "leftover_policy",
        "miss_threshold", "memory_bound_mode", "adapt_every_batch",
        "max_dvfs_retries", "dvfs_backoff_batches", "max_search_failures",
    )
    kwargs = _pop_params("eewa", params, allowed)
    for name in ("max_dvfs_retries", "dvfs_backoff_batches", "max_search_failures"):
        if name in kwargs:
            kwargs[name] = int(kwargs[name])
    if "memory_bound_mode" in kwargs:
        raw = kwargs["memory_bound_mode"]
        try:
            kwargs["memory_bound_mode"] = MemoryBoundMode[str(raw).upper()]
        except KeyError:
            raise ScenarioError(
                f"eewa: unknown memory_bound_mode {raw!r}; expected one of "
                f"{sorted(m.name.lower() for m in MemoryBoundMode)}"
            ) from None
    return EEWAConfig(**kwargs)


@register_policy(
    "eewa",
    description="the paper's energy-efficient workload-aware scheduler: "
    "per-batch profiling, CC table, k-tuple DVFS search, c-group stealing",
    compare_baseline=True,
)
def _build_eewa(*, core_levels=None, params=None, config=None) -> SchedulerPolicy:
    from repro.core.eewa import EEWAConfig, EEWAScheduler

    if config is not None and params:
        raise ScenarioError("eewa: give either params or a config object, not both")
    if config is not None:
        if not isinstance(config, EEWAConfig):
            raise ScenarioError(
                f"eewa config must be an EEWAConfig, got {type(config).__name__}"
            )
        return EEWAScheduler(config)
    if params:
        return EEWAScheduler(eewa_config_from_params(params))
    return EEWAScheduler()


# ----------------------------------------------------------------------
# shipped machine presets
# ----------------------------------------------------------------------


@register_machine(
    "opteron-8380",
    description="the paper's testbed: 16 cores, four P-states "
    "(2.5/1.8/1.3/0.8 GHz), per-core DVFS",
    default_cores=16,
)
def _preset_opteron(num_cores: Optional[int]) -> MachineConfig:
    return opteron_8380_machine(num_cores=16 if num_cores is None else num_cores)


@register_machine(
    "opteron-8380-socket",
    description="the physical Opteron 8380: quad-core shared-frequency "
    "voltage planes (per-socket DVFS ablation)",
    default_cores=16,
)
def _preset_opteron_socket(num_cores: Optional[int]) -> MachineConfig:
    return opteron_8380_machine(
        num_cores=16 if num_cores is None else num_cores, per_socket_dvfs=True
    )


@register_machine(
    "big-little-test",
    description="dyadic 4+4 big.LITTLE machine: two core types with "
    "overlapping frequency ranges merged into one operating-point space",
    default_cores=8,
    supports_core_types=True,
)
def _preset_big_little(
    num_cores: Optional[int],
    core_types: Optional[Sequence[tuple[str, int]]] = None,
) -> MachineConfig:
    if core_types is not None:
        counts = dict(core_types)
        unknown = sorted(set(counts) - {"big", "little"})
        if unknown:
            raise ScenarioError(
                f"big-little-test: unknown core types {unknown}; "
                "this preset has 'big' and 'little'"
            )
        machine = big_little_test_machine(
            big_cores=counts.get("big", 0), little_cores=counts.get("little", 0)
        )
        if num_cores is not None and num_cores != machine.num_cores:
            raise ScenarioError(
                f"big-little-test: cores={num_cores} contradicts the "
                f"core_types partition summing to {machine.num_cores}"
            )
        return machine
    machine = big_little_test_machine()
    if num_cores is not None and num_cores != machine.num_cores:
        machine = machine.with_cores(num_cores)
    return machine


@register_machine(
    "small-test",
    description="tiny 3-level machine used by the conformance and race "
    "batteries and unit tests",
    default_cores=4,
)
def _preset_small_test(num_cores: Optional[int]) -> MachineConfig:
    return small_test_machine(
        num_cores=4 if num_cores is None else num_cores,
        levels=(2.0e9, 1.5e9, 1.0e9),
    )


# ----------------------------------------------------------------------
# shipped workloads (Table II + the two extension workloads)
# ----------------------------------------------------------------------


def _register_shipped_workloads() -> None:
    from repro.workloads import benchmarks, periodic, synthetic

    table2 = {
        "BWC": benchmarks.bwc_spec,
        "Bzip-2": benchmarks.bzip2_spec,
        "DMC": benchmarks.dmc_spec,
        "JE": benchmarks.je_spec,
        "LZW": benchmarks.lzw_spec,
        "MD5": benchmarks.md5_spec,
        "SHA-1": benchmarks.sha1_spec,
    }
    for name, factory in table2.items():
        WORKLOADS.register(
            WorkloadEntry(
                name=name,
                spec_factory=factory,
                description=factory().description,
                table2=True,
            )
        )
    WORKLOADS.register(
        WorkloadEntry(
            name="STREAM-like",
            spec_factory=benchmarks.memory_bound_spec,
            description="memory-bound extension workload (Section IV-D)",
        )
    )
    WORKLOADS.register(
        WorkloadEntry(
            name="DMC-phased",
            spec_factory=synthetic.phased_spec,
            description="batch-to-batch varying workload (Fig. 7 discussion)",
        )
    )
    WORKLOADS.register(
        WorkloadEntry(
            name="periodic",
            spec_factory=periodic.periodic_workload_spec,
            description=periodic.periodic_workload_spec().description,
        )
    )


_register_shipped_workloads()


def workload_names(*, table2_only: bool = False) -> tuple[str, ...]:
    """Registered workload names (optionally Table II only), in order."""
    return tuple(e.name for e in WORKLOADS if e.table2 or not table2_only)


__all__ = [
    "MACHINES",
    "MachinePresetEntry",
    "POLICIES",
    "PolicyEntry",
    "Registry",
    "WORKLOADS",
    "WorkloadEntry",
    "baseline_policy_names",
    "eewa_config_from_params",
    "register_machine",
    "register_policy",
    "register_workload",
    "spread_levels",
    "spread_levels_for",
    "workload_names",
]
