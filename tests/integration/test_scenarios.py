"""Cross-cutting scenario tests: unusual machine shapes, policy/domain
combinations, and scale smoke tests."""

from repro.core.eewa import EEWAConfig, EEWAScheduler
from repro.machine.frequency import FrequencyScale
from repro.machine.power import calibrated_power_model
from repro.machine.topology import MachineConfig, opteron_8380_machine
from repro.runtime.cilk import CilkScheduler
from repro.runtime.cilk_d import CilkDScheduler
from repro.runtime.wats import WATSScheduler
from repro.sim.engine import simulate
from repro.workloads.benchmarks import benchmark_program
from repro.workloads.generators import generate_program
from repro.workloads.synthetic import imbalance_sweep_spec


def machine_with(levels, num_cores=8, domains=None):
    scale = FrequencyScale(levels)
    power = calibrated_power_model(scale)
    return MachineConfig(
        num_cores=num_cores, scale=scale, power=power, dvfs_domains=domains
    )


class TestUnusualLadders:
    def test_two_level_machine(self):
        """EEWA works with a minimal fast/slow ladder."""
        machine = machine_with((3.0e9, 1.0e9), num_cores=8)
        program = generate_program(imbalance_sweep_spec(3), batches=6, seed=2)
        cilk = simulate(program, CilkScheduler(), machine, seed=2)
        eewa = simulate(program, EEWAScheduler(), machine, seed=2)
        assert eewa.total_joules < cilk.total_joules
        assert eewa.total_time < 1.1 * cilk.total_time

    def test_six_level_machine(self):
        """A fine ladder gives the search more room; still converges."""
        machine = machine_with(
            tuple(3.0e9 * 0.85**i for i in range(6)), num_cores=12
        )
        program = generate_program(imbalance_sweep_spec(4), batches=6, seed=2)
        eewa = simulate(program, EEWAScheduler(), machine, seed=2)
        assert eewa.tasks_executed == sum(len(b) for b in program)
        # Some level other than the extremes is plausible but not required;
        # just assert a valid partition every batch.
        for hist in eewa.trace.level_histograms():
            assert sum(hist) == 12 and len(hist) == 6

    def test_single_core_machine(self):
        """Degenerate m=1: everything serialises, nothing crashes."""
        machine = machine_with((2.0e9, 1.0e9), num_cores=1)
        program = generate_program(imbalance_sweep_spec(1, light_tasks=5), batches=3, seed=1)
        for policy in (CilkScheduler(), CilkDScheduler(), EEWAScheduler()):
            result = simulate(program, policy, machine, seed=1)
            assert result.tasks_executed == sum(len(b) for b in program)


class TestPolicyDomainCombinations:
    def test_wats_on_domain_machine(self):
        """WATS's fixed levels get coerced by planes and still complete."""
        machine = opteron_8380_machine(per_socket_dvfs=True)
        program = benchmark_program("DMC", batches=4, seed=7)
        # Levels that straddle a socket: plane semantics force the fast one.
        levels = [0] * 6 + [3] * 10
        result = simulate(program, WATSScheduler(levels), machine, seed=7)
        assert result.tasks_executed == sum(len(b) for b in program)
        # Socket 1 (cores 4-7) holds both a 0-request and 3-requests: the
        # whole plane must run fast.
        for task in result.tasks:
            if task.executed_on in (4, 5, 6, 7):
                assert task.executed_level == 0

    def test_cilk_d_on_domain_machine_saves_less(self):
        """Planes blunt Cilk-D: one busy sibling pins four cores fast."""
        program = benchmark_program("SHA-1", batches=8, seed=11)
        fine = opteron_8380_machine()
        coarse = opteron_8380_machine(per_socket_dvfs=True)
        saving = {}
        for label, machine in (("fine", fine), ("coarse", coarse)):
            cilk = simulate(program, CilkScheduler(), machine, seed=11)
            cilk_d = simulate(program, CilkDScheduler(), machine, seed=11)
            saving[label] = 1 - cilk_d.total_joules / cilk.total_joules
        assert 0.0 <= saving["coarse"] < saving["fine"]


class TestScaleSmoke:
    def test_sixty_four_cores(self):
        machine = opteron_8380_machine(num_cores=64)
        program = benchmark_program("SHA-1", batches=4, seed=3)
        cilk = simulate(program, CilkScheduler(), machine, seed=3)
        eewa = simulate(program, EEWAScheduler(), machine, seed=3)
        assert eewa.tasks_executed == cilk.tasks_executed
        # Tiny workload on a huge machine: nearly everything parks slow.
        assert eewa.total_joules < 0.75 * cilk.total_joules

    def test_long_run_thirty_batches(self):
        machine = opteron_8380_machine()
        program = benchmark_program("MD5", batches=30, seed=3)
        result = simulate(program, EEWAScheduler(), machine, seed=3)
        assert result.batches_executed == 30
        # Overhead share stays within the paper's Table III bound.
        assert result.adjust_overhead_seconds / result.total_time < 0.02


class TestConfigInteractions:
    def test_exhaustive_plus_fluid(self):
        machine = opteron_8380_machine()
        program = benchmark_program("DMC", batches=4, seed=9)
        config = EEWAConfig(search="exhaustive", cc_mode="fluid")
        result = simulate(program, EEWAScheduler(config), machine, seed=9)
        assert result.tasks_executed == sum(len(b) for b in program)

    def test_headroom_zero_still_safe(self):
        machine = opteron_8380_machine()
        program = benchmark_program("SHA-1", batches=6, seed=9)
        cilk = simulate(program, CilkScheduler(), machine, seed=9)
        result = simulate(
            program, EEWAScheduler(EEWAConfig(headroom=0.0)), machine, seed=9
        )
        assert result.total_time < 1.15 * cilk.total_time

    def test_large_headroom_conservative(self):
        """Huge headroom kills most scaling but never correctness."""
        machine = opteron_8380_machine()
        program = benchmark_program("SHA-1", batches=6, seed=9)
        tight = simulate(
            program, EEWAScheduler(EEWAConfig(headroom=1.0)), machine, seed=9
        )
        normal = simulate(program, EEWAScheduler(), machine, seed=9)
        assert tight.tasks_executed == normal.tasks_executed
        assert tight.total_joules >= normal.total_joules - 1e-9
