"""Work-stealing deque.

The paper uses the classic distributed-task-pool design: "a task pool is a
double-ended queue which is convenient for task stealing" (Section III-B).
The owner pushes and pops at the *bottom* (LIFO, good locality); thieves
steal from the *top* (FIFO, oldest/biggest-subtree first) — the Chase-Lev /
Cilk THE discipline.

In the simulator there is no real concurrency, so this is a plain deque
with the owner/thief API split kept explicit; the engine charges steal
latency separately (``MachineConfig.steal_cycles``).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterator, Optional, TypeVar

T = TypeVar("T")


class WorkStealingDeque(Generic[T]):
    """Owner-bottom / thief-top double-ended queue.

    ``_items`` (the backing :class:`collections.deque`) is a same-package
    contract: :class:`~repro.runtime.pools.PoolGrid` indexes it directly on
    its hot path. Bottom = the deque's right end, top = its left end.
    """

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: Deque[T] = deque()

    def push_bottom(self, item: T) -> None:
        """Owner-side push (newest work)."""
        self._items.append(item)

    def pop_bottom(self) -> Optional[T]:
        """Owner-side pop; returns ``None`` when empty."""
        if not self._items:
            return None
        return self._items.pop()

    def steal_top(self) -> Optional[T]:
        """Thief-side steal of the oldest item; ``None`` when empty."""
        if not self._items:
            return None
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[T]:
        """Iterate bottom-to-top without consuming (inspection/tests only)."""
        return reversed(self._items)

    def clear(self) -> None:
        self._items.clear()

    def state_fingerprint(self) -> str:
        """Digest of the deque's exact contents, top-to-bottom.

        Items are identified by ``(task_id, function)`` when they look like
        :class:`~repro.runtime.task.Task`; anything else falls back to
        ``repr``. Used by the engine's steady-state fast-forward: residual
        queued work at a batch boundary must perturb the digest.
        """
        parts = []
        for item in self._items:
            task_id = getattr(item, "task_id", None)
            if task_id is not None:
                parts.append(f"{task_id}:{getattr(item, 'function', '')}")
            else:
                parts.append(repr(item))
        return "|".join(parts)
