"""c-group assembly: from a k-tuple to concrete cores and pools.

A *c-group* is "a set of cores with the same operating frequency"
(Section II-A). The k-tuple gives real-valued core demands per frequency
level; this module turns them into an integral per-core frequency plan:

* demands are aggregated per level and rounded up (every class must still
  fit its share of the ideal iteration time);
* if rounding overflows the machine, the slowest selected level is merged
  into the next faster one (never the other way — a class moved to a faster
  group still meets its deadline);
* cores left over after all demands are met are parked in the machine's
  slowest level — they hold no allocated class, spin at minimum power, and
  help out at batch tails via the preference lists. This is what produces
  the paper's Fig. 8 shape (5 cores at 2.5 GHz, 11 at 0.8 GHz for SHA-1).

The leftover policy is configurable for the ablation study
(``"slowest"`` | ``"join_slowest_group"`` | ``"fastest"``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.cc_table import CCTable
from repro.core.ktuple import Capacities, KTupleSolution
from repro.errors import SearchError

LEFTOVER_POLICIES = ("slowest", "join_slowest_group", "fastest")


@dataclass(frozen=True)
class CGroup:
    """One c-group: an operating point and the cores pinned to it.

    ``level`` is the DVFS level *local to the group's cores* — on
    homogeneous machines that is the machine frequency index, on
    heterogeneous ones the index into the core type's own ladder (what the
    engine validates per core). ``op_index`` is the group's global
    operating-point index when the plan was built against per-type
    capacities; it is what makes groups comparable across core types
    (faster/slower) and stays ``None`` on plans built the flat-ladder way.
    """

    index: int  # position among used groups, 0 = fastest
    level: int  # DVFS level local to this group's cores
    core_ids: tuple[int, ...]
    op_index: Optional[int] = None

    def __len__(self) -> int:
        return len(self.core_ids)

    @property
    def rank(self) -> int:
        """Global speed rank for cross-group comparisons (lower = faster)."""
        return self.op_index if self.op_index is not None else self.level


@dataclass(frozen=True)
class CGroupPlan:
    """Complete per-batch placement decision.

    Attributes
    ----------
    core_levels:
        Target DVFS level per core (dense, length ``m``).
    groups:
        Used c-groups, fastest first (``groups[0]`` is ``G_0``).
    class_to_group:
        Task-class function name -> group index holding its tasks.
    group_of_core:
        Core id -> group index.
    """

    core_levels: tuple[int, ...]
    groups: tuple[CGroup, ...]
    class_to_group: dict[str, int]
    group_of_core: tuple[int, ...]

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def level_histogram(self, r: int) -> tuple[int, ...]:
        hist = [0] * r
        for level in self.core_levels:
            hist[level] += 1
        return tuple(hist)

    def fastest_group_index(self) -> int:
        return 0


def build_cgroup_plan(
    solution: KTupleSolution,
    table: CCTable,
    num_cores: int,
    *,
    leftover_policy: str = "slowest",
    capacities: Optional[Capacities] = None,
) -> CGroupPlan:
    """Realise a k-tuple as an integral c-group plan.

    Without ``capacities`` the table rows are the machine's flat frequency
    ladder and the whole machine is one core pool (the paper's setting).
    With per-type ``capacities`` every step — rounding overflow merges, the
    single-level clamp, leftover parking, and the core-id layout — runs
    *per core type*, because cores of one type cannot realise another
    type's operating points. A one-type capacity declaration reduces to
    the flat-ladder arithmetic exactly.
    """
    if leftover_policy not in LEFTOVER_POLICIES:
        raise SearchError(f"unknown leftover policy {leftover_policy!r}")
    if len(solution.assignment) != table.k:
        raise SearchError("solution and table disagree on class count")
    r = table.r
    scale = table.scale

    # Capacity buckets: (rows, core budget, first core id). Levels here are
    # global operating-point indices (== machine levels when flat).
    if capacities is None:
        buckets: list[tuple[tuple[int, ...], int, int]] = [
            (tuple(range(r)), num_cores, 0)
        ]
    else:
        names = [name for name, _ in capacities]
        if sorted(names) != sorted(scale.types):
            raise SearchError(
                f"capacities declare types {names} but the scale has {list(scale.types)}"
            )
        if sum(count for _, count in capacities) != num_cores:
            raise SearchError("capacities do not sum to the machine's core count")
        rows_of: dict[str, list[int]] = {name: [] for name in names}
        for j in range(r):
            rows_of[scale.core_type_of(j)].append(j)
        buckets = []
        offset = 0
        for name, count in capacities:
            buckets.append((tuple(rows_of[name]), count, offset))
            offset += count

    # Aggregate demand per selected level, then round up.
    demand = solution.demand_by_level()
    counts: dict[int, int] = {
        level: max(1, math.ceil(d - 1e-9)) for level, d in demand.items() if d > 0
    }
    # Classes with zero demand (empty classes) still need a home: the level
    # the tuple chose, or any selected one. Map them after group assembly.
    class_level = {i: solution.assignment[i] for i in range(table.k)}

    for rows, budget, _ in buckets:
        # Merge the bucket's slowest levels into faster ones while the
        # rounding overflows its core budget.
        def used(rows=rows) -> list[int]:
            return [lvl for lvl in rows if lvl in counts]

        while sum(counts[lvl] for lvl in used()) > budget and len(used()) > 1:
            levels_sorted = used()  # rows ascend fastest..slowest already
            slowest = levels_sorted[-1]
            target = levels_sorted[-2]
            counts[target] = counts[target] + counts[slowest] - 1
            del counts[slowest]
            for i, lvl in class_level.items():
                if lvl == slowest:
                    class_level[i] = target
        remaining = used()
        if sum(counts[lvl] for lvl in remaining) > budget:
            # Single level still overflowing: clamp (performance will
            # degrade, but the plan stays valid — the search should have
            # prevented this).
            counts[remaining[0]] = budget

        # Park the bucket's leftover cores.
        leftover = budget - sum(counts[lvl] for lvl in used())
        if leftover > 0:
            if leftover_policy == "slowest":
                park_level = rows[-1]
            elif leftover_policy == "join_slowest_group":
                park_level = max(used(), default=rows[-1])
            else:  # "fastest"
                park_level = rows[0]
            counts[park_level] = counts.get(park_level, 0) + leftover

    # Lay cores out deterministically: each type owns a contiguous core-id
    # range (declaration order), and within it faster groups get the lowest
    # ids. Groups themselves are ordered by global operating-point index.
    alloc: dict[int, tuple[int, ...]] = {}
    for rows, budget, offset in buckets:
        next_core = offset
        for level in rows:
            if level not in counts:
                continue
            alloc[level] = tuple(range(next_core, next_core + counts[level]))
            next_core += counts[level]
        if next_core != offset + budget:
            raise SearchError(
                f"core allocation mismatch: placed {next_core - offset} of {budget}"
            )

    used_levels = sorted(alloc)
    core_levels: list[int] = [0] * num_cores
    groups: list[CGroup] = []
    group_of_core: list[int] = [0] * num_cores
    for gidx, level in enumerate(used_levels):
        ids = alloc[level]
        local = scale.type_level_of(level) if capacities is not None else level
        groups.append(
            CGroup(
                index=gidx,
                level=local,
                core_ids=ids,
                op_index=level if capacities is not None else None,
            )
        )
        for cid in ids:
            group_of_core[cid] = gidx
            core_levels[cid] = local

    # Map classes to groups. A class whose level was merged/unselected goes
    # to the nearest *faster-or-equal* used operating point so it still
    # meets T (cross-type: comparisons use the global index).
    level_to_group = {level: gidx for gidx, level in enumerate(used_levels)}
    class_to_group: dict[str, int] = {}
    for i, name in enumerate(table.class_names):
        lvl = class_level[i]
        if lvl in level_to_group:
            class_to_group[name] = level_to_group[lvl]
        else:
            faster = [gidx for gidx, level in enumerate(used_levels) if level <= lvl]
            class_to_group[name] = faster[-1] if faster else 0

    return CGroupPlan(
        core_levels=tuple(core_levels),
        groups=tuple(groups),
        class_to_group=class_to_group,
        group_of_core=tuple(group_of_core),
    )


def uniform_plan(num_cores: int, level: int, class_names: tuple[str, ...] = ()) -> CGroupPlan:
    """A degenerate one-group plan with every core at ``level``.

    Used for the first (profiling) batch and the memory-bound fallback.
    """
    group = CGroup(index=0, level=level, core_ids=tuple(range(num_cores)))
    return CGroupPlan(
        core_levels=tuple([level] * num_cores),
        groups=(group,),
        class_to_group={name: 0 for name in class_names},
        group_of_core=tuple([0] * num_cores),
    )
