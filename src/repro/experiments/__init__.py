"""One module per paper exhibit: Fig. 1, 6, 7, 8, 9 and Table III —
plus the sweep-execution layer they all run on (cell model, sharded
result cache, persistent sweep engine)."""

from repro.experiments.fig1 import analytic_schedules, fig1_machine, fig1_rows, run_fig1
from repro.experiments.fig6 import Fig6Result, Fig6Row, run_fig6
from repro.experiments.fig7 import Fig7Result, Fig7Row, run_fig7
from repro.experiments.fig8 import Fig8Result, run_fig8
from repro.experiments.fig9 import Fig9Point, Fig9Result, run_fig9
from repro.experiments.fig_hetero import (
    HeteroResult,
    HeteroRow,
    run_fig_hetero,
)
from repro.experiments.report import (
    bar_chart,
    format_percent,
    format_series,
    format_table,
    frequency_timeline,
    grouped_bar_chart,
)
from repro.experiments.runner import (
    DEFAULT_SEEDS,
    RunOutcome,
    make_policy,
    modal_eewa_levels,
    run_benchmark,
)
from repro.experiments.parallel import (
    CellOutcome,
    CellSpec,
    ParallelRunner,
    ResultCache,
    SweepStats,
)
from repro.experiments.sweep import SweepEngine, SweepTicket
from repro.experiments.table3 import Table3Result, Table3Row, run_table3

__all__ = [
    "CellOutcome",
    "CellSpec",
    "DEFAULT_SEEDS",
    "ParallelRunner",
    "ResultCache",
    "SweepEngine",
    "SweepStats",
    "SweepTicket",
    "bar_chart",
    "frequency_timeline",
    "grouped_bar_chart",
    "Fig6Result",
    "Fig6Row",
    "Fig7Result",
    "Fig7Row",
    "Fig8Result",
    "Fig9Point",
    "Fig9Result",
    "HeteroResult",
    "HeteroRow",
    "RunOutcome",
    "Table3Result",
    "Table3Row",
    "analytic_schedules",
    "fig1_machine",
    "fig1_rows",
    "format_percent",
    "format_series",
    "format_table",
    "make_policy",
    "modal_eewa_levels",
    "run_benchmark",
    "run_fig1",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig_hetero",
    "run_table3",
]
