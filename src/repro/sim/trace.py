"""Execution trace recording.

The trace captures what the paper's figures are drawn from:

* per-batch frequency configurations (Fig. 8: "number of cores with four
  frequencies in the 10 batches of SHA-1");
* per-batch durations and adjuster overheads (Table III);
* DVFS transition log (for debugging and the frequency-timeline example);
* optionally (``record_task_events=True`` on the engine), the full task
  lifecycle — create / push / pop / steal / exec / done, plus the c-group
  plan active at each moment — which is what the race detector in
  :mod:`repro.checks.races` replays for its happens-before analysis.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

#: Actor id used for events performed by the batch launcher (the engine
#: placing a batch's root tasks) rather than by a specific core.
LAUNCHER_ACTOR = -1


class TaskEventKind(enum.Enum):
    """Lifecycle stages of a task as seen by the trace."""

    CREATE = "create"  #: task object materialised (batch root or spawn)
    PUSH = "push"      #: owner-side push into a pool
    POP = "pop"        #: owner-side LIFO pop from a pool
    STEAL = "steal"    #: thief-side FIFO steal from a victim's pool
    EXEC = "exec"      #: execution started on a core
    DONE = "done"      #: execution finished

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class TaskEvent:
    """One task-lifecycle event.

    ``seq`` is a global, gap-free order shared with :class:`PlanEvent` —
    the replay order of the race detector. ``actor`` is the core driving
    the event (:data:`LAUNCHER_ACTOR` for batch placement); ``pool_core``
    is the owner of the pool touched (the victim, for steals) and equals
    ``actor`` for POP/EXEC/DONE. ``pool_index`` is the c-group pool number
    (always 0 for single-pool policies); it is ``-1`` where no pool is
    involved (CREATE, and EXEC/DONE which name only the executing core).
    """

    seq: int
    time: float
    kind: TaskEventKind
    actor: int
    task_id: int
    pool_core: int = -1
    pool_index: int = -1


@dataclass(frozen=True)
class PlanEvent:
    """A c-group plan installation (grouped policies only).

    Shares the ``seq`` sequence with :class:`TaskEvent` so the race
    detector knows which plan governs each subsequent pool operation.
    ``group_of_core[c]`` is core ``c``'s group index; ``group_levels[g]``
    is group ``g``'s frequency level (fastest-first index into the scale).
    """

    seq: int
    time: float
    group_of_core: tuple[int, ...]
    group_levels: tuple[int, ...]


@dataclass(frozen=True)
class BatchTrace:
    """Summary of one executed batch."""

    batch_index: int
    start_time: float
    duration: float
    tasks_completed: int
    #: cores-per-frequency-level at the moment the batch launched
    level_histogram: tuple[int, ...]
    adjust_overhead_seconds: float = 0.0


@dataclass(frozen=True)
class DvfsTransition:
    """One core's P-state switch."""

    time: float
    core_id: int
    from_level: int
    to_level: int


@dataclass
class TraceRecorder:
    """Accumulates batch and DVFS traces during a run."""

    batches: list[BatchTrace] = field(default_factory=list)
    transitions: list[DvfsTransition] = field(default_factory=list)
    #: Task-lifecycle events; empty unless the engine ran with
    #: ``record_task_events=True``.
    task_events: list[TaskEvent] = field(default_factory=list)
    #: Plan installations, same opt-in.
    plan_events: list[PlanEvent] = field(default_factory=list)
    _next_seq: int = 0

    def record_batch(self, trace: BatchTrace) -> None:
        self.batches.append(trace)

    def record_transition(self, transition: DvfsTransition) -> None:
        self.transitions.append(transition)

    def record_task_event(
        self,
        time: float,
        kind: TaskEventKind,
        actor: int,
        task_id: int,
        pool_core: int = -1,
        pool_index: int = -1,
    ) -> TaskEvent:
        event = TaskEvent(
            seq=self._next_seq,
            time=time,
            kind=kind,
            actor=actor,
            task_id=task_id,
            pool_core=pool_core,
            pool_index=pool_index,
        )
        self._next_seq += 1
        self.task_events.append(event)
        return event

    def record_plan(
        self,
        time: float,
        group_of_core: tuple[int, ...],
        group_levels: tuple[int, ...],
    ) -> PlanEvent:
        event = PlanEvent(
            seq=self._next_seq,
            time=time,
            group_of_core=group_of_core,
            group_levels=group_levels,
        )
        self._next_seq += 1
        self.plan_events.append(event)
        return event

    # -- figure-ready views ----------------------------------------------------

    def level_histograms(self) -> list[tuple[int, ...]]:
        """Per-batch cores-per-level tuples (the Fig. 8 series)."""
        return [b.level_histogram for b in self.batches]

    def batch_durations(self) -> list[float]:
        return [b.duration for b in self.batches]

    def total_adjust_overhead(self) -> float:
        return sum(b.adjust_overhead_seconds for b in self.batches)

    def transitions_for_core(self, core_id: int) -> list[DvfsTransition]:
        return [t for t in self.transitions if t.core_id == core_id]

    def modal_histogram(self, skip_first: bool = True) -> Optional[tuple[int, ...]]:
        """Most frequent per-batch frequency configuration.

        Fig. 7 fixes the asymmetric machine at "the most often used frequency
        configurations in different batches of the benchmark" — this is that
        selection. The first (all-fast, profiling) batch is skipped by
        default.
        """
        hists = self.level_histograms()
        if skip_first:
            hists = hists[1:]
        if not hists:
            return None
        counts: dict[tuple[int, ...], int] = {}
        for h in hists:
            counts[h] = counts.get(h, 0) + 1
        # Deterministic tie-break: highest count, then first-seen order.
        best = max(counts.items(), key=lambda kv: (kv[1], -hists.index(kv[0])))
        return best[0]
