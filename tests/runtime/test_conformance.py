"""The conformance harness applied to every shipped policy, and to a
deliberately broken one."""

import pytest

from repro.core.eewa import EEWAScheduler
from repro.runtime.cilk import CilkScheduler
from repro.runtime.cilk_d import CilkDScheduler
from repro.runtime.conformance import check_policy
from repro.runtime.policy import RunTask, SchedulerPolicy, Wait
from repro.runtime.wats import WATSScheduler


class TestShippedPolicies:
    def test_cilk_conforms(self):
        report = check_policy(CilkScheduler)
        assert report.ok, report.failures
        assert report.checks_run == 6

    def test_cilk_d_conforms(self):
        report = check_policy(CilkDScheduler)
        assert report.ok, report.failures

    def test_eewa_conforms(self):
        report = check_policy(EEWAScheduler)
        assert report.ok, report.failures

    def test_wats_conforms(self):
        report = check_policy(lambda: WATSScheduler([0, 0, 1, 2]))
        assert report.ok, report.failures


class TestBrokenPolicies:
    def test_task_dropping_policy_detected(self):
        class DropsTasks(SchedulerPolicy):
            """Loses every third task."""

            name = "drops-tasks"

            def on_batch_start(self, batch, tasks):
                self._tasks = [t for i, t in enumerate(tasks) if i % 3]

            def on_spawn(self, core_id, task):
                self._tasks.append(task)

            def next_action(self, core_id):
                if self._tasks:
                    return RunTask(self._tasks.pop())
                return Wait()

        report = check_policy(DropsTasks)
        assert not report.ok
        # Every execution-count check fails.
        assert any("balanced-batches" in f for f in report.failures)

    def test_serialising_policy_detected(self):
        class OnlyCoreZero(SchedulerPolicy):
            """Runs everything on core 0 — legal but grossly serial."""

            name = "core-zero-only"

            def on_batch_start(self, batch, tasks):
                self._tasks = list(tasks)

            def on_spawn(self, core_id, task):
                self._tasks.append(task)

            def next_action(self, core_id):
                if core_id == 0 and self._tasks:
                    return RunTask(self._tasks.pop())
                return Wait()

        report = check_policy(OnlyCoreZero)
        # Completes all work (not a correctness failure) but may trip the
        # serialisation bound; either way it must not crash the harness.
        assert report.checks_run == 6

    def test_spawnless_policy_with_flag(self):
        class NoSpawns(SchedulerPolicy):
            name = "no-spawns"

            def on_batch_start(self, batch, tasks):
                self._tasks = list(tasks)

            def next_action(self, core_id):
                if self._tasks:
                    return RunTask(self._tasks.pop())
                return Wait()

        assert not check_policy(NoSpawns).ok  # spawns check fails
        assert check_policy(NoSpawns, check_spawns=False).ok
