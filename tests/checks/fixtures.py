"""Deliberately broken policies shared by the conformance and race tests.

Each fixture violates exactly one contract the checks subsystem exists to
catch, in a way that is invisible to coarse metrics (task counts, timing)
but visible to the deep-trace race detector and/or the conformance
battery:

* :class:`DoubleExecutes` — re-runs a completed task in place of a freshly
  acquired one (EEWA201/202/204);
* :class:`DropsTasks` — silently loses work, deadlocking the batch barrier
  (EEWA202, and an engine-side ``SimulationError``);
* :class:`OffLadderFrequency` — requests a DVFS level outside the
  machine's ladder (conformance: raised ``ConfigurationError``);
* :class:`BadStealOrder` — a c-group policy that walks its preference
  lists backwards, robbing the strongest first (EEWA205).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.cgroups import CGroupPlan
from repro.core.eewa import EEWAScheduler
from repro.runtime.policy import (
    Action,
    RunTask,
    SchedulerPolicy,
    SetFrequency,
    Wait,
)
from repro.runtime.pools import PoolGrid
from repro.runtime.task import Batch, Task


class DoubleExecutes(SchedulerPolicy):
    """Runs the first completed task a second time in place of another.

    Pool bookkeeping stays balanced — a victim task is acquired from the
    grid for every ``RunTask`` returned — so the batch barrier's completion
    count works out and the run terminates normally. The trace, however,
    shows one task with two EXECs (only one acquisition) and one task that
    was acquired but never executed: exactly the shape EEWA201/202/204
    exist to catch, and invisible to anything that only counts executions.
    """

    name = "double-executes"

    def __init__(self) -> None:
        super().__init__()
        self._grid: Optional[PoolGrid] = None
        self._first_done: Optional[Task] = None
        self._cheated = False

    def on_batch_start(self, batch: Batch, tasks: Sequence[Task]) -> None:
        ctx = self._require_ctx()
        if self._grid is None:
            observer = getattr(ctx, "pool_observer", lambda: None)()
            self._grid = PoolGrid(ctx.machine.num_cores, 1, observer=observer)
        for task in tasks:
            self._grid.push(0, 0, task)

    def on_spawn(self, core_id: int, task: Task) -> None:
        assert self._grid is not None
        self._grid.push(core_id, 0, task)

    def on_task_complete(self, core_id: int, task: Task) -> None:
        if self._first_done is None:
            self._first_done = task

    def next_action(self, core_id: int) -> Action:
        assert self._grid is not None
        if core_id == 0:
            task = self._grid.pop_local(0, 0)
        else:
            task = self._grid.steal(0, 0)
        if task is None:
            return Wait()
        if self._first_done is not None and not self._cheated:
            # Drop the task just acquired and re-run the stale reference.
            self._cheated = True
            return RunTask(self._first_done)
        return RunTask(task)


class DropsTasks(SchedulerPolicy):
    """Loses every third root task; the batch barrier waits forever.

    The engine detects the deadlock (event queue drained with work
    outstanding) and raises ``SimulationError``; the partial trace still
    carries the CREATE events of the lost tasks, which is what EEWA202
    reports.
    """

    name = "drops-tasks"

    def on_batch_start(self, batch: Batch, tasks: Sequence[Task]) -> None:
        self._tasks = [t for i, t in enumerate(tasks) if i % 3]

    def on_spawn(self, core_id: int, task: Task) -> None:
        self._tasks.append(task)

    def next_action(self, core_id: int) -> Action:
        if self._tasks:
            return RunTask(self._tasks.pop())
        return Wait()


class OffLadderFrequency(SchedulerPolicy):
    """Requests DVFS level 99 on a machine whose ladder has r levels."""

    name = "off-ladder-frequency"

    def on_batch_start(self, batch: Batch, tasks: Sequence[Task]) -> None:
        self._tasks = list(tasks)

    def on_spawn(self, core_id: int, task: Task) -> None:
        self._tasks.append(task)

    def next_action(self, core_id: int) -> Action:
        return SetFrequency(99)


class BadStealOrder(EEWAScheduler):
    """EEWA with its preference lists reversed: robs the *strongest* first.

    Functionally complete (every task runs exactly once), so only the
    EEWA205 preference-order check can tell it from the real scheduler.
    """

    name = "bad-steal-order"

    def _install_plan(self, plan: CGroupPlan, **kwargs) -> None:
        super()._install_plan(plan, **kwargs)
        self._prefs = [tuple(reversed(p)) for p in self._prefs]
