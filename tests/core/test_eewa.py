"""Tests for the complete EEWA scheduler policy."""

from repro.core.eewa import EEWAConfig, EEWAScheduler
from repro.core.membound import MemoryBoundMode
from repro.machine.counters import PerfCounters
from repro.machine.topology import opteron_8380_machine
from repro.runtime.cilk import CilkScheduler
from repro.runtime.task import TaskSpec, flat_batch
from repro.sim.engine import simulate

REF = 2.5e9


def granular_program(batches=6, heavy=5, light=40):
    """A granularity-bound workload with clear slack."""
    out = []
    for i in range(batches):
        specs = [TaskSpec("heavy", cpu_cycles=0.045 * REF) for _ in range(heavy)]
        specs += [TaskSpec("light", cpu_cycles=0.0015 * REF) for _ in range(light)]
        out.append(flat_batch(i, specs))
    return out


def memory_bound_program(batches=4):
    """Granularity-bound AND memory-bound: the IGNORE ablation has slack to
    (mis)use, while FALLBACK correctly refuses to."""
    hot = PerfCounters(retired_instructions=1000, cache_misses=100)
    out = []
    for i in range(batches):
        specs = [
            TaskSpec("stream_big", cpu_cycles=0.002 * REF, mem_stall_seconds=0.02,
                     counters=hot)
            for _ in range(6)
        ]
        specs += [
            TaskSpec("stream_small", cpu_cycles=0.0005 * REF,
                     mem_stall_seconds=0.002, counters=hot)
            for _ in range(20)
        ]
        out.append(flat_batch(i, specs))
    return out


class TestFirstBatch:
    def test_first_batch_all_fast(self):
        machine = opteron_8380_machine()
        result = simulate(granular_program(), EEWAScheduler(), machine, seed=1)
        assert result.trace.level_histograms()[0] == (16, 0, 0, 0)

    def test_later_batches_scaled(self):
        machine = opteron_8380_machine()
        result = simulate(granular_program(), EEWAScheduler(), machine, seed=1)
        for hist in result.trace.level_histograms()[1:]:
            assert hist[0] < 16

    def test_all_tasks_complete(self):
        machine = opteron_8380_machine()
        program = granular_program()
        result = simulate(program, EEWAScheduler(), machine, seed=1)
        assert result.tasks_executed == sum(len(b) for b in program)


class TestEnergyClaim:
    def test_saves_energy_vs_cilk_with_bounded_slowdown(self):
        """The headline claim on a slack workload."""
        machine = opteron_8380_machine()
        program = granular_program(batches=8)
        cilk = simulate(program, CilkScheduler(), machine, seed=1)
        eewa = simulate(program, EEWAScheduler(), machine, seed=1)
        assert eewa.total_joules < 0.9 * cilk.total_joules
        assert eewa.total_time < 1.08 * cilk.total_time

    def test_no_slack_no_scaling(self):
        """A saturated machine keeps every core fast (Fig. 9, 4 cores)."""
        machine = opteron_8380_machine(num_cores=4)
        program = granular_program(batches=4, heavy=8, light=60)
        result = simulate(program, EEWAScheduler(), machine, seed=1)
        for hist in result.trace.level_histograms():
            assert hist[0] == 4


class TestMemoryBoundHandling:
    def test_fallback_keeps_all_fast(self):
        machine = opteron_8380_machine()
        result = simulate(memory_bound_program(), EEWAScheduler(), machine, seed=1)
        for hist in result.trace.level_histograms():
            assert hist == (16, 0, 0, 0)
        assert result.policy_stats["fallback_memory_bound"] == 1.0

    def test_ignore_mode_still_scales(self):
        machine = opteron_8380_machine()
        config = EEWAConfig(memory_bound_mode=MemoryBoundMode.IGNORE)
        result = simulate(memory_bound_program(), EEWAScheduler(config), machine, seed=1)
        assert any(h[0] < 16 for h in result.trace.level_histograms()[1:])

    def test_regression_mode_runs_and_completes(self):
        machine = opteron_8380_machine()
        config = EEWAConfig(memory_bound_mode=MemoryBoundMode.REGRESSION)
        program = memory_bound_program(batches=6)
        result = simulate(program, EEWAScheduler(config), machine, seed=1)
        assert result.tasks_executed == sum(len(b) for b in program)


class TestConfigKnobs:
    def test_frozen_plan_when_not_adapting(self):
        machine = opteron_8380_machine()
        config = EEWAConfig(adapt_every_batch=False)
        result = simulate(granular_program(), EEWAScheduler(config), machine, seed=1)
        hists = result.trace.level_histograms()
        # Batch 0 all fast; batch 1 adjusted once; then frozen.
        assert hists[0] == (16, 0, 0, 0)
        assert len(set(hists[1:])) == 1

    def test_fluid_mode_runs(self):
        machine = opteron_8380_machine()
        config = EEWAConfig(cc_mode="fluid")
        program = granular_program(batches=4)
        result = simulate(program, EEWAScheduler(config), machine, seed=1)
        assert result.tasks_executed == sum(len(b) for b in program)

    def test_overhead_charged_between_batches(self):
        machine = opteron_8380_machine()
        result = simulate(granular_program(), EEWAScheduler(), machine, seed=1)
        assert result.adjust_overhead_seconds > 0.0

    def test_adjuster_wallclock_tracked(self):
        machine = opteron_8380_machine()
        policy = EEWAScheduler()
        simulate(granular_program(), policy, machine, seed=1)
        assert policy.total_adjuster_wallclock() > 0.0
        assert len(policy.decisions) == 6  # one adjustment per batch end

    def test_unknown_class_goes_to_fastest_group(self):
        """A class appearing for the first time mid-run lands in G_0."""
        machine = opteron_8380_machine()
        program = granular_program(batches=4)
        # Inject a brand-new class in batch 2.
        specs = list(program[2].specs) + [TaskSpec("novel", cpu_cycles=0.03 * REF)]
        program[2] = flat_batch(2, specs)
        policy = EEWAScheduler()
        result = simulate(program, policy, machine, seed=1)
        novel = [t for t in result.tasks if t.function == "novel"]
        assert len(novel) == 1
        # It ran on the fastest c-group of its batch's plan (level 0 cores
        # exist in every scaled plan here) unless stolen late.
        assert novel[0].executed_level == 0 or novel[0].stolen
