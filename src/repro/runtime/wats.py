"""WATS: Workload-Aware Task Scheduling on fixed asymmetric machines.

The paper's third comparator (Section IV-A, citing Chen et al., IPDPS 2012):
a near-optimal work-stealing scheduler for asymmetric multi-cores that
introduced the *rob-the-weaker-first* principle EEWA reuses. WATS:

* runs on a **fixed** frequency configuration — it never touches DVFS
  ("the preference lists of cores do not change since the frequencies of
  all the cores do not change at all", Section V);
* classifies tasks by profiled workload history and allocates heavy task
  classes to fast core groups, proportionally to each group's computational
  capacity;
* balances the remainder with preference-based stealing, exactly the
  machinery EEWA borrows (shared in
  :class:`~repro.runtime.grouped.GroupedStealingPolicy`).

In Fig. 7 the fixed configuration is the modal per-batch configuration that
EEWA chose for the benchmark — the fairest possible asymmetric layout.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.cgroups import CGroup, CGroupPlan
from repro.core.profiler import OnlineProfiler
from repro.errors import ConfigurationError
from repro.runtime.grouped import GroupedStealingPolicy
from repro.runtime.policy import BatchAdjustment
from repro.runtime.task import Task


def plan_from_levels(
    core_levels: Sequence[int], machine=None
) -> CGroupPlan:
    """Build a (classless) c-group plan from a fixed per-core level vector.

    ``core_levels`` holds each core's level *local to its own ladder*. On a
    heterogeneous machine (``machine`` given and multi-type) cores sharing
    a numeric level but differing in type run at different operating points
    and must land in different c-groups, so grouping is by global
    operating-point index; homogeneous machines keep the historical
    group-by-level path (identical results, ``op_index`` left unset).
    """
    if not core_levels:
        raise ConfigurationError("core_levels must be non-empty")
    group_of_core = [0] * len(core_levels)
    groups: list[CGroup] = []
    if machine is not None and machine.is_heterogeneous:
        scale = machine.scale
        ops = [
            scale.index_for(machine.core_type_of(c), lvl)
            for c, lvl in enumerate(core_levels)
        ]
        for gidx, op in enumerate(sorted(set(ops))):  # ascending = fastest first
            ids = tuple(c for c, o in enumerate(ops) if o == op)
            groups.append(
                CGroup(
                    index=gidx,
                    level=scale.type_level_of(op),
                    core_ids=ids,
                    op_index=op,
                )
            )
            for cid in ids:
                group_of_core[cid] = gidx
    else:
        distinct = sorted(set(core_levels))  # ascending index = fastest first
        for gidx, level in enumerate(distinct):
            ids = tuple(c for c, lvl in enumerate(core_levels) if lvl == level)
            groups.append(CGroup(index=gidx, level=level, core_ids=ids))
            for cid in ids:
                group_of_core[cid] = gidx
    return CGroupPlan(
        core_levels=tuple(core_levels),
        groups=tuple(groups),
        class_to_group={},
        group_of_core=tuple(group_of_core),
    )


def allocate_classes_by_capacity(
    plan: CGroupPlan,
    classes: Sequence[tuple[str, float]],
    group_capacity: Sequence[float],
) -> dict[str, int]:
    """Greedy heavy-to-fast allocation of classes to groups.

    ``classes`` is (function, total_workload) sorted heaviest-first;
    ``group_capacity`` is each group's aggregate compute capacity
    (sum of relative core speeds), fastest group first. Classes fill groups
    in order, moving to the next group once the current one's proportional
    share of the total workload is consumed.
    """
    total_work = sum(w for _, w in classes)
    total_cap = sum(group_capacity)
    if total_work <= 0 or total_cap <= 0:
        return {name: 0 for name, _ in classes}

    allocation: dict[str, int] = {}
    group = 0
    consumed = 0.0
    budget = total_work * group_capacity[0] / total_cap
    for name, work in classes:
        # Midpoint rule: a class belongs to the next group once its centre
        # of mass crosses the current group's cumulative capacity share —
        # plain >= would let one heavy class marginally under-fill the fast
        # group and drag every lighter class in with it.
        while group < len(group_capacity) - 1 and consumed + work / 2 > budget + 1e-12:
            group += 1
            budget += total_work * group_capacity[group] / total_cap
        allocation[name] = group
        consumed += work
    return allocation


class WATSScheduler(GroupedStealingPolicy):
    """History-based workload-aware stealing on a fixed configuration."""

    name = "wats"

    def __init__(self, core_levels: Sequence[int]) -> None:
        super().__init__()
        self._core_levels = tuple(int(v) for v in core_levels)
        self.profiler: Optional[OnlineProfiler] = None
        self._batch_start = 0.0

    def on_program_start(self) -> BatchAdjustment:
        ctx = self._require_ctx()
        if len(self._core_levels) != ctx.machine.num_cores:
            raise ConfigurationError(
                f"core_levels has {len(self._core_levels)} entries for "
                f"{ctx.machine.num_cores} cores"
            )
        for core_id, level in enumerate(self._core_levels):
            ctx.machine.ladder_of(core_id).validate_index(level)
        self.profiler = OnlineProfiler(scale=ctx.machine.scale)
        self._install_plan(plan_from_levels(self._core_levels, machine=ctx.machine))
        return BatchAdjustment(frequency_levels=list(self._core_levels))

    def on_batch_start(self, batch, tasks) -> None:
        self._batch_start = self._require_ctx().now()
        super().on_batch_start(batch, tasks)

    def on_task_complete(self, core_id: int, task: Task) -> None:
        assert self.profiler is not None
        level = task.executed_level
        assert level is not None
        machine = self._require_ctx().machine
        core_type = (
            machine.core_type_of(core_id) if machine.is_heterogeneous else None
        )
        self.profiler.observe(
            task.function, task.elapsed, level, task.spec.counters, core_type
        )

    def on_batch_end(self, batch_index: int) -> None:
        """Re-derive the class allocation from this batch's history."""
        ctx = self._require_ctx()
        profiler = self.profiler
        assert profiler is not None
        plan = self.plan

        classes = [
            (c.function, c.total_workload) for c in profiler.classes_by_workload()
        ]
        capacities = [
            sum(ctx.machine.scale.relative_speed(g.rank) for _ in g.core_ids)
            for g in plan.groups
        ]
        class_to_group = allocate_classes_by_capacity(plan, classes, capacities)
        class_workloads = {
            c.function: c.mean_workload for c in profiler.classes_by_workload()
        }
        if self._ideal_time is None and batch_index == 0:
            # WATS has no explicit T; use the first batch's duration as the
            # criticality-guard budget, like EEWA does.
            self._ideal_time = ctx.now() - self._batch_start
        self._install_plan(
            CGroupPlan(
                core_levels=plan.core_levels,
                groups=plan.groups,
                class_to_group=class_to_group,
                group_of_core=plan.group_of_core,
            ),
            class_workloads=class_workloads,
            ideal_time=self._ideal_time,
        )
        profiler.reset_batch()
        return None

    def state_fingerprint(self) -> Optional[str]:
        """Grouped fingerprint plus the profiler's accumulator state.

        ``_batch_start`` is excluded: it is overwritten in every
        ``on_batch_start`` before its only read (the batch-0 ideal-time
        derivation), so its boundary value never feeds a decision.
        """
        base = super().state_fingerprint()
        if base is None or self.profiler is None:
            return None
        return f"{base}:profiler={self.profiler.state_fingerprint()}"
