"""Analytic power model for the simulated machine.

The paper measures whole-machine energy with a wall power meter. We replace
the meter with the standard first-order CMOS model the paper's own reasoning
relies on (Section II assumes power ``p_0 > p_1`` when frequency is scaled
down):

``P_core(f) = P_core_idle + kappa * V(f)^2 * f``   while the core is doing
work (running a task *or* spin-stealing — an idle Cilk worker burns full
power, which is exactly the waste EEWA attacks), and ``P_core_idle`` when the
core is parked between batches. The machine adds a constant baseline
``P_base`` (fans, DRAM, chipset, PSU loss) so that relative whole-machine
savings land in a realistic band rather than being exaggerated.

Voltage scales affinely with frequency between ``(f_min, v_min)`` and
``(f_max, v_max)`` — the shape of every published Opteron P-state table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.machine.frequency import FrequencyScale


@dataclass(frozen=True)
class VoltageCurve:
    """Affine voltage/frequency relation ``V(f)``.

    Parameters
    ----------
    f_min, f_max:
        Frequency endpoints in hertz (``f_min < f_max``).
    v_min, v_max:
        Supply voltage at the endpoints, in volts.
    """

    f_min: float
    f_max: float
    v_min: float
    v_max: float

    def __post_init__(self) -> None:
        if self.f_min >= self.f_max:
            raise ConfigurationError("VoltageCurve requires f_min < f_max")
        if self.v_min <= 0 or self.v_max <= 0:
            raise ConfigurationError("voltages must be positive")
        if self.v_min > self.v_max:
            raise ConfigurationError("VoltageCurve requires v_min <= v_max")

    def voltage(self, frequency: float) -> float:
        """Supply voltage at ``frequency``, clamped to the curve endpoints."""
        if frequency <= self.f_min:
            return self.v_min
        if frequency >= self.f_max:
            return self.v_max
        span = (frequency - self.f_min) / (self.f_max - self.f_min)
        return self.v_min + span * (self.v_max - self.v_min)


@dataclass(frozen=True)
class PowerModel:
    """Per-core and machine-level power as a function of frequency and state.

    Parameters
    ----------
    voltage_curve:
        The ``V(f)`` relation.
    kappa:
        Effective switched capacitance times activity factor, in
        ``W / (V^2 * Hz)``. Calibrated so a core at the top frequency draws
        ``busy_power(F_0) - core_idle_power`` watts of dynamic power.
    core_idle_power:
        Static/leakage power of a parked core, in watts.
    machine_base_power:
        Constant whole-machine baseline in watts (measured by the paper's
        wall meter but invisible to the scheduler).
    """

    voltage_curve: VoltageCurve
    kappa: float
    core_idle_power: float
    machine_base_power: float

    def __post_init__(self) -> None:
        if self.kappa <= 0:
            raise ConfigurationError("kappa must be positive")
        if self.core_idle_power < 0 or self.machine_base_power < 0:
            raise ConfigurationError("powers must be non-negative")

    def dynamic_power(self, frequency: float) -> float:
        """Dynamic (switching) power of one busy core at ``frequency``."""
        v = self.voltage_curve.voltage(frequency)
        return self.kappa * v * v * frequency

    def busy_power(self, frequency: float) -> float:
        """Total power of one core executing or spin-stealing at ``frequency``."""
        return self.core_idle_power + self.dynamic_power(frequency)

    def idle_power(self) -> float:
        """Power of one parked core (between batches / halted)."""
        return self.core_idle_power

    def machine_power(self, busy_frequencies: list[float], idle_cores: int) -> float:
        """Instantaneous whole-machine power for a given core population."""
        total = self.machine_base_power + idle_cores * self.core_idle_power
        for f in busy_frequencies:
            total += self.busy_power(f)
        return total


def calibrated_power_model(
    scale: FrequencyScale,
    *,
    top_core_busy_watts: float = 18.75,
    core_idle_watts: float = 2.0,
    machine_base_watts: float = 180.0,
    v_min: float = 1.0,
    v_max: float = 1.3,
) -> PowerModel:
    """Build a :class:`PowerModel` calibrated against a frequency scale.

    Defaults approximate the paper's 4-socket Opteron 8380 server: each
    quad-core Opteron 8380 is a 75 W part (~18.75 W/core busy at 2.5 GHz),
    and a loaded 4-socket server of that era drew on the order of 450-500 W
    at the wall, of which roughly 180 W is core-independent baseline.
    """
    curve = VoltageCurve(
        f_min=scale.slowest, f_max=scale.fastest, v_min=v_min, v_max=v_max
    )
    dynamic_top = top_core_busy_watts - core_idle_watts
    if dynamic_top <= 0:
        raise ConfigurationError("top_core_busy_watts must exceed core_idle_watts")
    v_top = curve.voltage(scale.fastest)
    kappa = dynamic_top / (v_top * v_top * scale.fastest)
    return PowerModel(
        voltage_curve=curve,
        kappa=kappa,
        core_idle_power=core_idle_watts,
        machine_base_power=machine_base_watts,
    )
