"""Parallel, cached experiment execution — cell model, cache, and shim.

The paper's evaluation repeats every (benchmark × policy) pair ~100 times;
our exhibits repeat each cell over seeds. The cells are embarrassingly
parallel — every simulation is a pure function of *(program, policy config,
machine, seed, engine version)* — so this module provides the shared
vocabulary every figure module and the sweep engine build on:

* **cell model** — :class:`CellSpec` / :class:`CellOutcome` /
  :func:`cell_key`, the content-addressed identity of one simulation;
* **content-addressed caching** — each cell's inputs are canonically
  encoded (:mod:`repro.sim.fingerprint`) and SHA-256 hashed into a cache
  key; finished :class:`~repro.sim.engine.SimResult` objects are pickled
  under that key in a :class:`ResultCache` sharded by two-hex digest
  prefix, with an optional *packed per-shard index* so a warm sweep costs
  one index read per shard instead of one stat+open per cell. A repeated
  sweep with unchanged inputs executes zero simulations; changing *any*
  input — a task spec, a policy tunable, the machine, the seed, the engine
  version tag (:data:`repro.sim.engine.ENGINE_VERSION`), or the scenario
  schema version (:data:`repro.scenario.spec.SCENARIO_SCHEMA_VERSION`,
  which versions the key layout itself) — changes the key and misses.
  Entries written under an older schema version are therefore never
  served.
* **fan-out** — :class:`ParallelRunner`, the stable API the exhibits call.
  Since the sweep-engine refactor it is a thin shim over
  :class:`repro.experiments.sweep.SweepEngine`: a persistent priority
  work-queue with a long-lived warm worker pool, chunked dispatch, and
  in-flight deduplication. ``run_cells`` / ``run_many`` /
  ``run_benchmark`` keep their exact pre-engine semantics.

Determinism note: results are byte-identical whether a cell is computed
in-process, in a worker, or served from cache — the simulation itself is
seeded and single-threaded; only *where* it runs changes. The one
exception is the wall-clock adjuster measurement riding along for Table
III, which is a real timing and is cached verbatim from the run that
produced it.
"""

from __future__ import annotations

import contextlib
import dataclasses
import functools
import os
import pickle
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Any, Iterable, Iterator, Optional, Sequence

from repro.core.eewa import EEWAConfig
from repro.errors import ConfigurationError
from repro.experiments.outcome import RunOutcome, modal_levels_from_result
from repro.faults.spec import FaultSpec
from repro.machine.topology import MachineConfig
from repro.runtime.task import Batch
from repro.scenario.registry import POLICIES
from repro.scenario.spec import (
    DEFAULT_SEEDS,
    SCENARIO_SCHEMA_VERSION,
    ScenarioSpec,
)
from repro.sim.engine import ENGINE_VERSION, SimResult, simulate
from repro.sim.fingerprint import canonical_value as _canonical
from repro.sim.fingerprint import digest
from repro.workloads.benchmarks import benchmark_program
from repro.workloads.spec import WorkloadSpec

#: Default on-disk cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Bump to invalidate cache entries whose *stored format* changed (the
#: simulated behaviour itself is versioned by ``ENGINE_VERSION`` and the
#: key layout by ``SCENARIO_SCHEMA_VERSION``).
_CACHE_FORMAT = 1


#: Sub-digests of immutable inputs, memoised by object identity — a sweep
#: hashes the same program once per (program, policy-count) instead of
#: re-walking thousands of task specs per cell. Identity keying is sound
#: because an entry holds a strong reference to its keyed object (so its
#: id cannot be recycled while the entry lives) and every hit re-verifies
#: identity. The memo is a bounded LRU: a long-lived session sweeping many
#: distinct programs evicts the oldest instead of pinning them all.
_BLOB_MEMO_ENTRIES = 4096
_blob_memo: OrderedDict[int, tuple[Any, str]] = OrderedDict()


def _memo_digest(value: Any) -> str:
    cached = _blob_memo.get(id(value))
    if cached is not None and cached[0] is value:
        _blob_memo.move_to_end(id(value))
        return cached[1]
    d = digest([_canonical(value)])
    _blob_memo[id(value)] = (value, d)
    while len(_blob_memo) > _BLOB_MEMO_ENTRIES:
        _blob_memo.popitem(last=False)
    return d


def cell_key(
    program: Sequence[Batch],
    policy: str,
    machine: MachineConfig,
    seed: int,
    *,
    core_levels: Optional[Sequence[int]] = None,
    eewa_config: Optional[EEWAConfig] = None,
    policy_params: Optional[tuple[tuple[str, Any], ...]] = None,
    fast_forward: bool = True,
    faults: Optional[FaultSpec] = None,
) -> str:
    """Content hash of one simulation's complete input set.

    This is the resolved-scenario digest: policy names are canonicalised
    through the registry (so ``cilk_d`` and ``cilk-d`` alias to one
    entry), and the layout is versioned by ``SCENARIO_SCHEMA_VERSION`` —
    bumping it orphans every entry written under the old layout.
    ``fast_forward`` is part of the key: on machines whose arithmetic is
    not float-exact a fast-forwarded result may differ from a full one in
    last-ulp positions, so the two modes must never share cache entries.
    """
    if isinstance(program, tuple):
        program_digest = _memo_digest(program)
    else:
        # A tuple built here has a one-shot id — memoising it would only
        # fill the memo with entries no later call can ever hit.
        program_digest = digest([_canonical(tuple(program))])
    return digest(
        [
            "schema", SCENARIO_SCHEMA_VERSION,
            "engine", ENGINE_VERSION, _CACHE_FORMAT,
            "machine", _memo_digest(machine),
            "program", program_digest,
            "policy", POLICIES.canonical(policy),
            "core_levels", _canonical(None if core_levels is None else tuple(core_levels)),
            "eewa_config", _canonical(eewa_config),
            "policy_params", _canonical(policy_params),
            "seed", seed,
            "fast_forward", fast_forward,
            "faults", _canonical(faults),
        ]
    )


# ----------------------------------------------------------------------
# cell model
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CellSpec:
    """One (workload × policy × seed) simulation request.

    ``benchmark`` names a registered workload; ``workload`` carries an
    inline :class:`~repro.workloads.spec.WorkloadSpec` instead (the cache
    key hashes generated program *content*, so an inline spec and the
    registered workload it equals share cache entries). ``program``
    overrides generation entirely; ``machine`` overrides the runner's
    default machine (Fig. 9's core-count sweep). ``policy_params`` are the
    JSON-scalar tunables of a :class:`~repro.scenario.spec.PolicySpec`.
    """

    benchmark: str
    policy: str
    seed: int
    batches: Optional[int] = None
    core_levels: Optional[tuple[int, ...]] = None
    eewa_config: Optional[EEWAConfig] = None
    machine: Optional[MachineConfig] = None
    program: Optional[tuple[Batch, ...]] = None
    workload: Optional[WorkloadSpec] = None
    policy_params: Optional[tuple[tuple[str, Any], ...]] = None
    faults: Optional[FaultSpec] = None

    @classmethod
    def from_scenario(cls, scenario: ScenarioSpec, seed: int) -> "CellSpec":
        """One cell of a scenario (its ``seed``-th repetition)."""
        policy = scenario.policy
        eewa_config = None
        if policy.config is not None:
            if not isinstance(policy.config, EEWAConfig):
                raise ConfigurationError(
                    f"{policy.name}: only EEWAConfig objects can ride through "
                    "the parallel runner; use JSON params instead"
                )
            eewa_config = policy.config
        return cls(
            benchmark=scenario.workload_name,
            policy=policy.name,
            seed=seed,
            batches=scenario.batches,
            core_levels=policy.core_levels,
            eewa_config=eewa_config,
            machine=scenario.build_machine(),
            workload=(
                scenario.workload
                if isinstance(scenario.workload, WorkloadSpec)
                else None
            ),
            policy_params=policy.params or None,
            faults=scenario.faults,
        )


@dataclasses.dataclass(frozen=True)
class CellOutcome:
    """One finished cell: the result plus cache/bookkeeping metadata."""

    spec: CellSpec
    key: str
    result: SimResult
    from_cache: bool
    #: Real (non-simulated) seconds spent inside the EEWA adjuster, and the
    #: number of adjustment decisions — Table III's "measured" column.
    adjuster_wallclock_s: float = 0.0
    adjuster_decisions: int = 0
    #: Provenance: ``"sim"`` for simulator results (fresh or cached),
    #: ``"model"`` for analytic predictions served by the sweep engine's
    #: ``fidelity="model"|"auto"`` tier. Model outcomes carry the
    #: model-versioned key, never the simulation key.
    source: str = "sim"


@dataclasses.dataclass(frozen=True)
class BenchRequest:
    """A multi-seed benchmark×policy request (``run_benchmark`` shaped)."""

    benchmark: str
    policy: str
    batches: Optional[int] = None
    seeds: tuple[int, ...] = DEFAULT_SEEDS
    core_levels: Optional[tuple[int, ...]] = None
    eewa_config: Optional[EEWAConfig] = None
    machine: Optional[MachineConfig] = None

    def cells(self) -> list[CellSpec]:
        return [
            CellSpec(
                benchmark=self.benchmark,
                policy=self.policy,
                seed=seed,
                batches=self.batches,
                core_levels=self.core_levels,
                eewa_config=self.eewa_config,
                machine=self.machine,
            )
            for seed in self.seeds
        ]


# ----------------------------------------------------------------------
# on-disk cache
# ----------------------------------------------------------------------

#: Per-shard packed index filename (lives inside each two-hex shard dir).
PACK_FILENAME = "shard.pack"

#: Bump when the pack file's internal structure changes; mismatched packs
#: are discarded (the loose entries remain the source of truth).
_PACK_FORMAT = 1

_UNPICKLE_ERRORS = (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                    ImportError, IndexError, KeyError, TypeError, ValueError)


@dataclasses.dataclass(frozen=True)
class CacheEntryInfo:
    """One cache entry as seen by the maintenance tooling."""

    key: str
    source: str  # "loose" | "pack"
    nbytes: int
    mtime: float


class ResultCache:
    """Sharded content-addressed pickle store with a packed per-shard index.

    On-disk layout (``root`` is the cache directory)::

        root/<2-hex prefix>/<64-hex key>.pkl   # loose entry (atomic write)
        root/<2-hex prefix>/shard.pack         # packed index of the shard

    *Loose entries* are the write path: each ``put`` pickles the payload to
    a temp file in the shard directory and ``os.replace``\\ s it into place,
    so concurrent workers racing on one key both land a complete entry and
    a crashed writer can never leave a torn file under the final name. A
    torn or unreadable entry found by ``get`` is treated as a miss *and
    deleted*, so it cannot poison later warm runs.

    The *pack* is the read path: :meth:`compact` folds a shard's loose
    entries into one pickle mapping ``key → (mtime, raw entry bytes)``,
    written atomically. A warm sweep then costs one pack read per touched
    shard (cached in memory for the life of this object) instead of one
    ``stat`` + ``open`` per cell; keys missing from the pack fall back to
    the loose files, so packs are never required for correctness and may
    be stale while writers are active.

    Instantiating the cache transparently migrates any *flat* pre-shard
    layout (``root/<key>.pkl``) into the sharded one; the migration is a
    no-op rename per entry and idempotent.
    """

    def __init__(self, root: str | os.PathLike[str] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self._packs: dict[str, dict[str, tuple[float, bytes]]] = {}
        #: Flat-layout entries transparently moved into shards at open time.
        self.migrated_flat = self.migrate_flat()

    # -- layout ---------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _pack_path(self, prefix: str) -> Path:
        return self.root / prefix / PACK_FILENAME

    @staticmethod
    def _is_entry_name(name: str) -> bool:
        stem = name[: -len(".pkl")]
        return (
            name.endswith(".pkl")
            and len(stem) == 64
            and all(c in "0123456789abcdef" for c in stem)
        )

    def shard_prefixes(self) -> list[str]:
        """Two-hex prefixes of the shard directories that exist on disk."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.name
            for p in self.root.iterdir()
            if p.is_dir() and len(p.name) == 2
            and all(c in "0123456789abcdef" for c in p.name)
        )

    def migrate_flat(self) -> int:
        """Move flat-layout entries (``root/<key>.pkl``) into their shards.

        Returns the number of entries moved. Idempotent and cheap when the
        layout is already sharded (one directory scan, no renames).
        """
        if not self.root.is_dir():
            return 0
        moved = 0
        for entry in list(self.root.iterdir()):
            if not entry.is_file() or not self._is_entry_name(entry.name):
                continue
            dest = self._path(entry.name[: -len(".pkl")])
            dest.parent.mkdir(parents=True, exist_ok=True)
            with contextlib.suppress(OSError):
                os.replace(entry, dest)
                moved += 1
        return moved

    # -- reads ----------------------------------------------------------

    def _load_pack(self, prefix: str) -> dict[str, tuple[float, bytes]]:
        cached = self._packs.get(prefix)
        if cached is not None:
            return cached
        entries: dict[str, tuple[float, bytes]] = {}
        path = self._pack_path(prefix)
        payload: Any = None
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            payload = None  # no pack yet: the shard is all-loose
        except _UNPICKLE_ERRORS:
            with contextlib.suppress(OSError):
                path.unlink()  # unreadable pack: discard, loose files remain
        if (
            isinstance(payload, dict)
            and payload.get("format") == _PACK_FORMAT
            and isinstance(payload.get("entries"), dict)
        ):
            entries = payload["entries"]
        elif payload is not None:  # readable but unknown structure
            with contextlib.suppress(OSError):
                path.unlink()
        self._packs[prefix] = entries
        return entries

    @staticmethod
    def _decode(blob: bytes) -> Optional[dict[str, Any]]:
        try:
            payload = pickle.loads(blob)
        except _UNPICKLE_ERRORS:
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("engine_version") != ENGINE_VERSION:
            return None  # belt-and-braces; the key already encodes it
        return payload

    def get(self, key: str) -> Optional[dict[str, Any]]:
        packed = self._load_pack(key[:2]).get(key)
        if packed is not None:
            payload = self._decode(packed[1])
            if payload is not None:
                return payload
        return self._get_loose(key)

    def _get_loose(self, key: str) -> Optional[dict[str, Any]]:
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            return None
        except _UNPICKLE_ERRORS:
            # Torn or unreadable entry (e.g. a crashed pre-atomic writer):
            # delete it so it can be re-simulated instead of poisoning
            # every later warm run.
            with contextlib.suppress(OSError):
                path.unlink()
            return None
        if not isinstance(payload, dict) or payload.get("engine_version") != ENGINE_VERSION:
            return None
        return payload

    def get_many(self, keys: Iterable[str]) -> dict[str, dict[str, Any]]:
        """Batch lookup: one pack read per touched shard, loose fallback."""
        found: dict[str, dict[str, Any]] = {}
        for key in keys:
            payload = self.get(key)
            if payload is not None:
                found[key] = payload
        return found

    # -- writes ---------------------------------------------------------

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Atomically persist one entry (temp file + ``os.replace``).

        Safe under concurrent writers racing on the same key: each writes
        a private temp file and the rename is atomic, so whichever
        ``os.replace`` lands last wins with a complete entry either way.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)  # atomic: concurrent writers both win
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    def _write_pack(
        self, prefix: str, entries: dict[str, tuple[float, bytes]]
    ) -> None:
        shard = self.root / prefix
        shard.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=shard, suffix=".packtmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(
                    {"format": _PACK_FORMAT, "entries": entries},
                    fh,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            os.replace(tmp, self._pack_path(prefix))
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        self._packs[prefix] = entries

    def compact(self) -> int:
        """Fold every shard's loose entries into its packed index.

        Returns the number of loose entries absorbed. Valid entries are
        merged into the pack (newest mtime wins over a stale packed copy)
        and their loose files removed; torn entries are deleted. Safe to
        run while writers are active — a loose entry that appears after
        the pack is rewritten is still found by the fallback path.
        """
        absorbed = 0
        for prefix in self.shard_prefixes():
            entries = dict(self._load_pack(prefix))
            merged: list[Path] = []
            shard = self.root / prefix
            for path in sorted(shard.glob("*.pkl")):
                if not self._is_entry_name(path.name):
                    continue
                key = path.name[: -len(".pkl")]
                try:
                    blob = path.read_bytes()
                    mtime = path.stat().st_mtime
                except OSError:
                    continue
                if self._decode(blob) is None:
                    with contextlib.suppress(OSError):
                        path.unlink()  # torn entry: drop it
                    continue
                entries[key] = (mtime, blob)
                merged.append(path)
            if merged:
                self._write_pack(prefix, entries)
                for path in merged:
                    with contextlib.suppress(OSError):
                        path.unlink()
                absorbed += len(merged)
        return absorbed

    # -- maintenance (repro cache) --------------------------------------

    def iter_entries(self) -> Iterator[CacheEntryInfo]:
        """Every entry with its size and mtime (packed and loose)."""
        for prefix in self.shard_prefixes():
            for key, (mtime, blob) in self._load_pack(prefix).items():
                yield CacheEntryInfo(key, "pack", len(blob), mtime)
            shard = self.root / prefix
            for path in sorted(shard.glob("*.pkl")):
                if not self._is_entry_name(path.name):
                    continue
                try:
                    st = path.stat()
                except OSError:
                    continue
                yield CacheEntryInfo(
                    path.name[: -len(".pkl")], "loose", st.st_size, st.st_mtime
                )

    def remove_keys(self, keys: Iterable[str]) -> int:
        """Delete entries by key from both the loose files and the packs."""
        removed = 0
        by_prefix: dict[str, set[str]] = {}
        for key in keys:
            by_prefix.setdefault(key[:2], set()).add(key)
        for prefix, shard_keys in sorted(by_prefix.items()):
            pack = self._load_pack(prefix)
            packed_victims = shard_keys & set(pack)
            if packed_victims:
                remaining = {
                    k: v for k, v in pack.items() if k not in packed_victims
                }
                self._write_pack(prefix, remaining)
                removed += len(packed_victims)
            for key in sorted(shard_keys):
                path = self._path(key)
                if path.exists():
                    with contextlib.suppress(OSError):
                        path.unlink()
                        removed += 1
        return removed


# ----------------------------------------------------------------------
# workers
# ----------------------------------------------------------------------


@functools.lru_cache(maxsize=256)
def _generated_program(
    benchmark: str, batches: Optional[int], seed: int
) -> tuple[Batch, ...]:
    """Memoised program generation — generation is deterministic in these
    arguments, and returning the *same* tuple object across a sweep's cells
    lets the key hasher reuse its per-program digest."""
    return tuple(benchmark_program(benchmark, batches=batches, seed=seed))


@functools.lru_cache(maxsize=64)
def _generated_from_spec(
    workload: WorkloadSpec, batches: Optional[int], seed: int
) -> tuple[Batch, ...]:
    """Memoised generation for inline workload specs (frozen, hashable)."""
    from repro.workloads.generators import generate_program

    return tuple(generate_program(workload, batches=batches, seed=seed))


def _resolve_program(spec: CellSpec) -> tuple[Batch, ...]:
    if spec.program is not None:
        return spec.program
    if spec.workload is not None:
        return _generated_from_spec(spec.workload, spec.batches, spec.seed)
    return _generated_program(spec.benchmark, spec.batches, spec.seed)


def _simulate_cell(
    program: tuple[Batch, ...],
    policy_name: str,
    machine: MachineConfig,
    seed: int,
    core_levels: Optional[tuple[int, ...]],
    eewa_config: Optional[EEWAConfig],
    policy_params: Optional[tuple[tuple[str, Any], ...]] = None,
    fast_forward: bool = True,
    faults: Optional[FaultSpec] = None,
) -> dict[str, Any]:
    """Run one cell; module-level so worker processes can unpickle it."""
    policy = POLICIES.get(policy_name).build(
        core_levels=core_levels,
        params=dict(policy_params) if policy_params else None,
        config=eewa_config,
    )
    result = simulate(
        program, policy, machine, seed=seed, fast_forward=fast_forward,
        faults=faults,
    )
    wallclock = getattr(policy, "total_adjuster_wallclock", None)
    decisions = getattr(policy, "decisions", None)
    return {
        "engine_version": ENGINE_VERSION,
        "result": result,
        "adjuster_wallclock_s": wallclock() if callable(wallclock) else 0.0,
        "adjuster_decisions": len(decisions) if decisions is not None else 0,
    }


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------


@dataclasses.dataclass
class SweepStats:
    """Cumulative accounting of one sweep engine's (or runner's) work.

    ``cells`` counts submissions; every submission is exactly one of
    ``executed`` (simulated), ``cache_hits`` (served from the on-disk
    cache or its in-memory memo), ``deduplicated`` (coalesced onto an
    in-flight identical cell), ``model_cells`` (served by a fresh
    analytic-model prediction under ``fidelity="model"|"auto"``), or
    ``cancelled``. ``memo_hits`` is the subset of ``cache_hits`` served
    without touching disk; ``chunks`` is the number of dispatch
    round-trips the executed cells were batched into.
    """

    cells: int = 0
    executed: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    cancelled: int = 0
    memo_hits: int = 0
    chunks: int = 0
    model_cells: int = 0


class ParallelRunner:
    """Fans (benchmark × policy × seed) cells out, deduplicated and cached.

    Since the sweep-engine refactor this is a compatibility shim: all four
    public entry points (``run_cells``, ``run_many``, ``run_benchmark``,
    ``modal_eewa_levels``) submit through one persistent
    :class:`repro.experiments.sweep.SweepEngine` owned by the runner
    (exposed as :attr:`engine` for streaming/priority/cancellation use).
    Ordering, statistics, and bit-identical results are preserved.

    Parameters
    ----------
    machine:
        Default machine for cells that do not carry their own.
    workers:
        Process count; ``0`` or ``1`` runs in-process (no pool), ``None``
        uses ``os.cpu_count()``.
    cache_dir:
        Cache root directory; ``None`` disables the on-disk cache.
    fast_forward:
        Enable the engine's steady-state batch fast-forward (default).
        ``False`` forces full event-by-event simulation of every cell —
        the ``repro bench --no-fast-forward`` escape hatch. The flag is
        part of every cell's cache key.
    fidelity:
        ``"sim"`` (default) simulates every cell; ``"auto"`` serves
        model-eligible cells from the analytic predictor and simulates
        the rest; ``"model"`` forces the predictor wherever it is
        structurally expressible (see :mod:`repro.model`).
    """

    def __init__(
        self,
        *,
        machine: Optional[MachineConfig] = None,
        workers: Optional[int] = None,
        cache_dir: str | os.PathLike[str] | None = DEFAULT_CACHE_DIR,
        fast_forward: bool = True,
        fidelity: str = "sim",
    ) -> None:
        from repro.experiments.sweep import SweepEngine  # circular-import guard

        self.engine = SweepEngine(
            machine=machine,
            workers=workers,
            cache_dir=cache_dir,
            fast_forward=fast_forward,
            fidelity=fidelity,
        )
        self._machine = self.engine.machine
        self._workers = workers
        self._cache = self.engine.cache
        self._fast_forward = fast_forward

    @property
    def stats(self) -> SweepStats:
        return self.engine.stats

    def close(self) -> None:
        """Shut down the engine's queue and worker pool (idempotent)."""
        self.engine.close()

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- core fan-out ---------------------------------------------------

    def run_cells(self, specs: Sequence[CellSpec]) -> list[CellOutcome]:
        """Run every cell, in parallel where possible, and keep order.

        Cells with identical content keys are simulated once; cached cells
        are never submitted to the pool at all.
        """
        return self.engine.run_cells(specs)

    # -- run_benchmark-shaped conveniences ------------------------------

    def run_many(self, requests: Sequence[BenchRequest]) -> list[RunOutcome]:
        """All requests' cells in one fan-out, regrouped per request."""
        cells: list[CellSpec] = []
        counts: list[int] = []
        for request in requests:
            request_cells = request.cells()
            counts.append(len(request_cells))
            cells.extend(request_cells)
        outcomes = self.run_cells(cells)
        grouped: list[RunOutcome] = []
        pos = 0
        for request, count in zip(requests, counts):
            chunk = outcomes[pos : pos + count]
            pos += count
            grouped.append(
                RunOutcome(
                    benchmark=request.benchmark,
                    policy=request.policy,
                    results=tuple(c.result for c in chunk),
                )
            )
        return grouped

    def run_benchmark(
        self,
        benchmark: str,
        policy: str,
        *,
        batches: Optional[int] = None,
        seeds: Sequence[int] = DEFAULT_SEEDS,
        core_levels: Optional[Sequence[int]] = None,
        eewa_config: Optional[EEWAConfig] = None,
        machine: Optional[MachineConfig] = None,
    ) -> RunOutcome:
        """Drop-in parallel/cached equivalent of ``runner.run_benchmark``."""
        (outcome,) = self.run_many(
            [
                BenchRequest(
                    benchmark=benchmark,
                    policy=policy,
                    batches=batches,
                    seeds=tuple(seeds),
                    core_levels=None if core_levels is None else tuple(core_levels),
                    eewa_config=eewa_config,
                    machine=machine,
                )
            ]
        )
        return outcome

    def modal_eewa_levels(
        self,
        benchmark: str,
        *,
        batches: Optional[int] = None,
        seed: int = DEFAULT_SEEDS[0],
        eewa_config: Optional[EEWAConfig] = None,
        machine: Optional[MachineConfig] = None,
    ) -> list[int]:
        """Cached equivalent of ``runner.modal_eewa_levels`` — shares its
        cell (and therefore its cache entry) with any plain EEWA run of the
        same benchmark and seed. Always simulates (``fidelity="sim"``):
        the modal configuration is read off the per-batch trace, which the
        analytic model does not produce."""
        outcome = self.engine.submit(
            CellSpec(
                benchmark=benchmark, policy="eewa", seed=seed,
                batches=batches, eewa_config=eewa_config, machine=machine,
            ),
            fidelity="sim",
        ).result()
        resolved = machine if machine is not None else self._machine
        return modal_levels_from_result(
            outcome.result, resolved.num_cores, resolved
        )
