"""Exact energy accounting for the simulated machine.

The paper measures whole-machine energy at the wall and averages over 100
runs. Our simulated equivalent is exact: every core's power draw is a
piecewise-constant function of time (it changes only when the core's state
or frequency changes), so energy is the exact sum of ``power * dt`` over the
pieces, plus ``machine_base_power * total_time``.

The meter also keeps per-state and per-frequency-level breakdowns; those
drive the analysis of *where* each scheduler spends energy (spin waste vs
useful work) and the Fig. 8-style traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.machine.core import BUSY_STATES, CoreState, SimCore
from repro.machine.power import PowerModel


@dataclass
class CoreEnergyAccount:
    """Accumulated energy and time for one core, broken down by state/level."""

    joules: float = 0.0
    seconds: float = 0.0
    joules_by_state: dict[CoreState, float] = field(default_factory=dict)
    seconds_by_state: dict[CoreState, float] = field(default_factory=dict)
    seconds_by_level: dict[int, float] = field(default_factory=dict)

    def add(self, state: CoreState, level: int, joules: float, seconds: float) -> None:
        self.joules += joules
        self.seconds += seconds
        self.joules_by_state[state] = self.joules_by_state.get(state, 0.0) + joules
        self.seconds_by_state[state] = self.seconds_by_state.get(state, 0.0) + seconds
        self.seconds_by_level[level] = self.seconds_by_level.get(level, 0.0) + seconds


class EnergyMeter:
    """Integrates machine power over simulated time.

    The engine calls :meth:`observe` *before* mutating any core's state or
    frequency; the meter bills every core for the interval since the last
    observation at its (still-current) power draw. :meth:`finalize` closes
    the last interval.
    """

    def __init__(
        self,
        cores: list[SimCore],
        power: PowerModel,
        *,
        type_powers: dict[str, PowerModel] | None = None,
        record_series: bool = False,
    ) -> None:
        self._cores = cores
        self._power = power
        self._last_time = 0.0
        self._finalized = False
        # busy_power(f) is a pure function of the power model and the
        # electrical frequency; tabulating it eagerly per (core, level) —
        # i.e. per *operating point* — returns the identical floats the
        # direct calls would, so billing is unchanged bit-for-bit while
        # the hot observe loop skips the voltage-curve arithmetic. A
        # single per-frequency memo would be wrong here: on heterogeneous
        # machines two core types can share an electrical frequency at
        # different wattages (different kappa / voltage curve), so the
        # table is keyed by operating point, never by bare frequency.
        def model_of(core: SimCore) -> PowerModel:
            if type_powers is not None and core.core_type in type_powers:
                return type_powers[core.core_type]
            return power

        self._busy_by_core: list[tuple[float, ...]] = [
            tuple(model_of(core).busy_power(f) for f in core.scale.levels)
            for core in cores
        ]
        self._idle_by_core: list[float] = [
            model_of(core).idle_power() for core in cores
        ]
        self.accounts: list[CoreEnergyAccount] = [CoreEnergyAccount() for _ in cores]
        #: Optional piecewise-constant power trace per core:
        #: lists of (t_start, t_end, watts) — fed to the thermal analysis.
        self.power_series: list[list[tuple[float, float, float]]] | None = (
            [[] for _ in cores] if record_series else None
        )

    # -- billing ------------------------------------------------------------

    def _core_power(self, core: SimCore) -> float:
        if core.state in BUSY_STATES:
            return self._busy_by_core[core.core_id][core.level]
        return self._idle_by_core[core.core_id]

    def observe(self, now: float) -> None:
        """Bill all cores for the interval ``[last, now]`` at current draw."""
        if self._finalized:
            raise SimulationError("energy meter already finalized")
        last = self._last_time
        dt = now - last
        if dt < -1e-12:
            raise SimulationError(f"time went backwards: {last} -> {now}")
        if dt <= 0.0:
            # A tiny negative dt within tolerance is float jitter, not time
            # travel — but rewinding to ``now`` would stretch the *next*
            # billing interval by the jitter. Keep the later instant.
            self._last_time = max(last, now)
            return
        busy_by_core = self._busy_by_core
        idle_by_core = self._idle_by_core
        record = self.power_series is not None
        for i, (core, account) in enumerate(zip(self._cores, self.accounts)):
            state = core.state
            if state in BUSY_STATES:
                p = busy_by_core[i][core.level]
            else:
                p = idle_by_core[i]
            account.add(state, core.level, p * dt, dt)
            if record:
                series = self.power_series[i]
                # Merge with the previous piece when power is unchanged.
                if series and series[-1][2] == p and series[-1][1] == last:
                    series[-1] = (series[-1][0], now, p)
                else:
                    series.append((last, now, p))
        self._last_time = now

    def finalize(self, now: float) -> None:
        """Bill the final interval and freeze the meter."""
        self.observe(now)
        self._finalized = True

    # -- results ------------------------------------------------------------

    @property
    def elapsed(self) -> float:
        """Total metered time in seconds."""
        return self._last_time

    def core_joules(self) -> float:
        """Energy of the cores alone (without the machine baseline)."""
        return sum(a.joules for a in self.accounts)

    def baseline_joules(self) -> float:
        """Energy of the frequency-independent machine baseline."""
        return self._power.machine_base_power * self.elapsed

    def total_joules(self) -> float:
        """Whole-machine energy: what the paper's wall meter reports."""
        return self.core_joules() + self.baseline_joules()

    def spin_joules(self) -> float:
        """Energy burnt by cores spinning in the steal loop (pure waste)."""
        return sum(a.joules_by_state.get(CoreState.SPINNING, 0.0) for a in self.accounts)

    def running_joules(self) -> float:
        """Energy spent actually executing tasks."""
        return sum(a.joules_by_state.get(CoreState.RUNNING, 0.0) for a in self.accounts)

    def seconds_by_level(self) -> dict[int, float]:
        """Aggregate core-seconds spent at each frequency level."""
        totals: dict[int, float] = {}
        for account in self.accounts:
            for level, secs in account.seconds_by_level.items():
                totals[level] = totals.get(level, 0.0) + secs
        return totals
