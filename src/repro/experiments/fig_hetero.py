"""Heterogeneous extension exhibit: the policies on a big.LITTLE machine.

The paper evaluates on a homogeneous 16-core Opteron; this exhibit is the
reproduction's extension to heterogeneous (core type, frequency) machines.
Every registered policy runs on the dyadic 4+4 big.LITTLE test machine
(:func:`repro.machine.topology.big_little_test_machine`), where the
operating-point space merges two per-type ladders with overlapping
electrical frequencies and a cross-type effective-speed tie.

Cilk is the baseline (random stealing is type-blind: heavy tasks land on
LITTLE cores); WATS runs on the fixed per-type spread configuration
(:func:`repro.scenario.registry.spread_levels_for`); EEWA searches its
k-tuples under per-type core budgets and groups c-groups by global
operating point, so it can trade big-core frequency against LITTLE-core
occupancy per batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.report import format_table
from repro.scenario.registry import spread_levels_for
from repro.scenario.session import Session
from repro.scenario.spec import (
    DEFAULT_SEEDS,
    MachineSpec,
    PolicySpec,
    ScenarioSpec,
)
from repro.workloads.benchmarks import BENCHMARK_NAMES

#: Comparison order; cilk is the normalisation baseline.
HETERO_POLICIES = ("cilk", "cilk-d", "wats", "eewa")


@dataclass(frozen=True)
class HeteroRow:
    """Time/energy ratios vs Cilk (Cilk = 1.0) for one benchmark."""

    benchmark: str
    time_over_cilk: tuple[float, ...]  # in HETERO_POLICIES[1:] order
    energy_over_cilk: tuple[float, ...]


@dataclass(frozen=True)
class HeteroResult:
    machine_label: str
    rows: tuple[HeteroRow, ...]

    def table(self) -> str:
        others = HETERO_POLICIES[1:]
        return format_table(
            ["benchmark"]
            + [f"t({p})" for p in others]
            + [f"E({p})" for p in others],
            [
                (r.benchmark, *r.time_over_cilk, *r.energy_over_cilk)
                for r in self.rows
            ],
            title=(
                f"fig_hetero — {self.machine_label}: "
                "time and energy vs cilk (cilk = 1.0)"
            ),
        )


def run_fig_hetero(
    *,
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    batches: int | None = None,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    big_cores: int = 4,
    little_cores: int = 4,
    include_phased: bool = True,
    parallel: bool = False,
    workers: int | None = None,
    cache_dir: Optional[str] = None,
) -> HeteroResult:
    """Run every policy over the benchmarks on a big.LITTLE machine.

    One scenario wave through one Session (cache-shared and
    digest-addressed like every other exhibit); rows are normalised to the
    Cilk cell of the same benchmark. ``big_cores``/``little_cores`` skew
    the partition — the scenario pins it through the schema-v3
    ``core_types`` axis, so the cells cache under the exact machine shape.
    """
    names = list(benchmarks) + (["DMC-phased"] if include_phased else [])
    session = Session.for_experiment(
        parallel=parallel, workers=workers, cache_dir=cache_dir
    )
    machine_spec = MachineSpec(
        preset="big-little-test",
        core_types=(("big", big_cores), ("little", little_cores)),
    )
    wats_levels = tuple(spread_levels_for(machine_spec.build()))
    grid = [
        ScenarioSpec(
            workload=name,
            policy=(
                PolicySpec("wats", core_levels=wats_levels)
                if policy == "wats"
                else PolicySpec(policy)
            ),
            machine=machine_spec,
            seeds=tuple(seeds),
            batches=batches,
        )
        for name in names
        for policy in HETERO_POLICIES
    ]
    outcomes = session.run_grid(grid)
    rows = []
    width = len(HETERO_POLICIES)
    for i, name in enumerate(names):
        cell = outcomes[i * width : (i + 1) * width]
        cilk = cell[0]
        rows.append(
            HeteroRow(
                benchmark=name,
                time_over_cilk=tuple(
                    o.time_mean / cilk.time_mean for o in cell[1:]
                ),
                energy_over_cilk=tuple(
                    o.energy_mean / cilk.energy_mean for o in cell[1:]
                ),
            )
        )
    return HeteroResult(
        machine_label=f"big.LITTLE {big_cores}+{little_cores}",
        rows=tuple(rows),
    )
