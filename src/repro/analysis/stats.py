"""Multi-seed aggregation.

The paper runs every benchmark 100 times on real hardware and averages the
wall-meter readings; our simulator is deterministic per seed, so variance
comes from seeds (workload jitter/drift and steal-victim choices).
:func:`aggregate` reduces a set of per-seed runs to summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.metrics import mean, std
from repro.sim.engine import SimResult


@dataclass(frozen=True)
class Summary:
    """Mean/std of the headline metrics over seeds."""

    policy_name: str
    runs: int
    time_mean: float
    time_std: float
    energy_mean: float
    energy_std: float
    spin_energy_mean: float
    adjust_overhead_mean: float

    @property
    def average_power(self) -> float:
        if self.time_mean <= 0:
            return 0.0
        return self.energy_mean / self.time_mean


def aggregate(results: Sequence[SimResult]) -> Summary:
    """Summarise same-policy runs across seeds."""
    if not results:
        raise ValueError("aggregate needs at least one result")
    names = {r.policy_name for r in results}
    if len(names) != 1:
        raise ValueError(f"mixed policies in aggregate: {sorted(names)}")
    times = [r.total_time for r in results]
    energies = [r.total_joules for r in results]
    return Summary(
        policy_name=results[0].policy_name,
        runs=len(results),
        time_mean=mean(times),
        time_std=std(times),
        energy_mean=mean(energies),
        energy_std=std(energies),
        spin_energy_mean=mean([r.spin_joules for r in results]),
        adjust_overhead_mean=mean([r.adjust_overhead_seconds for r in results]),
    )
