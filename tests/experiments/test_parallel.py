"""Tests for the parallel cached experiment runner."""

import dataclasses

import pytest

from repro.core.eewa import EEWAConfig
from repro.experiments.parallel import (
    BenchRequest,
    CellSpec,
    ParallelRunner,
    ResultCache,
    cell_key,
)
from repro.experiments.runner import modal_eewa_levels, run_benchmark
from repro.machine.topology import opteron_8380_machine
from repro.sim.engine import ENGINE_VERSION
from repro.workloads.benchmarks import benchmark_program

BATCHES = 3


@pytest.fixture()
def runner(tmp_path):
    return ParallelRunner(workers=0, cache_dir=tmp_path / "cache")


class TestCellKey:
    def setup_method(self):
        self.machine = opteron_8380_machine()
        self.program = tuple(benchmark_program("SHA-1", batches=BATCHES, seed=11))

    def key(self, **overrides):
        kwargs = dict(
            program=self.program, policy="cilk", machine=self.machine, seed=11
        )
        kwargs.update(overrides)
        return cell_key(
            kwargs.pop("program"), kwargs.pop("policy"),
            kwargs.pop("machine"), kwargs.pop("seed"), **kwargs
        )

    def test_stable(self):
        assert self.key() == self.key()

    def test_seed_changes_key(self):
        assert self.key() != self.key(seed=12)

    def test_policy_changes_key(self):
        assert self.key() != self.key(policy="cilk-d")

    def test_program_changes_key(self):
        other = tuple(benchmark_program("SHA-1", batches=BATCHES, seed=23))
        assert self.key() != self.key(program=other)

    def test_machine_changes_key(self):
        other = self.machine.with_cores(8)
        assert self.key() != self.key(machine=other)

    def test_policy_config_changes_key(self):
        assert self.key() != self.key(eewa_config=EEWAConfig(headroom=0.2))
        assert self.key() != self.key(core_levels=(0,) * 16)

    def test_engine_version_in_key(self):
        # The version tag must gate the cache: identical inputs under a
        # different engine tag may not alias.
        import repro.experiments.parallel as par

        k1 = self.key()
        original = par.ENGINE_VERSION
        par.ENGINE_VERSION = original + "-x"
        try:
            assert self.key() != k1
        finally:
            par.ENGINE_VERSION = original


class TestBlobMemo:
    def test_memo_is_a_bounded_lru(self):
        from repro.experiments.parallel import (
            _BLOB_MEMO_ENTRIES,
            _blob_memo,
            _memo_digest,
        )

        held = [("blob-memo-probe", i) for i in range(_BLOB_MEMO_ENTRIES + 64)]
        digests = [_memo_digest(value) for value in held]
        assert len(_blob_memo) <= _BLOB_MEMO_ENTRIES
        # A live entry is still an identity-verified hit...
        assert _memo_digest(held[-1]) == digests[-1]
        # ...and recomputing an evicted one agrees with the original.
        assert _memo_digest(held[0]) == digests[0]

    def test_list_program_does_not_grow_the_memo(self):
        from repro.experiments import parallel

        machine = opteron_8380_machine()
        program = list(benchmark_program("SHA-1", batches=BATCHES, seed=11))
        key = cell_key(program, "cilk", machine, 11)  # warm machine digest
        before = len(parallel._blob_memo)
        for _ in range(5):
            assert cell_key(program, "cilk", machine, 11) == key
        # The tuple built per call has a one-shot id: it must not be
        # memoised, and the key must match the pre-built-tuple path.
        assert len(parallel._blob_memo) == before
        assert cell_key(tuple(program), "cilk", machine, 11) == key


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = {"engine_version": ENGINE_VERSION, "result": 1}
        cache.put("ab" + "0" * 62, payload)
        assert cache.get("ab" + "0" * 62) == payload

    def test_miss(self, tmp_path):
        assert ResultCache(tmp_path).get("cd" + "0" * 62) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" + "0" * 62
        cache.put(key, {"engine_version": ENGINE_VERSION})
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is None


class TestParallelRunner:
    def test_matches_serial_runner(self, runner):
        serial = run_benchmark("SHA-1", "eewa", batches=BATCHES)
        out = runner.run_benchmark("SHA-1", "eewa", batches=BATCHES)
        assert [r.total_time for r in out.results] == [
            r.total_time for r in serial.results
        ]
        assert [r.total_joules for r in out.results] == [
            r.total_joules for r in serial.results
        ]

    def test_second_sweep_fully_cached(self, tmp_path):
        first = ParallelRunner(workers=0, cache_dir=tmp_path / "c")
        a = first.run_benchmark("BWC", "cilk", batches=BATCHES)
        assert first.stats.executed == 3

        second = ParallelRunner(workers=0, cache_dir=tmp_path / "c")
        b = second.run_benchmark("BWC", "cilk", batches=BATCHES)
        assert second.stats.executed == 0
        assert second.stats.cache_hits == 3
        assert [r.total_joules for r in a.results] == [
            r.total_joules for r in b.results
        ]

    def test_any_input_change_misses(self, tmp_path):
        warm = ParallelRunner(workers=0, cache_dir=tmp_path / "c")
        warm.run_benchmark("BWC", "cilk", batches=BATCHES)
        for kwargs in (
            {"batches": BATCHES + 1},              # program spec changes
            {"batches": BATCHES, "seeds": (99,)},  # seed changes
            {"batches": BATCHES,                   # machine changes
             "machine": opteron_8380_machine(8)},
        ):
            probe = ParallelRunner(workers=0, cache_dir=tmp_path / "c")
            probe.run_benchmark("BWC", "cilk", **kwargs)
            assert probe.stats.cache_hits == 0, kwargs

    def test_duplicate_cells_simulated_once(self, runner):
        spec = CellSpec("SHA-1", "cilk", seed=11, batches=BATCHES)
        outcomes = runner.run_cells([spec, spec])
        assert runner.stats.executed == 1
        assert runner.stats.deduplicated == 1
        assert outcomes[0].result.total_joules == outcomes[1].result.total_joules

    def test_run_many_groups_per_request(self, runner):
        requests = [
            BenchRequest("SHA-1", "cilk", batches=BATCHES, seeds=(11, 23)),
            BenchRequest("BWC", "eewa", batches=BATCHES, seeds=(11,)),
        ]
        out = runner.run_many(requests)
        assert [(o.benchmark, o.policy, len(o.results)) for o in out] == [
            ("SHA-1", "cilk", 2),
            ("BWC", "eewa", 1),
        ]

    def test_modal_levels_match_serial_and_share_cache(self, runner):
        serial_levels = modal_eewa_levels("SHA-1", batches=BATCHES)
        runner.run_benchmark("SHA-1", "eewa", batches=BATCHES)
        executed = runner.stats.executed
        levels = runner.modal_eewa_levels("SHA-1", batches=BATCHES)
        assert levels == serial_levels
        # The modal cell is the seed-11 EEWA cell — already cached.
        assert runner.stats.executed == executed

    def test_cache_disabled(self, tmp_path):
        runner = ParallelRunner(workers=0, cache_dir=None)
        runner.run_benchmark("BWC", "cilk", batches=BATCHES, seeds=(11,))
        runner.run_benchmark("BWC", "cilk", batches=BATCHES, seeds=(11,))
        assert runner.stats.executed == 2
        assert runner.stats.cache_hits == 0

    def test_process_pool_matches_in_process(self, tmp_path):
        pooled = ParallelRunner(workers=2, cache_dir=None)
        inproc = ParallelRunner(workers=0, cache_dir=None)
        a = pooled.run_benchmark("SHA-1", "cilk-d", batches=BATCHES, seeds=(11, 23))
        b = inproc.run_benchmark("SHA-1", "cilk-d", batches=BATCHES, seeds=(11, 23))
        assert [r.total_joules for r in a.results] == [
            r.total_joules for r in b.results
        ]
        assert [r.total_time for r in a.results] == [
            r.total_time for r in b.results
        ]


class TestFigureParallelPaths:
    def test_fig6_parallel_identical(self, tmp_path):
        from repro.experiments.fig6 import run_fig6

        kwargs = dict(benchmarks=("SHA-1",), batches=BATCHES)
        assert run_fig6(**kwargs) == run_fig6(
            **kwargs, parallel=True, workers=0, cache_dir=str(tmp_path / "c")
        )

    def test_fig7_parallel_identical(self, tmp_path):
        from repro.experiments.fig7 import run_fig7

        kwargs = dict(benchmarks=("SHA-1",), batches=BATCHES, include_phased=False)
        assert run_fig7(**kwargs) == run_fig7(
            **kwargs, parallel=True, workers=0, cache_dir=str(tmp_path / "c")
        )

    def test_fig9_parallel_identical(self, tmp_path):
        from repro.experiments.fig9 import run_fig9

        kwargs = dict(core_counts=(4, 8), batches=BATCHES)
        assert run_fig9(**kwargs) == run_fig9(
            **kwargs, parallel=True, workers=0, cache_dir=str(tmp_path / "c")
        )

    def test_table3_parallel_identical_simulated_columns(self, tmp_path):
        from repro.experiments.table3 import run_table3

        kwargs = dict(benchmarks=("SHA-1",), batches=BATCHES)
        serial = run_table3(**kwargs)
        parallel = run_table3(
            **kwargs, parallel=True, workers=0, cache_dir=str(tmp_path / "c")
        )
        for a, b in zip(serial.rows, parallel.rows):
            # wall-clock column is a real measurement; compare the rest
            assert dataclasses.replace(
                a, measured_wallclock_ms=0.0
            ) == dataclasses.replace(b, measured_wallclock_ms=0.0)

    def test_fig8_parallel_identical(self, tmp_path):
        from repro.experiments.fig8 import run_fig8

        a = run_fig8(batches=BATCHES)
        b = run_fig8(
            batches=BATCHES, parallel=True, cache_dir=str(tmp_path / "c")
        )
        assert a.histograms == b.histograms
        assert a.result.total_joules == b.result.total_joules
