"""Typed, JSON-round-trippable fault-injection specifications.

A :class:`FaultSpec` describes *which* platform faults a run is subject to
and *how often*; the :class:`~repro.faults.injector.FaultInjector` turns it
into deterministic per-event draws. Specs are frozen dataclasses, so they
participate in scenario digests and parallel-runner cache keys through
:func:`repro.sim.fingerprint.canonical_value` with no extra code.

Fault channels (all off by default):

* **DVFS denial** — a frequency request is rejected by the platform; the
  requesting policy is notified via
  :meth:`~repro.runtime.policy.SchedulerPolicy.on_dvfs_denied` and a
  spinning requester retries after ``dvfs_deny_penalty_s``.
* **DVFS delay** — a granted transition takes ``dvfs_delay_s`` longer than
  the machine's nominal latency.
* **Core stall** — a core about to be dispatched instead goes offline
  (parked) for ``stall_duration_s``; work stealing routes around it.
* **Counter noise** — a finished task's PMU reading gains spurious cache
  misses (``counter_noise_intensity`` misses per retired instruction),
  perturbing the profiler's memory-boundness signal.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ConfigurationError, ScenarioError

#: Version of the fault-spec JSON schema. Bump on any field change.
FAULT_SCHEMA_VERSION = 1

_RATE_FIELDS = (
    "dvfs_deny_rate",
    "dvfs_delay_rate",
    "stall_rate",
    "counter_noise_rate",
)


@dataclass(frozen=True)
class FaultSpec:
    """One run's fault mix. All rates are per-opportunity probabilities."""

    #: Probability each distinct DVFS request (per core) is denied.
    dvfs_deny_rate: float = 0.0
    #: Seconds a spinning core waits before retrying after a denial.
    dvfs_deny_penalty_s: float = 1e-3
    #: Probability a granted transition is slower than nominal.
    dvfs_delay_rate: float = 0.0
    #: Extra transition seconds when the delay fault fires.
    dvfs_delay_s: float = 0.0
    #: Probability a dispatch finds the core transiently offline.
    stall_rate: float = 0.0
    #: Length of one offline window in seconds.
    stall_duration_s: float = 0.0
    #: Probability a finished task's PMU counters are corrupted.
    counter_noise_rate: float = 0.0
    #: Spurious cache misses added, as a fraction of retired instructions.
    counter_noise_intensity: float = 0.0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        for name in (
            "dvfs_deny_penalty_s", "dvfs_delay_s",
            "stall_duration_s", "counter_noise_intensity",
        ):
            if getattr(self, name) < 0.0:
                raise ConfigurationError(f"{name} must be non-negative")
        # A rate without a magnitude is a silent no-op (or, for denial, a
        # zero-delay retry storm) — reject the inconsistent combination.
        if self.dvfs_deny_rate > 0.0 and self.dvfs_deny_penalty_s <= 0.0:
            raise ConfigurationError(
                "dvfs_deny_rate > 0 requires a positive dvfs_deny_penalty_s"
            )
        if self.dvfs_delay_rate > 0.0 and self.dvfs_delay_s <= 0.0:
            raise ConfigurationError(
                "dvfs_delay_rate > 0 requires a positive dvfs_delay_s"
            )
        if self.stall_rate > 0.0 and self.stall_duration_s <= 0.0:
            raise ConfigurationError(
                "stall_rate > 0 requires a positive stall_duration_s"
            )
        if self.counter_noise_rate > 0.0 and self.counter_noise_intensity <= 0.0:
            raise ConfigurationError(
                "counter_noise_rate > 0 requires a positive "
                "counter_noise_intensity"
            )

    @property
    def active(self) -> bool:
        """Whether any fault channel can actually fire."""
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Sparse JSON form: schema tag plus every non-default field."""
        data: dict[str, Any] = {"schema": FAULT_SCHEMA_VERSION}
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                data[f.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        if not isinstance(data, Mapping):
            raise ScenarioError("fault spec must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known - {"schema"}
        if unknown:
            raise ScenarioError(f"unknown fault fields: {sorted(unknown)}")
        schema = data.get("schema", FAULT_SCHEMA_VERSION)
        if schema != FAULT_SCHEMA_VERSION:
            raise ScenarioError(
                f"unsupported fault schema {schema!r}; this version reads "
                f"schema {FAULT_SCHEMA_VERSION}"
            )
        kwargs = {k: float(v) for k, v in data.items() if k != "schema"}
        try:
            return cls(**kwargs)
        except ConfigurationError as exc:
            raise ScenarioError(f"invalid fault spec: {exc}") from exc

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FaultSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"invalid fault JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "FaultSpec":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ScenarioError(
                f"cannot load fault spec from {path}: {exc}"
            ) from exc
        return cls.from_json(text)


__all__ = ["FAULT_SCHEMA_VERSION", "FaultSpec"]
