"""Micro-benchmarks of the sweep engine's duplicate-heavy load handling.

A small version of ``benchmarks/sweep_load.py`` shaped for
pytest-benchmark: the same duplicate-heavy load is run cold (fresh cache,
distinct cells simulate once, duplicates coalesce in flight) and warm (a
new engine over the packed cache, zero simulations). The report script
derives ``dedup_hit_rate`` and ``speedup_warm_vs_cold`` from the
``extra_info`` these attach.
"""

import shutil
import tempfile

import pytest

from repro.experiments.parallel import CellSpec, ResultCache
from repro.experiments.sweep import SweepEngine

#: Duplicate-heavy load: every submission repeats one of 4 distinct cells.
DISTINCT = [
    CellSpec(benchmark="SHA-1", policy=policy, seed=seed, batches=2)
    for policy in ("cilk", "eewa")
    for seed in (11, 23)
]
REPEATS = 16
LOAD = DISTINCT * REPEATS


def _drain(cache_dir):
    engine = SweepEngine(workers=0, cache_dir=cache_dir)
    try:
        outcomes = [t.result() for t in engine.submit_many(LOAD)]
        return outcomes, engine.stats
    finally:
        engine.close()


def test_bench_sweep_cold(benchmark):
    dirs = []

    def run():
        cache_dir = tempfile.mkdtemp(prefix="bench-sweep-cold-")
        dirs.append(cache_dir)
        return _drain(cache_dir)

    outcomes, stats = benchmark(run)
    for cache_dir in dirs:
        shutil.rmtree(cache_dir, ignore_errors=True)
    assert len(outcomes) == len(LOAD)
    assert stats.executed == len(DISTINCT)
    assert stats.deduplicated == len(LOAD) - len(DISTINCT)
    benchmark.extra_info["submissions"] = stats.cells
    benchmark.extra_info["dedup_hits"] = stats.deduplicated + stats.cache_hits
    benchmark.extra_info["cells_simulated"] = stats.executed


@pytest.fixture(scope="module")
def packed_cache(tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("bench-sweep-warm"))
    _drain(cache_dir)
    ResultCache(cache_dir).compact()
    return cache_dir


def test_bench_sweep_warm(benchmark, packed_cache):
    outcomes, stats = benchmark(lambda: _drain(packed_cache))
    assert len(outcomes) == len(LOAD)
    assert stats.executed == 0  # every cell served from the packed cache
    benchmark.extra_info["submissions"] = stats.cells
    benchmark.extra_info["dedup_hits"] = stats.deduplicated + stats.cache_hits
    benchmark.extra_info["cells_simulated"] = stats.executed
