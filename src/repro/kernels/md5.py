"""MD5 message digest (RFC 1321), implemented from scratch.

The MD5 benchmark of Table II. Pure-Python, block-oriented: the
:class:`MD5` object exposes ``update``/``hexdigest`` like :mod:`hashlib`,
and :func:`md5_hexdigest` is the one-shot convenience. Correctness is
asserted against :mod:`hashlib` in the test suite.
"""

from __future__ import annotations

import math
import struct

_S = (
    [7, 12, 17, 22] * 4
    + [5, 9, 14, 20] * 4
    + [4, 11, 16, 23] * 4
    + [6, 10, 15, 21] * 4
)
_K = [int(abs(math.sin(i + 1)) * 2**32) & 0xFFFFFFFF for i in range(64)]
_INIT = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)


def _rotl(value: int, amount: int) -> int:
    value &= 0xFFFFFFFF
    return ((value << amount) | (value >> (32 - amount))) & 0xFFFFFFFF


class MD5:
    """Incremental MD5, 64-byte block pipeline."""

    block_size = 64
    digest_size = 16

    def __init__(self, data: bytes = b"") -> None:
        self._state = list(_INIT)
        self._length = 0
        self._buffer = b""
        if data:
            self.update(data)

    def update(self, data: bytes) -> "MD5":
        self._length += len(data)
        buffer = self._buffer + data
        offset = 0
        while offset + 64 <= len(buffer):
            self._compress(buffer[offset : offset + 64])
            offset += 64
        self._buffer = buffer[offset:]
        return self

    def _compress(self, block: bytes) -> None:
        m = struct.unpack("<16I", block)
        a, b, c, d = self._state
        for i in range(64):
            if i < 16:
                f = (b & c) | (~b & d)
                g = i
            elif i < 32:
                f = (d & b) | (~d & c)
                g = (5 * i + 1) % 16
            elif i < 48:
                f = b ^ c ^ d
                g = (3 * i + 5) % 16
            else:
                f = c ^ (b | (~d & 0xFFFFFFFF))
                g = (7 * i) % 16
            f = (f + a + _K[i] + m[g]) & 0xFFFFFFFF
            a, d, c = d, c, b
            b = (b + _rotl(f, _S[i])) & 0xFFFFFFFF
        self._state[0] = (self._state[0] + a) & 0xFFFFFFFF
        self._state[1] = (self._state[1] + b) & 0xFFFFFFFF
        self._state[2] = (self._state[2] + c) & 0xFFFFFFFF
        self._state[3] = (self._state[3] + d) & 0xFFFFFFFF

    def digest(self) -> bytes:
        clone = MD5()
        clone._state = list(self._state)
        clone._length = self._length
        clone._buffer = self._buffer
        bit_length = clone._length * 8
        padding = b"\x80" + b"\x00" * ((55 - clone._length) % 64)
        clone.update(padding + struct.pack("<Q", bit_length & 0xFFFFFFFFFFFFFFFF))
        # update() mutated _length, but padding maths used the saved value.
        return struct.pack("<4I", *clone._state)

    def hexdigest(self) -> str:
        return self.digest().hex()


def md5_digest(data: bytes) -> bytes:
    return MD5(data).digest()


def md5_hexdigest(data: bytes) -> str:
    return MD5(data).hexdigest()
