"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.machine.topology import MachineConfig, opteron_8380_machine, small_test_machine
from repro.runtime.task import Batch, TaskSpec, flat_batch


@pytest.fixture
def opteron() -> MachineConfig:
    """The paper's 16-core testbed."""
    return opteron_8380_machine()


@pytest.fixture
def two_core() -> MachineConfig:
    """A 2-core, 2-level machine for micro tests."""
    return small_test_machine()


@pytest.fixture
def four_core() -> MachineConfig:
    """A 4-core, 3-level machine."""
    return small_test_machine(num_cores=4, levels=(2.0e9, 1.5e9, 1.0e9))


def make_two_class_batch(
    index: int,
    *,
    heavy: int = 4,
    light: int = 24,
    heavy_seconds: float = 40e-3,
    light_seconds: float = 2e-3,
    ref_frequency: float = 2.5e9,
) -> Batch:
    """Deterministic two-class batch used across integration tests."""
    specs = [
        TaskSpec("heavy", cpu_cycles=heavy_seconds * ref_frequency)
        for _ in range(heavy)
    ] + [
        TaskSpec("light", cpu_cycles=light_seconds * ref_frequency)
        for _ in range(light)
    ]
    return flat_batch(index, specs)


@pytest.fixture
def two_class_program() -> list[Batch]:
    """Six identical two-class batches."""
    return [make_two_class_batch(i) for i in range(6)]
