"""Frequency scales for DVFS-capable cores.

The paper assumes each core can run at ``r`` discrete frequencies
``F_0 > F_1 > ... > F_{r-1}`` (Section III). :class:`FrequencyScale` captures
that ordered set, validates it, and provides the index arithmetic used
throughout the CC table and the k-tuple search.

Frequencies are stored in hertz as floats. The evaluation platform of the
paper (AMD Opteron 8380) exposes 2.5, 1.8, 1.3 and 0.8 GHz; see
:func:`opteron_8380_scale`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import ConfigurationError

GHZ = 1e9
"""Multiplier converting GHz to Hz."""


@dataclass(frozen=True)
class FrequencyScale:
    """An ordered, descending set of operating frequencies.

    Parameters
    ----------
    levels:
        Frequencies in hertz, strictly descending: ``levels[0]`` is the
        fastest frequency ``F_0`` and ``levels[-1]`` the slowest ``F_{r-1}``.
    """

    levels: tuple[float, ...] = field()

    def __init__(self, levels: Sequence[float]) -> None:
        levels = tuple(float(f) for f in levels)
        if not levels:
            raise ConfigurationError("a frequency scale needs at least one level")
        if any(f <= 0.0 for f in levels):
            raise ConfigurationError(f"frequencies must be positive, got {levels}")
        if any(a <= b for a, b in zip(levels, levels[1:])):
            raise ConfigurationError(
                f"frequencies must be strictly descending (F_0 fastest), got {levels}"
            )
        object.__setattr__(self, "levels", levels)

    # -- basic views ------------------------------------------------------

    @property
    def r(self) -> int:
        """Number of distinct frequency levels (the paper's ``r``)."""
        return len(self.levels)

    @property
    def fastest(self) -> float:
        """``F_0``, the highest frequency."""
        return self.levels[0]

    @property
    def slowest(self) -> float:
        """``F_{r-1}``, the lowest frequency."""
        return self.levels[-1]

    @property
    def fastest_index(self) -> int:
        return 0

    @property
    def slowest_index(self) -> int:
        return self.r - 1

    def __len__(self) -> int:
        return self.r

    def __iter__(self) -> Iterator[float]:
        return iter(self.levels)

    def __getitem__(self, index: int) -> float:
        return self.levels[index]

    # -- arithmetic used by the CC table ----------------------------------

    def slowdown(self, index: int) -> float:
        """``F_0 / F_index`` — how much slower level ``index`` is than ``F_0``.

        This is the multiplier applied to row ``F_0`` of the CC table to
        obtain row ``F_index`` (Table I of the paper).
        """
        return self.fastest / self.levels[index]

    def relative_speed(self, index: int) -> float:
        """``F_index / F_0`` in ``(0, 1]`` — normalised computational capacity."""
        return self.levels[index] / self.fastest

    def index_of(self, frequency: float, *, tol: float = 1e-6) -> int:
        """Return the level index whose frequency matches ``frequency``.

        Raises :class:`ConfigurationError` if no level matches within the
        relative tolerance ``tol``.
        """
        for i, f in enumerate(self.levels):
            if abs(f - frequency) <= tol * f:
                return i
        raise ConfigurationError(f"{frequency!r} Hz is not a level of {self.levels}")

    def validate_index(self, index: int) -> int:
        """Bounds-check a level index and return it."""
        if not 0 <= index < self.r:
            raise ConfigurationError(f"frequency index {index} out of range [0, {self.r})")
        return index


def opteron_8380_scale() -> FrequencyScale:
    """The frequency ladder of the paper's AMD Opteron 8380 testbed.

    Section IV: "each core can run at four frequencies: 2.5GHz, 1.8GHz,
    1.3GHz and 0.8GHz".
    """
    return FrequencyScale((2.5 * GHZ, 1.8 * GHZ, 1.3 * GHZ, 0.8 * GHZ))


def uniform_scale(fastest_ghz: float, steps: int, *, ratio: float = 0.75) -> FrequencyScale:
    """A geometric frequency ladder, convenient for synthetic machines."""
    if steps < 1:
        raise ConfigurationError("steps must be >= 1")
    if not 0.0 < ratio < 1.0:
        raise ConfigurationError("ratio must be in (0, 1)")
    return FrequencyScale(tuple(fastest_ghz * GHZ * ratio**i for i in range(steps)))
