"""Fig. 7 bench — Cilk and WATS on EEWA-chosen asymmetric configurations.

Paper shape targets: Cilk 1.17-2.92x EEWA's time (random stealing lands
heavy tasks on slow cores), WATS 1.05-1.24x (right placement, no per-batch
DVFS adaptation), and WATS always between the two.
"""

from conftest import BENCH_SEEDS, save_exhibit

from repro.experiments.fig7 import run_fig7


def test_bench_fig7(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig7(seeds=BENCH_SEEDS), rounds=1, iterations=1
    )
    save_exhibit(results_dir, "fig7", result.table())

    benchmark.extra_info["cilk_over_eewa"] = {
        r.benchmark: round(r.cilk_over_eewa, 2) for r in result.rows
    }
    benchmark.extra_info["wats_over_eewa"] = {
        r.benchmark: round(r.wats_over_eewa, 2) for r in result.rows
    }

    for row in result.rows:
        # Cilk suffers on the asymmetric machine...
        assert row.cilk_over_eewa > 1.15, row
        # ...WATS recovers essentially all of it (see EXPERIMENTS.md: with
        # the shared preference machinery and criticality guard, our WATS
        # is "EEWA minus DVFS control" and ties EEWA on time — the paper's
        # 1.05-1.24x gap reflects a weaker WATS implementation)...
        assert 0.9 < row.wats_over_eewa < 1.3, row
        # ...and never does worse than random stealing.
        assert row.wats_over_eewa < row.cilk_over_eewa, row
    # Band shape: the worst Cilk ratio is far above the best.
    ratios = [r.cilk_over_eewa for r in result.rows]
    assert max(ratios) > 2.0
