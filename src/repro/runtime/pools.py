"""Per-core multi-pool task storage.

Fig. 4 of the paper: "each core has ``r`` task pools corresponding to the
``r`` c-groups". A task allocated to c-group ``G_j`` lives in some core's
pool number ``j``; cores pop locally from their own group's pool and steal
within a pool index before escalating across groups via the preference list.

:class:`PoolGrid` is that structure plus the per-pool-index queued-task
counters that make "are all ``TP_j`` pools empty?" an O(1) question — the
check the preference-based scheduler performs on every escalation decision.

Hot path
--------
``push`` / ``pop_local`` / ``steal`` run once per task acquisition attempt —
millions of times per sweep — so they operate on the underlying
``collections.deque`` of each :class:`~repro.runtime.deque.WorkStealingDeque`
directly (``_items``, a same-package contract) with the bounds checks
inlined as two chained integer comparisons instead of a helper call.
``victims_with_work`` answers the common "nobody has work" case straight
from the O(1) per-pool counters without scanning or allocating.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable, Optional, Sequence

from repro.errors import ConfigurationError, SchedulingError
from repro.runtime.deque import WorkStealingDeque
from repro.runtime.task import Task

#: Observer callback for pool mutations: ``(op, pool_core, pool_index,
#: task)`` where ``op`` is ``"push"`` / ``"pop"`` / ``"steal"`` and
#: ``pool_core`` is the owner of the touched pool (the victim for steals).
#: The engine supplies one when task-event tracing is enabled; see
#: :meth:`repro.sim.engine.Simulator.pool_observer`.
PoolObserver = Callable[[str, int, int, Task], None]

#: Shared empty result for :meth:`PoolGrid.victims_with_work` — callers
#: treat the return value as read-only, so the found-nothing case (by far
#: the most common during the end-of-batch spin-down) allocates nothing.
_NO_VICTIMS: list[int] = []


class PoolGrid:
    """``num_cores x num_pools`` grid of work-stealing deques."""

    __slots__ = (
        "num_cores",
        "num_pools",
        "core_types",
        "_observer",
        "_pools",
        "_rows",
        "_queued_by_pool",
    )

    def __init__(
        self,
        num_cores: int,
        num_pools: int,
        *,
        observer: Optional[PoolObserver] = None,
        core_types: Optional[Sequence[str]] = None,
    ) -> None:
        if num_cores < 1 or num_pools < 1:
            raise ConfigurationError("PoolGrid needs at least one core and one pool")
        if core_types is not None and len(core_types) != num_cores:
            raise ConfigurationError(
                f"core_types has {len(core_types)} entries for {num_cores} cores"
            )
        self.num_cores = num_cores
        self.num_pools = num_pools
        #: Per-core type names on heterogeneous machines (metadata only —
        #: push/pop/steal mechanics and victim selection are type-blind;
        #: the *policy* decides which pools a core scans).
        self.core_types = tuple(core_types) if core_types is not None else None
        self._observer = observer
        self._pools: list[list[WorkStealingDeque[Task]]] = [
            [WorkStealingDeque() for _ in range(num_pools)] for _ in range(num_cores)
        ]
        # Raw collections.deque view of the same grid, in the same layout —
        # the hot-path ops index this to skip a wrapper method call each.
        self._rows = [[pool._items for pool in row] for row in self._pools]
        self._queued_by_pool: list[int] = [0] * num_pools

    # -- index checks -------------------------------------------------------

    def _raise_bounds(self, core_id: int, pool_index: int) -> None:
        if not 0 <= core_id < self.num_cores:
            raise SchedulingError(f"core {core_id} out of range [0, {self.num_cores})")
        raise SchedulingError(f"pool {pool_index} out of range [0, {self.num_pools})")

    # -- mutation -----------------------------------------------------------

    def push(self, core_id: int, pool_index: int, task: Task) -> None:
        """Owner-side push of ``task`` into ``core_id``'s pool ``pool_index``."""
        if 0 <= core_id < self.num_cores and 0 <= pool_index < self.num_pools:
            self._rows[core_id][pool_index].append(task)
            self._queued_by_pool[pool_index] += 1
            if self._observer is not None:
                self._observer("push", core_id, pool_index, task)
            return
        self._raise_bounds(core_id, pool_index)

    def pop_local(self, core_id: int, pool_index: int) -> Optional[Task]:
        """Owner-side LIFO pop; ``None`` when the local pool is empty."""
        if 0 <= core_id < self.num_cores and 0 <= pool_index < self.num_pools:
            items = self._rows[core_id][pool_index]
            if not items:
                return None
            task = items.pop()
            self._queued_by_pool[pool_index] -= 1
            if self._observer is not None:
                self._observer("pop", core_id, pool_index, task)
            return task
        self._raise_bounds(core_id, pool_index)

    def steal(self, victim_id: int, pool_index: int) -> Optional[Task]:
        """Thief-side FIFO steal from ``victim_id``'s pool ``pool_index``."""
        if 0 <= victim_id < self.num_cores and 0 <= pool_index < self.num_pools:
            items = self._rows[victim_id][pool_index]
            if not items:
                return None
            task = items.popleft()
            self._queued_by_pool[pool_index] -= 1
            task.stolen = True
            if self._observer is not None:
                self._observer("steal", victim_id, pool_index, task)
            return task
        self._raise_bounds(victim_id, pool_index)

    def clear(self) -> None:
        for row in self._rows:
            for items in row:
                items.clear()
        self._queued_by_pool = [0] * self.num_pools

    # -- queries --------------------------------------------------------------

    def queued_in_pool_index(self, pool_index: int) -> int:
        """Tasks queued across all cores in pool ``pool_index`` (O(1))."""
        if 0 <= pool_index < self.num_pools:
            return self._queued_by_pool[pool_index]
        self._raise_bounds(0, pool_index)

    def pool_index_empty(self, pool_index: int) -> bool:
        """True when every core's pool ``pool_index`` is empty (O(1))."""
        return self.queued_in_pool_index(pool_index) == 0

    def local_len(self, core_id: int, pool_index: int) -> int:
        if 0 <= core_id < self.num_cores and 0 <= pool_index < self.num_pools:
            return len(self._rows[core_id][pool_index])
        self._raise_bounds(core_id, pool_index)

    def total_queued(self) -> int:
        return sum(self._queued_by_pool)

    def state_fingerprint(self) -> str:
        """Digest of the grid shape plus every non-empty pool's contents.

        An empty grid of any given shape has a stable digest; a single
        residual pooled task changes it (the fast-forward mutation tests
        pin this). Delegates per-pool content to
        :meth:`WorkStealingDeque.state_fingerprint`.
        """
        hasher = hashlib.sha256()
        hasher.update(f"{self.num_cores}x{self.num_pools}".encode())
        # Typed grids digest their layout too; homogeneous grids (None)
        # hash exactly the flat-ladder-era bytes.
        if self.core_types is not None:
            hasher.update(f"|types={','.join(self.core_types)}".encode())
        for core_id, row in enumerate(self._pools):
            for pool_index, pool in enumerate(row):
                if pool:
                    hasher.update(
                        f"\x1f{core_id}.{pool_index}:{pool.state_fingerprint()}".encode()
                    )
        return hasher.hexdigest()

    def victims_with_work(
        self, pool_index: int, exclude: int, candidates: Sequence[int] | None = None
    ) -> list[int]:
        """Core ids (other than ``exclude``) holding work in ``pool_index``.

        The returned list is read-only: the empty result is a shared
        constant so the (overwhelmingly common) found-nothing case does no
        allocation and, when the whole pool index is empty, no scan at all.
        """
        if not 0 <= pool_index < self.num_pools:
            self._raise_bounds(0, pool_index)
        queued = self._queued_by_pool[pool_index]
        if queued == 0:
            return _NO_VICTIMS
        rows = self._rows
        if (
            candidates is None
            and 0 <= exclude < self.num_cores
            and queued == len(rows[exclude][pool_index])
        ):
            # All queued work sits in the excluded core's own pool.
            return _NO_VICTIMS
        ids: Iterable[int] = candidates if candidates is not None else range(self.num_cores)
        victims = [c for c in ids if c != exclude and rows[c][pool_index]]
        return victims if victims else _NO_VICTIMS
