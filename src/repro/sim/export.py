"""Result and trace export.

Serialises a :class:`~repro.sim.engine.SimResult` to plain dictionaries
(JSON-ready) and CSV rows so runs can be archived, diffed across commits,
or analysed outside Python. Only derived values are exported — no live
object references — so exports are stable across library versions.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any

from repro.sim.engine import SimResult


def result_to_dict(result: SimResult, *, include_tasks: bool = False) -> dict[str, Any]:
    """A JSON-serialisable summary of one run."""
    out: dict[str, Any] = {
        "policy": result.policy_name,
        "machine": {
            "num_cores": result.machine.num_cores,
            "frequencies_hz": list(result.machine.scale.levels),
            "dvfs_domains": (
                [list(d) for d in result.machine.dvfs_domains]
                if result.machine.dvfs_domains is not None
                else None
            ),
        },
        "total_time_s": result.total_time,
        "total_joules": result.total_joules,
        "core_joules": result.core_joules,
        "baseline_joules": result.baseline_joules,
        "spin_joules": result.spin_joules,
        "running_joules": result.running_joules,
        "average_power_w": result.average_power,
        "tasks_executed": result.tasks_executed,
        "batches_executed": result.batches_executed,
        "batches_simulated": result.batches_simulated,
        "batches_fast_forwarded": result.batches_fast_forwarded,
        "adjust_overhead_s": result.adjust_overhead_seconds,
        "policy_stats": dict(result.policy_stats),
        "batches": [
            {
                "index": bt.batch_index,
                "start_s": bt.start_time,
                "duration_s": bt.duration,
                "tasks": bt.tasks_completed,
                "level_histogram": list(bt.level_histogram),
                "adjust_overhead_s": bt.adjust_overhead_seconds,
            }
            for bt in result.trace.batches
        ],
        "dvfs_transitions": len(result.trace.transitions),
    }
    if include_tasks:
        out["tasks"] = [
            {
                "id": t.task_id,
                "function": t.function,
                "batch": t.batch_index,
                "core": t.executed_on,
                "level": t.executed_level,
                "stolen": t.stolen,
                "start_s": t.start_time,
                "finish_s": t.finish_time,
            }
            for t in result.tasks
        ]
    return out


def result_to_json(result: SimResult, *, include_tasks: bool = False, indent: int = 2) -> str:
    """JSON text of :func:`result_to_dict`."""
    return json.dumps(result_to_dict(result, include_tasks=include_tasks), indent=indent)


def batches_to_csv(result: SimResult) -> str:
    """CSV of per-batch metrics (one row per batch)."""
    buffer = io.StringIO()
    r = result.machine.r
    writer = csv.writer(buffer)
    writer.writerow(
        ["batch", "start_s", "duration_s", "tasks", "adjust_overhead_s"]
        + [f"cores_at_level_{j}" for j in range(r)]
    )
    for bt in result.trace.batches:
        writer.writerow(
            [bt.batch_index, bt.start_time, bt.duration, bt.tasks_completed,
             bt.adjust_overhead_seconds]
            + list(bt.level_histogram)
        )
    return buffer.getvalue()


def tasks_to_csv(result: SimResult) -> str:
    """CSV of per-task execution records (requires ``keep_tasks=True``)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["task_id", "function", "batch", "core", "level", "stolen",
         "start_s", "finish_s", "elapsed_s"]
    )
    for t in result.tasks:
        writer.writerow(
            [t.task_id, t.function, t.batch_index, t.executed_on,
             t.executed_level, int(t.stolen), t.start_time, t.finish_time,
             t.finish_time - t.start_time]
        )
    return buffer.getvalue()


def transitions_to_csv(result: SimResult) -> str:
    """CSV of the DVFS transition log."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["time_s", "core", "from_level", "to_level"])
    for tr in result.trace.transitions:
        writer.writerow([tr.time, tr.core_id, tr.from_level, tr.to_level])
    return buffer.getvalue()
