#!/usr/bin/env python3
"""Energy study: where do EEWA's savings come from, and when do they vanish?

Sweeps the workload-imbalance dial (the number of heavy anchor tasks per
batch) and reports, for each point, machine utilisation and EEWA's energy
delta versus Cilk — reproducing the paper's Fig. 3/Fig. 9 story: savings
are the *underutilisation* of the machine converted into lower
frequencies, so a saturated machine yields none.

Also compares the three leftover-core parking policies on the most
imbalanced point (a DESIGN.md ablation).

Usage:
    python examples/energy_study.py
"""

from __future__ import annotations

from repro import CilkScheduler, EEWAScheduler, opteron_8380_machine, simulate
from repro.core import EEWAConfig
from repro.workloads import generate_program, imbalance_sweep_spec


def run_point(heavy_tasks: int, config: EEWAConfig | None = None):
    machine = opteron_8380_machine()
    spec = imbalance_sweep_spec(heavy_tasks)
    program = generate_program(spec, batches=10, seed=5)
    cilk = simulate(program, CilkScheduler(), machine, seed=5)
    eewa = simulate(program, EEWAScheduler(config), machine, seed=5)
    return spec, cilk, eewa


def main() -> None:
    print("Imbalance sweep: few huge anchor tasks -> lots of slack;")
    print("many anchors -> saturated machine, nothing to harvest.\n")
    print(f"{'anchors':>7s} {'util':>6s} {'dT%':>7s} {'dE%':>7s}   modal config")
    for heavy in (2, 4, 6, 8, 10, 12, 14):
        spec, cilk, eewa = run_point(heavy)
        dt = 100 * (eewa.total_time / cilk.total_time - 1)
        de = 100 * (eewa.total_joules / cilk.total_joules - 1)
        print(
            f"{heavy:7d} {spec.utilization(16):6.0%} {dt:+7.1f} {de:+7.1f}"
            f"   {eewa.trace.modal_histogram()}"
        )

    print("\nLeftover-core parking ablation (2 anchors, maximal slack):")
    for policy in ("slowest", "join_slowest_group", "fastest"):
        _, cilk, eewa = run_point(2, EEWAConfig(leftover_policy=policy))
        de = 100 * (eewa.total_joules / cilk.total_joules - 1)
        print(f"  {policy:20s} energy {de:+6.1f}% vs cilk")

    print("\nSpin-waste anatomy (2 anchors):")
    _, cilk, eewa = run_point(2)
    for name, r in (("cilk", cilk), ("eewa", eewa)):
        print(
            f"  {name:5s} total {r.total_joules:7.2f} J — "
            f"running {r.running_joules:6.2f} J, "
            f"spinning {r.spin_joules:6.2f} J, "
            f"baseline {r.baseline_joules:6.2f} J"
        )


if __name__ == "__main__":
    main()
