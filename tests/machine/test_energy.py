"""Tests for the energy meter."""

import pytest

from repro.errors import SimulationError
from repro.machine.core import CoreState, SimCore
from repro.machine.energy import EnergyMeter
from repro.machine.frequency import opteron_8380_scale
from repro.machine.power import calibrated_power_model


@pytest.fixture
def setup():
    scale = opteron_8380_scale()
    power = calibrated_power_model(scale)
    cores = [SimCore(core_id=i, scale=scale) for i in range(2)]
    return cores, power, EnergyMeter(cores, power)


class TestBilling:
    def test_parked_cores_draw_idle_power(self, setup):
        cores, power, meter = setup
        meter.finalize(1.0)
        assert meter.core_joules() == pytest.approx(2 * power.idle_power())

    def test_spinning_core_draws_busy_power(self, setup):
        cores, power, meter = setup
        cores[0].spin()
        meter.finalize(2.0)
        expected = 2.0 * (power.busy_power(cores[0].frequency) + power.idle_power())
        assert meter.core_joules() == pytest.approx(expected)

    def test_running_equals_spinning_power(self, setup):
        """An idle Cilk worker burns as much as a working one (Section II)."""
        cores, power, meter = setup
        cores[0].spin()
        cores[1].spin()
        cores[1].start_task(1)
        meter.finalize(1.0)
        a, b = meter.accounts
        assert a.joules == pytest.approx(b.joules)

    def test_frequency_change_mid_run_is_piecewise(self, setup):
        cores, power, meter = setup
        cores[0].spin()
        meter.observe(1.0)
        cores[0].begin_transition(3)
        cores[0].complete_transition()
        meter.finalize(2.0)
        expected = (
            1.0 * power.busy_power(opteron_8380_scale().fastest)
            + 1.0 * power.busy_power(opteron_8380_scale().slowest)
            + 2.0 * power.idle_power()  # the second core, parked throughout
        )
        assert meter.core_joules() == pytest.approx(expected)

    def test_baseline_energy_proportional_to_time(self, setup):
        cores, power, meter = setup
        meter.finalize(3.0)
        assert meter.baseline_joules() == pytest.approx(3.0 * power.machine_base_power)
        assert meter.total_joules() == pytest.approx(
            meter.core_joules() + meter.baseline_joules()
        )


class TestAccounting:
    def test_time_conservation_per_core(self, setup):
        cores, _, meter = setup
        cores[0].spin()
        meter.observe(0.5)
        cores[0].start_task(1)
        meter.observe(1.25)
        cores[0].finish_task()
        meter.finalize(2.0)
        for account in meter.accounts:
            assert account.seconds == pytest.approx(2.0)
            assert sum(account.seconds_by_state.values()) == pytest.approx(2.0)
            assert sum(account.seconds_by_level.values()) == pytest.approx(2.0)

    def test_state_breakdown(self, setup):
        cores, power, meter = setup
        cores[0].spin()
        meter.observe(1.0)
        cores[0].start_task(1)
        meter.finalize(3.0)
        account = meter.accounts[0]
        assert account.seconds_by_state[CoreState.SPINNING] == pytest.approx(1.0)
        assert account.seconds_by_state[CoreState.RUNNING] == pytest.approx(2.0)
        assert meter.spin_joules() == pytest.approx(
            1.0 * power.busy_power(cores[0].frequency)
        )

    def test_seconds_by_level_aggregation(self, setup):
        cores, _, meter = setup
        meter.finalize(1.5)
        assert meter.seconds_by_level() == {0: pytest.approx(3.0)}


class TestPerOperatingPointBilling:
    def test_shared_electrical_frequency_bills_per_type(self):
        """Two core types at the same hertz draw their own wattages.

        Regression guard for the busy-watts memo: a table keyed by bare
        frequency would bill both cores at whichever type's wattage was
        computed first; the table is keyed per operating point.
        """
        from repro.machine.operating_point import homogeneous_space
        from repro.machine.power import PowerModel, VoltageCurve

        freqs = (2.0e9, 1.0e9)
        big_ladder = homogeneous_space(freqs, core_type="big")
        little_ladder = homogeneous_space(freqs, core_type="little")
        curve = VoltageCurve(f_min=1.0e9, f_max=2.0e9, v_min=1.0, v_max=1.0)
        big_power = PowerModel(
            voltage_curve=curve, kappa=4e-9, core_idle_power=1.0,
            machine_base_power=0.0,
        )
        little_power = PowerModel(
            voltage_curve=curve, kappa=1e-9, core_idle_power=0.25,
            machine_base_power=0.0,
        )
        cores = [
            SimCore(core_id=0, scale=big_ladder, core_type="big"),
            SimCore(core_id=1, scale=little_ladder, core_type="little"),
        ]
        meter = EnergyMeter(
            cores, big_power,
            type_powers={"big": big_power, "little": little_power},
        )
        for core in cores:
            core.spin()
        meter.finalize(1.0)
        assert big_power.busy_power(2.0e9) != little_power.busy_power(2.0e9)
        assert meter.accounts[0].joules == pytest.approx(
            big_power.busy_power(2.0e9)
        )
        assert meter.accounts[1].joules == pytest.approx(
            little_power.busy_power(2.0e9)
        )

    def test_types_without_override_fall_back_to_machine_model(self):
        from repro.machine.operating_point import homogeneous_space

        scale = opteron_8380_scale()
        power = calibrated_power_model(scale)
        little_ladder = homogeneous_space((2.5e9,), core_type="little")
        cores = [
            SimCore(core_id=0, scale=scale),
            SimCore(core_id=1, scale=little_ladder, core_type="little"),
        ]
        meter = EnergyMeter(cores, power, type_powers={})
        cores[0].spin()
        cores[1].spin()
        meter.finalize(1.0)
        assert meter.accounts[0].joules == pytest.approx(
            meter.accounts[1].joules
        )


class TestGuards:
    def test_time_cannot_go_backwards(self, setup):
        _, _, meter = setup
        meter.observe(1.0)
        with pytest.raises(SimulationError):
            meter.observe(0.5)

    def test_finalized_meter_rejects_updates(self, setup):
        _, _, meter = setup
        meter.finalize(1.0)
        with pytest.raises(SimulationError):
            meter.observe(2.0)

    def test_zero_interval_is_noop(self, setup):
        _, _, meter = setup
        meter.observe(1.0)
        meter.observe(1.0)
        meter.finalize(1.0)
        assert meter.elapsed == pytest.approx(1.0)

    def test_float_jitter_does_not_rewind_the_clock(self, setup):
        # A tiny negative dt within tolerance is float noise, not time
        # travel; rewinding to it would stretch the *next* interval and
        # over-bill by the jitter. The later instant must be kept.
        cores, power, meter = setup
        meter.observe(1.0)
        cores[0].spin()
        meter.observe(1.0 - 1e-13)
        assert meter.elapsed == 1.0
        meter.finalize(2.0)
        assert meter.accounts[0].joules == pytest.approx(
            1.0 * power.idle_power() + 1.0 * power.busy_power(cores[0].frequency)
        )
