"""Event records for the discrete-event engine.

Events are ordered by ``(time, seq)``; ``seq`` is a monotonically increasing
tie-breaker so simultaneous events process in scheduling order and the
simulation stays fully deterministic.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SimulationError


class EventKind(enum.Enum):
    """Discriminator for engine events."""

    TASK_DONE = "task_done"
    DVFS_DONE = "dvfs_done"
    CORE_READY = "core_ready"
    BATCH_LAUNCH = "batch_launch"


@dataclass(frozen=True, order=True)
class Event:
    """One scheduled occurrence.

    Ordering compares ``(time, seq)`` only; payload fields are excluded from
    comparison so the heap never inspects them.
    """

    time: float
    seq: int
    kind: EventKind = field(compare=False)
    core_id: Optional[int] = field(default=None, compare=False)
    task_id: Optional[int] = field(default=None, compare=False)
    batch_index: Optional[int] = field(default=None, compare=False)


class EventQueue:
    """Deterministic min-heap of :class:`Event` records."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def schedule(
        self,
        delay: float,
        kind: EventKind,
        *,
        core_id: Optional[int] = None,
        task_id: Optional[int] = None,
        batch_index: Optional[int] = None,
    ) -> Event:
        """Enqueue an event ``delay`` seconds from now and return it."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(
            time=self._now + delay,
            seq=self._seq,
            kind=kind,
            core_id=core_id,
            task_id=task_id,
            batch_index=batch_index,
        )
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing the clock."""
        if not self._heap:
            raise SimulationError("event queue is empty")
        event = heapq.heappop(self._heap)
        if event.time < self._now - 1e-12:
            raise SimulationError(
                f"event at t={event.time} precedes clock t={self._now}"
            )
        self._now = max(self._now, event.time)
        return event
