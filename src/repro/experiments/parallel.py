"""Parallel, cached experiment execution.

The paper's evaluation repeats every (benchmark × policy) pair ~100 times;
our exhibits repeat each cell over seeds. The cells are embarrassingly
parallel — every simulation is a pure function of *(program, policy config,
machine, seed, engine version)* — so this module provides the two scaling
levers every figure module shares:

* **fan-out** — a :class:`ParallelRunner` dispatches cells to a
  ``ProcessPoolExecutor`` (one simulation per task, results pickled back);
* **content-addressed caching** — each cell's inputs are canonically
  encoded (:mod:`repro.sim.fingerprint`) and SHA-256 hashed into a cache
  key; finished :class:`~repro.sim.engine.SimResult` objects are pickled
  under that key. A repeated sweep with unchanged inputs executes zero
  simulations; changing *any* input — a task spec, a policy tunable, the
  machine, the seed, the engine version tag
  (:data:`repro.sim.engine.ENGINE_VERSION`), or the scenario schema
  version (:data:`repro.scenario.spec.SCENARIO_SCHEMA_VERSION`, which
  versions the key layout itself) — changes the key and misses. Entries
  written under an older schema version are therefore never served.

Determinism note: results are byte-identical whether a cell is computed
in-process, in a worker, or served from cache — the simulation itself is
seeded and single-threaded; only *where* it runs changes. The one
exception is the wall-clock adjuster measurement riding along for Table
III, which is a real timing and is cached verbatim from the run that
produced it.
"""

from __future__ import annotations

import contextlib
import dataclasses
import functools
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.core.eewa import EEWAConfig
from repro.errors import ConfigurationError
from repro.experiments.outcome import RunOutcome, modal_levels_from_result
from repro.faults.spec import FaultSpec
from repro.machine.topology import MachineConfig, opteron_8380_machine
from repro.runtime.task import Batch
from repro.scenario.registry import POLICIES
from repro.scenario.spec import (
    DEFAULT_SEEDS,
    SCENARIO_SCHEMA_VERSION,
    ScenarioSpec,
)
from repro.sim.engine import ENGINE_VERSION, SimResult, simulate
from repro.sim.fingerprint import canonical_value as _canonical
from repro.sim.fingerprint import digest
from repro.workloads.benchmarks import benchmark_program
from repro.workloads.spec import WorkloadSpec

#: Default on-disk cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Bump to invalidate cache entries whose *stored format* changed (the
#: simulated behaviour itself is versioned by ``ENGINE_VERSION`` and the
#: key layout by ``SCENARIO_SCHEMA_VERSION``).
_CACHE_FORMAT = 1


#: Sub-digests of immutable inputs, memoised by object identity — a sweep
#: hashes the same program once per (program, policy-count) instead of
#: re-walking thousands of task specs per cell. Identity keying is sound
#: because the keyed objects are frozen dataclasses.
_blob_memo: dict[int, tuple[Any, str]] = {}


def _memo_digest(value: Any) -> str:
    cached = _blob_memo.get(id(value))
    if cached is not None and cached[0] is value:
        return cached[1]
    d = digest([_canonical(value)])
    _blob_memo[id(value)] = (value, d)
    return d


def cell_key(
    program: Sequence[Batch],
    policy: str,
    machine: MachineConfig,
    seed: int,
    *,
    core_levels: Optional[Sequence[int]] = None,
    eewa_config: Optional[EEWAConfig] = None,
    policy_params: Optional[tuple[tuple[str, Any], ...]] = None,
    fast_forward: bool = True,
    faults: Optional[FaultSpec] = None,
) -> str:
    """Content hash of one simulation's complete input set.

    This is the resolved-scenario digest: policy names are canonicalised
    through the registry (so ``cilk_d`` and ``cilk-d`` alias to one
    entry), and the layout is versioned by ``SCENARIO_SCHEMA_VERSION`` —
    bumping it orphans every entry written under the old layout.
    ``fast_forward`` is part of the key: on machines whose arithmetic is
    not float-exact a fast-forwarded result may differ from a full one in
    last-ulp positions, so the two modes must never share cache entries.
    """
    return digest(
        [
            "schema", SCENARIO_SCHEMA_VERSION,
            "engine", ENGINE_VERSION, _CACHE_FORMAT,
            "machine", _memo_digest(machine),
            "program", _memo_digest(tuple(program) if not isinstance(program, tuple) else program),
            "policy", POLICIES.canonical(policy),
            "core_levels", _canonical(None if core_levels is None else tuple(core_levels)),
            "eewa_config", _canonical(eewa_config),
            "policy_params", _canonical(policy_params),
            "seed", seed,
            "fast_forward", fast_forward,
            "faults", _canonical(faults),
        ]
    )


# ----------------------------------------------------------------------
# cell model
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CellSpec:
    """One (workload × policy × seed) simulation request.

    ``benchmark`` names a registered workload; ``workload`` carries an
    inline :class:`~repro.workloads.spec.WorkloadSpec` instead (the cache
    key hashes generated program *content*, so an inline spec and the
    registered workload it equals share cache entries). ``program``
    overrides generation entirely; ``machine`` overrides the runner's
    default machine (Fig. 9's core-count sweep). ``policy_params`` are the
    JSON-scalar tunables of a :class:`~repro.scenario.spec.PolicySpec`.
    """

    benchmark: str
    policy: str
    seed: int
    batches: Optional[int] = None
    core_levels: Optional[tuple[int, ...]] = None
    eewa_config: Optional[EEWAConfig] = None
    machine: Optional[MachineConfig] = None
    program: Optional[tuple[Batch, ...]] = None
    workload: Optional[WorkloadSpec] = None
    policy_params: Optional[tuple[tuple[str, Any], ...]] = None
    faults: Optional[FaultSpec] = None

    @classmethod
    def from_scenario(cls, scenario: ScenarioSpec, seed: int) -> "CellSpec":
        """One cell of a scenario (its ``seed``-th repetition)."""
        policy = scenario.policy
        eewa_config = None
        if policy.config is not None:
            if not isinstance(policy.config, EEWAConfig):
                raise ConfigurationError(
                    f"{policy.name}: only EEWAConfig objects can ride through "
                    "the parallel runner; use JSON params instead"
                )
            eewa_config = policy.config
        return cls(
            benchmark=scenario.workload_name,
            policy=policy.name,
            seed=seed,
            batches=scenario.batches,
            core_levels=policy.core_levels,
            eewa_config=eewa_config,
            machine=scenario.build_machine(),
            workload=(
                scenario.workload
                if isinstance(scenario.workload, WorkloadSpec)
                else None
            ),
            policy_params=policy.params or None,
            faults=scenario.faults,
        )


@dataclasses.dataclass(frozen=True)
class CellOutcome:
    """One finished cell: the result plus cache/bookkeeping metadata."""

    spec: CellSpec
    key: str
    result: SimResult
    from_cache: bool
    #: Real (non-simulated) seconds spent inside the EEWA adjuster, and the
    #: number of adjustment decisions — Table III's "measured" column.
    adjuster_wallclock_s: float = 0.0
    adjuster_decisions: int = 0


@dataclasses.dataclass(frozen=True)
class BenchRequest:
    """A multi-seed benchmark×policy request (``run_benchmark`` shaped)."""

    benchmark: str
    policy: str
    batches: Optional[int] = None
    seeds: tuple[int, ...] = DEFAULT_SEEDS
    core_levels: Optional[tuple[int, ...]] = None
    eewa_config: Optional[EEWAConfig] = None
    machine: Optional[MachineConfig] = None

    def cells(self) -> list[CellSpec]:
        return [
            CellSpec(
                benchmark=self.benchmark,
                policy=self.policy,
                seed=seed,
                batches=self.batches,
                core_levels=self.core_levels,
                eewa_config=self.eewa_config,
                machine=self.machine,
            )
            for seed in self.seeds
        ]


# ----------------------------------------------------------------------
# on-disk cache
# ----------------------------------------------------------------------


class ResultCache:
    """Content-addressed pickle store: one file per cell key."""

    def __init__(self, root: str | os.PathLike[str] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[dict[str, Any]]:
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None
        if payload.get("engine_version") != ENGINE_VERSION:
            return None  # belt-and-braces; the key already encodes it
        return payload

    def put(self, key: str, payload: dict[str, Any]) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)  # atomic: concurrent writers both win
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise


# ----------------------------------------------------------------------
# workers
# ----------------------------------------------------------------------


@functools.lru_cache(maxsize=256)
def _generated_program(
    benchmark: str, batches: Optional[int], seed: int
) -> tuple[Batch, ...]:
    """Memoised program generation — generation is deterministic in these
    arguments, and returning the *same* tuple object across a sweep's cells
    lets the key hasher reuse its per-program digest."""
    return tuple(benchmark_program(benchmark, batches=batches, seed=seed))


@functools.lru_cache(maxsize=64)
def _generated_from_spec(
    workload: WorkloadSpec, batches: Optional[int], seed: int
) -> tuple[Batch, ...]:
    """Memoised generation for inline workload specs (frozen, hashable)."""
    from repro.workloads.generators import generate_program

    return tuple(generate_program(workload, batches=batches, seed=seed))


def _resolve_program(spec: CellSpec) -> tuple[Batch, ...]:
    if spec.program is not None:
        return spec.program
    if spec.workload is not None:
        return _generated_from_spec(spec.workload, spec.batches, spec.seed)
    return _generated_program(spec.benchmark, spec.batches, spec.seed)


def _simulate_cell(
    program: tuple[Batch, ...],
    policy_name: str,
    machine: MachineConfig,
    seed: int,
    core_levels: Optional[tuple[int, ...]],
    eewa_config: Optional[EEWAConfig],
    policy_params: Optional[tuple[tuple[str, Any], ...]] = None,
    fast_forward: bool = True,
    faults: Optional[FaultSpec] = None,
) -> dict[str, Any]:
    """Run one cell; module-level so worker processes can unpickle it."""
    policy = POLICIES.get(policy_name).build(
        core_levels=core_levels,
        params=dict(policy_params) if policy_params else None,
        config=eewa_config,
    )
    result = simulate(
        program, policy, machine, seed=seed, fast_forward=fast_forward,
        faults=faults,
    )
    wallclock = getattr(policy, "total_adjuster_wallclock", None)
    decisions = getattr(policy, "decisions", None)
    return {
        "engine_version": ENGINE_VERSION,
        "result": result,
        "adjuster_wallclock_s": wallclock() if callable(wallclock) else 0.0,
        "adjuster_decisions": len(decisions) if decisions is not None else 0,
    }


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------


@dataclasses.dataclass
class SweepStats:
    """Cumulative accounting of one :class:`ParallelRunner`'s work."""

    cells: int = 0
    executed: int = 0
    cache_hits: int = 0
    deduplicated: int = 0


class ParallelRunner:
    """Fans (benchmark × policy × seed) cells across processes, cached.

    Parameters
    ----------
    machine:
        Default machine for cells that do not carry their own.
    workers:
        Process count; ``0`` or ``1`` runs in-process (no pool), ``None``
        uses ``os.cpu_count()``.
    cache_dir:
        Cache root directory; ``None`` disables the on-disk cache.
    fast_forward:
        Enable the engine's steady-state batch fast-forward (default).
        ``False`` forces full event-by-event simulation of every cell —
        the ``repro bench --no-fast-forward`` escape hatch. The flag is
        part of every cell's cache key.
    """

    def __init__(
        self,
        *,
        machine: Optional[MachineConfig] = None,
        workers: Optional[int] = None,
        cache_dir: str | os.PathLike[str] | None = DEFAULT_CACHE_DIR,
        fast_forward: bool = True,
    ) -> None:
        self._machine = machine if machine is not None else opteron_8380_machine()
        if workers is not None and workers < 0:
            raise ConfigurationError("workers must be non-negative")
        self._workers = workers
        self._cache = ResultCache(cache_dir) if cache_dir is not None else None
        self._fast_forward = fast_forward
        self.stats = SweepStats()

    # -- core fan-out ---------------------------------------------------

    def run_cells(self, specs: Sequence[CellSpec]) -> list[CellOutcome]:
        """Run every cell, in parallel where possible, and keep order.

        Cells with identical content keys are simulated once; cached cells
        are never submitted to the pool at all.
        """
        self.stats.cells += len(specs)
        jobs: list[tuple[CellSpec, str, tuple]] = []
        payloads: dict[str, dict[str, Any]] = {}
        hit_keys: set[str] = set()
        for spec in specs:
            machine = spec.machine if spec.machine is not None else self._machine
            program = _resolve_program(spec)
            key = cell_key(
                program, spec.policy, machine, spec.seed,
                core_levels=spec.core_levels, eewa_config=spec.eewa_config,
                policy_params=spec.policy_params,
                fast_forward=self._fast_forward,
                faults=spec.faults,
            )
            if key in payloads:
                self.stats.deduplicated += 1
                jobs.append((spec, key, ()))
                continue
            cached = self._cache.get(key) if self._cache is not None else None
            if cached is not None:
                self.stats.cache_hits += 1
                hit_keys.add(key)
                payloads[key] = cached
                jobs.append((spec, key, ()))
                continue
            args = (
                program, spec.policy, machine, spec.seed,
                spec.core_levels, spec.eewa_config, spec.policy_params,
                self._fast_forward, spec.faults,
            )
            payloads[key] = {}  # claimed; filled below
            jobs.append((spec, key, args))

        pending = [(key, args) for _, key, args in jobs if args]
        self.stats.executed += len(pending)
        for key, payload in zip(
            [k for k, _ in pending], self._execute([a for _, a in pending])
        ):
            payloads[key] = payload
            if self._cache is not None:
                self._cache.put(key, payload)

        return [
            CellOutcome(
                spec=spec,
                key=key,
                result=payloads[key]["result"],
                from_cache=key in hit_keys,
                adjuster_wallclock_s=payloads[key]["adjuster_wallclock_s"],
                adjuster_decisions=payloads[key]["adjuster_decisions"],
            )
            for spec, key, _ in jobs
        ]

    def _execute(self, argsets: list[tuple]) -> list[dict[str, Any]]:
        if not argsets:
            return []
        workers = self._workers
        if workers is None:
            workers = os.cpu_count() or 1
        workers = min(workers, len(argsets))
        if workers <= 1:
            return [_simulate_cell(*args) for args in argsets]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_simulate_cell, *zip(*argsets)))

    # -- run_benchmark-shaped conveniences ------------------------------

    def run_many(self, requests: Sequence[BenchRequest]) -> list[RunOutcome]:
        """All requests' cells in one fan-out, regrouped per request."""
        cells: list[CellSpec] = []
        counts: list[int] = []
        for request in requests:
            request_cells = request.cells()
            counts.append(len(request_cells))
            cells.extend(request_cells)
        outcomes = self.run_cells(cells)
        grouped: list[RunOutcome] = []
        pos = 0
        for request, count in zip(requests, counts):
            chunk = outcomes[pos : pos + count]
            pos += count
            grouped.append(
                RunOutcome(
                    benchmark=request.benchmark,
                    policy=request.policy,
                    results=tuple(c.result for c in chunk),
                )
            )
        return grouped

    def run_benchmark(
        self,
        benchmark: str,
        policy: str,
        *,
        batches: Optional[int] = None,
        seeds: Sequence[int] = DEFAULT_SEEDS,
        core_levels: Optional[Sequence[int]] = None,
        eewa_config: Optional[EEWAConfig] = None,
        machine: Optional[MachineConfig] = None,
    ) -> RunOutcome:
        """Drop-in parallel/cached equivalent of ``runner.run_benchmark``."""
        (outcome,) = self.run_many(
            [
                BenchRequest(
                    benchmark=benchmark,
                    policy=policy,
                    batches=batches,
                    seeds=tuple(seeds),
                    core_levels=None if core_levels is None else tuple(core_levels),
                    eewa_config=eewa_config,
                    machine=machine,
                )
            ]
        )
        return outcome

    def modal_eewa_levels(
        self,
        benchmark: str,
        *,
        batches: Optional[int] = None,
        seed: int = DEFAULT_SEEDS[0],
        eewa_config: Optional[EEWAConfig] = None,
        machine: Optional[MachineConfig] = None,
    ) -> list[int]:
        """Cached equivalent of ``runner.modal_eewa_levels`` — shares its
        cell (and therefore its cache entry) with any plain EEWA run of the
        same benchmark and seed."""
        (outcome,) = self.run_cells(
            [
                CellSpec(
                    benchmark=benchmark, policy="eewa", seed=seed,
                    batches=batches, eewa_config=eewa_config, machine=machine,
                )
            ]
        )
        resolved = machine if machine is not None else self._machine
        return modal_levels_from_result(outcome.result, resolved.num_cores)
