"""Hypothesis property tests on the EEWA core data structures."""

import math

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.cc_table import build_cc_table
from repro.core.cgroups import build_cgroup_plan
from repro.core.ktuple import default_power_estimate, exhaustive_search, search_ktuple
from repro.core.preference import preference_order
from repro.core.profiler import OnlineProfiler, TaskClassStats
from repro.machine.frequency import FrequencyScale, opteron_8380_scale

# -- strategies ---------------------------------------------------------------

scales = st.integers(min_value=2, max_value=5).flatmap(
    lambda r: st.just(
        FrequencyScale(tuple(3.0e9 * (0.7**i) for i in range(r)))
    )
)

class_lists = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=60),  # count
        st.floats(min_value=1e-4, max_value=5e-2),  # mean seconds
    ),
    min_size=1,
    max_size=5,
)


def make_classes(raw):
    stats = [
        TaskClassStats(function=f"c{i}", count=n, mean_workload=w)
        for i, (n, w) in enumerate(raw)
    ]
    stats.sort(key=lambda c: (-c.mean_workload, c.function))
    return stats


# -- CC table -----------------------------------------------------------------


@given(scales, class_lists, st.floats(min_value=5e-3, max_value=0.5))
def test_cc_rows_scale_with_slowdown_fluid(scale, raw, ideal):
    classes = make_classes(raw)
    table = build_cc_table(classes, scale, ideal, mode="fluid")
    for j in range(scale.r):
        assert np.allclose(table.row(j), table.row(0) * scale.slowdown(j))


@given(scales, class_lists, st.floats(min_value=5e-3, max_value=0.5))
def test_discrete_dominates_fluid(scale, raw, ideal):
    """Granularity can only *increase* core demand, never reduce it —
    except for the F_0 clamp, which caps at ceil(fluid) or the task count."""
    classes = make_classes(raw)
    fluid = build_cc_table(classes, scale, ideal, mode="fluid")
    disc = build_cc_table(classes, scale, ideal, mode="discrete", headroom=0.0)
    for j in range(1, scale.r):
        for i in range(fluid.k):
            assert disc[j, i] >= fluid[j, i] - 1e-9


# -- k-tuple search -----------------------------------------------------------


@given(scales, class_lists, st.integers(min_value=1, max_value=64))
@settings(max_examples=150)
def test_ktuple_feasibility_and_monotonicity(scale, raw, cores):
    classes = make_classes(raw)
    table = build_cc_table(classes, scale, ideal_time=0.05, mode="fluid")
    solution = search_ktuple(table, cores)
    if solution is None:
        # Infeasible means even all-fastest overflows.
        assert table.fastest_row_total() > cores
    else:
        assert solution.total_cores <= cores + 1e-6
        assert solution.is_monotone()


@given(scales, class_lists, st.integers(min_value=1, max_value=40))
@settings(max_examples=80)
def test_backtracking_agrees_with_exhaustive_on_feasibility(scale, raw, cores):
    classes = make_classes(raw)
    table = build_cc_table(classes, scale, ideal_time=0.05, mode="fluid")
    bt = search_ktuple(table, cores)
    ex = exhaustive_search(table, cores)
    assert (bt is None) == (ex is None)
    if bt is not None and ex is not None:
        estimate = default_power_estimate(table, cores)
        assert estimate(ex) <= estimate(bt) + 1e-9


# -- c-groups -----------------------------------------------------------------


@given(scales, class_lists, st.integers(min_value=2, max_value=64))
@settings(max_examples=100)
def test_cgroup_plan_partitions_cores(scale, raw, cores):
    classes = make_classes(raw)
    table = build_cc_table(classes, scale, ideal_time=0.05, mode="fluid")
    solution = search_ktuple(table, cores)
    assume(solution is not None)
    plan = build_cgroup_plan(solution, table, cores)
    # Every core in exactly one group; levels consistent; classes mapped.
    seen = sorted(cid for g in plan.groups for cid in g.core_ids)
    assert seen == list(range(cores))
    assert len(plan.core_levels) == cores
    for g in plan.groups:
        for cid in g.core_ids:
            assert plan.core_levels[cid] == g.level
            assert plan.group_of_core[cid] == g.index
    assert set(plan.class_to_group) == set(table.class_names)
    assert all(0 <= g < plan.num_groups for g in plan.class_to_group.values())
    # Groups are fastest-first.
    levels = [g.level for g in plan.groups]
    assert levels == sorted(levels)


# -- preference lists ---------------------------------------------------------


@given(st.integers(min_value=1, max_value=12))
def test_preference_orders_partition(u):
    for i in range(u):
        order = preference_order(i, u)
        assert sorted(order) == list(range(u))
        assert order[0] == i
        weaker = [g for g in order if g > i]
        assert weaker == sorted(weaker)
        stronger = [g for g in order if g < i]
        assert stronger == sorted(stronger, reverse=True)


# -- profiler -----------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c"]),
            st.floats(min_value=1e-6, max_value=1.0),
            st.integers(min_value=0, max_value=3),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_profiler_mean_matches_batch_mean(observations):
    profiler = OnlineProfiler(scale=opteron_8380_scale())
    for fn, t, level in observations:
        profiler.observe(fn, t, level)
    # Recompute per-class means directly and compare.
    scale = opteron_8380_scale()
    for fn in {o[0] for o in observations}:
        ws = [t * scale.relative_speed(lv) for f, t, lv in observations if f == fn]
        stats = profiler.get_class(fn)
        assert stats.count == len(ws)
        assert math.isclose(stats.mean_workload, sum(ws) / len(ws), rel_tol=1e-9)
    total = sum(c.total_workload for c in profiler.classes_by_workload())
    everything = [
        t * scale.relative_speed(lv) for _, t, lv in observations
    ]
    assert math.isclose(total, sum(everything), rel_tol=1e-9)
