"""Regenerate the long-horizon golden fixture (``golden_longhorizon.json``).

Run from the repo root::

    PYTHONPATH=src python tests/sim/golden_longhorizon_gen.py

Unlike ``golden_gen.py`` (jittered paper benchmarks, 3 batches), these
cells are 120 strictly periodic batches on the dyadic test machine — the
shape that actually *engages* steady-state fast-forward. The fixture pins,
per policy × seed, the result scalars, the full trace fingerprint, and the
number of batches replayed, all captured from a fast-forwarding run; the
test additionally re-runs every cell with ``fast_forward=False`` and
requires bitwise agreement, so the pins prove long-horizon replay fidelity
rather than merely determinism.
"""

from __future__ import annotations

import json
import pathlib

from repro.core.adjuster import OverheadModel
from repro.core.eewa import EEWAConfig, EEWAScheduler
from repro.machine.topology import dyadic_test_machine
from repro.runtime.cilk import CilkScheduler
from repro.runtime.cilk_d import CilkDScheduler
from repro.runtime.wats import WATSScheduler
from repro.sim.engine import simulate
from repro.sim.fingerprint import result_scalars, trace_fingerprint
from repro.workloads.periodic import periodic_program

FIXTURE = pathlib.Path(__file__).parent / "golden_longhorizon.json"

SEEDS = (11, 23)
POLICIES = ("cilk", "cilk-d", "wats", "eewa")
BATCHES = 120
WATS_LEVELS_8 = [0, 0, 0, 0, 2, 2, 2, 2]
#: Dyadic adjuster costs: keeps every EEWA overhead addition float-exact.
DYADIC_OVERHEAD = OverheadModel(base_seconds=2.0**-11, per_cell_seconds=2.0**-17)


def make_policy(name: str):
    if name == "cilk":
        return CilkScheduler()
    if name == "cilk-d":
        return CilkDScheduler()
    if name == "wats":
        return WATSScheduler(WATS_LEVELS_8)
    return EEWAScheduler(EEWAConfig(overhead_model=DYADIC_OVERHEAD))


def cells():
    for policy in POLICIES:
        for seed in SEEDS:
            yield policy, seed


def run_cell(policy: str, seed: int, *, fast_forward: bool = True):
    result = simulate(
        periodic_program(BATCHES, 4, 8),
        make_policy(policy),
        dyadic_test_machine(num_cores=8),
        seed=seed,
        fast_forward=fast_forward,
    )
    entry = dict(result_scalars(result))
    entry["fingerprint"] = trace_fingerprint(result)
    entry["batches_fast_forwarded"] = result.batches_fast_forwarded
    return entry


def main() -> None:
    fixture = {
        f"{policy}/seed{seed}": run_cell(policy, seed)
        for policy, seed in cells()
    }
    FIXTURE.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(fixture)} long-horizon golden cells to {FIXTURE}")


if __name__ == "__main__":
    main()
