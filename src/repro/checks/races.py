"""Trace race / lost-task detection over deep simulation traces.

The engine (run with ``record_task_events=True``) emits every task's
lifecycle — CREATE, PUSH, POP, STEAL, EXEC, DONE — plus the c-group plan
governing each moment. This module replays that trace and checks the
exactly-once execution contract and the paper's stealing discipline:

* **EEWA201 double-execution** — a task with two EXEC events. Vector
  clocks over the actors (cores plus the batch launcher) classify the
  pair: *ordered* (a stale reference re-run later) or *concurrent* (a
  true race — two cores holding the same task with no happens-before
  edge between them).
* **EEWA202 lost task** — created but never executed: the batch barrier
  will wait for it forever.
* **EEWA203 acquisition inconsistency** — a POP/STEAL of a task that is
  not queued in any pool at that moment (double-steal, pop-after-steal,
  acquisition of a never-pushed task).
* **EEWA204 unacquired execution** — a pooled task EXECs more times than
  it was acquired from a pool.
* **EEWA205 preference-order violation** — an acquisition from c-group
  pool ``g`` while an earlier group in the thief's rob-the-weaker-first
  preference list still held work. Groups *faster* than the thief's own
  are exempt: the criticality guard (Fig. 1(c)) legitimately skips them.

Pool-level checks (203/204/205) only apply to tasks that appear in pool
events at all, so the detector stays usable on minimal hand-written
policies that schedule from private lists; double-execution and lost
tasks are detected for every policy from the engine-side events alone.

Happens-before edges: per-actor program order; PUSH → acquisition of the
same task (the thief reads the pusher's publication); acquisition → EXEC;
and the batch barrier (every actor → the launcher at each batch start).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.checks.findings import Finding, Severity
from repro.core.preference import preference_order
from repro.sim.trace import (
    LAUNCHER_ACTOR,
    PlanEvent,
    TaskEvent,
    TaskEventKind,
    TraceRecorder,
)

VClock = dict[int, int]


def _tick(clocks: dict[int, VClock], actor: int) -> VClock:
    vc = clocks.setdefault(actor, {})
    vc[actor] = vc.get(actor, 0) + 1
    return dict(vc)


def _join(clocks: dict[int, VClock], actor: int, other: VClock) -> None:
    vc = clocks.setdefault(actor, {})
    for a, t in other.items():
        if vc.get(a, 0) < t:
            vc[a] = t


def vc_leq(a: VClock, b: VClock) -> bool:
    """Componentwise ``a <= b``: the event with clock ``a`` happens-before
    (or equals) the one with clock ``b``."""
    return all(b.get(actor, 0) >= t for actor, t in a.items())


def vc_concurrent(a: VClock, b: VClock) -> bool:
    return not vc_leq(a, b) and not vc_leq(b, a)


@dataclass
class _TaskState:
    created: Optional[TaskEvent] = None
    pushes: list[TaskEvent] = field(default_factory=list)
    acquisitions: list[TaskEvent] = field(default_factory=list)
    execs: list[tuple[TaskEvent, VClock]] = field(default_factory=list)
    #: tasks currently published in some pool (push/acquire balance)
    available: int = 0
    #: clock of the latest unconsumed push, joined into the acquiring actor
    last_push_vc: Optional[VClock] = None

    @property
    def pooled(self) -> bool:
        return bool(self.pushes or self.acquisitions)


def _finding(rule_id: str, label: str, message: str) -> Finding:
    return Finding(
        check="races",
        rule_id=rule_id,
        severity=Severity.ERROR,
        location=label,
        message=message,
    )


def find_trace_races(
    trace: TraceRecorder,
    *,
    label: str = "trace",
    preference_fn: Callable[[int, int], tuple[int, ...]] = preference_order,
) -> list[Finding]:
    """Replay a deep trace and return every contract violation found.

    ``label`` prefixes finding locations (conventionally
    ``"races(<policy>, seed=<seed>)"``). ``preference_fn`` is injectable
    so tests can model-check against alternative orders.
    """
    events: list[TaskEvent | PlanEvent] = sorted(
        list(trace.task_events) + list(trace.plan_events), key=lambda e: e.seq
    )
    findings: list[Finding] = []
    clocks: dict[int, VClock] = {}
    tasks: dict[int, _TaskState] = {}
    plan: Optional[PlanEvent] = None
    #: queued tasks per pool index, summed over all cores' pools
    pool_totals: dict[int, int] = {}

    for event in events:
        if isinstance(event, PlanEvent):
            plan = event
            continue
        state = tasks.setdefault(event.task_id, _TaskState())
        if event.kind is TaskEventKind.CREATE:
            if event.actor == LAUNCHER_ACTOR:
                # Batch barrier: everything before the launch happened-before
                # the launcher's placements.
                for actor in list(clocks):
                    if actor != LAUNCHER_ACTOR:
                        _join(clocks, LAUNCHER_ACTOR, clocks[actor])
            state.created = event
            _tick(clocks, event.actor)
        elif event.kind is TaskEventKind.PUSH:
            state.pushes.append(event)
            state.available += 1
            state.last_push_vc = _tick(clocks, event.actor)
            pool_totals[event.pool_index] = pool_totals.get(event.pool_index, 0) + 1
        elif event.kind in (TaskEventKind.POP, TaskEventKind.STEAL):
            _check_preference(
                event, plan, pool_totals, preference_fn, label, findings
            )
            if state.available <= 0:
                verb = "stolen" if event.kind is TaskEventKind.STEAL else "popped"
                findings.append(
                    _finding(
                        "EEWA203",
                        label,
                        f"task {event.task_id} {verb} by core {event.actor} "
                        f"from pool ({event.pool_core}, {event.pool_index}) "
                        "while queued in no pool (double acquisition or "
                        "unpushed task)",
                    )
                )
            else:
                state.available -= 1
                pool_totals[event.pool_index] = max(
                    0, pool_totals.get(event.pool_index, 0) - 1
                )
            state.acquisitions.append(event)
            _tick(clocks, event.actor)
            if state.last_push_vc is not None:
                _join(clocks, event.actor, state.last_push_vc)
        elif event.kind is TaskEventKind.EXEC:
            if state.pooled and len(state.execs) >= len(state.acquisitions):
                findings.append(
                    _finding(
                        "EEWA204",
                        label,
                        f"task {event.task_id} executed on core {event.actor} "
                        f"without a matching pool acquisition "
                        f"({len(state.acquisitions)} acquisition(s), "
                        f"{len(state.execs) + 1} execution(s))",
                    )
                )
            state.execs.append((event, _tick(clocks, event.actor)))
        elif event.kind is TaskEventKind.DONE:
            _tick(clocks, event.actor)

    for task_id in sorted(tasks):
        state = tasks[task_id]
        if len(state.execs) > 1:
            (e1, vc1), (e2, vc2) = state.execs[0], state.execs[1]
            flavour = (
                "concurrently (no happens-before edge: a true race)"
                if vc_concurrent(vc1, vc2)
                else "again after completing (stale reference re-run)"
            )
            findings.append(
                _finding(
                    "EEWA201",
                    label,
                    f"task {task_id} executed {len(state.execs)} times — "
                    f"cores {e1.actor} and {e2.actor} ran it {flavour}",
                )
            )
        if state.created is not None and not state.execs:
            findings.append(
                _finding(
                    "EEWA202",
                    label,
                    f"task {task_id} was created (actor "
                    f"{state.created.actor}) but never executed — the batch "
                    "barrier waits on it forever",
                )
            )
    return findings


def _check_preference(
    event: TaskEvent,
    plan: Optional[PlanEvent],
    pool_totals: dict[int, int],
    preference_fn: Callable[[int, int], tuple[int, ...]],
    label: str,
    findings: list[Finding],
) -> None:
    """Flag an acquisition that skipped a non-empty earlier-preference group."""
    if plan is None or event.actor == LAUNCHER_ACTOR:
        return  # single-pool policy (or launcher): no preference contract
    if event.actor >= len(plan.group_of_core):
        return
    own = plan.group_of_core[event.actor]
    num_groups = len(plan.group_levels)
    group = event.pool_index
    if not 0 <= group < num_groups:
        return  # stale pool index from an older, larger plan
    prefs = preference_fn(own, num_groups)
    position = prefs.index(group)
    for earlier in prefs[:position]:
        if pool_totals.get(earlier, 0) <= 0:
            continue
        if plan.group_levels[earlier] < plan.group_levels[own]:
            # Strictly faster group: the criticality guard may skip it.
            continue
        findings.append(
            _finding(
                "EEWA205",
                label,
                f"core {event.actor} (group G{own}) acquired from group "
                f"G{group} while preferred group G{earlier} still had "
                f"{pool_totals[earlier]} queued task(s) — violates the "
                "rob-the-weaker-first order "
                f"{prefs}",
            )
        )


# ---------------------------------------------------------------------------
# Shipped-policy battery (the CLI's `repro check` race stage)
# ---------------------------------------------------------------------------


def _registry():
    # Imported lazily: repro.checks is imported by runtime-layer modules,
    # so a module-level registry import would be circular.
    from repro.scenario import registry

    return registry


def shipped_policy_names() -> tuple[str, ...]:
    """Canonical names of every registered policy, in registration order."""
    return _registry().POLICIES.names()


def __getattr__(name: str):
    # Kept as a module attribute for callers that enumerated the battery
    # via ``races.SHIPPED_POLICY_NAMES``; now derived from the registry.
    if name == "SHIPPED_POLICY_NAMES":
        return shipped_policy_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


DEFAULT_RACE_SEEDS = (3, 5, 11)

#: Core count and level count of the battery's test machine.
_BATTERY_CORES = 4
_BATTERY_LEVELS = (2.0e9, 1.5e9, 1.0e9)


def _shipped_factory(name: str):
    registry = _registry()
    entry = registry.POLICIES.get(name)
    levels = (
        registry.spread_levels(_BATTERY_CORES, len(_BATTERY_LEVELS))
        if entry.needs_core_levels
        else None
    )
    return lambda: entry.build(core_levels=levels)


def _battery_programs():
    from repro.runtime.task import TaskSpec, flat_batch

    ref = 2.0e9  # fastest level of the small test machine

    def flat(batches: int, sizes: list[float]):
        return [
            flat_batch(
                i,
                [
                    TaskSpec(f"c{j % 3}", cpu_cycles=s * ref)
                    for j, s in enumerate(sizes)
                ],
            )
            for i in range(batches)
        ]

    return {
        "balanced": flat(2, [0.01] * 12),
        "imbalanced": flat(3, [0.002] * 9 + [0.05]),
    }


def check_shipped_policies(
    *,
    seeds: Sequence[int] = DEFAULT_RACE_SEEDS,
    policies: Optional[Sequence[str]] = None,
) -> list[Finding]:
    """Deep-trace every registered policy across ``seeds`` and race-check it.

    This is the ``races`` stage of ``repro check``: small programs, the
    4-core test machine, every (policy, program, seed) combination. The
    policy list defaults to everything in the registry
    (:data:`repro.scenario.registry.POLICIES`), so plugin policies are
    covered automatically.
    """
    from repro.machine.topology import small_test_machine
    from repro.sim.engine import simulate

    if policies is None:
        policies = shipped_policy_names()
    findings: list[Finding] = []
    programs = _battery_programs()
    for name in policies:
        factory = _shipped_factory(name)
        for program_name, program in sorted(programs.items()):
            for seed in seeds:
                machine = small_test_machine(
                    num_cores=4, levels=(2.0e9, 1.5e9, 1.0e9)
                )
                label = f"races({name}, {program_name}, seed={seed})"
                try:
                    result = simulate(
                        program,
                        factory(),
                        machine,
                        seed=seed,
                        record_task_events=True,
                    )
                except Exception as exc:  # noqa: BLE001 - report, don't crash
                    findings.append(
                        _finding(
                            "EEWA200",
                            label,
                            f"simulation failed: {type(exc).__name__}: {exc}",
                        )
                    )
                    continue
                findings.extend(find_trace_races(result.trace, label=label))
    return findings
