"""FaultSpec validation and JSON round-trips."""

import pytest

from repro.errors import ConfigurationError, ScenarioError
from repro.faults import FAULT_SCHEMA_VERSION, FaultSpec


class TestValidation:
    def test_default_spec_is_inactive(self):
        spec = FaultSpec()
        assert not spec.active

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dvfs_deny_rate": 0.5},
            {"dvfs_delay_rate": 1.0, "dvfs_delay_s": 1e-4},
            {"stall_rate": 0.1, "stall_duration_s": 1e-3},
            {"counter_noise_rate": 0.2, "counter_noise_intensity": 0.1},
        ],
    )
    def test_any_positive_rate_is_active(self, kwargs):
        assert FaultSpec(**kwargs).active

    @pytest.mark.parametrize(
        "field", ["dvfs_deny_rate", "dvfs_delay_rate", "stall_rate", "counter_noise_rate"]
    )
    def test_rates_outside_unit_interval_rejected(self, field):
        with pytest.raises(ConfigurationError, match=r"\[0, 1\]"):
            FaultSpec(**{field: 1.5})
        with pytest.raises(ConfigurationError, match=r"\[0, 1\]"):
            FaultSpec(**{field: -0.1})

    def test_negative_magnitudes_rejected(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            FaultSpec(stall_duration_s=-1.0)

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"dvfs_deny_rate": 0.5, "dvfs_deny_penalty_s": 0.0}, "penalty"),
            ({"dvfs_delay_rate": 0.5}, "dvfs_delay_s"),
            ({"stall_rate": 0.5}, "stall_duration_s"),
            ({"counter_noise_rate": 0.5}, "intensity"),
        ],
    )
    def test_rate_without_magnitude_rejected(self, kwargs, match):
        # A rate with no magnitude would be a silent no-op (or a zero-delay
        # retry storm for denial) — the inconsistent combination must raise.
        with pytest.raises(ConfigurationError, match=match):
            FaultSpec(**kwargs)


class TestSerialisation:
    def test_dict_round_trip(self):
        spec = FaultSpec(
            dvfs_deny_rate=0.3,
            dvfs_deny_penalty_s=2e-4,
            stall_rate=0.05,
            stall_duration_s=1e-3,
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = FaultSpec(counter_noise_rate=0.5, counter_noise_intensity=0.2)
        assert FaultSpec.from_json(spec.to_json()) == spec

    def test_save_load(self, tmp_path):
        spec = FaultSpec(dvfs_delay_rate=1.0, dvfs_delay_s=5e-4)
        path = tmp_path / "faults.json"
        spec.save(path)
        assert FaultSpec.load(path) == spec

    def test_to_dict_is_sparse(self):
        # Only the schema tag and non-default fields are written, so specs
        # stay readable and digests don't churn when defaults gain fields.
        data = FaultSpec(stall_rate=0.1, stall_duration_s=1e-3).to_dict()
        assert data == {
            "schema": FAULT_SCHEMA_VERSION,
            "stall_rate": 0.1,
            "stall_duration_s": 1e-3,
        }

    def test_unknown_field_rejected(self):
        with pytest.raises(ScenarioError, match="unknown fault fields"):
            FaultSpec.from_dict({"stall_rat": 0.1})

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ScenarioError, match="unsupported fault schema"):
            FaultSpec.from_dict({"schema": FAULT_SCHEMA_VERSION + 1})

    def test_non_object_rejected(self):
        with pytest.raises(ScenarioError, match="JSON object"):
            FaultSpec.from_dict([0.5])

    def test_invalid_json_text(self):
        with pytest.raises(ScenarioError, match="invalid fault JSON"):
            FaultSpec.from_json("{not json")

    def test_invalid_values_surface_as_scenario_errors(self):
        # CLI callers catch ScenarioError for bad input files; semantic
        # errors inside an otherwise well-formed spec must map onto it.
        with pytest.raises(ScenarioError, match="invalid fault spec"):
            FaultSpec.from_dict({"dvfs_deny_rate": 2.0})

    def test_missing_file(self, tmp_path):
        with pytest.raises(ScenarioError, match="cannot load fault spec"):
            FaultSpec.load(tmp_path / "absent.json")
