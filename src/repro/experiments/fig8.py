"""Fig. 8 — cores per frequency across the 10 batches of SHA-1.

Paper shape targets: batch 1 runs all 16 cores at the top frequency
(profiling); from batch 2 on, a handful of cores stay fast (the paper shows
5 at 2.5 GHz) while the majority drop to the lowest frequency (11 at
0.8 GHz), and the configuration is stable across batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.eewa import EEWAConfig
from repro.experiments.report import format_table
from repro.machine.topology import MachineConfig
from repro.scenario.session import Session
from repro.scenario.spec import MachineSpec, PolicySpec, ScenarioSpec
from repro.sim.engine import SimResult


@dataclass(frozen=True)
class Fig8Result:
    benchmark: str
    #: per-batch (cores at F0, F1, ..., F_{r-1})
    histograms: tuple[tuple[int, ...], ...]
    frequencies_ghz: tuple[float, ...]
    result: SimResult

    def table(self) -> str:
        headers = ["batch"] + [f"{f:.1f}GHz" for f in self.frequencies_ghz]
        rows = [
            [str(i + 1), *[str(c) for c in hist]]
            for i, hist in enumerate(self.histograms)
        ]
        return format_table(
            headers, rows,
            title=f"Fig. 8 — cores per frequency, {self.benchmark} batches",
        )


def run_fig8(
    *,
    benchmark: str = "SHA-1",
    batches: int = 10,
    machine: Optional[MachineConfig] = None,
    seed: int = 11,
    config: Optional[EEWAConfig] = None,
    parallel: bool = False,
    workers: int | None = None,
    cache_dir: str | None = None,
) -> Fig8Result:
    """Regenerate Fig. 8's per-batch frequency histogram series.

    One EEWA scenario, one seed, through a Session. Fig. 8 is a single
    run, so ``parallel=True`` buys no fan-out — but it routes the run
    through the content-addressed result cache, making repeated
    regeneration (and sharing with other exhibits' EEWA cells) free.
    """
    session = Session.for_experiment(
        parallel=parallel, workers=workers, cache_dir=cache_dir
    )
    spec = ScenarioSpec(
        workload=benchmark,
        policy=PolicySpec("eewa", config=config),
        machine=MachineSpec() if machine is None else MachineSpec.inline(machine),
        seeds=(seed,),
        batches=batches,
    )
    result = session.run_single(spec)
    machine_config = spec.build_machine()
    return Fig8Result(
        benchmark=benchmark,
        histograms=tuple(result.trace.level_histograms()),
        frequencies_ghz=tuple(f / 1e9 for f in machine_config.scale),
        result=result,
    )
