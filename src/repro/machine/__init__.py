"""Simulated machine substrate: operating points, power, cores, energy.

This package replaces the paper's physical testbed (four quad-core AMD
Opteron 8380 processors with per-core DVFS, measured at the wall with a
power meter) with an analytically-modelled machine that exposes exactly the
knobs the EEWA scheduler manipulates: per-core discrete operating points
(a flat frequency ladder on homogeneous machines, per-type ladders on
big.LITTLE-style ones), power that rises superlinearly with frequency, and
energy metering over time.
"""

from repro.machine.counters import PerfCounters, ZERO_MISS_COUNTERS
from repro.machine.core import BUSY_STATES, CoreState, SimCore
from repro.machine.energy import CoreEnergyAccount, EnergyMeter
from repro.machine.frequency import (
    GHZ,
    FrequencyScale,
    opteron_8380_scale,
    uniform_scale,
)
from repro.machine.operating_point import (
    DEFAULT_CORE_TYPE,
    OperatingPoint,
    OperatingPointSpace,
    homogeneous_space,
    space_from_ladders,
)
from repro.machine.power import PowerModel, VoltageCurve, calibrated_power_model
from repro.machine.topology import (
    MachineConfig,
    big_little_test_machine,
    opteron_8380_machine,
    small_test_machine,
)

__all__ = [
    "BUSY_STATES",
    "CoreEnergyAccount",
    "CoreState",
    "DEFAULT_CORE_TYPE",
    "EnergyMeter",
    "FrequencyScale",
    "GHZ",
    "MachineConfig",
    "OperatingPoint",
    "OperatingPointSpace",
    "PerfCounters",
    "PowerModel",
    "SimCore",
    "VoltageCurve",
    "ZERO_MISS_COUNTERS",
    "big_little_test_machine",
    "calibrated_power_model",
    "homogeneous_space",
    "opteron_8380_machine",
    "opteron_8380_scale",
    "small_test_machine",
    "space_from_ladders",
    "uniform_scale",
]
