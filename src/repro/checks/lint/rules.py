"""The repo-specific lint rules.

=======  ========  ===========================================================
ID       scope     contract enforced
=======  ========  ===========================================================
EEWA001  sim+rt    all randomness flows through the ``RngStreams`` registry
EEWA002  sim+rt    the simulator clock is the only clock
EEWA003  sim+rt    no iteration in set order (order is hash-dependent)
EEWA004  core+nrg  no ``==``/``!=`` against float literals (use ``isclose``)
EEWA005  repo      no mutable default arguments
EEWA006  repo      no silently-swallowed exceptions (``except: pass``)
=======  ========  ===========================================================

``sim+rt`` is ``repro/sim/`` and ``repro/runtime/`` — the deterministic
zone whose byte-identical replay the reproducibility tests assert.
``core+nrg`` is ``repro/core/`` and ``repro/machine/energy.py`` — the
scheduler math where float equality is always a latent epsilon bug.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.checks.findings import Severity
from repro.checks.lint import FileContext, Rule


def _in_deterministic_zone(path: str) -> bool:
    return "repro/sim/" in path or "repro/runtime/" in path


def _in_float_zone(path: str) -> bool:
    return "repro/core/" in path or path.endswith("repro/machine/energy.py")


#: ``random`` module-level functions that draw from (or mutate) the hidden
#: global Mersenne Twister state.
_GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "random", "uniform", "randint", "randrange", "choice", "choices",
        "shuffle", "sample", "betavariate", "expovariate", "gammavariate",
        "gauss", "lognormvariate", "normalvariate", "paretovariate",
        "triangular", "vonmisesvariate", "weibullvariate", "seed",
        "getrandbits", "setstate", "randbytes",
    }
)

#: ``numpy.random`` attributes that are fine to use: constructing an
#: explicitly-seeded generator is the sanctioned escape hatch.
_NUMPY_RANDOM_OK = frozenset({"default_rng", "Generator", "SeedSequence", "PCG64"})


class UnseededRandomnessRule(Rule):
    """EEWA001: global-state randomness inside the deterministic zone.

    ``random.<draw>()``, bare ``random.Random()`` (unseeded -> OS entropy),
    and ``numpy.random.<anything stateful>`` all bypass the named
    :class:`~repro.sim.rng.RngStreams` registry, breaking byte-identical
    replay. ``random.Random(seed)`` with an explicit seed is allowed — it
    is how the registry itself constructs streams.
    """

    id = "EEWA001"
    severity = Severity.ERROR
    description = "unseeded / global-state randomness in sim or runtime code"

    def applies_to(self, path: str) -> bool:
        return _in_deterministic_zone(path)

    def check_node(self, node: ast.AST, ctx: FileContext) -> Iterable[tuple[ast.AST, str]]:
        if not isinstance(node, ast.Call):
            return
        target = ctx.imports.resolve_call_target(node.func)
        if target is None:
            return
        if target.startswith("numpy.random."):
            tail = target.split(".")[-1]
            if tail not in _NUMPY_RANDOM_OK:
                yield node, (
                    f"{target}() uses numpy's global RNG state; draw from the "
                    "run's RngStreams registry (or an explicit "
                    "numpy.random.default_rng(seed))"
                )
            return
        if target == "random.Random":
            if not node.args and not node.keywords:
                yield node, (
                    "bare random.Random() seeds from OS entropy; derive the "
                    "seed through RngStreams/derive_seed instead"
                )
            return
        if target.startswith("random.") and target.split(".")[1] in _GLOBAL_RANDOM_FUNCS:
            yield node, (
                f"{target}() draws from the global RNG; route the draw "
                "through the run's named RngStreams registry"
            )


#: Wall-clock call targets. ``time.process_time``/``perf_counter`` are just
#: as non-reproducible as ``time.time`` for simulation logic.
_WALL_CLOCK_TARGETS = frozenset(
    {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)


class WallClockRule(Rule):
    """EEWA002: wall-clock reads inside the deterministic zone.

    Simulated components must use ``ctx.now()`` (the event-queue clock);
    any host-clock read makes traces differ run to run.
    """

    id = "EEWA002"
    severity = Severity.ERROR
    description = "wall-clock call in sim or runtime code"

    def applies_to(self, path: str) -> bool:
        return _in_deterministic_zone(path)

    def check_node(self, node: ast.AST, ctx: FileContext) -> Iterable[tuple[ast.AST, str]]:
        if not isinstance(node, ast.Call):
            return
        target = ctx.imports.resolve_call_target(node.func)
        if target in _WALL_CLOCK_TARGETS:
            yield node, (
                f"{target}() reads the host clock; simulation code must use "
                "the engine's now()"
            )


def _is_set_expression(node: ast.expr, ctx: FileContext) -> bool:
    """Syntactically-evident set expressions: literals, comprehensions,
    and ``set(...)`` / ``frozenset(...)`` constructor calls."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset") and node.func.id not in ctx.imports.names:
            return True
    return False


class SetIterationOrderRule(Rule):
    """EEWA003: iterating a set in hash order inside the deterministic zone.

    Set iteration order depends on element hashes and (for strings) on
    ``PYTHONHASHSEED`` — any decision made in that order is
    non-reproducible. Wrap the set in ``sorted(...)`` or keep a list.
    ``sorted``/``min``/``max``/``sum``/``len``/``any``/``all`` over a set
    are order-insensitive and allowed.
    """

    id = "EEWA003"
    severity = Severity.ERROR
    description = "set-iteration-order hazard in sim or runtime code"

    #: Call heads that consume their iterable order-sensitively.
    _ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "iter", "next"})

    def applies_to(self, path: str) -> bool:
        return _in_deterministic_zone(path)

    def check_node(self, node: ast.AST, ctx: FileContext) -> Iterable[tuple[ast.AST, str]]:
        if isinstance(node, ast.For) and _is_set_expression(node.iter, ctx):
            yield node.iter, "for-loop iterates a set in hash order; sort it first"
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)):
            for comp in node.generators:
                if _is_set_expression(comp.iter, ctx):
                    yield comp.iter, (
                        "comprehension iterates a set in hash order; sort it first"
                    )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in self._ORDER_SENSITIVE_CALLS and node.args:
                if _is_set_expression(node.args[0], ctx):
                    yield node, (
                        f"{node.func.id}() over a set preserves hash order; "
                        "use sorted(...) instead"
                    )


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    return False


class FloatEqualityRule(Rule):
    """EEWA004: ``==``/``!=`` against a float literal in scheduler math.

    Core-count tables, k-tuple scores and energy integrals are all chains
    of float arithmetic; exact comparison against a literal is a latent
    epsilon bug. Use ``math.isclose`` or an explicit tolerance.
    """

    id = "EEWA004"
    severity = Severity.ERROR
    description = "float-literal equality comparison in core/energy code"

    def applies_to(self, path: str) -> bool:
        return _in_float_zone(path)

    def check_node(self, node: ast.AST, ctx: FileContext) -> Iterable[tuple[ast.AST, str]]:
        if not isinstance(node, ast.Compare):
            return
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_float_literal(left) or _is_float_literal(right):
                yield node, (
                    "exact ==/!= against a float literal; use math.isclose "
                    "or an explicit epsilon"
                )


#: Calls producing fresh mutable containers are *valid* defaults only when
#: the author writes them out per call — as a default they are shared.
_MUTABLE_DEFAULT_CALLS = frozenset(
    {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque", "bytearray"}
)


class MutableDefaultRule(Rule):
    """EEWA005: mutable default argument (shared across calls)."""

    id = "EEWA005"
    severity = Severity.ERROR
    description = "mutable default argument"

    def check_node(self, node: ast.AST, ctx: FileContext) -> Iterable[tuple[ast.AST, str]]:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
            ):
                yield default, (
                    f"mutable default in {node.name}(): shared across calls; "
                    "default to None and construct inside"
                )
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_DEFAULT_CALLS
            ):
                yield default, (
                    f"mutable default {default.func.id}() in {node.name}(): "
                    "evaluated once at def time; default to None instead"
                )


class SilentExceptRule(Rule):
    """EEWA006: an ``except`` whose entire body is ``pass``.

    Swallowing an exception hides the scheduler-invariant violations this
    whole checks subsystem exists to surface. Either handle the error,
    re-raise, or record why ignoring it is safe (and suppress this rule
    on that line).
    """

    id = "EEWA006"
    severity = Severity.ERROR
    description = "silently swallowed exception (except: pass)"

    def check_node(self, node: ast.AST, ctx: FileContext) -> Iterable[tuple[ast.AST, str]]:
        if not isinstance(node, ast.ExceptHandler):
            return
        body_is_silent = all(
            isinstance(stmt, ast.Pass)
            or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis)
            for stmt in node.body
        )
        if body_is_silent:
            caught = ast.unparse(node.type) if node.type is not None else "everything"
            yield node, (
                f"exception handler for {caught} silently passes; handle, "
                "re-raise, or justify with a suppression comment"
            )


def default_rules() -> list[Rule]:
    """The full repo rule set, one instance per rule."""
    return [
        UnseededRandomnessRule(),
        WallClockRule(),
        SetIterationOrderRule(),
        FloatEqualityRule(),
        MutableDefaultRule(),
        SilentExceptRule(),
    ]


#: ID -> rule class, for documentation and tests.
RULES_BY_ID = {
    rule.id: type(rule) for rule in default_rules()
}
