"""Maintenance tooling for the sharded result cache (``repro cache``).

Three operations over a :class:`~repro.experiments.parallel.ResultCache`
root, none of which ever touch simulation semantics (cache keys are
content-addressed, so removal can only cause re-simulation, never wrong
results):

* :func:`cache_stats` — entry/byte counts, shard distribution, and how
  much of the cache is packed vs loose;
* :func:`prune` — evict entries older than ``max_age_days`` and/or the
  oldest entries beyond ``max_bytes``;
* :func:`migrate` — fold a flat pre-shard layout into the sharded one and
  compact every shard's loose entries into its packed index.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Optional

from repro.experiments.parallel import ResultCache


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """One snapshot of a cache root."""

    root: str
    entries: int
    loose_entries: int
    packed_entries: int
    total_bytes: int
    shards: int
    min_shard_entries: int
    max_shard_entries: int
    mean_shard_entries: float

    def summary(self) -> str:
        lines = [
            f"cache {self.root}",
            f"  entries: {self.entries} "
            f"({self.packed_entries} packed, {self.loose_entries} loose)",
            f"  bytes:   {self.total_bytes}",
            f"  shards:  {self.shards}",
        ]
        if self.shards:
            lines.append(
                "  entries/shard: "
                f"min {self.min_shard_entries}, "
                f"max {self.max_shard_entries}, "
                f"mean {self.mean_shard_entries:.1f}"
            )
        return "\n".join(lines)


@dataclasses.dataclass(frozen=True)
class PruneResult:
    removed: int
    kept: int
    bytes_freed: int

    def summary(self) -> str:
        return (
            f"pruned {self.removed} entries ({self.bytes_freed} bytes), "
            f"{self.kept} kept"
        )


@dataclasses.dataclass(frozen=True)
class MigrateResult:
    moved_flat: int
    packed: int

    def summary(self) -> str:
        return (
            f"migrated {self.moved_flat} flat entries into shards, "
            f"packed {self.packed} loose entries into shard indexes"
        )


def _entry_map(cache: ResultCache) -> dict[str, tuple[float, int]]:
    """Distinct keys → (newest mtime, bytes). Loose overrides pack."""
    entries: dict[str, tuple[float, int]] = {}
    for info in cache.iter_entries():
        seen = entries.get(info.key)
        if seen is None or info.mtime >= seen[0]:
            entries[info.key] = (info.mtime, info.nbytes)
    return entries


def cache_stats(root: str | os.PathLike[str]) -> CacheStats:
    cache = ResultCache(root)
    loose = 0
    packed = 0
    per_shard: dict[str, int] = {}
    keys: dict[str, tuple[float, int]] = {}
    for info in cache.iter_entries():
        if info.key not in keys:
            per_shard[info.key[:2]] = per_shard.get(info.key[:2], 0) + 1
            if info.source == "pack":
                packed += 1
            else:
                loose += 1
        seen = keys.get(info.key)
        if seen is None or info.mtime >= seen[0]:
            keys[info.key] = (info.mtime, info.nbytes)
    counts = list(per_shard.values())
    return CacheStats(
        root=str(root),
        entries=len(keys),
        loose_entries=loose,
        packed_entries=packed,
        total_bytes=sum(nbytes for _, nbytes in keys.values()),
        shards=len(counts),
        min_shard_entries=min(counts) if counts else 0,
        max_shard_entries=max(counts) if counts else 0,
        mean_shard_entries=(sum(counts) / len(counts)) if counts else 0.0,
    )


def prune(
    root: str | os.PathLike[str],
    *,
    max_age_days: Optional[float] = None,
    max_bytes: Optional[int] = None,
    now: Optional[float] = None,
) -> PruneResult:
    """Evict stale and/or excess entries, oldest first.

    ``max_age_days`` removes entries whose newest copy is older than the
    cutoff; ``max_bytes`` then evicts the oldest remaining entries until
    the cache fits. Either bound may be given alone.
    """
    cache = ResultCache(root)
    entries = _entry_map(cache)
    now = time.time() if now is None else now

    victims: set[str] = set()
    if max_age_days is not None:
        cutoff = now - max_age_days * 86400.0
        victims.update(k for k, (mtime, _) in entries.items() if mtime < cutoff)
    if max_bytes is not None:
        kept = [
            (mtime, key, nbytes)
            for key, (mtime, nbytes) in entries.items()
            if key not in victims
        ]
        total = sum(nbytes for _, _, nbytes in kept)
        for mtime, key, nbytes in sorted(kept):
            if total <= max_bytes:
                break
            victims.add(key)
            total -= nbytes

    bytes_freed = sum(entries[k][1] for k in victims)
    cache.remove_keys(victims)
    return PruneResult(
        removed=len(victims),
        kept=len(entries) - len(victims),
        bytes_freed=bytes_freed,
    )


def migrate(root: str | os.PathLike[str]) -> MigrateResult:
    """Flat→sharded layout migration plus shard compaction, idempotent."""
    cache = ResultCache(root)  # __init__ already moves flat entries
    moved = cache.migrated_flat + cache.migrate_flat()  # + any stragglers
    packed = cache.compact()
    return MigrateResult(moved_flat=moved, packed=packed)


__all__ = [
    "CacheStats",
    "MigrateResult",
    "PruneResult",
    "cache_stats",
    "migrate",
    "prune",
]
