"""Tests for the criticality guard on cross-group stealing.

The guard is this reproduction's task-level Fig. 1(c) protection: a slow
core must not steal a task that cannot finish within the iteration budget
at its speed.
"""

from repro.core.eewa import EEWAScheduler
from repro.machine.topology import opteron_8380_machine
from repro.runtime.task import TaskSpec, flat_batch
from repro.sim.engine import simulate

REF = 2.5e9


def spilling_program(batches=6):
    """Anchor class sized so EEWA dedicates exactly 5 fast cores, with an
    occasional 6th anchor task that must NOT land on a 0.8 GHz core."""
    out = []
    for i in range(batches):
        anchors = 6 if i in (2, 4) else 5
        specs = [TaskSpec("anchor", cpu_cycles=0.05 * REF) for _ in range(anchors)]
        specs += [TaskSpec("small", cpu_cycles=0.0015 * REF) for _ in range(40)]
        out.append(flat_batch(i, specs))
    return out


class TestCriticalityGuard:
    def test_anchor_tasks_never_run_on_slowest_cores(self):
        machine = opteron_8380_machine()
        result = simulate(spilling_program(), EEWAScheduler(), machine, seed=1)
        slowest = machine.scale.slowest_index
        for task in result.tasks:
            if task.function == "anchor" and task.batch_index >= 1:
                assert task.executed_level != slowest, task

    def test_guard_counts_skipped_steals(self):
        machine = opteron_8380_machine()
        policy = EEWAScheduler()
        simulate(spilling_program(), policy, machine, seed=1)
        assert policy.stats.extra.get("guarded_steals", 0) > 0

    def test_small_tasks_still_stealable_by_slow_cores(self):
        """The guard is per-group, keyed by the heaviest class — the small
        class's group remains fair game for everyone."""
        machine = opteron_8380_machine()
        result = simulate(spilling_program(), EEWAScheduler(), machine, seed=1)
        slowest = machine.scale.slowest_index
        small_on_slow = [
            t
            for t in result.tasks
            if t.function == "small"
            and t.batch_index >= 1
            and t.executed_level == slowest
        ]
        assert small_on_slow  # slow cores did useful small work

    def test_spill_batches_bounded(self):
        """A +1-anchor batch costs at most one extra anchor serialisation,
        not a slow-core execution (which would be 3.1x the anchor time)."""
        machine = opteron_8380_machine()
        result = simulate(spilling_program(), EEWAScheduler(), machine, seed=1)
        durations = {b.batch_index: b.duration for b in result.trace.batches}
        normal = durations[3]
        spill = durations[2]
        # Worst acceptable: two anchors back-to-back on one fast core plus
        # slack — far below an anchor at 0.8 GHz (0.157s).
        assert spill < 2.4 * normal
        anchor_at_slowest = 0.05 * machine.scale.slowdown(3)
        assert spill < normal + anchor_at_slowest


class TestGuardDisarmed:
    def test_batch_zero_has_no_guard(self):
        """Profiling batch: single group, nothing to guard."""
        machine = opteron_8380_machine()
        policy = EEWAScheduler()
        program = spilling_program(batches=1)
        simulate(program, policy, machine, seed=1)
        assert policy.stats.extra.get("guarded_steals", 0) == 0
