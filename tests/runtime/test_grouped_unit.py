"""Direct unit tests for GroupedStealingPolicy internals (placement,
preference traversal, guard arming) using a scripted context."""

import pytest

from repro.core.cgroups import CGroup, CGroupPlan
from repro.machine.topology import small_test_machine
from repro.runtime.grouped import GroupedStealingPolicy
from repro.runtime.policy import RunTask, Wait
from repro.runtime.task import TaskFactory, TaskSpec, flat_batch


class ScriptedContext:
    """Minimal RuntimeContext with deterministic 'random' choices."""

    def __init__(self, machine):
        self.machine = machine
        self._now = 0.0

    def now(self):
        return self._now

    def core_level(self, core_id):
        return 0

    def requested_level(self, core_id):
        return 0

    def rng_choice(self, stream, options):
        return options[0]

    def rng_shuffled(self, stream, options):
        return list(options)


class ConcreteGrouped(GroupedStealingPolicy):
    name = "grouped-test"


def two_group_plan():
    """Cores 0-1 fast (G0), cores 2-3 slow (G1); class a->G0, b->G1."""
    return CGroupPlan(
        core_levels=(0, 0, 1, 1),
        groups=(
            CGroup(index=0, level=0, core_ids=(0, 1)),
            CGroup(index=1, level=1, core_ids=(2, 3)),
        ),
        class_to_group={"a": 0, "b": 1},
        group_of_core=(0, 0, 1, 1),
    )


@pytest.fixture
def policy():
    machine = small_test_machine(num_cores=4)
    pol = ConcreteGrouped()
    pol.bind(ScriptedContext(machine))
    pol._install_plan(two_group_plan())
    return pol


def make_tasks(*functions):
    factory = TaskFactory()
    return [factory.make(TaskSpec(fn, cpu_cycles=1e6), 0) for fn in functions]


class TestPlacement:
    def test_classes_land_in_their_groups(self, policy):
        tasks = make_tasks("a", "a", "b", "b")
        policy.on_batch_start(flat_batch(0, [t.spec for t in tasks]), tasks)
        grid = policy._grid
        assert grid.queued_in_pool_index(0) == 2
        assert grid.queued_in_pool_index(1) == 2
        # Group placement round-robins across the group's cores.
        assert grid.local_len(0, 0) == 1 and grid.local_len(1, 0) == 1
        assert grid.local_len(2, 1) == 1 and grid.local_len(3, 1) == 1

    def test_unknown_class_to_fastest_group(self, policy):
        tasks = make_tasks("mystery")
        policy.on_batch_start(flat_batch(0, [tasks[0].spec]), tasks)
        assert policy._grid.queued_in_pool_index(0) == 1

    def test_spawn_lands_on_spawning_core(self, policy):
        (task,) = make_tasks("b")
        policy.on_spawn(3, task)
        assert policy._grid.local_len(3, 1) == 1


class TestAcquisition:
    def test_local_pop_preferred(self, policy):
        tasks = make_tasks("a", "a")
        policy.on_batch_start(flat_batch(0, [t.spec for t in tasks]), tasks)
        action = policy.next_action(0)
        assert isinstance(action, RunTask)
        assert policy.stats.local_pops == 1
        assert policy.stats.tasks_stolen == 0

    def test_in_group_steal_before_cross_group(self, policy):
        (task,) = make_tasks("a")
        policy._grid.push(1, 0, task)  # only core 1 (same group) has work
        action = policy.next_action(0)
        assert isinstance(action, RunTask)
        assert policy.stats.tasks_stolen == 1
        assert policy.stats.cross_group_steals == 0

    def test_cross_group_escalation_when_group_drained(self, policy):
        (task,) = make_tasks("b")
        policy._grid.push(2, 1, task)  # only the slow group has work
        action = policy.next_action(0)  # fast core escalates to G1
        assert isinstance(action, RunTask)
        assert policy.stats.cross_group_steals == 1

    def test_wait_when_everything_empty(self, policy):
        action = policy.next_action(0)
        assert isinstance(action, Wait)
        assert policy.stats.failed_scans == 1


class TestGuardArming:
    def test_unarmed_without_workloads(self, policy):
        # Fast-class work queued; a SLOW core may take it when unguarded.
        (task,) = make_tasks("a")
        policy._grid.push(0, 0, task)
        action = policy.next_action(2)
        assert isinstance(action, RunTask)

    def test_armed_guard_blocks_oversized_uphill_steal(self, policy):
        policy._install_plan(
            two_group_plan(),
            class_workloads={"a": 0.09, "b": 0.001},
            ideal_time=0.1,
        )
        # class a at the slow level (2 GHz -> 1 GHz: slowdown 2) would take
        # 0.18 > T=0.1: slow cores must skip group 0.
        (task,) = make_tasks("a")
        policy._grid.push(0, 0, task)
        action = policy.next_action(2)
        assert isinstance(action, Wait)
        assert policy.stats.extra["guarded_steals"] >= 1
        # A fast core still takes it.
        action = policy.next_action(1)
        assert isinstance(action, RunTask)

    def test_armed_guard_allows_small_classes(self, policy):
        policy._install_plan(
            two_group_plan(),
            class_workloads={"a": 0.01, "b": 0.001},
            ideal_time=0.1,
        )
        (task,) = make_tasks("a")
        policy._grid.push(0, 0, task)
        action = policy.next_action(2)  # 0.02 <= 0.1: fine
        assert isinstance(action, RunTask)
