"""Fig. 6 — normalised time and energy of all benchmarks under
Cilk, Cilk-D and EEWA on the 16-core machine.

Paper shape targets: EEWA cuts energy 8.7-29.8% below Cilk with at most a
few percent time change; Cilk-D sits between the two on energy
(6.7-12.8% below Cilk); for most applications EEWA's time penalty is
within ~2%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.metrics import energy_reduction_percent
from repro.experiments.report import format_table
from repro.experiments.runner import DEFAULT_SEEDS, run_benchmark
from repro.machine.topology import MachineConfig
from repro.workloads.benchmarks import BENCHMARK_NAMES

POLICIES = ("cilk", "cilk-d", "eewa")


@dataclass(frozen=True)
class Fig6Row:
    """One benchmark's normalised metrics (Cilk = 1.0)."""

    benchmark: str
    time_cilk: float
    time_cilk_d: float
    time_eewa: float
    energy_cilk: float
    energy_cilk_d: float
    energy_eewa: float

    @property
    def eewa_energy_reduction_pct(self) -> float:
        return 100.0 * (1.0 - self.energy_eewa)

    @property
    def eewa_time_change_pct(self) -> float:
        return 100.0 * (self.time_eewa - 1.0)

    @property
    def cilk_d_energy_reduction_pct(self) -> float:
        return 100.0 * (1.0 - self.energy_cilk_d)


@dataclass(frozen=True)
class Fig6Result:
    rows: tuple[Fig6Row, ...]

    def table(self) -> str:
        return format_table(
            [
                "benchmark",
                "t(cilk)",
                "t(cilk-d)",
                "t(eewa)",
                "E(cilk)",
                "E(cilk-d)",
                "E(eewa)",
                "eewa dE%",
            ],
            [
                (
                    r.benchmark,
                    r.time_cilk,
                    r.time_cilk_d,
                    r.time_eewa,
                    r.energy_cilk,
                    r.energy_cilk_d,
                    r.energy_eewa,
                    -r.eewa_energy_reduction_pct,
                )
                for r in self.rows
            ],
            title="Fig. 6 — normalised execution time and energy (Cilk = 1.0)",
        )


def run_fig6(
    *,
    machine: Optional[MachineConfig] = None,
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    batches: int | None = None,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    parallel: bool = False,
    workers: int | None = None,
    cache_dir: str | None = None,
) -> Fig6Result:
    """Regenerate Fig. 6's data.

    ``parallel=True`` fans every (benchmark × policy × seed) cell across a
    process pool with the content-addressed result cache
    (:mod:`repro.experiments.parallel`); results are identical either way.
    """
    all_outcomes: dict[tuple[str, str], "object"] = {}
    if parallel:
        from repro.experiments.parallel import BenchRequest, ParallelRunner

        runner = ParallelRunner(
            machine=machine, workers=workers,
            cache_dir=cache_dir if cache_dir is not None else ".repro-cache",
        )
        requests = [
            BenchRequest(name, policy, batches=batches, seeds=tuple(seeds))
            for name in benchmarks
            for policy in POLICIES
        ]
        for request, outcome in zip(requests, runner.run_many(requests)):
            all_outcomes[(request.benchmark, request.policy)] = outcome
    rows = []
    for name in benchmarks:
        outcomes = {
            policy: all_outcomes[(name, policy)]
            if parallel
            else run_benchmark(
                name, policy, machine=machine, batches=batches, seeds=seeds
            )
            for policy in POLICIES
        }
        base_t = outcomes["cilk"].time_mean
        base_e = outcomes["cilk"].energy_mean
        rows.append(
            Fig6Row(
                benchmark=name,
                time_cilk=1.0,
                time_cilk_d=outcomes["cilk-d"].time_mean / base_t,
                time_eewa=outcomes["eewa"].time_mean / base_t,
                energy_cilk=1.0,
                energy_cilk_d=outcomes["cilk-d"].energy_mean / base_e,
                energy_eewa=outcomes["eewa"].energy_mean / base_e,
            )
        )
    return Fig6Result(rows=tuple(rows))


__all__ = ["Fig6Result", "Fig6Row", "POLICIES", "run_fig6", "energy_reduction_percent"]
