"""Tests for workload specs and the batch generator."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.generators import generate_program, program_total_work
from repro.workloads.spec import TaskClassSpec, WorkloadSpec, scaled


def simple_spec(**overrides):
    defaults = dict(
        name="toy",
        classes=(
            TaskClassSpec("big", count=4, mean_seconds=0.02),
            TaskClassSpec("small", count=16, mean_seconds=0.002),
        ),
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


class TestTaskClassSpec:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            TaskClassSpec("", count=1, mean_seconds=0.1)
        with pytest.raises(WorkloadError):
            TaskClassSpec("x", count=0, mean_seconds=0.1)
        with pytest.raises(WorkloadError):
            TaskClassSpec("x", count=1, mean_seconds=0.0)
        with pytest.raises(WorkloadError):
            TaskClassSpec("x", count=1, mean_seconds=0.1, mem_stall_fraction=1.0)

    def test_total_seconds(self):
        c = TaskClassSpec("x", count=10, mean_seconds=0.01)
        assert c.total_seconds == pytest.approx(0.1)


class TestWorkloadSpec:
    def test_aggregates(self):
        spec = simple_spec()
        assert spec.tasks_per_batch == 20
        assert spec.work_per_batch == pytest.approx(4 * 0.02 + 16 * 0.002)

    def test_utilization(self):
        spec = simple_spec()
        u = spec.utilization(16)
        assert u == pytest.approx(spec.work_per_batch / (16 * 0.02))

    def test_duplicate_class_names_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(
                name="dup",
                classes=(
                    TaskClassSpec("x", count=1, mean_seconds=0.1),
                    TaskClassSpec("x", count=2, mean_seconds=0.2),
                ),
            )

    def test_class_named(self):
        spec = simple_spec()
        assert spec.class_named("big").count == 4
        with pytest.raises(WorkloadError):
            spec.class_named("missing")

    def test_scaled(self):
        spec = scaled(simple_spec(), 2.0)
        assert spec.class_named("big").mean_seconds == pytest.approx(0.04)
        assert spec.tasks_per_batch == 20
        with pytest.raises(WorkloadError):
            scaled(simple_spec(), 0.0)


class TestGenerator:
    def test_batch_structure(self):
        program = generate_program(simple_spec(), batches=3, seed=0)
        assert len(program) == 3
        for i, batch in enumerate(program):
            assert batch.index == i
            assert len(batch) == 20
            assert batch.functions() == {"big", "small"}

    def test_determinism(self):
        a = generate_program(simple_spec(), batches=4, seed=7)
        b = generate_program(simple_spec(), batches=4, seed=7)
        for ba, bb in zip(a, b):
            assert [s.cpu_cycles for s in ba.specs] == [s.cpu_cycles for s in bb.specs]

    def test_seed_changes_jitter(self):
        a = generate_program(simple_spec(), batches=1, seed=1)
        b = generate_program(simple_spec(), batches=1, seed=2)
        assert [s.cpu_cycles for s in a[0].specs] != [s.cpu_cycles for s in b[0].specs]

    def test_jitter_bounded_around_mean(self):
        spec = simple_spec()
        program = generate_program(spec, batches=1, seed=3)
        bigs = [s for s in program[0].specs if s.function == "big"]
        for s in bigs:
            seconds = s.cpu_cycles / 2.5e9
            assert 0.5 * 0.02 < seconds < 2.0 * 0.02

    def test_drift_is_clamped(self):
        spec = WorkloadSpec(
            name="drifty",
            classes=(
                TaskClassSpec("w", count=4, mean_seconds=0.01, drift_sigma=0.5),
            ),
        )
        program = generate_program(spec, batches=40, seed=5)
        for batch in program:
            for s in batch.specs:
                seconds = s.cpu_cycles / 2.5e9
                # drift clamp [0.7, 1.4] times jitter wiggle
                assert 0.3 * 0.01 < seconds < 3.0 * 0.01

    def test_counters_attached(self):
        spec = WorkloadSpec(
            name="mem",
            classes=(
                TaskClassSpec(
                    "m", count=2, mean_seconds=0.01,
                    miss_intensity=0.05, mem_stall_fraction=0.5,
                ),
            ),
        )
        program = generate_program(spec, batches=1, seed=0)
        for s in program[0].specs:
            assert s.counters is not None
            assert s.counters.miss_intensity == pytest.approx(0.05, rel=0.01)
            assert s.mem_stall_seconds > 0

    def test_total_work_helper(self):
        program = generate_program(simple_spec(), batches=2, seed=0)
        assert program_total_work(program) == pytest.approx(
            sum(b.total_cpu_cycles() for b in program)
        )
