"""Baseline-JPEG-style grayscale encoder (the JE benchmark).

Implements the computational pipeline of a baseline JPEG encoder on a
single (luminance) channel:

1. level shift and 8x8 blocking (edge blocks replicated-padded);
2. 2-D DCT-II per block (exact, via the orthonormal DCT matrix in numpy);
3. quantisation with the Annex-K luminance table scaled by a quality
   factor (libjpeg's scaling convention);
4. zigzag scan;
5. entropy coding: DPCM of DC terms and (run, size) symbols for AC terms,
   both canonical-Huffman coded with amplitude bits appended.

A matching decoder inverts the entropy stage exactly and the transform
stage up to quantisation loss, so tests can assert exact symbol round-trip
and bounded reconstruction error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import KernelError
from repro.kernels.bitio import BitReader, BitWriter
from repro.kernels.huffman import HuffmanTable

#: Annex K luminance quantisation table.
QUANT_BASE = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)

_EOB = 0x00  # end-of-block AC symbol
_ZRL = 0xF0  # sixteen-zero-run AC symbol


def dct_matrix() -> np.ndarray:
    """The 8x8 orthonormal DCT-II matrix ``C`` with ``Y = C @ X @ C.T``."""
    n = 8
    c = np.zeros((n, n))
    for k in range(n):
        scale = np.sqrt(1.0 / n) if k == 0 else np.sqrt(2.0 / n)
        for i in range(n):
            c[k, i] = scale * np.cos(np.pi * (2 * i + 1) * k / (2 * n))
    return c


_DCT = dct_matrix()


def quant_table(quality: int) -> np.ndarray:
    """Annex-K table scaled by libjpeg's quality convention (1..100)."""
    if not 1 <= quality <= 100:
        raise KernelError("quality must be in [1, 100]")
    scale = 5000 / quality if quality < 50 else 200 - 2 * quality
    table = np.floor((QUANT_BASE * scale + 50) / 100)
    return np.clip(table, 1, 255)


def zigzag_order() -> list[tuple[int, int]]:
    """The 64 (row, col) pairs in JPEG zigzag order."""
    order = []
    for s in range(15):
        indices = [(i, s - i) for i in range(8) if 0 <= s - i < 8]
        order.extend(indices if s % 2 else indices[::-1])
    return order


_ZIGZAG = zigzag_order()


def block_split(image: np.ndarray) -> tuple[np.ndarray, int, int]:
    """Pad to multiples of 8 (edge replication) and split into 8x8 blocks."""
    if image.ndim != 2:
        raise KernelError("expected a 2-D grayscale image")
    h, w = image.shape
    if h == 0 or w == 0:
        raise KernelError("empty image")
    ph, pw = (-h) % 8, (-w) % 8
    padded = np.pad(image.astype(np.float64), ((0, ph), (0, pw)), mode="edge")
    bh, bw = padded.shape[0] // 8, padded.shape[1] // 8
    blocks = padded.reshape(bh, 8, bw, 8).transpose(0, 2, 1, 3).reshape(-1, 8, 8)
    return blocks, h, w


def block_join(blocks: np.ndarray, height: int, width: int) -> np.ndarray:
    """Inverse of :func:`block_split`, cropping the padding."""
    bh = (height + 7) // 8
    bw = (width + 7) // 8
    if blocks.shape[0] != bh * bw:
        raise KernelError("block count does not match image size")
    grid = blocks.reshape(bh, bw, 8, 8).transpose(0, 2, 1, 3).reshape(bh * 8, bw * 8)
    return grid[:height, :width]


def forward_blocks(image: np.ndarray, quality: int) -> tuple[np.ndarray, np.ndarray]:
    """Level-shift, DCT and quantise; returns (quantised int blocks, table)."""
    blocks, _, _ = block_split(image)
    shifted = blocks - 128.0
    coeffs = np.einsum("ij,bjk,lk->bil", _DCT, shifted, _DCT)
    q = quant_table(quality)
    return np.round(coeffs / q).astype(np.int32), q


def inverse_blocks(quantised: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Dequantise and inverse-DCT; returns pixel blocks clipped to [0,255]."""
    coeffs = quantised.astype(np.float64) * q
    pixels = np.einsum("ji,bjk,kl->bil", _DCT, coeffs, _DCT) + 128.0
    return np.clip(pixels, 0.0, 255.0)


def _magnitude_category(value: int) -> int:
    """JPEG 'size' of a coefficient: bits needed for |value|."""
    return int(abs(value)).bit_length()


def _amplitude_bits(value: int, size: int) -> int:
    """One's-complement amplitude encoding of JPEG."""
    return value if value >= 0 else value + (1 << size) - 1


def _amplitude_decode(bits: int, size: int) -> int:
    if size == 0:
        return 0
    if bits >> (size - 1):
        return bits
    return bits - (1 << size) + 1


def entropy_encode(quantised: np.ndarray) -> tuple[list[int], list[tuple[int, int]]]:
    """Produce (symbol stream, amplitude list) for all blocks.

    Symbols: per block, one DC size symbol then AC (run<<4 | size) symbols
    with EOB/ZRL, exactly baseline JPEG's alphabet. Amplitudes are
    (value_bits, bit_width) pairs interleaved in symbol order.
    """
    symbols: list[int] = []
    amplitudes: list[tuple[int, int]] = []
    prev_dc = 0
    for block in quantised:
        zz = [int(block[r, c]) for r, c in _ZIGZAG]
        diff = zz[0] - prev_dc
        prev_dc = zz[0]
        size = _magnitude_category(diff)
        symbols.append(size)
        amplitudes.append((_amplitude_bits(diff, size), size))
        run = 0
        for coeff in zz[1:]:
            if coeff == 0:
                run += 1
                continue
            while run >= 16:
                symbols.append(_ZRL)
                amplitudes.append((0, 0))
                run -= 16
            size = _magnitude_category(coeff)
            symbols.append((run << 4) | size)
            amplitudes.append((_amplitude_bits(coeff, size), size))
            run = 0
        if run:
            symbols.append(_EOB)
            amplitudes.append((0, 0))
    return symbols, amplitudes


def entropy_decode(
    symbols: list[int], amplitudes: list[tuple[int, int]], num_blocks: int
) -> np.ndarray:
    """Exact inverse of :func:`entropy_encode`."""
    blocks = np.zeros((num_blocks, 8, 8), dtype=np.int32)
    pos = 0
    prev_dc = 0
    for b in range(num_blocks):
        size = symbols[pos]
        bits, width = amplitudes[pos]
        if width != size:
            raise KernelError("DC amplitude width mismatch")
        pos += 1
        diff = _amplitude_decode(bits, size)
        dc = prev_dc + diff
        prev_dc = dc
        zz = [0] * 64
        zz[0] = dc
        index = 1
        while index < 64:
            if pos >= len(symbols):
                raise KernelError("truncated JPEG symbol stream")
            sym = symbols[pos]
            bits, width = amplitudes[pos]
            pos += 1
            if sym == _EOB:
                break
            if sym == _ZRL:
                index += 16
                continue
            run, size = sym >> 4, sym & 0xF
            index += run
            if index >= 64 or size == 0:
                raise KernelError("corrupt AC symbol")
            zz[index] = _amplitude_decode(bits, size)
            index += 1
        for value, (r, c) in zip(zz, _ZIGZAG):
            blocks[b, r, c] = value
    return blocks


@dataclass(frozen=True)
class JpegImage:
    """An entropy-coded grayscale JPEG-style image."""

    payload: bytes
    table: HuffmanTable
    symbol_count: int
    height: int
    width: int
    quality: int


def jpeg_encode(image: np.ndarray, quality: int = 75) -> JpegImage:
    """Full encode pipeline for a uint8 grayscale image."""
    quantised, _ = forward_blocks(image, quality)
    symbols, amplitudes = entropy_encode(quantised)
    table = HuffmanTable.from_symbols(symbols)
    writer = BitWriter()
    for sym, (bits, width) in zip(symbols, amplitudes):
        code, length = table.codes[sym]
        writer.write_bits(code, length)
        if width:
            writer.write_bits(bits, width)
    h, w = image.shape
    return JpegImage(
        payload=writer.getvalue(),
        table=table,
        symbol_count=len(symbols),
        height=h,
        width=w,
        quality=quality,
    )


def jpeg_decode(encoded: JpegImage) -> np.ndarray:
    """Decode back to a uint8 grayscale image (lossy round-trip)."""
    reader = BitReader(encoded.payload)
    inverse = {(ln, code): s for s, (code, ln) in encoded.table.codes.items()}
    max_len = max(ln for _, ln in encoded.table.codes.values())
    symbols: list[int] = []
    amplitudes: list[tuple[int, int]] = []
    for _ in range(encoded.symbol_count):
        code = 0
        length = 0
        while True:
            code = (code << 1) | reader.read_bit()
            length += 1
            sym = inverse.get((length, code))
            if sym is not None:
                break
            if length > max_len:
                raise KernelError("invalid JPEG Huffman stream")
        symbols.append(sym)
        if sym in (_EOB, _ZRL):
            amplitudes.append((0, 0))
            continue
        # DC symbols are raw sizes (<= 0x0F range shares encoding with AC
        # run=0); the amplitude width is the low nibble either way.
        width = sym & 0xF if sym > 0xF else sym
        amplitudes.append((reader.read_bits(width), width))

    num_blocks = ((encoded.height + 7) // 8) * ((encoded.width + 7) // 8)
    quantised = entropy_decode(symbols, amplitudes, num_blocks)
    pixels = inverse_blocks(quantised, quant_table(encoded.quality))
    image = block_join(pixels, encoded.height, encoded.width)
    return np.round(image).astype(np.uint8)
