"""Tests for the JPEG-style encoder."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels.jpeg import (
    block_join,
    block_split,
    dct_matrix,
    entropy_decode,
    entropy_encode,
    forward_blocks,
    jpeg_decode,
    jpeg_encode,
    quant_table,
    zigzag_order,
)


def smooth_image(h=48, w=64, seed=0):
    rng = np.random.default_rng(seed)
    x, y = np.meshgrid(np.arange(w), np.arange(h))
    img = 128 + 50 * np.sin(x / 8.0) + 40 * np.cos(y / 6.0) + rng.normal(0, 4, (h, w))
    return np.clip(img, 0, 255).astype(np.uint8)


class TestTransformPieces:
    def test_dct_matrix_orthonormal(self):
        c = dct_matrix()
        assert np.allclose(c @ c.T, np.eye(8), atol=1e-12)

    def test_zigzag_is_permutation(self):
        order = zigzag_order()
        assert len(order) == 64
        assert sorted(order) == [(r, c) for r in range(8) for c in range(8)]
        assert order[0] == (0, 0)
        assert order[1] == (0, 1)
        assert order[2] == (1, 0)

    def test_quant_table_quality_ordering(self):
        low = quant_table(10)
        high = quant_table(90)
        assert np.all(low >= high)
        for q in (1, 50, 100):
            table = quant_table(q)
            assert np.all(table >= 1) and np.all(table <= 255)
            assert np.array_equal(table, np.floor(table))

    def test_quality_bounds(self):
        with pytest.raises(KernelError):
            quant_table(0)
        with pytest.raises(KernelError):
            quant_table(101)

    def test_block_split_join_roundtrip(self):
        img = smooth_image(37, 53)
        blocks, h, w = block_split(img)
        assert blocks.shape == (5 * 7, 8, 8)
        back = block_join(blocks, h, w)
        assert np.array_equal(back, img.astype(np.float64))

    def test_dct_inverse_identity_without_quantisation(self):
        img = smooth_image(16, 16)
        blocks, _, _ = block_split(img)
        quantised, q = forward_blocks(img, quality=100)
        # quality=100 still quantises (table of ones after scaling), so we
        # check the pure transform pair directly instead.
        from repro.kernels.jpeg import _DCT

        shifted = blocks - 128.0
        coeffs = np.einsum("ij,bjk,lk->bil", _DCT, shifted, _DCT)
        back = np.einsum("ji,bjk,kl->bil", _DCT, coeffs, _DCT) + 128.0
        assert np.allclose(back, blocks, atol=1e-9)


class TestEntropyStage:
    def test_exact_roundtrip(self):
        img = smooth_image()
        quantised, _ = forward_blocks(img, 70)
        symbols, amps = entropy_encode(quantised)
        back = entropy_decode(symbols, amps, quantised.shape[0])
        assert np.array_equal(back, quantised)

    def test_all_zero_blocks(self):
        quantised = np.zeros((3, 8, 8), dtype=np.int32)
        symbols, amps = entropy_encode(quantised)
        back = entropy_decode(symbols, amps, 3)
        assert np.array_equal(back, quantised)

    def test_negative_coefficients_roundtrip(self):
        quantised = np.zeros((1, 8, 8), dtype=np.int32)
        quantised[0, 0, 0] = -37
        quantised[0, 7, 7] = -1
        symbols, amps = entropy_encode(quantised)
        back = entropy_decode(symbols, amps, 1)
        assert np.array_equal(back, quantised)

    def test_long_zero_run_uses_zrl(self):
        quantised = np.zeros((1, 8, 8), dtype=np.int32)
        quantised[0, 7, 6] = 3  # forces > 16-zero runs before it
        symbols, _ = entropy_encode(quantised)
        assert 0xF0 in symbols


class TestFullPipeline:
    def test_shape_preserved(self):
        img = smooth_image(37, 53)
        assert jpeg_decode(jpeg_encode(img, 75)).shape == img.shape

    def test_reconstruction_error_bounded(self):
        img = smooth_image()
        for quality, max_err in ((95, 3.0), (75, 6.0), (30, 14.0)):
            decoded = jpeg_decode(jpeg_encode(img, quality))
            err = np.abs(decoded.astype(int) - img.astype(int)).mean()
            assert err < max_err, (quality, err)

    def test_higher_quality_bigger_payload(self):
        img = smooth_image()
        sizes = [len(jpeg_encode(img, q).payload) for q in (20, 60, 95)]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_flat_image_tiny_payload(self):
        img = np.full((32, 32), 128, dtype=np.uint8)
        enc = jpeg_encode(img, 75)
        assert len(enc.payload) < 40
        assert np.abs(jpeg_decode(enc).astype(int) - 128).max() <= 1
