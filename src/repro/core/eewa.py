"""The EEWA scheduler policy — the paper's primary contribution.

Processing flow (paper Fig. 2):

* **Batch 0** — all cores at ``F_0``, one c-group, behaviour identical to
  plain work-stealing; the online profiler records every task's execution
  time and PMU counters, and the batch's duration becomes the ideal
  iteration time ``T``.
* **Between batches** — the workload-aware frequency adjuster builds the CC
  table from the just-finished batch, runs Algorithm 1, and emits a
  :class:`~repro.core.cgroups.CGroupPlan`: per-core DVFS levels plus the
  class-to-c-group allocation. The engine applies the DVFS requests (with
  transition latency) and charges the decision overhead (Table III).
* **Batch d (d >= 1)** — tasks are pushed into their class's c-group pools;
  idle cores balance load via preference-based (rob-the-weaker-first)
  stealing.
* **Memory-bound applications** (Section IV-D) — detected after batch 0 by
  cache-miss intensity; EEWA then either falls back to plain work-stealing
  at ``F_0`` (paper behaviour) or, in :attr:`MemoryBoundMode.REGRESSION`
  mode, keeps adjusting using fitted ``t(f) = a/f + b`` models (the paper's
  future work).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.adjuster import (
    AdjusterDecision,
    OverheadModel,
    WorkloadAwareFrequencyAdjuster,
)
from repro.core.cgroups import CGroupPlan, uniform_plan
from repro.core.membound import MemoryBoundMode, classify_application
from repro.core.profiler import DEFAULT_MISS_THRESHOLD, OnlineProfiler
from repro.core.regression import RegressionProfiler, build_regression_cc_table
from repro.core.cc_table import CCTable
from repro.core.cgroups import build_cgroup_plan
from repro.core.ktuple import search_ktuple
from repro.runtime.grouped import GroupedStealingPolicy
from repro.runtime.policy import BatchAdjustment
from repro.runtime.task import Batch, Task
from typing import Sequence


@dataclass(frozen=True)
class EEWAConfig:
    """Tunables of the EEWA policy (defaults = paper behaviour)."""

    search: str = "backtracking"
    #: "discrete" (granularity-aware, default) or "fluid" (paper Table I).
    cc_mode: str = "discrete"
    #: Jitter headroom for discrete-mode level feasibility.
    headroom: float = 0.10
    leftover_policy: str = "slowest"
    miss_threshold: float = DEFAULT_MISS_THRESHOLD
    memory_bound_mode: MemoryBoundMode = MemoryBoundMode.FALLBACK
    overhead_model: OverheadModel = field(default_factory=OverheadModel)
    #: Re-profile and re-adjust after every batch (paper behaviour). When
    #: False, the plan from batch 0's profile is frozen — an ablation that
    #: shows why per-batch adaptation matters under workload drift.
    adapt_every_batch: bool = True
    #: Consecutive boundaries a core's DVFS request may be denied (fault
    #: injection) before EEWA stops asking for that core.
    max_dvfs_retries: int = 3
    #: Boundaries a backed-off core sits out before being retargeted.
    dvfs_backoff_batches: int = 4
    #: Consecutive "no feasible k-tuple" searches before EEWA gives up on
    #: planning and degrades to all-``F_0`` work-stealing for good.
    max_search_failures: int = 3


class EEWAScheduler(GroupedStealingPolicy):
    """Energy-Efficient Workload-Aware task scheduling."""

    name = "eewa"

    def __init__(self, config: EEWAConfig | None = None) -> None:
        super().__init__()
        self.config = config or EEWAConfig()
        self.profiler: Optional[OnlineProfiler] = None
        self.regression: Optional[RegressionProfiler] = None
        self.adjuster: Optional[WorkloadAwareFrequencyAdjuster] = None
        self.decisions: list[AdjusterDecision] = []
        self._batch_start_time = 0.0
        self._batch_class_counts: dict[str, int] = {}
        self._memory_bound = False
        self._frozen = False  # plan frozen (fallback or adapt_every_batch=False)
        self._explored = False  # regression mode ran its exploration batch
        # Graceful-degradation state under fault injection: per-core counts
        # of consecutive boundaries whose DVFS request was denied, cores
        # currently backed off (with remaining boundaries), denials arrived
        # since the last boundary, and the consecutive-search-failure count.
        self._denied_streak: dict[int, int] = {}
        self._dvfs_backoff: dict[int, int] = {}
        self._denied_since_boundary: set[int] = set()
        self._search_failures = 0

    # -- lifecycle ----------------------------------------------------------------

    def on_program_start(self) -> BatchAdjustment:
        ctx = self._require_ctx()
        scale = ctx.machine.scale
        self.profiler = OnlineProfiler(scale=scale, miss_threshold=self.config.miss_threshold)
        self.regression = RegressionProfiler(scale=scale)
        self.adjuster = WorkloadAwareFrequencyAdjuster(
            scale=scale,
            num_cores=ctx.machine.num_cores,
            search=self.config.search,
            cc_mode=self.config.cc_mode,
            headroom=self.config.headroom,
            leftover_policy=self.config.leftover_policy,
            capacities=ctx.machine.capacities(),
            overhead_model=self.config.overhead_model,
        )
        # Batch 0 runs all-fast in a single c-group (paper: "in the first
        # iteration, all the cores run at the highest frequency F_0").
        self._install_plan(uniform_plan(ctx.machine.num_cores, level=0))
        return BatchAdjustment(frequency_levels=[0] * ctx.machine.num_cores)

    def on_batch_start(self, batch: Batch, tasks: Sequence[Task]) -> None:
        self._batch_start_time = self._require_ctx().now()
        self._batch_class_counts = {}
        for task in tasks:
            name = task.function
            self._batch_class_counts[name] = self._batch_class_counts.get(name, 0) + 1
        super().on_batch_start(batch, tasks)

    def on_task_complete(self, core_id: int, task: Task) -> None:
        assert self.profiler is not None and self.regression is not None
        level = task.executed_level
        assert level is not None
        machine = self._require_ctx().machine
        core_type = (
            machine.core_type_of(core_id) if machine.is_heterogeneous else None
        )
        self.profiler.observe(
            task.function, task.elapsed, level, task.spec.counters, core_type
        )
        self.regression.observe(task.function, task.elapsed, level, core_type)

    def on_dvfs_denied(self, core_id: int, level: int) -> None:
        super().on_dvfs_denied(core_id, level)
        self._denied_since_boundary.add(core_id)

    def _update_denial_streaks(self) -> None:
        """Bounded retry with backoff for denied boundary DVFS requests.

        A core denied at ``max_dvfs_retries`` consecutive boundaries is
        backed off: its entry in the next ``dvfs_backoff_batches`` emitted
        plans is masked to ``None`` (no request), after which EEWA tries
        again. A granted (or absent) request resets the core's streak.
        """
        denied = self._denied_since_boundary
        self._denied_since_boundary = set()
        if not denied and not self._denied_streak:
            return
        streaks: dict[int, int] = {}
        for cid in denied:
            streak = self._denied_streak.get(cid, 0) + 1
            if streak >= self.config.max_dvfs_retries:
                self._dvfs_backoff[cid] = self.config.dvfs_backoff_batches
                self.stats.extra["dvfs_backoffs"] = (
                    self.stats.extra.get("dvfs_backoffs", 0.0) + 1.0
                )
            else:
                streaks[cid] = streak
        self._denied_streak = streaks

    def _mask_backoff(self, levels: list) -> list:
        """Suppress requests for backed-off cores, ticking their windows."""
        for cid in sorted(self._dvfs_backoff):
            levels[cid] = None
            remaining = self._dvfs_backoff[cid] - 1
            if remaining <= 0:
                del self._dvfs_backoff[cid]
            else:
                self._dvfs_backoff[cid] = remaining
        return levels

    def on_batch_end(self, batch_index: int) -> BatchAdjustment | None:
        ctx = self._require_ctx()
        profiler = self.profiler
        adjuster = self.adjuster
        assert profiler is not None and adjuster is not None

        self._update_denial_streaks()
        duration = ctx.now() - self._batch_start_time
        if batch_index == 0:
            profiler.set_ideal_time(duration)
            verdict = classify_application(profiler)
            self._memory_bound = verdict.kind.value == "memory"
            self.stats.extra["memory_bound_fraction"] = verdict.memory_bound_fraction
            if self._memory_bound and self.config.memory_bound_mode is MemoryBoundMode.FALLBACK:
                # Paper behaviour: traditional work-stealing at F_0 for the
                # rest of the run. The current uniform plan already encodes
                # exactly that; freeze it.
                self._frozen = True
                self.stats.extra["fallback_memory_bound"] = 1.0
                profiler.reset_batch()
                return None

        if self._frozen or (batch_index > 0 and not self.config.adapt_every_batch):
            profiler.reset_batch()
            return None

        decision = self._decide()
        self.decisions.append(decision)
        if decision.fallback_reason == "no feasible k-tuple":
            self._search_failures += 1
            if self._search_failures >= self.config.max_search_failures:
                # Graceful degradation: the search keeps coming up empty, so
                # stop paying for it — freeze into traditional all-``F_0``
                # work-stealing for the rest of the program.
                self._frozen = True
                self.stats.extra["fallback_search_failure"] = 1.0
                self._install_plan(uniform_plan(ctx.machine.num_cores, level=0))
                profiler.reset_batch()
                return BatchAdjustment(
                    frequency_levels=self._mask_backoff(
                        [0] * ctx.machine.num_cores
                    ),
                    overhead_seconds=decision.simulated_seconds,
                )
        elif decision.fallback_reason is None:
            self._search_failures = 0
        if decision.fallback_reason == "regression exploration batch":
            # The exploration batch *wants* slower cores to steal from the
            # fast group — the criticality guard must stay disarmed or no
            # off-frequency samples are ever collected.
            self._install_plan(decision.plan)
        else:
            class_workloads = {
                c.function: c.mean_workload for c in profiler.classes_by_workload()
            }
            self._install_plan(
                decision.plan,
                class_workloads=class_workloads,
                ideal_time=profiler.ideal_time,
            )
        profiler.reset_batch()
        return BatchAdjustment(
            frequency_levels=self._mask_backoff(list(decision.plan.core_levels)),
            overhead_seconds=decision.simulated_seconds,
        )

    def state_fingerprint(self) -> Optional[str]:
        """Grouped fingerprint plus adjuster-facing state.

        Returns ``None`` (disabling fast-forward) in
        :attr:`MemoryBoundMode.REGRESSION` mode: the
        :class:`RegressionProfiler` accumulates samples across *all*
        batches, so its decisions are never provably periodic. Excluded as
        boundary-irrelevant: ``_batch_start_time`` and
        ``_batch_class_counts`` (both overwritten in ``on_batch_start``
        before their next read) and the grow-only ``decisions`` log.
        """
        if self.config.memory_bound_mode is MemoryBoundMode.REGRESSION:
            return None
        base = super().state_fingerprint()
        if base is None or self.profiler is None:
            return None
        fp = (
            f"{base}:profiler={self.profiler.state_fingerprint()}"
            f":mb={self._memory_bound}:frozen={self._frozen}:explored={self._explored}"
        )
        # Degradation state influences the next boundary's plan, so it must
        # be covered — but it is only ever non-empty under fault injection
        # (which already disables fast-forward), so fault-free fingerprints
        # are untouched.
        if (
            self._denied_streak
            or self._dvfs_backoff
            or self._denied_since_boundary
            or self._search_failures
        ):
            fp += (
                f":deg={sorted(self._denied_streak.items())}"
                f"|{sorted(self._dvfs_backoff.items())}"
                f"|{sorted(self._denied_since_boundary)}"
                f"|{self._search_failures}"
            )
        return fp

    # -- decision paths -------------------------------------------------------------

    def _decide(self) -> AdjusterDecision:
        assert self.profiler is not None and self.adjuster is not None
        if (
            self._memory_bound
            and self.config.memory_bound_mode is MemoryBoundMode.REGRESSION
        ):
            return self._decide_by_regression()
        return self.adjuster.decide(self.profiler)

    def _decide_by_regression(self) -> AdjusterDecision:
        """Future-work path: CC table from fitted t(f) models.

        The model ``t(f) = a/f + b`` needs observations at two or more
        frequencies, but batch 0 runs entirely at ``F_0`` — so the first
        regression decision is an *exploration* batch: a third of the cores
        drop one level, and cross-group stealing (with the criticality
        guard disarmed) mixes every class onto both frequencies. One such
        batch identifies the model; all later batches use it.
        """
        import time as _time

        assert (
            self.profiler is not None
            and self.regression is not None
            and self.adjuster is not None
        )
        ctx = self._require_ctx()
        t0 = _time.perf_counter()

        majors = [fn for fn, n in self._batch_class_counts.items() if n > 0]
        needs_data = any(
            self.regression.sample_count(fn) == 0
            or self.regression.fit(fn).is_degenerate
            for fn in majors
        )
        if needs_data:
            if self._explored:
                # Exploration already happened and still no signal (e.g.
                # single-class odd cases): stay safe at F_0.
                return self.adjuster.decide(self.profiler)
            self._explored = True
            m = ctx.machine.num_cores
            slow = max(1, m // 3)
            from repro.runtime.wats import plan_from_levels

            base = plan_from_levels([0] * (m - slow) + [1] * slow, machine=ctx.machine)
            plan = CGroupPlan(
                core_levels=base.core_levels,
                groups=base.groups,
                class_to_group={fn: 0 for fn in majors},
                group_of_core=base.group_of_core,
            )
            wall = _time.perf_counter() - t0
            decision = AdjusterDecision(
                plan=plan,
                table=None,
                solution=None,
                wallclock_seconds=wall,
                simulated_seconds=self.adjuster.overhead_model.cost(
                    len(majors), ctx.machine.r
                ),
                fallback_reason="regression exploration batch",
            )
            self.adjuster.decisions.append(decision)
            return decision
        try:
            table: CCTable = build_regression_cc_table(
                self.regression,
                self._batch_class_counts,
                ctx.machine.scale,
                self.profiler.require_ideal_time(),
            )
        except Exception:
            return self.adjuster.decide(self.profiler)
        solution = search_ktuple(
            table, ctx.machine.num_cores, capacities=ctx.machine.capacities()
        )
        if solution is None:
            return self.adjuster.decide(self.profiler)
        plan = build_cgroup_plan(
            solution, table, ctx.machine.num_cores,
            leftover_policy=self.config.leftover_policy,
            capacities=ctx.machine.capacities(),
        )
        wall = _time.perf_counter() - t0
        decision = AdjusterDecision(
            plan=plan,
            table=table,
            solution=solution,
            wallclock_seconds=wall,
            simulated_seconds=self.adjuster.overhead_model.cost(table.k, table.r),
        )
        self.adjuster.decisions.append(decision)
        return decision

    # -- reporting --------------------------------------------------------------------

    def total_adjuster_wallclock(self) -> float:
        """Measured Python time spent in adjuster decisions (Table III)."""
        return sum(d.wallclock_seconds for d in self.decisions)

    def total_adjuster_simulated(self) -> float:
        return sum(d.simulated_seconds for d in self.decisions)
