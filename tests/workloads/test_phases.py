"""Tests for workload phase modulation."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.generators import generate_program
from repro.workloads.spec import TaskClassSpec, WorkloadSpec
from repro.workloads.synthetic import phased_spec


class TestPhaseModulation:
    def test_zero_amplitude_constant_count(self):
        cls = TaskClassSpec("x", count=10, mean_seconds=0.01)
        assert all(cls.count_in_batch(b) == 10 for b in range(20))

    def test_counts_oscillate_within_amplitude(self):
        cls = TaskClassSpec(
            "x", count=10, mean_seconds=0.01, phase_amplitude=0.3, phase_period=8
        )
        counts = [cls.count_in_batch(b) for b in range(16)]
        assert min(counts) >= 7
        assert max(counts) <= 13
        assert len(set(counts)) > 1

    def test_periodicity(self):
        cls = TaskClassSpec(
            "x", count=12, mean_seconds=0.01, phase_amplitude=0.25, phase_period=6
        )
        for b in range(12):
            assert cls.count_in_batch(b) == cls.count_in_batch(b + 6)

    def test_count_never_below_one(self):
        cls = TaskClassSpec(
            "x", count=1, mean_seconds=0.01, phase_amplitude=0.9, phase_period=4
        )
        assert all(cls.count_in_batch(b) >= 1 for b in range(8))

    def test_validation(self):
        with pytest.raises(WorkloadError):
            TaskClassSpec("x", count=1, mean_seconds=0.01, phase_amplitude=1.0)
        with pytest.raises(WorkloadError):
            TaskClassSpec("x", count=1, mean_seconds=0.01, phase_period=0)

    def test_generator_respects_phase_counts(self):
        spec = WorkloadSpec(
            name="p",
            classes=(
                TaskClassSpec(
                    "w", count=10, mean_seconds=0.01,
                    phase_amplitude=0.3, phase_period=4,
                ),
            ),
        )
        program = generate_program(spec, batches=8, seed=0)
        cls = spec.classes[0]
        for b, batch in enumerate(program):
            assert len(batch) == cls.count_in_batch(b)

    def test_phased_spec_builds(self):
        spec = phased_spec()
        assert spec.name == "DMC-phased"
        phased = [c for c in spec.classes if c.phase_amplitude > 0]
        assert len(phased) == 1
        program = generate_program(spec, batches=4, seed=1)
        assert len(program) == 4
