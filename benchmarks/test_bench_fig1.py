"""Fig. 1 bench — the Section II motivating example.

Asserts the paper's analytic ordering of the four dual-core schedules and
that the simulated EEWA converges onto schedule (b): same finish time as
all-fast, lower energy.
"""

import pytest
from conftest import save_exhibit

from repro.experiments.fig1 import analytic_schedules, fig1_rows, run_fig1
from repro.experiments.report import format_table


def test_bench_fig1(benchmark, results_dir):
    rows = benchmark.pedantic(lambda: fig1_rows(0.1), rounds=1, iterations=1)
    table = format_table(
        ["schedule", "time (s)", "energy (J)"],
        rows,
        title="Fig. 1 — four dual-core schedules + simulated EEWA",
    )
    save_exhibit(results_dir, "fig1", table)

    a, b, c, d = analytic_schedules(0.1)
    # Paper ordering: (b) dominates; (c)/(d) degrade time badly.
    assert b.finish_time == pytest.approx(a.finish_time)
    assert b.energy < a.energy
    assert c.finish_time == pytest.approx(2 * b.finish_time)
    assert c.energy == pytest.approx(2 * b.energy)
    assert d.finish_time == pytest.approx(2 * b.finish_time)

    result = run_fig1(0.1, batches=4)
    # Simulated EEWA: profiling batch all-fast, then the (b) configuration.
    assert result.trace.level_histograms()[-1] == (1, 1)
    steady = result.trace.batches[-1]
    assert steady.duration == pytest.approx(2 * 0.1, rel=0.02)
    # Steady-batch machine power sits between schedule (b)'s and (a)'s.
    per_batch_energy = result.total_joules / result.batches_executed
    assert b.energy * 0.95 < per_batch_energy < a.energy * 1.05
