"""Engine behaviour under fault injection.

The one invariant every test here leans on: faults change *how long and
how hot* a run is, never *whether it finishes* — and a run with no active
faults is bit-identical to one where fault injection does not exist.
"""

from repro.core.eewa import EEWAScheduler
from repro.faults import FaultSpec
from repro.faults.matrix import standard_machine, standard_program
from repro.runtime.cilk import CilkScheduler
from repro.runtime.cilk_d import CilkDScheduler
from repro.sim.engine import Simulator, simulate
from repro.sim.fingerprint import trace_fingerprint

_SEED = 9


def _expected_tasks(batches: int) -> int:
    return batches * 10  # standard_program batches carry 10 tasks each


class TestGoldenParity:
    def test_inactive_spec_is_bit_identical_to_no_faults(self):
        # ``faults=FaultSpec()`` must not even construct an injector: the
        # run draws the exact same randomness as a build without the
        # feature, so every pinned golden trace stays valid.
        program = standard_program()
        machine = standard_machine()
        plain = simulate(program, CilkDScheduler(), machine, seed=_SEED)
        explicit_none = simulate(
            program, CilkDScheduler(), machine, seed=_SEED, faults=None
        )
        inactive = simulate(
            program, CilkDScheduler(), machine, seed=_SEED, faults=FaultSpec()
        )
        assert trace_fingerprint(plain) == trace_fingerprint(explicit_none)
        assert trace_fingerprint(plain) == trace_fingerprint(inactive)
        assert plain.total_joules == inactive.total_joules

    def test_active_faults_disable_fast_forward(self):
        # Fault draws are per-event; delta replay cannot reproduce them, so
        # an active spec must force full event-by-event simulation.
        result = simulate(
            standard_program(6),
            CilkScheduler(),
            standard_machine(),
            seed=_SEED,
            faults=FaultSpec(stall_rate=0.05, stall_duration_s=1e-3),
        )
        assert result.batches_fast_forwarded == 0
        assert result.batches_simulated == result.batches_executed


class TestDvfsDenial:
    def test_denial_notifies_policy_and_run_completes(self):
        result = simulate(
            standard_program(4),
            EEWAScheduler(),
            standard_machine(),
            seed=_SEED,
            faults=FaultSpec(dvfs_deny_rate=1.0, dvfs_deny_penalty_s=2e-4),
        )
        assert result.tasks_executed == _expected_tasks(4)
        assert result.policy_stats.get("dvfs_denied", 0.0) > 0


class TestCoreStalls:
    def test_stalled_cores_recover_and_nothing_is_lost(self):
        sim = Simulator(
            standard_machine(),
            CilkScheduler(),
            seed=_SEED,
            faults=FaultSpec(stall_rate=0.1, stall_duration_s=2e-3),
        )
        result = sim.run(standard_program(4))
        assert sim._injector.counts["stalls"] > 0
        assert not sim._stalled, "a stall window never ended"
        assert result.tasks_executed == _expected_tasks(4)


class TestDvfsDelay:
    def test_delayed_transitions_fire_and_run_completes(self):
        sim = Simulator(
            standard_machine(),
            EEWAScheduler(),
            seed=_SEED,
            faults=FaultSpec(dvfs_delay_rate=1.0, dvfs_delay_s=5e-4),
        )
        result = sim.run(standard_program(4))
        assert sim._injector.counts["dvfs_delayed"] > 0
        assert result.tasks_executed == _expected_tasks(4)


class TestCounterCorruption:
    def test_corruption_perturbs_the_profiling_signal(self):
        # Heavy spurious cache misses push the batch-0 classifier over the
        # memory-bound threshold, so EEWA takes its F_0 fallback — exactly
        # the degradation path noisy PMUs trigger on real hardware.
        sim = Simulator(
            standard_machine(),
            EEWAScheduler(),
            seed=_SEED,
            faults=FaultSpec(counter_noise_rate=1.0, counter_noise_intensity=0.5),
        )
        result = sim.run(standard_program(4))
        assert sim._injector.counts["counters_corrupted"] > 0
        assert result.policy_stats.get("fallback_memory_bound") == 1.0
        assert result.tasks_executed == _expected_tasks(4)
