"""Convergence and stability analysis of EEWA's per-batch decisions.

The paper's Fig. 8 shows the adjuster settling on a stable configuration by
the third batch. These metrics quantify that behaviour for any run:

* :func:`batches_to_stable` — index of the first batch from which the
  frequency configuration never changes again;
* :func:`config_changes` — number of batch-to-batch configuration changes;
* :func:`deadline_misses` — batches whose duration exceeded the ideal
  iteration time ``T`` (the first batch's duration) by a tolerance, i.e.
  where EEWA failed its own keep-the-performance contract;
* :func:`duration_stability` — coefficient of variation of the steady
  batch durations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.metrics import mean, std
from repro.sim.engine import SimResult


def _histograms(result: SimResult) -> list[tuple[int, ...]]:
    return result.trace.level_histograms()


def batches_to_stable(result: SimResult) -> Optional[int]:
    """First batch index from which the configuration never changes.

    Batch 0 (the profiling batch) is excluded from the candidates — the
    paper's EEWA *always* changes after it. Returns ``None`` when the
    configuration never settles.
    """
    hists = _histograms(result)
    if len(hists) <= 1:
        return 0
    for start in range(1, len(hists)):
        if len(set(hists[start:])) == 1:
            return start
    return None  # pragma: no cover - loop always terminates at len-1


def config_changes(result: SimResult) -> int:
    """Number of batch boundaries at which the configuration changed."""
    hists = _histograms(result)
    return sum(1 for a, b in zip(hists, hists[1:]) if a != b)


def deadline_misses(result: SimResult, *, tolerance: float = 0.10) -> list[int]:
    """Batches that overran the ideal iteration time by > ``tolerance``.

    The budget is the first batch's duration (EEWA's ``T``); batch 0 itself
    cannot miss by definition.
    """
    durations = result.trace.batch_durations()
    if not durations:
        return []
    budget = durations[0] * (1.0 + tolerance)
    return [
        result.trace.batches[i].batch_index
        for i, d in enumerate(durations[1:], start=1)
        if d > budget
    ]


def duration_stability(result: SimResult, *, skip_first: int = 1) -> float:
    """Coefficient of variation of the steady batch durations (lower is
    steadier); 0.0 for runs with fewer than two steady batches."""
    durations = result.trace.batch_durations()[skip_first:]
    if len(durations) < 2:
        return 0.0
    m = mean(durations)
    if m <= 0:
        return 0.0
    return std(durations) / m


@dataclass(frozen=True)
class ConvergenceSummary:
    """All convergence metrics for one run."""

    stable_from_batch: Optional[int]
    config_changes: int
    deadline_misses: tuple[int, ...]
    duration_cv: float

    @property
    def converged(self) -> bool:
        return self.stable_from_batch is not None

    @property
    def met_deadlines(self) -> bool:
        return not self.deadline_misses


def convergence_summary(
    result: SimResult, *, tolerance: float = 0.10
) -> ConvergenceSummary:
    """Compute every convergence metric for a run."""
    return ConvergenceSummary(
        stable_from_batch=batches_to_stable(result),
        config_changes=config_changes(result),
        deadline_misses=tuple(deadline_misses(result, tolerance=tolerance)),
        duration_cv=duration_stability(result),
    )


def compare_convergence(
    results: Sequence[SimResult], *, tolerance: float = 0.10
) -> dict[str, ConvergenceSummary]:
    """Per-policy convergence summaries keyed by policy name."""
    return {
        r.policy_name: convergence_summary(r, tolerance=tolerance) for r in results
    }
