"""Wire-schema tests: request validation and frame round-trips."""

import json

import pytest

from repro.errors import ScenarioError
from repro.scenario.spec import ScenarioSpec
from repro.service.protocol import (
    PROTOCOL_VERSION,
    build_sweep_request,
    decode_frame,
    encode_frame,
    end_frame,
    error_frame,
    parse_sweep_request,
)

SCENARIO = {
    "schema": 3,
    "workload": "SHA-1",
    "policy": "cilk",
    "seeds": [11, 23],
    "batches": 2,
}


class TestRequestRoundTrip:
    def test_build_parse_preserves_everything(self):
        body = build_sweep_request(
            [SCENARIO], fidelity="model", priority=-3, deadline_s=2.5
        )
        request = parse_sweep_request(body)
        assert request.fidelity == "model"
        assert request.priority == -3
        assert request.deadline_s == 2.5
        assert len(request.scenarios) == 1
        assert request.scenarios[0] == ScenarioSpec.from_dict(SCENARIO)
        # to_dict closes the loop: parse(to_dict(parse(x))) == parse(x).
        assert parse_sweep_request(request.to_dict()) == request

    def test_defaults(self):
        request = parse_sweep_request({"scenarios": [SCENARIO]})
        assert request.fidelity is None
        assert request.priority == 0
        assert request.deadline_s is None

    def test_cells_flatten_in_scenario_order(self):
        other = dict(SCENARIO, workload="MD5", seeds=[37])
        request = parse_sweep_request(
            build_sweep_request([SCENARIO, other])
        )
        pairs = request.cells()
        assert [(i, c.benchmark, c.seed) for i, c in pairs] == [
            (0, "SHA-1", 11), (0, "SHA-1", 23), (1, "MD5", 37),
        ]

    def test_request_body_is_json_serialisable(self):
        body = build_sweep_request([SCENARIO], deadline_s=1.0)
        assert json.loads(json.dumps(body)) == body


class TestRequestValidation:
    def test_non_object_rejected(self):
        with pytest.raises(ScenarioError, match="JSON object"):
            parse_sweep_request([SCENARIO])

    def test_unknown_request_field_rejected(self):
        with pytest.raises(ScenarioError, match="unknown request fields"):
            parse_sweep_request({"scenarios": [SCENARIO], "shards": 4})

    def test_wrong_protocol_version_rejected(self):
        with pytest.raises(ScenarioError, match="protocol version"):
            parse_sweep_request(
                {"protocol": PROTOCOL_VERSION + 1, "scenarios": [SCENARIO]}
            )

    def test_empty_scenarios_rejected(self):
        with pytest.raises(ScenarioError, match="non-empty"):
            parse_sweep_request({"scenarios": []})

    def test_scenarios_use_the_run_spec_validation_path(self):
        # Unknown scenario fields die in ScenarioSpec.from_dict, exactly
        # as they would for ``repro run-spec``.
        bad = dict(SCENARIO, turbo=True)
        with pytest.raises(ScenarioError):
            parse_sweep_request({"scenarios": [bad]})

    def test_bad_fidelity_rejected(self):
        with pytest.raises(ScenarioError, match="fidelity"):
            parse_sweep_request(
                {"scenarios": [SCENARIO], "fidelity": "exact"}
            )

    @pytest.mark.parametrize("priority", [1.5, "high", True])
    def test_bad_priority_rejected(self, priority):
        with pytest.raises(ScenarioError, match="priority"):
            parse_sweep_request(
                {"scenarios": [SCENARIO], "priority": priority}
            )

    @pytest.mark.parametrize("deadline", [-1, "soon", True])
    def test_bad_deadline_rejected(self, deadline):
        with pytest.raises(ScenarioError, match="deadline_s"):
            parse_sweep_request(
                {"scenarios": [SCENARIO], "deadline_s": deadline}
            )


class TestFrames:
    def test_end_frame_round_trip(self):
        frame = end_frame(cells=4, streamed=3, from_cache=1, sources={"sim": 3})
        assert decode_frame(encode_frame(frame)) == frame

    def test_error_frame_round_trip(self):
        frame = error_frame("deadline", "expired")
        assert decode_frame(encode_frame(frame)) == frame

    def test_error_frame_rejects_unknown_code(self):
        with pytest.raises(ValueError, match="error code"):
            error_frame("oops", "detail")

    def test_encode_is_one_line(self):
        line = encode_frame(end_frame(cells=1, streamed=1, from_cache=0, sources={}))
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1

    def test_decode_rejects_bad_json(self):
        with pytest.raises(ScenarioError, match="invalid frame JSON"):
            decode_frame(b"{nope")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ScenarioError, match="JSON object"):
            decode_frame(b"[1, 2]")

    def test_decode_rejects_unknown_kind(self):
        with pytest.raises(ScenarioError, match="frame kind"):
            decode_frame(b'{"frame": "pixel"}')
