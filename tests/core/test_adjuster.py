"""Tests for the workload-aware frequency adjuster."""

import pytest

from repro.core.adjuster import OverheadModel, WorkloadAwareFrequencyAdjuster
from repro.core.profiler import OnlineProfiler
from repro.errors import SearchError
from repro.machine.frequency import opteron_8380_scale


def profiler_with(classes: dict[str, tuple[int, float]], ideal: float) -> OnlineProfiler:
    p = OnlineProfiler(scale=opteron_8380_scale())
    for name, (count, mean) in classes.items():
        for _ in range(count):
            p.observe(name, mean, 0)
    p.set_ideal_time(ideal)
    return p


class TestDecisions:
    def test_slack_produces_scaled_plan(self):
        """A granularity-bound workload gets some cores off F_0."""
        profiler = profiler_with(
            {"heavy": (6, 0.045), "light": (40, 0.0015)}, ideal=0.05
        )
        adjuster = WorkloadAwareFrequencyAdjuster(
            scale=opteron_8380_scale(), num_cores=16
        )
        decision = adjuster.decide(profiler)
        assert not decision.fell_back
        hist = decision.plan.level_histogram(4)
        assert hist[0] < 16  # someone was scaled down
        assert sum(hist) == 16

    def test_saturated_workload_stays_fast(self):
        """Abundant fine-grained work: everything stays at F_0."""
        profiler = profiler_with({"work": (800, 0.001)}, ideal=0.05)
        adjuster = WorkloadAwareFrequencyAdjuster(
            scale=opteron_8380_scale(), num_cores=16
        )
        decision = adjuster.decide(profiler)
        hist = decision.plan.level_histogram(4)
        assert hist[0] == 16

    def test_no_classes_falls_back(self):
        profiler = OnlineProfiler(scale=opteron_8380_scale())
        profiler.set_ideal_time(0.05)
        adjuster = WorkloadAwareFrequencyAdjuster(
            scale=opteron_8380_scale(), num_cores=16
        )
        decision = adjuster.decide(profiler)
        assert decision.fell_back
        assert decision.plan.level_histogram(4) == (16, 0, 0, 0)

    def test_decisions_recorded(self):
        profiler = profiler_with({"a": (10, 0.01)}, ideal=0.05)
        adjuster = WorkloadAwareFrequencyAdjuster(
            scale=opteron_8380_scale(), num_cores=16
        )
        adjuster.decide(profiler)
        adjuster.decide(profiler)
        assert len(adjuster.decisions) == 2
        assert adjuster.total_wallclock() > 0.0
        assert adjuster.total_simulated() > 0.0

    def test_exhaustive_search_never_costlier_config(self):
        profiler = profiler_with(
            {"heavy": (6, 0.045), "light": (40, 0.0015)}, ideal=0.05
        )
        bt = WorkloadAwareFrequencyAdjuster(
            scale=opteron_8380_scale(), num_cores=16, search="backtracking"
        ).decide(profiler)
        ex = WorkloadAwareFrequencyAdjuster(
            scale=opteron_8380_scale(), num_cores=16, search="exhaustive"
        ).decide(profiler)
        # Exhaustive picks at least as slow a configuration (lower power).
        assert sum(ex.plan.core_levels) >= sum(bt.plan.core_levels)


class TestValidation:
    def test_unknown_search_rejected(self):
        with pytest.raises(SearchError):
            WorkloadAwareFrequencyAdjuster(
                scale=opteron_8380_scale(), num_cores=4, search="bogo"
            )

    def test_unknown_cc_mode_rejected(self):
        with pytest.raises(SearchError):
            WorkloadAwareFrequencyAdjuster(
                scale=opteron_8380_scale(), num_cores=4, cc_mode="bogo"
            )

    def test_zero_cores_rejected(self):
        with pytest.raises(SearchError):
            WorkloadAwareFrequencyAdjuster(scale=opteron_8380_scale(), num_cores=0)


class TestOverheadModel:
    def test_linear_in_cells(self):
        model = OverheadModel(base_seconds=1e-3, per_cell_seconds=1e-5)
        assert model.cost(4, 4) == pytest.approx(1e-3 + 16e-5)
        assert model.cost(1, 1) < model.cost(8, 4)

    def test_simulated_overhead_uses_model(self):
        profiler = profiler_with({"a": (10, 0.01)}, ideal=0.05)
        model = OverheadModel(base_seconds=0.5, per_cell_seconds=0.0)
        adjuster = WorkloadAwareFrequencyAdjuster(
            scale=opteron_8380_scale(), num_cores=16, overhead_model=model
        )
        decision = adjuster.decide(profiler)
        assert decision.simulated_seconds == pytest.approx(0.5)
