"""Fig. 9 bench — DMC scalability over 4/8/12/16 cores.

Paper shape targets: no savings at 4 cores (saturated machine, overhead
within a fraction of a percent), monotonically growing savings with core
count, ~24% at 12 cores, more at 16; time change stays small everywhere.
"""

from conftest import BENCH_SEEDS, save_exhibit

from repro.experiments.fig9 import run_fig9


def test_bench_fig9(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig9(seeds=BENCH_SEEDS), rounds=1, iterations=1
    )
    save_exhibit(results_dir, "fig9", result.table())

    savings = result.eewa_savings_by_cores()
    benchmark.extra_info["eewa_savings_pct_by_cores"] = {
        str(k): round(v, 1) for k, v in savings.items()
    }

    # Saturated small machine: nothing to harvest.
    assert abs(savings[4]) < 5.0
    # Larger machines: growing, substantial savings.
    assert savings[12] > 12.0
    assert savings[16] > 18.0
    assert savings[16] >= savings[12] >= savings[8] - 2.0
    # Performance held within a few percent at every scale.
    for point in result.points:
        assert 0.85 < point.time_eewa < 1.08, point
