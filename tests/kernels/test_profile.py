"""Tests for kernel cost profiling/calibration."""

from repro.kernels.profile import (
    REFERENCE_COSTS,
    measure_kernel_costs,
    reference_stages,
)
from repro.workloads.benchmarks import BENCHMARK_NAMES


class TestReferenceStages:
    def test_every_benchmark_has_stages(self):
        benches = {s.benchmark for s in reference_stages()}
        assert benches == set(BENCHMARK_NAMES)

    def test_stage_keys_match_frozen_costs(self):
        keys = {(s.benchmark, s.task_class) for s in reference_stages()}
        assert keys == set(REFERENCE_COSTS)

    def test_all_stages_runnable(self):
        for stage in reference_stages():
            stage.run()  # must not raise

    def test_frozen_costs_positive(self):
        assert all(v > 0 for v in REFERENCE_COSTS.values())


class TestMeasurement:
    def test_measure_returns_all_stages(self):
        costs = measure_kernel_costs(repeats=1)
        assert set(costs) == set(REFERENCE_COSTS)
        assert all(v > 0 for v in costs.values())

    def test_frozen_ratios_roughly_current(self):
        """The frozen intra-benchmark ratios should be within an order of
        magnitude of a fresh measurement (host speed cancels in ratios)."""
        costs = measure_kernel_costs(repeats=1)
        for bench in ("BWC", "DMC", "MD5"):
            keys = [k for k in REFERENCE_COSTS if k[0] == bench]
            base = keys[0]
            for key in keys[1:]:
                frozen_ratio = REFERENCE_COSTS[key] / REFERENCE_COSTS[base]
                live_ratio = costs[key] / costs[base]
                assert 0.1 < live_ratio / frozen_ratio < 10.0
