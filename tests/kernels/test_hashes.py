"""MD5 and SHA-1 versus hashlib (the authoritative oracle)."""

import hashlib

import pytest

from repro.kernels.md5 import MD5, md5_digest, md5_hexdigest
from repro.kernels.sha1 import SHA1, sha1_digest, sha1_hexdigest

RFC1321_VECTORS = [
    (b"", "d41d8cd98f00b204e9800998ecf8427e"),
    (b"a", "0cc175b9c0f1b6a831c399e269772661"),
    (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
    (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
    (b"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"),
]

SHA1_VECTORS = [
    (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
    (
        b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
    ),
]


class TestMD5:
    @pytest.mark.parametrize("data,expected", RFC1321_VECTORS)
    def test_rfc1321_vectors(self, data, expected):
        assert md5_hexdigest(data) == expected

    @pytest.mark.parametrize("n", [0, 1, 55, 56, 57, 63, 64, 65, 127, 128, 1000])
    def test_padding_boundaries_vs_hashlib(self, n):
        data = (bytes(range(256)) * 4)[:n]
        assert md5_hexdigest(data) == hashlib.md5(data).hexdigest()

    def test_incremental_equals_oneshot(self):
        data = b"incremental hashing across odd chunk sizes" * 7
        h = MD5()
        for i in range(0, len(data), 13):
            h.update(data[i : i + 13])
        assert h.hexdigest() == md5_hexdigest(data)

    def test_digest_idempotent(self):
        h = MD5(b"abc")
        assert h.digest() == h.digest()
        h.update(b"def")
        assert h.hexdigest() == hashlib.md5(b"abcdef").hexdigest()

    def test_digest_size(self):
        assert len(md5_digest(b"x")) == 16


class TestSHA1:
    @pytest.mark.parametrize("data,expected", SHA1_VECTORS)
    def test_fips_vectors(self, data, expected):
        assert sha1_hexdigest(data) == expected

    @pytest.mark.parametrize("n", [0, 1, 55, 56, 57, 63, 64, 65, 127, 128, 1000])
    def test_padding_boundaries_vs_hashlib(self, n):
        data = (bytes(range(256)) * 4)[:n]
        assert sha1_hexdigest(data) == hashlib.sha1(data).hexdigest()

    def test_incremental_equals_oneshot(self):
        data = b"incremental hashing across odd chunk sizes" * 7
        h = SHA1()
        for i in range(0, len(data), 17):
            h.update(data[i : i + 17])
        assert h.hexdigest() == sha1_hexdigest(data)

    def test_million_a_reduced(self):
        """The classic 'a' * 10^6 vector, shrunk to keep CI fast but still
        crossing many block boundaries."""
        data = b"a" * 10_000
        assert sha1_hexdigest(data) == hashlib.sha1(data).hexdigest()

    def test_digest_size(self):
        assert len(sha1_digest(b"x")) == 20
