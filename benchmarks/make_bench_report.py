"""Convert pytest-benchmark JSON into the repo's BENCH_engine.json.

Usage::

    PYTHONPATH=src python -m pytest benchmarks -q -k engine \
        --benchmark-json /tmp/bench_raw.json
    python benchmarks/make_bench_report.py /tmp/bench_raw.json BENCH_engine.json \
        [--baseline baseline.json] [--extra extra.json]

Reports ops/sec for each macro engine benchmark and events/sec for the
event-queue micro benchmark. ``--baseline`` is an optional JSON mapping of
benchmark short-name -> pre-optimization seconds-per-op; when given, the
report includes the measured speedups. ``--extra`` merges an arbitrary JSON
object (e.g. parallel-sweep measurements) into the report verbatim.

Timings are machine-dependent and non-gating: this script never fails on a
slow run — correctness is gated separately by the golden determinism suite
(``tests/sim/test_golden_traces.py``).
"""

from __future__ import annotations

import argparse
import json
import sys

#: Events per iteration of test_bench_event_queue (kept in sync with
#: benchmarks/test_bench_engine.py::QUEUE_EVENTS).
QUEUE_EVENTS = 10_000

SHORT_NAMES = {
    "test_bench_engine_cilk_throughput": "cilk_16c",
    "test_bench_engine_eewa_throughput": "eewa_16c",
    "test_bench_engine_many_cores": "cilk_64c",
    "test_bench_engine_eewa_100batch_ff": "eewa_100batch_ff",
    "test_bench_engine_eewa_100batch_full": "eewa_100batch_full",
    "test_bench_event_queue": "event_queue",
    "test_bench_sweep_cold": "sweep_cold",
    "test_bench_sweep_warm": "sweep_warm",
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("raw", help="pytest-benchmark JSON output")
    parser.add_argument("out", help="path of the BENCH_engine.json to write")
    parser.add_argument("--baseline", help="JSON of name -> pre-PR seconds/op")
    parser.add_argument("--extra", help="JSON object merged into the report")
    args = parser.parse_args(argv)

    with open(args.raw) as fh:
        raw = json.load(fh)
    baseline: dict[str, float] = {}
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)

    report: dict[str, object] = {
        "machine_info": {
            "python": raw.get("machine_info", {}).get("python_version"),
            "cpu_count": raw.get("machine_info", {}).get("cpu", {}).get("count"),
        },
        "benchmarks": {},
    }
    for bench in raw.get("benchmarks", []):
        name = SHORT_NAMES.get(bench["name"], bench["name"])
        seconds = bench["stats"]["min"]  # min-of-rounds: least-noise estimate
        entry: dict[str, float] = {
            "seconds_per_op": seconds,
            "ops_per_sec": 1.0 / seconds if seconds > 0 else 0.0,
        }
        if name == "event_queue":
            entry["events_per_sec"] = QUEUE_EVENTS / seconds if seconds > 0 else 0.0
        if name in baseline:
            entry["baseline_seconds_per_op"] = baseline[name]
            entry["speedup_vs_baseline"] = baseline[name] / seconds
        for key, value in bench.get("extra_info", {}).items():
            entry[key] = value
        # Sweep-engine rows carry their submission accounting in
        # extra_info; derive the duplicate-absorption rate from it.
        if entry.get("submissions"):
            entry["dedup_hit_rate"] = (
                entry.get("dedup_hits", 0) / entry["submissions"]
            )
        report["benchmarks"][name] = entry

    # Paired fast-forward rows: "<cell>_ff" vs "<cell>_full" measure the
    # same simulation with and without steady-state replay.
    benches = report["benchmarks"]
    for name, entry in benches.items():
        if not name.endswith("_ff"):
            continue
        full = benches.get(name[: -len("_ff")] + "_full")
        if full and entry["seconds_per_op"] > 0:
            entry["speedup_vs_full"] = (
                full["seconds_per_op"] / entry["seconds_per_op"]
            )

    # Paired cache-temperature rows: "<load>_warm" vs "<load>_cold" run
    # the same duplicate-heavy load against a packed cache vs from scratch.
    for name, entry in benches.items():
        if not name.endswith("_warm"):
            continue
        cold = benches.get(name[: -len("_warm")] + "_cold")
        if cold and entry["seconds_per_op"] > 0:
            entry["speedup_warm_vs_cold"] = (
                cold["seconds_per_op"] / entry["seconds_per_op"]
            )

    if args.extra:
        with open(args.extra) as fh:
            report.update(json.load(fh))

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
