"""Tests for CC table construction (Table I)."""

import numpy as np
import pytest

from repro.core.cc_table import CCTable, build_cc_table, cc_table_from_values
from repro.core.profiler import TaskClassStats
from repro.errors import SearchError
from repro.machine.frequency import FrequencyScale, opteron_8380_scale
from repro.machine.operating_point import homogeneous_space
from repro.machine.topology import big_little_test_machine


def stats(name: str, count: int, mean: float) -> TaskClassStats:
    return TaskClassStats(function=name, count=count, mean_workload=mean)


class TestFluidTable:
    def test_fastest_row_formula(self):
        """CC[0][i] = n_i * w_i / T."""
        scale = opteron_8380_scale()
        table = build_cc_table(
            [stats("a", 10, 0.02), stats("b", 20, 0.005)], scale, ideal_time=0.05
        )
        assert table[0, 0] == pytest.approx(10 * 0.02 / 0.05)
        assert table[0, 1] == pytest.approx(20 * 0.005 / 0.05)

    def test_row_scaling_formula(self):
        """CC[j][i] = (F_0 / F_j) * CC[0][i] — Table I exactly."""
        scale = opteron_8380_scale()
        table = build_cc_table([stats("a", 8, 0.01)], scale, ideal_time=0.04)
        for j in range(scale.r):
            assert table[j, 0] == pytest.approx(scale.slowdown(j) * table[0, 0])

    def test_rows_increase_down_the_table(self):
        scale = opteron_8380_scale()
        table = build_cc_table([stats("a", 8, 0.01)], scale, ideal_time=0.04)
        col = table.column(0)
        assert all(col[j] < col[j + 1] for j in range(scale.r - 1))

    def test_unsorted_classes_rejected(self):
        scale = opteron_8380_scale()
        with pytest.raises(SearchError):
            build_cc_table(
                [stats("light", 10, 0.001), stats("heavy", 10, 0.1)],
                scale,
                ideal_time=0.05,
            )

    def test_empty_classes_rejected(self):
        with pytest.raises(SearchError):
            build_cc_table([], opteron_8380_scale(), ideal_time=1.0)

    def test_nonpositive_ideal_time_rejected(self):
        with pytest.raises(SearchError):
            build_cc_table([stats("a", 1, 0.1)], opteron_8380_scale(), ideal_time=0.0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(SearchError):
            build_cc_table(
                [stats("a", 1, 0.1)], opteron_8380_scale(), 1.0, mode="quantum"
            )


class TestDiscreteTable:
    def test_matches_fluid_for_fine_tasks(self):
        """Many tiny tasks: discrete demand is within one core of fluid."""
        scale = opteron_8380_scale()
        classes = [stats("a", 1000, 0.0001)]
        fluid = build_cc_table(classes, scale, ideal_time=0.05, mode="fluid")
        disc = build_cc_table(
            classes, scale, ideal_time=0.05, mode="discrete", headroom=0.0
        )
        for j in range(scale.r):
            assert disc[j, 0] >= fluid[j, 0] - 1e-9
            assert disc[j, 0] <= np.ceil(fluid[j, 0]) + 1.0

    def test_granularity_binds_coarse_tasks(self):
        """A class of 8 near-T tasks needs 8 cores, not the fluid count."""
        scale = opteron_8380_scale()
        table = build_cc_table(
            [stats("a", 8, 0.04)], scale, ideal_time=0.05, mode="discrete", headroom=0.0
        )
        assert table[0, 0] == pytest.approx(8.0)  # one task per core

    def test_infeasible_levels_are_inf(self):
        """A level where one task exceeds T is unusable."""
        scale = opteron_8380_scale()
        table = build_cc_table(
            [stats("a", 4, 0.04)], scale, ideal_time=0.05, mode="discrete", headroom=0.0
        )
        # At 0.8 GHz the task takes 0.04 * 2.5/0.8 = 0.125 > 0.05.
        assert np.isinf(table[3, 0])

    def test_headroom_tightens_feasibility(self):
        scale = opteron_8380_scale()
        # Task of 0.039 at F_1 takes 0.0542 < 0.06 — feasible without
        # headroom, rejected with 15% headroom (0.0623 > 0.06).
        loose = build_cc_table(
            [stats("a", 4, 0.039)], scale, 0.06, mode="discrete", headroom=0.0
        )
        tight = build_cc_table(
            [stats("a", 4, 0.039)], scale, 0.06, mode="discrete", headroom=0.15
        )
        assert np.isfinite(loose[1, 0])
        assert np.isinf(tight[1, 0])

    def test_f0_row_clamped_when_class_outgrows_t(self):
        """A class that no longer fits T even at F_0 stays schedulable."""
        scale = opteron_8380_scale()
        table = build_cc_table(
            [stats("a", 4, 0.08)], scale, ideal_time=0.05, mode="discrete"
        )
        assert np.isfinite(table[0, 0])
        assert table[0, 0] <= 4  # never more cores than tasks
        assert np.isinf(table[1, 0])

    def test_zero_count_class_demands_no_cores(self):
        """A class seen zero times this batch must not reserve capacity."""
        scale = opteron_8380_scale()
        table = build_cc_table(
            [stats("a", 4, 0.01), stats("b", 0, 0.005)],
            scale,
            ideal_time=0.05,
            mode="discrete",
        )
        assert all(table.column(1) == 0.0)

    def test_zero_workload_class_demands_no_cores(self):
        """Zero mean workload hits the task_time <= 0 branch, not a 0/0."""
        scale = opteron_8380_scale()
        for mode in ("fluid", "discrete"):
            table = build_cc_table(
                [stats("a", 4, 0.01), stats("b", 3, 0.0)],
                scale,
                ideal_time=0.05,
                mode=mode,
            )
            assert all(table.column(1) == 0.0)

    def test_zero_headroom_accepts_an_exact_fit(self):
        """headroom=0 is the boundary: a task taking exactly T is feasible."""
        scale = FrequencyScale((2.0e9, 1.0e9))
        table = build_cc_table(
            [stats("a", 6, 0.05)],
            scale,
            ideal_time=0.05,
            mode="discrete",
            headroom=0.0,
        )
        assert table[0, 0] == pytest.approx(6.0)  # one task per core
        assert np.isinf(table[1, 0])  # at half speed it no longer fits

    def test_negative_headroom_rejected(self):
        with pytest.raises(SearchError):
            build_cc_table(
                [stats("a", 1, 0.01)],
                opteron_8380_scale(),
                1.0,
                mode="discrete",
                headroom=-0.1,
            )


class TestDirectConstruction:
    def test_from_values(self):
        scale = FrequencyScale((2.0e9, 1.0e9))
        table = cc_table_from_values([[1.0, 2.0], [2.0, 4.0]], scale)
        assert table.k == 2 and table.r == 2
        assert table.class_names == ("TC0", "TC1")
        assert table.fastest_row_total() == pytest.approx(3.0)

    def test_shape_validation(self):
        scale = FrequencyScale((2.0e9, 1.0e9))
        with pytest.raises(SearchError):
            cc_table_from_values([[1.0, 2.0]], scale)  # 1 row for 2 levels
        with pytest.raises(SearchError):
            CCTable(
                scale=scale,
                class_names=("a",),
                values=np.array([[-1.0], [1.0]]),
                ideal_time=1.0,
            )


class TestNonUniformLadders:
    """CC tables over single-level and merged heterogeneous ladders."""

    def test_single_level_ladder(self):
        scale = homogeneous_space((2.0e9,))
        table = build_cc_table([stats("a", 10, 0.02)], scale, ideal_time=0.05)
        assert table.values.shape == (1, 1)
        assert table[0, 0] == pytest.approx(10 * 0.02 / 0.05)
        discrete = build_cc_table(
            [stats("a", 10, 0.02)], scale, ideal_time=0.05,
            mode="discrete", headroom=0.0,
        )
        # 0.05/0.02 → 2 tasks per core, ceil(10/2) = 5 cores.
        assert discrete[0, 0] == 5.0

    def test_big_little_fluid_table_pinned(self):
        """|OP| x k shape with exact dyadic values on the merged ladder."""
        scale = big_little_test_machine().scale
        table = build_cc_table(
            [stats("heavy", 3, 0.25), stats("light", 8, 0.0625)],
            scale,
            ideal_time=1.0,
        )
        assert table.values.shape == (scale.r, 2) == (8, 2)
        # Rows scale by *effective* slowdown [1,2,4,4,8,8,16,32]; the
        # machine is dyadic so every entry is exact.
        assert np.array_equal(
            table.column(0), [0.75, 1.5, 3.0, 3.0, 6.0, 6.0, 12.0, 24.0]
        )
        assert np.array_equal(
            table.column(1), [0.5, 1.0, 2.0, 2.0, 4.0, 4.0, 8.0, 16.0]
        )

    def test_big_little_tied_operating_points_have_equal_rows(self):
        # big@2^29 and little@2^30 retire equally fast: identical demand.
        scale = big_little_test_machine().scale
        table = build_cc_table([stats("a", 5, 0.125)], scale, ideal_time=1.0)
        assert np.array_equal(table.row(2), table.row(3))

    def test_big_little_discrete_table_pinned(self):
        scale = big_little_test_machine().scale
        table = build_cc_table(
            [stats("a", 6, 0.25)], scale, ideal_time=1.0,
            mode="discrete", headroom=0.0,
        )
        # Per-task time at op j is 0.25 * slowdown(j); ops slower than the
        # budget (2s and beyond) are infeasible for this class.
        assert np.array_equal(
            table.column(0), [2.0, 3.0, 6.0, 6.0] + [np.inf] * 4
        )

    def test_fluid_entries_can_be_non_integral(self):
        scale = big_little_test_machine().scale
        table = build_cc_table([stats("a", 3, 0.25)], scale, ideal_time=1.0)
        assert table[0, 0] == 0.75
        assert not float(table[0, 0]).is_integer()
