"""Result containers shared by the runner, the parallel runner, and Session.

Kept free of experiment-layer imports so both the scenario layer and the
experiment runners can depend on it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.machine.topology import MachineConfig
from repro.sim.engine import SimResult

__all__ = ["RunOutcome", "modal_levels_from_result"]


@dataclass(frozen=True)
class RunOutcome:
    """One benchmark under one policy, possibly over several seeds."""

    benchmark: str
    policy: str
    results: tuple[SimResult, ...]

    @property
    def time_mean(self) -> float:
        return sum(r.total_time for r in self.results) / len(self.results)

    @property
    def energy_mean(self) -> float:
        return sum(r.total_joules for r in self.results) / len(self.results)

    @property
    def first(self) -> SimResult:
        return self.results[0]


def modal_levels_from_result(
    result: SimResult,
    num_cores: int,
    machine: Optional[MachineConfig] = None,
) -> list[int]:
    """Expand a run's modal level histogram into a per-core level vector.

    On heterogeneous machines the trace histogram is indexed by *global
    operating point*, while a fixed level vector holds type-local DVFS
    levels — so each histogram bucket is mapped back to its core type's
    ladder and laid out over that type's contiguous core-id range.
    """
    hist = result.trace.modal_histogram()
    if hist is None:
        return [0] * num_cores
    if machine is None or not machine.is_heterogeneous:
        levels: list[int] = []
        for level, count in enumerate(hist):
            levels.extend([level] * count)
        return levels
    scale = machine.scale
    by_type: dict[str, list[int]] = {name: [] for name, _ in machine.capacities()}
    for op, count in enumerate(hist):
        by_type[scale.core_type_of(op)].extend([scale.type_level_of(op)] * count)
    return [
        level for name, _ in machine.capacities() for level in by_type[name]
    ]
