"""Canonical Huffman coding.

Implements the classic two-queue code construction plus canonical code
assignment so that the decoder only needs the per-symbol code lengths —
the scheme used by DEFLATE, bzip2 and the JPEG entropy stage.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import KernelError
from repro.kernels.bitio import BitReader, BitWriter

MAX_CODE_LENGTH = 32


def code_lengths(frequencies: dict[int, int]) -> dict[int, int]:
    """Huffman code length per symbol from its frequency.

    Zero-frequency symbols get no code. A single-symbol alphabet gets a
    1-bit code (the degenerate case every real format special-cases).
    """
    items = [(f, s) for s, f in frequencies.items() if f > 0]
    if not items:
        raise KernelError("cannot build a Huffman code for an empty alphabet")
    if any(f < 0 for f, _ in items):
        raise KernelError("frequencies must be non-negative")
    if len(items) == 1:
        return {items[0][1]: 1}

    # Heap of (weight, tiebreak, symbols-with-depths).
    heap: list[tuple[int, int, list[tuple[int, int]]]] = []
    for tiebreak, (freq, sym) in enumerate(sorted(items)):
        heapq.heappush(heap, (freq, tiebreak, [(sym, 0)]))
    counter = len(items)
    while len(heap) > 1:
        w1, _, g1 = heapq.heappop(heap)
        w2, _, g2 = heapq.heappop(heap)
        merged = [(s, d + 1) for s, d in g1] + [(s, d + 1) for s, d in g2]
        heapq.heappush(heap, (w1 + w2, counter, merged))
        counter += 1
    _, _, group = heap[0]
    lengths = {s: d for s, d in group}
    if max(lengths.values()) > MAX_CODE_LENGTH:
        raise KernelError("Huffman code length overflow")
    return lengths


def canonical_codes(lengths: dict[int, int]) -> dict[int, tuple[int, int]]:
    """Assign canonical (code, length) pairs from code lengths.

    Symbols are ordered by (length, symbol); codes count upward, shifting
    left at each length increase — the canonical construction.
    """
    if not lengths:
        raise KernelError("no code lengths given")
    order = sorted(lengths.items(), key=lambda kv: (kv[1], kv[0]))
    codes: dict[int, tuple[int, int]] = {}
    code = 0
    prev_len = order[0][1]
    for sym, length in order:
        code <<= length - prev_len
        codes[sym] = (code, length)
        code += 1
        prev_len = length
    return codes


@dataclass(frozen=True)
class HuffmanTable:
    """Encoder/decoder table built from symbol frequencies."""

    codes: dict[int, tuple[int, int]]

    @classmethod
    def from_frequencies(cls, frequencies: dict[int, int]) -> "HuffmanTable":
        return cls(canonical_codes(code_lengths(frequencies)))

    @classmethod
    def from_symbols(cls, symbols: Iterable[int]) -> "HuffmanTable":
        freq: dict[int, int] = {}
        for s in symbols:
            freq[s] = freq.get(s, 0) + 1
        return cls.from_frequencies(freq)

    def encode(self, symbols: Sequence[int], writer: BitWriter) -> None:
        for s in symbols:
            try:
                code, length = self.codes[s]
            except KeyError:
                raise KernelError(f"symbol {s} not in Huffman table") from None
            writer.write_bits(code, length)

    def decode(self, reader: BitReader, count: int) -> list[int]:
        """Decode exactly ``count`` symbols."""
        # Invert to (length, code) -> symbol for simple bit-at-a-time decode.
        inverse = {(ln, code): s for s, (code, ln) in self.codes.items()}
        max_len = max(ln for _, ln in self.codes.values())
        out: list[int] = []
        for _ in range(count):
            code = 0
            length = 0
            while True:
                code = (code << 1) | reader.read_bit()
                length += 1
                sym = inverse.get((length, code))
                if sym is not None:
                    out.append(sym)
                    break
                if length > max_len:
                    raise KernelError("invalid Huffman bit stream")
        return out


def huffman_compress(symbols: Sequence[int]) -> tuple[bytes, HuffmanTable, int]:
    """Compress a symbol sequence; returns (payload, table, symbol count)."""
    table = HuffmanTable.from_symbols(symbols)
    writer = BitWriter()
    table.encode(symbols, writer)
    return writer.getvalue(), table, len(symbols)


def huffman_decompress(payload: bytes, table: HuffmanTable, count: int) -> list[int]:
    """Inverse of :func:`huffman_compress`."""
    return table.decode(BitReader(payload), count)
