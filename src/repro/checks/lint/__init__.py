"""Repo-specific AST lint framework.

Generic linters cannot know that everything stochastic in this codebase must
flow through the named :class:`~repro.sim.rng.RngStreams` registry, or that
the simulator clock is the only legal notion of time inside ``sim/`` and
``runtime/``. These rules encode exactly those contracts; they are what
makes "byte-identical deterministic simulation" a property a refactor
cannot silently break.

Each rule is a small class with a stable ID (``EEWA001``...), a severity,
and a path scope. The engine parses each file once, tracks import aliases
(so ``import numpy as np`` and ``from random import random`` are both
resolved), and dispatches every AST node to every in-scope rule.

Findings can be suppressed per line with a trailing comment::

    value = random.random()  # eewa: disable=EEWA001

``# eewa: disable`` (no rule list) suppresses every rule on that line.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from repro.checks.findings import Finding, Severity

_SUPPRESS_RE = re.compile(r"#\s*eewa:\s*disable(?:=(?P<rules>[A-Z0-9, ]+))?")

#: Sentinel in a suppression set meaning "all rules".
ALL_RULES = "*"


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> suppressed rule ids (or ``{ALL_RULES}``).

    Uses the tokenizer rather than a regex over raw lines so a ``# eewa:``
    inside a string literal is not treated as a directive.
    """
    suppressions: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(keepends=True)).__next__)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            rules = match.group("rules")
            ids = (
                {r.strip() for r in rules.split(",") if r.strip()}
                if rules
                else {ALL_RULES}
            )
            suppressions.setdefault(tok.start[0], set()).update(ids)
    except tokenize.TokenError:  # eewa: disable=EEWA006 - lint what parses
        pass
    return suppressions


@dataclass
class ImportTable:
    """Alias-aware view of a module's imports.

    ``modules`` maps local alias -> dotted module path (``np`` ->
    ``numpy``); ``names`` maps local alias -> ``module.attr`` for
    ``from module import attr`` bindings.
    """

    modules: dict[str, str] = field(default_factory=dict)
    names: dict[str, str] = field(default_factory=dict)

    def record(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                self.modules[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                self.names[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    def resolve_call_target(self, func: ast.expr) -> Optional[str]:
        """Dotted path of a call target, e.g. ``numpy.random.seed``.

        Resolves through import aliases; returns ``None`` for calls on
        local objects (``self.rng.random()``) — those are assumed to go
        through an instance, which is exactly what the registry provides.
        """
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = parts[0]
        if head in self.names:
            return ".".join([self.names[head]] + parts[1:])
        if head in self.modules:
            return ".".join([self.modules[head]] + parts[1:])
        return None


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may consult about the file under lint."""

    path: str  # repo-relative posix path
    tree: ast.Module
    imports: ImportTable
    source: str


class Rule:
    """Base class for one lint rule."""

    id: str = "EEWA000"
    severity: Severity = Severity.ERROR
    description: str = ""

    def applies_to(self, path: str) -> bool:
        """Whether this rule is in scope for a repo-relative posix path."""
        return True

    def check_node(self, node: ast.AST, ctx: FileContext) -> Iterable[tuple[ast.AST, str]]:
        """Yield ``(anchor_node, message)`` pairs for defects at ``node``."""
        return ()

    def finding(self, node: ast.AST, message: str, ctx: FileContext) -> Finding:
        return Finding(
            check="lint",
            rule_id=self.id,
            severity=self.severity,
            location=ctx.path,
            message=message,
            line=getattr(node, "lineno", 0),
            column=getattr(node, "col_offset", -1) + 1,
        )


def _relative_path(path: Path, root: Optional[Path]) -> str:
    """Repo-relative posix path when possible, absolute posix otherwise."""
    resolved = path.resolve()
    if root is not None:
        try:
            return resolved.relative_to(root.resolve()).as_posix()
        except ValueError:
            return resolved.as_posix()  # outside the repo root
    return resolved.as_posix()


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files and directories into a sorted stream of ``*.py`` files."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_source(
    source: str,
    path: str,
    rules: Sequence[Rule],
) -> list[Finding]:
    """Lint one already-read file against ``rules``. ``path`` is the
    repo-relative posix path used for scoping and reporting."""
    active = [rule for rule in rules if rule.applies_to(path)]
    if not active:
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                check="lint",
                rule_id="EEWA000",
                severity=Severity.ERROR,
                location=path,
                message=f"file does not parse: {exc.msg}",
                line=exc.lineno or 0,
                column=exc.offset or 0,
            )
        ]
    imports = ImportTable()
    for node in ast.walk(tree):
        imports.record(node)
    ctx = FileContext(path=path, tree=tree, imports=imports, source=source)
    suppressions = parse_suppressions(source)

    findings: list[Finding] = []
    for node in ast.walk(tree):
        for rule in active:
            for anchor, message in rule.check_node(node, ctx):
                finding = rule.finding(anchor, message, ctx)
                suppressed = suppressions.get(finding.line, set())
                if ALL_RULES in suppressed or rule.id in suppressed:
                    continue
                findings.append(finding)
    return findings


def lint_paths(
    paths: Sequence[Path],
    *,
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[Path] = None,
) -> list[Finding]:
    """Lint every Python file under ``paths`` with ``rules``.

    ``root`` anchors repo-relative paths for scoping; default is the
    current working directory.
    """
    from repro.checks.lint.rules import default_rules

    if rules is None:
        rules = default_rules()
    if root is None:
        root = Path.cwd()
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        rel = _relative_path(file_path, root)
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(
                Finding(
                    check="lint",
                    rule_id="EEWA000",
                    severity=Severity.ERROR,
                    location=rel,
                    message=f"unreadable file: {exc}",
                )
            )
            continue
        findings.extend(lint_source(source, rel, rules))
    return findings
