"""Cross-validate the analytic model against the simulator.

Runs every cell of the calibration grid — the 30 jittered golden cells
(``tests/sim/golden_gen.py``) plus the 8 long-horizon periodic cells
(``tests/sim/golden_longhorizon_gen.py``) — through both the simulator
and :func:`repro.model.predict.predict_cell`, and reports per-cell
relative error on makespan and energy. This is the source of the
calibrated envelope in :mod:`repro.model.bounds` and the CI gate::

    PYTHONPATH=src python -m repro.model.validate

Exit status is non-zero if any *eligible* cell (per
:func:`repro.model.bounds.classify_cell`) exceeds
:data:`repro.model.bounds.MAX_RELATIVE_ERROR` on either metric.
"""

from __future__ import annotations

import argparse
import dataclasses
import time
from typing import Iterator, Optional

from repro.core.adjuster import OverheadModel
from repro.core.eewa import EEWAConfig
from repro.experiments.runner import make_policy
from repro.machine.topology import (
    MachineConfig,
    dyadic_test_machine,
    opteron_8380_machine,
)
from repro.model.bounds import MAX_RELATIVE_ERROR, classify_cell
from repro.model.predict import predict_cell
from repro.runtime.task import Batch, TaskSpec, flat_batch
from repro.sim.engine import simulate
from repro.workloads.benchmarks import benchmark_program
from repro.workloads.periodic import periodic_program

#: Mirrors tests/sim/golden_gen.py (the 30-cell jittered grid).
GOLDEN_SEEDS = (11, 23, 37)
GOLDEN_BENCHMARKS = ("SHA-1", "BWC")
GOLDEN_BATCHES = 3
WATS_LEVELS_16 = [0] * 8 + [1] * 4 + [3] * 4
_REF = 2.5e9

#: Mirrors tests/sim/golden_longhorizon_gen.py (the 8-cell periodic grid).
LONGHORIZON_SEEDS = (11, 23)
LONGHORIZON_POLICIES = ("cilk", "cilk-d", "wats", "eewa")
LONGHORIZON_BATCHES = 120
WATS_LEVELS_8 = [0, 0, 0, 0, 2, 2, 2, 2]
DYADIC_OVERHEAD = OverheadModel(base_seconds=2.0**-11, per_cell_seconds=2.0**-17)
DYADIC_EEWA = EEWAConfig(overhead_model=DYADIC_OVERHEAD)


def _spawn_program() -> list[Batch]:
    child = TaskSpec("leaf", cpu_cycles=0.002 * _REF)
    mid = TaskSpec("mid", cpu_cycles=0.004 * _REF, children=(child, child))
    roots = [
        TaskSpec("root", cpu_cycles=0.006 * _REF, children=(mid, child))
        for _ in range(24)
    ]
    return [flat_batch(0, roots), flat_batch(1, roots)]


@dataclasses.dataclass(frozen=True)
class ValidationCell:
    """One calibration-grid cell: everything both paths need."""

    name: str
    program: tuple[Batch, ...]
    policy: str
    machine: MachineConfig
    seed: int
    core_levels: Optional[list[int]] = None
    eewa_config: Optional[EEWAConfig] = None


@dataclasses.dataclass(frozen=True)
class ValidationRow:
    """Sim-vs-model comparison for one cell."""

    cell: str
    policy: str
    eligible: bool
    reason: Optional[str]
    sim_time: float
    sim_joules: float
    model_time: Optional[float]
    model_joules: Optional[float]
    time_error: Optional[float]
    joules_error: Optional[float]
    sim_seconds: float  # wall-clock of the simulation
    model_seconds: float  # wall-clock of the prediction

    @property
    def max_error(self) -> Optional[float]:
        if self.time_error is None or self.joules_error is None:
            return None
        return max(self.time_error, self.joules_error)

    @property
    def within_bounds(self) -> Optional[bool]:
        if self.max_error is None:
            return None
        return self.max_error <= MAX_RELATIVE_ERROR


def calibration_cells() -> Iterator[ValidationCell]:
    """The full grid: 30 golden cells + 8 long-horizon cells."""
    golden = opteron_8380_machine()
    for benchmark in GOLDEN_BENCHMARKS:
        for policy in ("cilk", "cilk-d", "wats", "eewa"):
            for seed in GOLDEN_SEEDS:
                program = benchmark_program(
                    benchmark, batches=GOLDEN_BATCHES, seed=seed
                )
                yield ValidationCell(
                    name=f"{benchmark}/{policy}/seed{seed}",
                    program=tuple(program),
                    policy=policy,
                    machine=golden,
                    seed=seed,
                    core_levels=WATS_LEVELS_16 if policy == "wats" else None,
                )
    for policy in ("cilk", "eewa"):
        for seed in GOLDEN_SEEDS:
            yield ValidationCell(
                name=f"spawn-tree/{policy}/seed{seed}",
                program=tuple(_spawn_program()),
                policy=policy,
                machine=golden,
                seed=seed,
            )
    dyadic = dyadic_test_machine(num_cores=8)
    for policy in LONGHORIZON_POLICIES:
        for seed in LONGHORIZON_SEEDS:
            yield ValidationCell(
                name=f"periodic/{policy}/seed{seed}",
                program=tuple(periodic_program(LONGHORIZON_BATCHES, 4, 8)),
                policy=policy,
                machine=dyadic,
                seed=seed,
                core_levels=WATS_LEVELS_8 if policy == "wats" else None,
                eewa_config=DYADIC_EEWA if policy == "eewa" else None,
            )


def _relative(model: float, sim: float) -> float:
    if sim == 0:
        return 0.0 if model == 0 else float("inf")
    return abs(model - sim) / abs(sim)


def validate_cell(cell: ValidationCell) -> ValidationRow:
    """Run one cell through both paths and compare."""
    verdict = classify_cell(
        cell.program,
        cell.policy,
        cell.machine,
        core_levels=cell.core_levels,
        eewa_config=cell.eewa_config,
    )
    t0 = time.perf_counter()
    policy_obj = make_policy(
        cell.policy, core_levels=cell.core_levels, eewa_config=cell.eewa_config
    )
    sim = simulate(list(cell.program), policy_obj, cell.machine, seed=cell.seed)
    sim_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    model = predict_cell(
        cell.program,
        cell.policy,
        cell.machine,
        cell.seed,
        core_levels=cell.core_levels,
        eewa_config=cell.eewa_config,
    )
    model_seconds = time.perf_counter() - t0
    eligible = verdict.eligible
    reason = verdict.reason
    if model is None and eligible:
        # Structurally in-envelope but dynamically declined — e.g. a
        # mixed-speed schedule whose makespan turned out to be placement-
        # rotation (seed) dependent. Not a calibration failure.
        eligible = False
        reason = "declined at prediction time (seed-dependent schedule)"
    return ValidationRow(
        cell=cell.name,
        policy=cell.policy,
        eligible=eligible,
        reason=reason,
        sim_time=sim.total_time,
        sim_joules=sim.total_joules,
        model_time=model.total_time if model else None,
        model_joules=model.total_joules if model else None,
        time_error=_relative(model.total_time, sim.total_time) if model else None,
        joules_error=(
            _relative(model.total_joules, sim.total_joules) if model else None
        ),
        sim_seconds=sim_seconds,
        model_seconds=model_seconds,
    )


def run_validation() -> list[ValidationRow]:
    """Validate the whole calibration grid (38 cells)."""
    return [validate_cell(cell) for cell in calibration_cells()]


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Cross-validate the analytic model against the simulator."
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list structurally declined cells",
    )
    args = parser.parse_args(argv)

    rows = run_validation()
    failures = 0
    print(
        f"{'cell':<28} {'policy':<7} {'time err':>9} {'joule err':>9} "
        f"{'speedup':>8}  status"
    )
    for row in rows:
        if row.model_time is None:
            if args.verbose:
                print(
                    f"{row.cell:<28} {row.policy:<7} {'-':>9} {'-':>9} "
                    f"{'-':>8}  declined: {row.reason}"
                )
            continue
        speedup = row.sim_seconds / row.model_seconds if row.model_seconds else 0.0
        if not row.eligible:
            status = f"ineligible: {row.reason}"
        elif row.within_bounds:
            status = "ok"
        else:
            status = f"FAIL (> {MAX_RELATIVE_ERROR:.0%})"
            failures += 1
        print(
            f"{row.cell:<28} {row.policy:<7} {row.time_error:>9.4%} "
            f"{row.joules_error:>9.4%} {speedup:>7.0f}x  {status}"
        )
    eligible = [r for r in rows if r.eligible]
    errs = sorted(r.max_error for r in eligible)
    if errs:
        print(
            f"\n{len(eligible)} eligible cells; max error "
            f"{errs[-1]:.4%}, median {errs[len(errs) // 2]:.4%} "
            f"(bound {MAX_RELATIVE_ERROR:.0%})"
        )
    if failures:
        print(f"{failures} eligible cell(s) exceeded the error bound")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
