"""SHA-1 cryptographic hash (FIPS 180-1), implemented from scratch.

The SHA-1 benchmark of Table II. Same incremental interface as
:class:`repro.kernels.md5.MD5`; verified against :mod:`hashlib` in tests.
"""

from __future__ import annotations

import struct

_INIT = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)


def _rotl(value: int, amount: int) -> int:
    value &= 0xFFFFFFFF
    return ((value << amount) | (value >> (32 - amount))) & 0xFFFFFFFF


class SHA1:
    """Incremental SHA-1, 64-byte block pipeline."""

    block_size = 64
    digest_size = 20

    def __init__(self, data: bytes = b"") -> None:
        self._state = list(_INIT)
        self._length = 0
        self._buffer = b""
        if data:
            self.update(data)

    def update(self, data: bytes) -> "SHA1":
        self._length += len(data)
        buffer = self._buffer + data
        offset = 0
        while offset + 64 <= len(buffer):
            self._compress(buffer[offset : offset + 64])
            offset += 64
        self._buffer = buffer[offset:]
        return self

    def _compress(self, block: bytes) -> None:
        w = list(struct.unpack(">16I", block))
        for i in range(16, 80):
            w.append(_rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1))
        a, b, c, d, e = self._state
        for i in range(80):
            if i < 20:
                f = (b & c) | (~b & d)
                k = 0x5A827999
            elif i < 40:
                f = b ^ c ^ d
                k = 0x6ED9EBA1
            elif i < 60:
                f = (b & c) | (b & d) | (c & d)
                k = 0x8F1BBCDC
            else:
                f = b ^ c ^ d
                k = 0xCA62C1D6
            temp = (_rotl(a, 5) + f + e + k + w[i]) & 0xFFFFFFFF
            e, d, c, b, a = d, c, _rotl(b, 30), a, temp
        self._state = [
            (s + v) & 0xFFFFFFFF for s, v in zip(self._state, (a, b, c, d, e))
        ]

    def digest(self) -> bytes:
        clone = SHA1()
        clone._state = list(self._state)
        clone._length = self._length
        clone._buffer = self._buffer
        bit_length = clone._length * 8
        padding = b"\x80" + b"\x00" * ((55 - clone._length) % 64)
        clone.update(padding + struct.pack(">Q", bit_length & 0xFFFFFFFFFFFFFFFF))
        return struct.pack(">5I", *clone._state)

    def hexdigest(self) -> str:
        return self.digest().hex()


def sha1_digest(data: bytes) -> bytes:
    return SHA1(data).digest()


def sha1_hexdigest(data: bytes) -> str:
    return SHA1(data).hexdigest()
