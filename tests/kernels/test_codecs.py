"""Unit tests for RLE, MTF and Huffman codecs."""

import pytest

from repro.errors import KernelError
from repro.kernels.bitio import BitReader, BitWriter
from repro.kernels.huffman import (
    HuffmanTable,
    canonical_codes,
    code_lengths,
    huffman_compress,
    huffman_decompress,
)
from repro.kernels.mtf import mtf_decode, mtf_encode
from repro.kernels.rle import (
    rle2_decode_zeros,
    rle2_encode_zeros,
    rle_decode,
    rle_encode,
)


class TestRle1:
    def test_short_runs_verbatim(self):
        assert rle_encode(b"abcabc") == b"abcabc"

    def test_long_run_compressed(self):
        assert rle_encode(b"a" * 10) == b"aaaa" + bytes([6])

    def test_exact_threshold_run(self):
        assert rle_encode(b"a" * 4) == b"aaaa" + bytes([0])

    def test_roundtrip_cases(self):
        for data in (b"", b"x", b"aaab", b"a" * 300, b"ab" * 50, b"aaaabbbbcccc"):
            assert rle_decode(rle_encode(data)) == data

    def test_truncated_run_raises(self):
        with pytest.raises(KernelError):
            rle_decode(b"aaaa")  # count byte missing


class TestRle2:
    def test_zero_runs_use_runa_runb(self):
        out = rle2_encode_zeros([0, 0, 0])
        assert all(s in (0, 1) for s in out)

    def test_nonzero_shifted_up(self):
        assert rle2_encode_zeros([5]) == [6]

    def test_roundtrip(self):
        cases = [
            [],
            [0],
            [0] * 17,
            [1, 2, 3],
            [0, 0, 5, 0, 0, 0, 1, 0],
            list(range(0, 20)) + [0] * 9,
        ]
        for symbols in cases:
            assert rle2_decode_zeros(rle2_encode_zeros(symbols)) == symbols

    def test_negative_rejected(self):
        with pytest.raises(KernelError):
            rle2_encode_zeros([-1])


class TestMtf:
    def test_repeated_bytes_become_zeros(self):
        out = mtf_encode(b"aaaa")
        assert out[1:] == [0, 0, 0]

    def test_roundtrip(self):
        for data in (b"", b"banana", bytes(range(256)), b"mississippi" * 3):
            assert mtf_decode(mtf_encode(data)) == data

    def test_decode_invalid_symbol(self):
        with pytest.raises(KernelError):
            mtf_decode([256])


class TestHuffman:
    def test_code_lengths_favour_frequent_symbols(self):
        lengths = code_lengths({0: 100, 1: 10, 2: 1})
        assert lengths[0] <= lengths[1] <= lengths[2]

    def test_kraft_equality(self):
        """Huffman lengths satisfy the Kraft sum == 1 (full binary tree)."""
        lengths = code_lengths({i: (i + 1) ** 2 for i in range(20)})
        assert sum(2 ** -l for l in lengths.values()) == pytest.approx(1.0)

    def test_canonical_codes_prefix_free(self):
        lengths = code_lengths({i: i + 1 for i in range(10)})
        codes = canonical_codes(lengths)
        items = [(format(c, f"0{l}b")) for c, l in codes.values()]
        for i, a in enumerate(items):
            for j, b in enumerate(items):
                if i != j:
                    assert not b.startswith(a)

    def test_single_symbol_alphabet(self):
        payload, table, count = huffman_compress([7, 7, 7])
        assert huffman_decompress(payload, table, count) == [7, 7, 7]

    def test_roundtrip(self):
        symbols = [0, 1, 1, 2, 2, 2, 3, 3, 3, 3] * 20
        payload, table, count = huffman_compress(symbols)
        assert huffman_decompress(payload, table, count) == symbols

    def test_compresses_skewed_data(self):
        symbols = [0] * 1000 + [1] * 10
        payload, _, _ = huffman_compress(symbols)
        assert len(payload) < len(symbols) / 4

    def test_unknown_symbol_rejected(self):
        table = HuffmanTable.from_symbols([1, 2, 3])
        with pytest.raises(KernelError):
            table.encode([9], BitWriter())

    def test_empty_alphabet_rejected(self):
        with pytest.raises(KernelError):
            code_lengths({})

    def test_corrupt_stream_detected(self):
        payload, table, count = huffman_compress([1, 2, 3, 1, 2, 3])
        with pytest.raises(KernelError):
            table.decode(BitReader(b"\xff" * 2), 100)
