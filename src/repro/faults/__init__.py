"""Deterministic fault injection for the scheduler stack.

Real platforms break the paper's clean-room assumptions: DVFS requests
are denied or complete late, cores drop offline for transient windows,
and PMU readings are noisy. This package models those perturbations as a
JSON-round-trippable :class:`~repro.faults.spec.FaultSpec` consumed by the
engine, with every fault drawn from a dedicated
:meth:`~repro.sim.rng.RngStreams.spawn_child` registry so runs stay
deterministic and the parent policy/workload streams are never perturbed.

:mod:`repro.faults.matrix` defines the standard fault matrix that
conformance check #8 and the ``python -m repro.faults.matrix`` CI gate run
every registered policy through.
"""

from repro.faults.injector import FaultInjector
from repro.faults.spec import FAULT_SCHEMA_VERSION, FaultSpec

__all__ = ["FAULT_SCHEMA_VERSION", "FaultInjector", "FaultSpec"]
