"""Fig. 7 — Cilk and WATS on EEWA-chosen asymmetric configurations.

For each benchmark the machine is *fixed* at the most-used frequency
configuration EEWA picked (its modal per-batch c-group layout, Fig. 8
style); Cilk and WATS then run on that asymmetric machine while EEWA keeps
its own dynamic control.

Paper shape targets: Cilk's time is 1.17-2.92x EEWA's (random stealing puts
heavy tasks on slow cores), WATS's is 1.05-1.24x (workload-aware placement
but no per-batch DVFS adaptation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.report import format_table
from repro.machine.topology import MachineConfig
from repro.scenario.session import Session
from repro.scenario.spec import (
    DEFAULT_SEEDS,
    MachineSpec,
    PolicySpec,
    ScenarioSpec,
)
from repro.workloads.benchmarks import BENCHMARK_NAMES


@dataclass(frozen=True)
class Fig7Row:
    """Execution times relative to EEWA (EEWA = 1.0)."""

    benchmark: str
    cilk_over_eewa: float
    wats_over_eewa: float
    fixed_levels: tuple[int, ...]


@dataclass(frozen=True)
class Fig7Result:
    rows: tuple[Fig7Row, ...]

    def table(self) -> str:
        return format_table(
            ["benchmark", "cilk/eewa", "wats/eewa", "fixed config (cores/level)"],
            [
                (
                    r.benchmark,
                    r.cilk_over_eewa,
                    r.wats_over_eewa,
                    _histogram(r.fixed_levels),
                )
                for r in self.rows
            ],
            title="Fig. 7 — time on EEWA-chosen asymmetric configs (EEWA = 1.0)",
        )


def _histogram(levels: Sequence[int]) -> str:
    counts: dict[int, int] = {}
    for lv in levels:
        counts[lv] = counts.get(lv, 0) + 1
    return " ".join(f"F{lv}:{counts[lv]}" for lv in sorted(counts))


def run_fig7(
    *,
    machine: Optional[MachineConfig] = None,
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    batches: int | None = None,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    include_phased: bool = True,
    parallel: bool = False,
    workers: int | None = None,
    cache_dir: str | None = None,
) -> Fig7Result:
    """Regenerate Fig. 7's data.

    ``include_phased`` appends the ``DMC-phased`` row: the Table II
    benchmarks are stationary batch-to-batch, and on stationary workloads a
    fixed configuration with workload-aware stealing matches EEWA — the
    paper's WATS gap (1.05-1.24x) appears when the workload composition
    varies across batches, which the phased workload reproduces.

    Two scenario waves through one Session: the EEWA runs (which also
    yield each benchmark's modal configuration — the modal cell *is* the
    first-seed EEWA cell, shared via the cache), then Cilk and WATS pinned
    to those configurations. ``parallel=True`` fans each wave across a
    process pool with result caching; results are identical either way.
    """
    names = list(benchmarks) + (["DMC-phased"] if include_phased else [])
    session = Session.for_experiment(
        parallel=parallel, workers=workers, cache_dir=cache_dir
    )
    machine_spec = (
        MachineSpec() if machine is None else MachineSpec.inline(machine)
    )
    eewa_grid = [
        ScenarioSpec(
            workload=name, policy="eewa", machine=machine_spec,
            seeds=tuple(seeds), batches=batches,
        )
        for name in names
    ]
    levels_by_name = {
        name: tuple(session.modal_eewa_levels(spec))
        for name, spec in zip(names, eewa_grid)
    }
    eewa_outcomes = session.run_grid(eewa_grid)
    fixed = session.run_grid(
        [
            ScenarioSpec(
                workload=name,
                policy=PolicySpec(policy, core_levels=levels_by_name[name]),
                machine=machine_spec,
                seeds=tuple(seeds),
                batches=batches,
            )
            for name in names
            for policy in ("cilk", "wats")
        ]
    )
    rows = []
    for i, (name, eewa) in enumerate(zip(names, eewa_outcomes)):
        cilk, wats = fixed[2 * i], fixed[2 * i + 1]
        rows.append(
            Fig7Row(
                benchmark=name,
                cilk_over_eewa=cilk.time_mean / eewa.time_mean,
                wats_over_eewa=wats.time_mean / eewa.time_mean,
                fixed_levels=levels_by_name[name],
            )
        )
    return Fig7Result(rows=tuple(rows))
