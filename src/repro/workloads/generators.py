"""Deterministic batch generation from workload specs.

Given a :class:`~repro.workloads.spec.WorkloadSpec` and a seed, the
generator emits the program (list of batches of
:class:`~repro.runtime.task.TaskSpec`) that the simulator executes. All
randomness comes from named seeded streams, so the same (spec, seed) always
yields the identical program — the property the reproducibility tests rely
on.
"""

from __future__ import annotations

from typing import Sequence

from repro.machine.counters import PerfCounters
from repro.machine.frequency import GHZ
from repro.runtime.task import Batch, TaskSpec, flat_batch
from repro.sim.rng import RngStreams
from repro.workloads.spec import TaskClassSpec, WorkloadSpec

#: Default reference frequency: task mean times are given at F_0 = 2.5 GHz.
DEFAULT_REF_FREQUENCY = 2.5 * GHZ

#: Simulated instructions retired per cycle (only the miss *ratio* matters
#: to the classifier, so any consistent constant works).
_IPC = 1.0

#: Clamp for the per-class drift random walk so workloads stay recognisable.
_DRIFT_MIN, _DRIFT_MAX = 0.7, 1.4


def _task_spec(
    cls: TaskClassSpec,
    work_seconds: float,
    ref_frequency: float,
) -> TaskSpec:
    mem_stall = work_seconds * cls.mem_stall_fraction
    cpu_seconds = work_seconds - mem_stall
    cpu_cycles = cpu_seconds * ref_frequency
    instructions = max(1, int(cpu_cycles * _IPC))
    misses = int(instructions * cls.miss_intensity)
    return TaskSpec(
        function=cls.name,
        cpu_cycles=cpu_cycles,
        mem_stall_seconds=mem_stall,
        counters=PerfCounters(retired_instructions=instructions, cache_misses=misses),
    )


def generate_program(
    spec: WorkloadSpec,
    *,
    batches: int | None = None,
    seed: int = 0,
    ref_frequency: float = DEFAULT_REF_FREQUENCY,
) -> list[Batch]:
    """Generate the full program for ``spec``.

    Per batch, each class's mean follows a clamped lognormal random walk
    (drift); each task jitters lognormally around the drifted mean; the
    batch's task order is shuffled so placement does not accidentally
    presort classes.
    """
    if batches is None:
        batches = spec.default_batches
    if batches < 1:
        raise ValueError("batches must be >= 1")

    rng = RngStreams(seed)
    drift = {c.name: 1.0 for c in spec.classes}

    program: list[Batch] = []
    for b in range(batches):
        specs: list[TaskSpec] = []
        for cls in spec.classes:
            if b > 0:
                step = rng.lognormal_factor(f"drift.{spec.name}.{cls.name}", cls.drift_sigma)
                drift[cls.name] = min(_DRIFT_MAX, max(_DRIFT_MIN, drift[cls.name] * step))
            mean = cls.mean_seconds * drift[cls.name]
            for _ in range(cls.count_in_batch(b)):
                jitter = rng.lognormal_factor(f"jitter.{spec.name}.{cls.name}", cls.jitter_sigma)
                specs.append(_task_spec(cls, mean * jitter, ref_frequency))
        shuffled = rng.shuffled(f"order.{spec.name}", range(len(specs)))
        ordered = [specs[i] for i in shuffled]
        # Spawn heavy tasks last: owner deques pop LIFO, so the last-pushed
        # (heaviest) tasks start first — the LPT-style spawn order a sane
        # Cilk program uses and the strongest-possible baseline behaviour.
        ordered.sort(key=lambda s: s.cpu_cycles + s.mem_stall_seconds * ref_frequency)
        program.append(flat_batch(b, ordered))
    return program


def program_total_work(program: Sequence[Batch]) -> float:
    """Total CPU cycles across all batches (conservation checks)."""
    return sum(batch.total_cpu_cycles() for batch in program)
