"""The standard fault matrix and the resilience gate it drives.

:data:`STANDARD_FAULT_MATRIX` is the fixed set of fault mixes that every
registered policy must *complete* under — 100% of tasks executed, however
degraded the timing and energy. Conformance check #8
(:mod:`repro.runtime.conformance`) runs it per policy; ``python -m
repro.faults.matrix`` is the CI gate that runs it over the whole registry
and prints the energy/makespan degradation of each cell against its
fault-free baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.spec import FaultSpec
from repro.machine.counters import PerfCounters
from repro.machine.topology import MachineConfig, small_test_machine
from repro.runtime.task import Batch, TaskSpec, flat_batch
from repro.sim.engine import simulate

#: Named fault mixes every registered policy must survive. Rates are
#: aggressive enough to fire many times per run on the battery program,
#: yet every window is transient — completion is always reachable.
STANDARD_FAULT_MATRIX: tuple[tuple[str, FaultSpec], ...] = (
    ("dvfs-deny", FaultSpec(dvfs_deny_rate=0.5, dvfs_deny_penalty_s=2e-4)),
    ("dvfs-slow", FaultSpec(dvfs_delay_rate=1.0, dvfs_delay_s=5e-4)),
    ("core-stall", FaultSpec(stall_rate=0.05, stall_duration_s=2e-3)),
    (
        "counter-noise",
        FaultSpec(counter_noise_rate=0.5, counter_noise_intensity=0.2),
    ),
    (
        "combined",
        FaultSpec(
            dvfs_deny_rate=0.3,
            dvfs_deny_penalty_s=2e-4,
            dvfs_delay_rate=0.5,
            dvfs_delay_s=5e-4,
            stall_rate=0.02,
            stall_duration_s=2e-3,
            counter_noise_rate=0.25,
            counter_noise_intensity=0.1,
        ),
    ),
)

_REF = 2.0e9  # fastest level of the battery machine
_SEED = 9


def standard_machine() -> MachineConfig:
    """The conformance battery's machine (4 cores, 3 levels)."""
    return small_test_machine(num_cores=4, levels=(2.0e9, 1.5e9, 1.0e9))


def standard_program(batches: int = 3) -> list[Batch]:
    """Imbalanced flat batches whose tasks carry PMU counters, so every
    fault channel (including counter corruption) has something to hit."""
    sizes = [0.004] * 9 + [0.03]
    return [
        flat_batch(
            i,
            [
                TaskSpec(
                    f"c{j % 3}",
                    cpu_cycles=s * _REF,
                    counters=PerfCounters(
                        retired_instructions=int(s * _REF),
                        cache_misses=int(s * _REF) // 1000,
                    ),
                )
                for j, s in enumerate(sizes)
            ],
        )
        for i in range(batches)
    ]


@dataclass(frozen=True)
class ResilienceRow:
    """One (policy × fault mix) cell of the resilience report."""

    policy: str
    fault: str
    tasks_executed: int
    tasks_expected: int
    time_ratio: float
    energy_ratio: float

    @property
    def completed(self) -> bool:
        return self.tasks_executed == self.tasks_expected


def policy_resilience(factory, *, machine=None, seed=_SEED) -> list[ResilienceRow]:
    """Run one policy through the standard matrix vs its clean baseline.

    ``factory`` must return a fresh policy per call. Fault draws come from
    the engine's dedicated RNG child, so the baseline run (same seed, no
    faults) is bit-identical to a run that never imported this module.
    """
    if machine is None:
        machine = standard_machine()
    program = standard_program()
    baseline = simulate(program, factory(), machine, seed=seed)
    rows = []
    for fault_name, spec in STANDARD_FAULT_MATRIX:
        result = simulate(program, factory(), machine, seed=seed, faults=spec)
        rows.append(
            ResilienceRow(
                policy=baseline.policy_name,
                fault=fault_name,
                tasks_executed=result.tasks_executed,
                tasks_expected=baseline.tasks_executed,
                time_ratio=result.total_time / baseline.total_time,
                energy_ratio=result.total_joules / baseline.total_joules,
            )
        )
    return rows


def registered_resilience(*, machine=None) -> list[ResilienceRow]:
    """The full gate: every registered policy through the matrix."""
    # Imported here: the scenario layer imports runtime modules, so a
    # module-level import would be circular.
    from repro.scenario.registry import POLICIES, spread_levels_for

    if machine is None:
        machine = standard_machine()
    rows: list[ResilienceRow] = []
    for entry in POLICIES:
        levels = spread_levels_for(machine) if entry.needs_core_levels else None

        def factory(entry=entry, levels=levels):
            return entry.build(core_levels=levels)

        rows.extend(policy_resilience(factory, machine=machine))
    return rows


def format_resilience(rows: list[ResilienceRow]) -> str:
    lines = [
        f"{'policy':10s} {'fault':14s} {'tasks':>9s} {'time x':>8s} {'energy x':>9s}"
    ]
    for row in rows:
        status = (
            f"{row.tasks_executed}/{row.tasks_expected}"
            if row.completed
            else f"{row.tasks_executed}/{row.tasks_expected} FAIL"
        )
        lines.append(
            f"{row.policy:10s} {row.fault:14s} {status:>9s} "
            f"{row.time_ratio:8.3f} {row.energy_ratio:9.3f}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.faults.matrix`` — the CI fault-matrix gate."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.matrix",
        description="Run every registered policy through the standard "
        "fault matrix and report degradation vs the fault-free baseline.",
    )
    parser.parse_args(argv)
    rows = registered_resilience()
    print(format_resilience(rows))
    incomplete = [r for r in rows if not r.completed]
    for row in incomplete:
        print(
            f"FAIL: {row.policy} lost tasks under {row.fault} "
            f"({row.tasks_executed}/{row.tasks_expected})"
        )
    return 1 if incomplete else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
