"""Tests for seeded RNG streams."""

import pytest

from repro.sim.rng import RngStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_stream_separation(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_root_separation(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")


class TestRngStreams:
    def test_same_seed_same_draws(self):
        a = RngStreams(42)
        b = RngStreams(42)
        assert [a.choice("x", range(100)) for _ in range(20)] == [
            b.choice("x", range(100)) for _ in range(20)
        ]

    def test_streams_independent(self):
        """Draws on one stream never perturb another."""
        a = RngStreams(42)
        b = RngStreams(42)
        for _ in range(50):
            a.choice("noise", range(10))  # extra traffic on another stream
        assert [a.choice("x", range(100)) for _ in range(10)] == [
            b.choice("x", range(100)) for _ in range(10)
        ]

    def test_shuffled_preserves_elements(self):
        rng = RngStreams(0)
        out = rng.shuffled("s", range(30))
        assert sorted(out) == list(range(30))

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            RngStreams(0).choice("s", [])

    def test_lognormal_factor_zero_sigma_is_one(self):
        assert RngStreams(0).lognormal_factor("s", 0.0) == 1.0

    def test_lognormal_factor_positive(self):
        rng = RngStreams(0)
        for _ in range(100):
            assert rng.lognormal_factor("s", 0.3) > 0.0

    def test_uniform_range(self):
        rng = RngStreams(7)
        for _ in range(100):
            v = rng.uniform("u", 2.0, 3.0)
            assert 2.0 <= v <= 3.0

    def test_empty_stream_name_rejected(self):
        with pytest.raises(ValueError):
            RngStreams(0).stream("")

    def test_whitespace_stream_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            RngStreams(0).stream("   ")


class TestSpawnChild:
    def test_deterministic(self):
        a = RngStreams(42).spawn_child("worker")
        b = RngStreams(42).spawn_child("worker")
        assert a.root_seed == b.root_seed
        assert a.stream("x").random() == b.stream("x").random()

    def test_children_differ_by_name(self):
        parent = RngStreams(42)
        assert (
            parent.spawn_child("a").root_seed != parent.spawn_child("b").root_seed
        )

    def test_child_streams_never_alias_parent_streams(self):
        """The spawn namespace is disjoint from ordinary stream names: a
        child may reuse any name its parent uses without correlation."""
        parent = RngStreams(42)
        child = parent.spawn_child("worker")
        assert child.root_seed != parent.root_seed
        # Same stream name on both sides, independent draws.
        assert parent.stream("victim").random() != child.stream("victim").random()
        # A stream literally named like the derivation input is no collision.
        assert parent.stream("worker").random() != child.stream("worker").random()

    def test_empty_child_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            RngStreams(0).spawn_child(" ")

    def test_grandchildren_are_independent(self):
        root = RngStreams(7)
        assert (
            root.spawn_child("a").spawn_child("b").root_seed
            != root.spawn_child("b").spawn_child("a").root_seed
        )
