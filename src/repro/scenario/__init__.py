"""Scenario layer: typed specs, plugin registries, one Session facade.

The three pieces, bottom-up:

* :mod:`repro.scenario.registry` — plugin registries for policies,
  machine presets, and workloads (``@register_policy`` & friends);
* :mod:`repro.scenario.spec` — the frozen, JSON-round-trippable
  :class:`ScenarioSpec` with a schema-versioned content digest;
* :mod:`repro.scenario.session` — :class:`Session`, the one entry point
  the CLI, exhibits, and checks use to turn scenarios into results.
"""

from repro.scenario.registry import (
    MACHINES,
    POLICIES,
    WORKLOADS,
    MachinePresetEntry,
    PolicyEntry,
    Registry,
    WorkloadEntry,
    baseline_policy_names,
    register_machine,
    register_policy,
    register_workload,
    spread_levels,
    workload_names,
)
from repro.scenario.spec import (
    DEFAULT_SEEDS,
    SCENARIO_SCHEMA_VERSION,
    MachineSpec,
    PolicySpec,
    ScenarioSpec,
)
from repro.scenario.session import Session, run_grid

__all__ = [
    "DEFAULT_SEEDS",
    "MACHINES",
    "MachinePresetEntry",
    "MachineSpec",
    "POLICIES",
    "PolicyEntry",
    "PolicySpec",
    "Registry",
    "SCENARIO_SCHEMA_VERSION",
    "ScenarioSpec",
    "Session",
    "WORKLOADS",
    "WorkloadEntry",
    "baseline_policy_names",
    "register_machine",
    "register_policy",
    "register_workload",
    "run_grid",
    "spread_levels",
    "workload_names",
]
