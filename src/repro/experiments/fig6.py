"""Fig. 6 — normalised time and energy of all benchmarks under
Cilk, Cilk-D and EEWA on the 16-core machine.

Paper shape targets: EEWA cuts energy 8.7-29.8% below Cilk with at most a
few percent time change; Cilk-D sits between the two on energy
(6.7-12.8% below Cilk); for most applications EEWA's time penalty is
within ~2%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.metrics import energy_reduction_percent
from repro.experiments.report import format_table
from repro.machine.topology import MachineConfig
from repro.scenario.registry import baseline_policy_names
from repro.scenario.session import Session
from repro.scenario.spec import DEFAULT_SEEDS, MachineSpec, ScenarioSpec
from repro.workloads.benchmarks import BENCHMARK_NAMES


def _machine_spec(machine: Optional[MachineConfig]) -> MachineSpec:
    return MachineSpec() if machine is None else MachineSpec.inline(machine)


@dataclass(frozen=True)
class Fig6Row:
    """One benchmark's normalised metrics (Cilk = 1.0)."""

    benchmark: str
    time_cilk: float
    time_cilk_d: float
    time_eewa: float
    energy_cilk: float
    energy_cilk_d: float
    energy_eewa: float

    @property
    def eewa_energy_reduction_pct(self) -> float:
        return 100.0 * (1.0 - self.energy_eewa)

    @property
    def eewa_time_change_pct(self) -> float:
        return 100.0 * (self.time_eewa - 1.0)

    @property
    def cilk_d_energy_reduction_pct(self) -> float:
        return 100.0 * (1.0 - self.energy_cilk_d)


@dataclass(frozen=True)
class Fig6Result:
    rows: tuple[Fig6Row, ...]

    def table(self) -> str:
        return format_table(
            [
                "benchmark",
                "t(cilk)",
                "t(cilk-d)",
                "t(eewa)",
                "E(cilk)",
                "E(cilk-d)",
                "E(eewa)",
                "eewa dE%",
            ],
            [
                (
                    r.benchmark,
                    r.time_cilk,
                    r.time_cilk_d,
                    r.time_eewa,
                    r.energy_cilk,
                    r.energy_cilk_d,
                    r.energy_eewa,
                    -r.eewa_energy_reduction_pct,
                )
                for r in self.rows
            ],
            title="Fig. 6 — normalised execution time and energy (Cilk = 1.0)",
        )


def run_fig6(
    *,
    machine: Optional[MachineConfig] = None,
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    batches: int | None = None,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    parallel: bool = False,
    workers: int | None = None,
    cache_dir: str | None = None,
) -> Fig6Result:
    """Regenerate Fig. 6's data.

    The exhibit is one scenario grid — every benchmark crossed with the
    baseline comparison set (:func:`baseline_policy_names`) — run through
    a :class:`~repro.scenario.session.Session`. ``parallel=True`` fans the
    cells across a process pool with the content-addressed result cache;
    results are identical either way.
    """
    session = Session.for_experiment(
        parallel=parallel, workers=workers, cache_dir=cache_dir
    )
    policies = baseline_policy_names()
    machine_spec = _machine_spec(machine)
    grid = [
        ScenarioSpec(
            workload=name, policy=policy, machine=machine_spec,
            seeds=tuple(seeds), batches=batches,
        )
        for name in benchmarks
        for policy in policies
    ]
    outcomes = {
        (o.benchmark, o.policy): o for o in session.run_grid(grid)
    }
    rows = []
    for name in benchmarks:
        base_t = outcomes[(name, "cilk")].time_mean
        base_e = outcomes[(name, "cilk")].energy_mean
        rows.append(
            Fig6Row(
                benchmark=name,
                time_cilk=1.0,
                time_cilk_d=outcomes[(name, "cilk-d")].time_mean / base_t,
                time_eewa=outcomes[(name, "eewa")].time_mean / base_t,
                energy_cilk=1.0,
                energy_cilk_d=outcomes[(name, "cilk-d")].energy_mean / base_e,
                energy_eewa=outcomes[(name, "eewa")].energy_mean / base_e,
            )
        )
    return Fig6Result(rows=tuple(rows))


__all__ = ["Fig6Result", "Fig6Row", "run_fig6", "energy_reduction_percent"]
