"""Workload spec serialisation.

Lets users keep workloads in version-controlled JSON files and run them
from the CLI (``repro run-spec my_workload.json eewa``)::

    {
      "name": "transcode",
      "description": "per-frame-group pipeline",
      "default_batches": 12,
      "classes": [
        {"name": "motion_search", "count": 6, "mean_ms": 34.0},
        {"name": "dct_quant", "count": 24, "mean_ms": 4.5},
        {"name": "entropy_code", "count": 40, "mean_ms": 1.2}
      ]
    }

Times are given in *milliseconds* in files (ergonomics); the in-memory
spec keeps seconds. Round-trip (spec → dict → spec) is exact and tested.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import WorkloadError
from repro.workloads.spec import TaskClassSpec, WorkloadSpec

_CLASS_OPTIONAL_FIELDS = {
    # dict key -> (spec attribute, default)
    "jitter_sigma": ("jitter_sigma", 0.08),
    "drift_sigma": ("drift_sigma", 0.02),
    "miss_intensity": ("miss_intensity", 0.001),
    "mem_stall_fraction": ("mem_stall_fraction", 0.0),
    "phase_amplitude": ("phase_amplitude", 0.0),
    "phase_period": ("phase_period", 5),
}


def spec_to_dict(spec: WorkloadSpec) -> dict[str, Any]:
    """JSON-ready dictionary for a workload spec (times in ms)."""
    classes = []
    for cls in spec.classes:
        entry: dict[str, Any] = {"name": cls.name, "count": cls.count}
        # Milliseconds for readability — but only when the conversion
        # round-trips exactly in binary floating point; otherwise seconds.
        mean_ms = cls.mean_seconds * 1e3
        if mean_ms / 1e3 == cls.mean_seconds:
            entry["mean_ms"] = mean_ms
        else:
            entry["mean_s"] = cls.mean_seconds
        for key, (attr, default) in _CLASS_OPTIONAL_FIELDS.items():
            value = getattr(cls, attr)
            if value != default:
                entry[key] = value
        classes.append(entry)
    return {
        "name": spec.name,
        "description": spec.description,
        "default_batches": spec.default_batches,
        "classes": classes,
    }


def spec_from_dict(data: dict[str, Any]) -> WorkloadSpec:
    """Build a workload spec from a dictionary (inverse of
    :func:`spec_to_dict`)."""
    if not isinstance(data, dict):
        raise WorkloadError("workload spec must be a JSON object")
    try:
        raw_classes = data["classes"]
        name = data["name"]
    except KeyError as exc:
        raise WorkloadError(f"workload spec missing field {exc}") from None
    if not isinstance(raw_classes, list) or not raw_classes:
        raise WorkloadError("workload spec needs a non-empty 'classes' list")

    classes = []
    for entry in raw_classes:
        if not isinstance(entry, dict):
            raise WorkloadError("each class must be a JSON object")
        unknown = (
            set(entry) - {"name", "count", "mean_ms", "mean_s"}
            - set(_CLASS_OPTIONAL_FIELDS)
        )
        if unknown:
            raise WorkloadError(f"unknown class fields: {sorted(unknown)}")
        if ("mean_ms" in entry) == ("mean_s" in entry):
            raise WorkloadError("each class needs exactly one of mean_ms / mean_s")
        try:
            mean_seconds = (
                float(entry["mean_s"])
                if "mean_s" in entry
                else float(entry["mean_ms"]) / 1e3
            )
            kwargs: dict[str, Any] = {
                "name": entry["name"],
                "count": int(entry["count"]),
                "mean_seconds": mean_seconds,
            }
        except KeyError as exc:
            raise WorkloadError(f"class entry missing field {exc}") from None
        for key, (attr, _) in _CLASS_OPTIONAL_FIELDS.items():
            if key in entry:
                kwargs[attr] = entry[key]
        classes.append(TaskClassSpec(**kwargs))

    return WorkloadSpec(
        name=str(name),
        classes=tuple(classes),
        default_batches=int(data.get("default_batches", 12)),
        description=str(data.get("description", "")),
    )


def save_spec(spec: WorkloadSpec, path: str | Path) -> None:
    """Write a spec to a JSON file."""
    Path(path).write_text(json.dumps(spec_to_dict(spec), indent=2) + "\n")


def load_spec(path: str | Path) -> WorkloadSpec:
    """Read a spec from a JSON file."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise WorkloadError(f"cannot load workload spec from {path}: {exc}") from exc
    return spec_from_dict(data)
