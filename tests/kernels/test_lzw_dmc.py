"""Tests for LZW and DMC."""

import pytest

from repro.errors import KernelError
from repro.kernels.dmc import (
    ArithmeticDecoder,
    ArithmeticEncoder,
    DMCModel,
    dmc_compress,
    dmc_decompress,
)
from repro.kernels.lzw import lzw_compress, lzw_decompress


class TestLZW:
    def test_roundtrip_classics(self):
        cases = [
            b"",
            b"a",
            b"aaaa",
            b"TOBEORNOTTOBEORTOBEORNOT",  # the textbook KwKwK case input
            b"abababababababab",
            bytes(range(256)),
        ]
        for data in cases:
            assert lzw_decompress(lzw_compress(data)) == data

    def test_roundtrip_large_forces_width_growth(self):
        import random

        rng = random.Random(1)
        data = bytes(rng.randrange(0, 256) for _ in range(120_000))
        assert lzw_decompress(lzw_compress(data)) == data

    def test_compresses_repetitive_text(self):
        data = b"the quick brown fox " * 200
        assert len(lzw_compress(data)) < len(data) / 4

    def test_random_bytes_roundtrip_fuzz(self):
        import random

        rng = random.Random(2)
        for _ in range(25):
            n = rng.randrange(0, 2000)
            data = bytes(rng.randrange(0, 16) for _ in range(n))
            assert lzw_decompress(lzw_compress(data)) == data


class TestArithmeticCoder:
    def test_biased_stream_roundtrip(self):
        import random

        rng = random.Random(3)
        bits = [1 if rng.random() < 0.9 else 0 for _ in range(2000)]
        enc = ArithmeticEncoder()
        for b in bits:
            enc.encode(b, p0=0.1)
        payload = enc.finish()
        dec = ArithmeticDecoder(payload)
        assert [dec.decode(p0=0.1) for _ in bits] == bits

    def test_biased_stream_compresses(self):
        enc = ArithmeticEncoder()
        for _ in range(8000):
            enc.encode(0, p0=0.99)
        payload = enc.finish()
        assert len(payload) < 8000 / 8 / 4  # far below 1 bit per symbol

    def test_alternating_fair_bits(self):
        enc = ArithmeticEncoder()
        bits = [0, 1] * 500
        for b in bits:
            enc.encode(b, p0=0.5)
        dec = ArithmeticDecoder(enc.finish())
        assert [dec.decode(p0=0.5) for _ in bits] == bits


class TestDMCModel:
    def test_states_grow_by_cloning(self):
        model = DMCModel()
        for _ in range(200):
            model.update(1)
            model.update(0)
        assert model.num_states > 1

    def test_state_cap_respected(self):
        model = DMCModel(max_states=8)
        import random

        rng = random.Random(4)
        for _ in range(5000):
            model.update(rng.randrange(2))
        assert model.num_states <= 8

    def test_prediction_tracks_bias(self):
        model = DMCModel()
        for _ in range(500):
            model.update(0)
        assert model.p0() > 0.9

    def test_p0_is_probability(self):
        model = DMCModel()
        import random

        rng = random.Random(5)
        for _ in range(1000):
            assert 0.0 < model.p0() < 1.0
            model.update(rng.randrange(2))


class TestDMC:
    def test_roundtrip_cases(self):
        cases = [b"", b"a", b"abcabc" * 40, bytes(range(256))]
        for data in cases:
            assert dmc_decompress(dmc_compress(data)) == data

    def test_roundtrip_fuzz(self):
        import random

        rng = random.Random(6)
        for _ in range(10):
            n = rng.randrange(0, 1500)
            data = bytes(rng.randrange(0, 256) for _ in range(n))
            assert dmc_decompress(dmc_compress(data)) == data

    def test_compresses_text(self):
        data = b"dynamic markov coding predicts bits " * 100
        assert len(dmc_compress(data)) < len(data) / 3

    def test_max_states_must_match(self):
        data = b"the model must be identical on both sides " * 20
        payload = dmc_compress(data, max_states=1 << 6)
        assert dmc_decompress(payload, max_states=1 << 6) == data

    def test_truncated_payload_rejected(self):
        with pytest.raises(KernelError):
            dmc_decompress(b"\x00")
