"""Normalisation and ratio helpers used by the experiment reports."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.sim.engine import SimResult


def normalized_time(result: SimResult, baseline: SimResult) -> float:
    """Execution time relative to a baseline run (Fig. 6/9 y-axis)."""
    return result.total_time / baseline.total_time


def normalized_energy(result: SimResult, baseline: SimResult) -> float:
    """Whole-machine energy relative to a baseline run (Fig. 6/9 y-axis)."""
    return result.total_joules / baseline.total_joules


def percent_change(value: float, baseline: float) -> float:
    """Signed percent change vs baseline (negative = reduction)."""
    if baseline == 0:
        raise ZeroDivisionError("baseline is zero")
    return 100.0 * (value / baseline - 1.0)


def energy_reduction_percent(result: SimResult, baseline: SimResult) -> float:
    """Positive percentage of energy saved vs baseline."""
    return -percent_change(result.total_joules, baseline.total_joules)


def time_degradation_percent(result: SimResult, baseline: SimResult) -> float:
    """Positive percentage of slowdown vs baseline (negative = speedup)."""
    return percent_change(result.total_time, baseline.total_time)


def geometric_mean(values: Iterable[float]) -> float:
    vals = list(values)
    if not vals:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def std(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (len(values) - 1))


def edp(result: SimResult) -> float:
    """Energy-delay product — a combined efficiency metric for ablations."""
    return result.total_joules * result.total_time
