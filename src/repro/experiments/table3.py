"""Table III — execution time and adjuster overhead per benchmark.

Two overhead numbers are reported, mirroring the substitution documented in
DESIGN.md:

* **simulated** — the decision cost charged inside the simulation (the
  adjuster's overhead model), as a percentage of simulated execution time.
  Paper shape target: total overhead tens of milliseconds, always < 2% of
  execution time.
* **measured** — real Python ``perf_counter`` time of the Algorithm 1
  invocations (what pytest-benchmark exercises separately).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.eewa import EEWAConfig, EEWAScheduler
from repro.experiments.report import format_table
from repro.machine.topology import MachineConfig, opteron_8380_machine
from repro.sim.engine import simulate
from repro.workloads.benchmarks import BENCHMARK_NAMES, benchmark_program


@dataclass(frozen=True)
class Table3Row:
    benchmark: str
    execution_ms: float
    overhead_ms: float
    overhead_pct: float
    measured_wallclock_ms: float
    decisions: int


@dataclass(frozen=True)
class Table3Result:
    rows: tuple[Table3Row, ...]

    def table(self) -> str:
        return format_table(
            ["benchmark", "exec (ms)", "overhead (ms)", "overhead %", "wallclock (ms)"],
            [
                (
                    r.benchmark,
                    r.execution_ms,
                    r.overhead_ms,
                    r.overhead_pct,
                    r.measured_wallclock_ms,
                )
                for r in self.rows
            ],
            title="Table III — execution time and adjuster overhead",
            float_fmt="{:.2f}",
        )

    def max_overhead_pct(self) -> float:
        return max(r.overhead_pct for r in self.rows)


def run_table3(
    *,
    machine: Optional[MachineConfig] = None,
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    batches: int | None = None,
    seed: int = 11,
    config: Optional[EEWAConfig] = None,
    parallel: bool = False,
    workers: int | None = None,
    cache_dir: str | None = None,
) -> Table3Result:
    """Regenerate Table III.

    ``parallel=True`` fans the per-benchmark EEWA runs across a process
    pool with result caching. The simulated columns are identical either
    way; the *measured* wall-clock column is a real timing and, when a
    cell is served from cache, reports the timing of the run that
    populated the cache.
    """
    if machine is None:
        machine = opteron_8380_machine()
    if parallel:
        from repro.experiments.parallel import CellSpec, ParallelRunner

        runner = ParallelRunner(
            machine=machine, workers=workers,
            cache_dir=cache_dir if cache_dir is not None else ".repro-cache",
        )
        outcomes = runner.run_cells(
            [
                CellSpec(
                    benchmark=name, policy="eewa", seed=seed,
                    batches=batches, eewa_config=config,
                )
                for name in benchmarks
            ]
        )
        rows = []
        for name, outcome in zip(benchmarks, outcomes):
            result = outcome.result
            overhead = result.adjust_overhead_seconds
            rows.append(
                Table3Row(
                    benchmark=name,
                    execution_ms=result.total_time * 1e3,
                    overhead_ms=overhead * 1e3,
                    overhead_pct=100.0 * overhead / result.total_time,
                    measured_wallclock_ms=outcome.adjuster_wallclock_s * 1e3,
                    decisions=outcome.adjuster_decisions,
                )
            )
        return Table3Result(rows=tuple(rows))
    rows = []
    for name in benchmarks:
        program = benchmark_program(name, batches=batches, seed=seed)
        policy = EEWAScheduler(config)
        result = simulate(program, policy, machine, seed=seed)
        overhead = result.adjust_overhead_seconds
        rows.append(
            Table3Row(
                benchmark=name,
                execution_ms=result.total_time * 1e3,
                overhead_ms=overhead * 1e3,
                overhead_pct=100.0 * overhead / result.total_time,
                measured_wallclock_ms=policy.total_adjuster_wallclock() * 1e3,
                decisions=len(policy.decisions),
            )
        )
    return Table3Result(rows=tuple(rows))
