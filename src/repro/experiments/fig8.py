"""Fig. 8 — cores per frequency across the 10 batches of SHA-1.

Paper shape targets: batch 1 runs all 16 cores at the top frequency
(profiling); from batch 2 on, a handful of cores stay fast (the paper shows
5 at 2.5 GHz) while the majority drop to the lowest frequency (11 at
0.8 GHz), and the configuration is stable across batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.eewa import EEWAConfig, EEWAScheduler
from repro.experiments.report import format_table
from repro.machine.topology import MachineConfig, opteron_8380_machine
from repro.sim.engine import SimResult, simulate
from repro.workloads.benchmarks import benchmark_program


@dataclass(frozen=True)
class Fig8Result:
    benchmark: str
    #: per-batch (cores at F0, F1, ..., F_{r-1})
    histograms: tuple[tuple[int, ...], ...]
    frequencies_ghz: tuple[float, ...]
    result: SimResult

    def table(self) -> str:
        headers = ["batch"] + [f"{f:.1f}GHz" for f in self.frequencies_ghz]
        rows = [
            [str(i + 1), *[str(c) for c in hist]]
            for i, hist in enumerate(self.histograms)
        ]
        return format_table(
            headers, rows,
            title=f"Fig. 8 — cores per frequency, {self.benchmark} batches",
        )


def run_fig8(
    *,
    benchmark: str = "SHA-1",
    batches: int = 10,
    machine: Optional[MachineConfig] = None,
    seed: int = 11,
    config: Optional[EEWAConfig] = None,
    parallel: bool = False,
    workers: int | None = None,
    cache_dir: str | None = None,
) -> Fig8Result:
    """Regenerate Fig. 8's per-batch frequency histogram series.

    Fig. 8 is a single run, so ``parallel=True`` buys no fan-out — but it
    routes the run through the content-addressed result cache, making
    repeated regeneration (and sharing with other exhibits' EEWA cells)
    free.
    """
    if machine is None:
        machine = opteron_8380_machine()
    if parallel:
        from repro.experiments.parallel import CellSpec, ParallelRunner

        runner = ParallelRunner(
            machine=machine, workers=workers,
            cache_dir=cache_dir if cache_dir is not None else ".repro-cache",
        )
        (outcome,) = runner.run_cells(
            [
                CellSpec(
                    benchmark=benchmark, policy="eewa", seed=seed,
                    batches=batches, eewa_config=config,
                )
            ]
        )
        result = outcome.result
    else:
        program = benchmark_program(benchmark, batches=batches, seed=seed)
        result = simulate(program, EEWAScheduler(config), machine, seed=seed)
    return Fig8Result(
        benchmark=benchmark,
        histograms=tuple(result.trace.level_histograms()),
        frequencies_ghz=tuple(f / 1e9 for f in machine.scale),
        result=result,
    )
