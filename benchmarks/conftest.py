"""Shared helpers for the benchmark harness.

Every exhibit bench regenerates one of the paper's tables/figures, asserts
its shape targets, saves the rendered text to ``benchmarks/results/`` and
attaches it to pytest-benchmark's ``extra_info`` so it survives captured
stdout.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Seeds used by exhibit benches (kept small: each seed is a full set of
#: deterministic simulations).
BENCH_SEEDS = (11, 23)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_exhibit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist a rendered exhibit and echo it (visible with ``-s``)."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
