"""Determinism guarantees: identical seeds produce identical universes."""

import pytest

from repro.core.eewa import EEWAScheduler
from repro.machine.topology import opteron_8380_machine
from repro.runtime.cilk_d import CilkDScheduler
from repro.sim.engine import simulate
from repro.workloads.benchmarks import benchmark_program


@pytest.mark.parametrize("policy_cls", [EEWAScheduler, CilkDScheduler])
def test_bitwise_repeatability(policy_cls):
    machine = opteron_8380_machine()
    program = benchmark_program("LZW", batches=5, seed=9)

    def run():
        return simulate(program, policy_cls(), machine, seed=9)

    a, b = run(), run()
    assert a.total_time == b.total_time
    assert a.total_joules == b.total_joules
    assert a.trace.level_histograms() == b.trace.level_histograms()
    assert [(t.task_id, t.executed_on, t.start_time) for t in a.tasks] == [
        (t.task_id, t.executed_on, t.start_time) for t in b.tasks
    ]
    assert [
        (tr.time, tr.core_id, tr.from_level, tr.to_level) for tr in a.trace.transitions
    ] == [
        (tr.time, tr.core_id, tr.from_level, tr.to_level) for tr in b.trace.transitions
    ]


def test_program_generation_is_seeded():
    a = benchmark_program("MD5", batches=3, seed=4)
    b = benchmark_program("MD5", batches=3, seed=4)
    c = benchmark_program("MD5", batches=3, seed=5)
    assert [s.cpu_cycles for s in a[0].specs] == [s.cpu_cycles for s in b[0].specs]
    assert [s.cpu_cycles for s in a[0].specs] != [s.cpu_cycles for s in c[0].specs]


def test_simulation_seed_independent_of_program_seed():
    machine = opteron_8380_machine()
    program = benchmark_program("JE", batches=3, seed=1)
    a = simulate(program, EEWAScheduler(), machine, seed=100)
    b = simulate(program, EEWAScheduler(), machine, seed=200)
    # Same work either way...
    assert a.tasks_executed == b.tasks_executed
    # ...but different victim choices generally give different steal counts.
    assert (
        a.policy_stats["tasks_stolen"] != b.policy_stats["tasks_stolen"]
        or a.total_time != b.total_time
        or a.total_time == b.total_time  # allowed coincidence
    )
