"""Deterministic discrete-event engine.

The engine executes an iteration-based program (a sequence of
:class:`~repro.runtime.task.Batch` objects) on a simulated
:class:`~repro.machine.topology.MachineConfig` under a pluggable
:class:`~repro.runtime.policy.SchedulerPolicy`, producing a
:class:`SimResult` with exact timing, per-core energy, and traces.

Simulation loop
---------------
Each free core asks its policy for an :class:`~repro.runtime.policy.Action`:

* ``RunTask`` — the engine charges the acquire cost (pop or steal) and the
  task's execution time at the core's current frequency, then schedules a
  ``TASK_DONE`` event. Children of the task are spawned (pushed through the
  policy) the moment it starts, waking any spinning cores.
* ``SetFrequency`` — the core stalls for the DVFS latency, then asks again.
* ``Wait`` — nothing stealable: the core spins (billed at full busy power,
  like an MIT Cilk worker) until the engine wakes it on new work.

When a batch drains, the policy's ``on_batch_end`` hook may return a
:class:`~repro.runtime.policy.BatchAdjustment` — this is where EEWA's
frequency adjuster runs. Its DVFS requests are applied (with latency) and
its decision overhead delays the next batch launch, exactly the cost
Table III accounts for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import SchedulingError, SimulationError
from repro.machine.core import CoreState, SimCore
from repro.machine.energy import EnergyMeter
from repro.machine.topology import MachineConfig
from repro.runtime.barrier import BatchBarrier
from repro.runtime.policy import (
    Action,
    RunTask,
    SchedulerPolicy,
    SetFrequency,
    Wait,
)
from repro.runtime.pools import PoolObserver
from repro.runtime.task import Batch, Task, TaskFactory, iter_programs_batches
from repro.sim.events import EventKind, EventQueue
from repro.sim.rng import RngStreams
from repro.sim.trace import (
    LAUNCHER_ACTOR,
    BatchTrace,
    DvfsTransition,
    TaskEventKind,
    TraceRecorder,
)

#: Hard cap on processed events — a runaway-policy backstop, far above any
#: legitimate run (each task costs a handful of events).
DEFAULT_MAX_EVENTS = 50_000_000


@dataclass
class SimResult:
    """Everything observable from one simulated run."""

    policy_name: str
    machine: MachineConfig
    total_time: float
    total_joules: float
    core_joules: float
    baseline_joules: float
    spin_joules: float
    running_joules: float
    tasks_executed: int
    batches_executed: int
    trace: TraceRecorder
    meter: EnergyMeter
    tasks: list[Task] = field(repr=False, default_factory=list)
    adjust_overhead_seconds: float = 0.0
    policy_stats: dict[str, float] = field(default_factory=dict)

    @property
    def average_power(self) -> float:
        """Mean whole-machine power draw in watts."""
        if self.total_time <= 0:
            return 0.0
        return self.total_joules / self.total_time

    def energy_vs(self, other: "SimResult") -> float:
        """Energy of this run relative to ``other`` (1.0 = equal)."""
        return self.total_joules / other.total_joules

    def time_vs(self, other: "SimResult") -> float:
        """Time of this run relative to ``other`` (1.0 = equal)."""
        return self.total_time / other.total_time


class Simulator:
    """Runs one program under one policy on one machine.

    Also implements the :class:`~repro.runtime.policy.RuntimeContext`
    protocol handed to policies.
    """

    def __init__(
        self,
        machine: MachineConfig,
        policy: SchedulerPolicy,
        *,
        seed: int = 0,
        keep_tasks: bool = True,
        max_events: int = DEFAULT_MAX_EVENTS,
        record_power_series: bool = False,
        record_task_events: bool = False,
    ) -> None:
        self._machine = machine
        self._policy = policy
        self._rng = RngStreams(seed)
        self._keep_tasks = keep_tasks
        self._max_events = max_events
        self._record_task_events = record_task_events
        # Which core is currently driving policy code; the batch launcher
        # when root tasks are being placed. Only used for event attribution.
        self._trace_actor = LAUNCHER_ACTOR

        self._cores = [
            SimCore(core_id=i, scale=machine.scale) for i in range(machine.num_cores)
        ]
        self._meter = EnergyMeter(
            self._cores, machine.power, record_series=record_power_series
        )
        self._queue = EventQueue()
        self._barrier = BatchBarrier()
        self._trace = TraceRecorder()
        self._factory = TaskFactory()

        self._batches: list[Batch] = []
        self._next_batch_pos = 0
        self._pending_adjust_overhead = 0.0
        self._waiting: set[int] = set()
        self._inflight: dict[int, Task] = {}
        self._finished_tasks: list[Task] = []
        self._tasks_executed = 0
        self._done = False
        # Per-core *requested* DVFS levels; with dvfs_domains the effective
        # level is the fastest request in the domain (voltage-plane rule).
        self._requested: list[int] = [0] * machine.num_cores
        # Remaining-work bookkeeping for mid-run retunes (domain coercion
        # can change a RUNNING core's frequency).
        self._run_state: dict[int, dict[str, float]] = {}
        self._expected_done_seq: dict[int, int] = {}

    # ------------------------------------------------------------------
    # RuntimeContext protocol
    # ------------------------------------------------------------------

    @property
    def machine(self) -> MachineConfig:
        return self._machine

    @property
    def trace(self) -> TraceRecorder:
        """The run's trace so far — readable even after a failed run, which
        is how the race detector examines programs that deadlock."""
        return self._trace

    def now(self) -> float:
        return self._queue.now

    def core_level(self, core_id: int) -> int:
        return self._cores[core_id].level

    def requested_level(self, core_id: int) -> int:
        """The level this core has *asked* for (== effective level unless a
        shared DVFS domain is pinning it faster)."""
        return self._requested[core_id]

    def rng_choice(self, stream: str, options: Sequence[int]) -> int:
        return self._rng.choice(stream, options)

    def rng_shuffled(self, stream: str, options: Sequence[int]) -> list[int]:
        return self._rng.shuffled(stream, options)

    def pool_observer(self) -> Optional[PoolObserver]:
        """Pool-event sink for policies to hand their :class:`PoolGrid`.

        ``None`` (record nothing) unless the run was started with
        ``record_task_events=True`` — the deep-trace mode the race
        detector consumes.
        """
        if not self._record_task_events:
            return None

        kinds = {
            "push": TaskEventKind.PUSH,
            "pop": TaskEventKind.POP,
            "steal": TaskEventKind.STEAL,
        }

        def observe(op: str, pool_core: int, pool_index: int, task: Task) -> None:
            self._trace.record_task_event(
                self.now(),
                kinds[op],
                actor=self._trace_actor,
                task_id=task.task_id,
                pool_core=pool_core,
                pool_index=pool_index,
            )

        return observe

    def trace_plan(
        self, group_of_core: Sequence[int], group_levels: Sequence[int]
    ) -> None:
        """Record a c-group plan installation (no-op unless deep-tracing)."""
        if self._record_task_events:
            self._trace.record_plan(
                self.now(), tuple(group_of_core), tuple(group_levels)
            )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self, program: Sequence[Batch]) -> SimResult:
        """Execute ``program`` to completion and return the result."""
        self._batches = list(iter_programs_batches(list(program)))
        if not self._batches:
            raise SimulationError("program has no batches")

        self._policy.bind(self)
        initial = self._policy.on_program_start()
        if initial is not None and initial.frequency_levels is not None:
            # Boot-time configuration: applied instantly, before the clock runs.
            self._apply_levels_instantly(initial.frequency_levels)
        for core in self._cores:
            core.spin()

        self._launch_next_batch()

        events = 0
        while self._queue and not self._done:
            events += 1
            if events > self._max_events:
                raise SimulationError(
                    f"exceeded {self._max_events} events — livelocked policy?"
                )
            event = self._queue.pop()
            if event.kind is EventKind.TASK_DONE:
                self._handle_task_done(event.core_id, event.task_id, event.seq)
            elif event.kind is EventKind.DVFS_DONE:
                self._handle_dvfs_done(event.core_id)
            elif event.kind is EventKind.CORE_READY:
                self._handle_core_ready(event.core_id)
            elif event.kind is EventKind.BATCH_LAUNCH:
                self._launch_next_batch()
            else:  # pragma: no cover - enum is closed
                raise SimulationError(f"unknown event kind {event.kind}")

        if not self._done:
            raise SimulationError(
                f"event queue drained with work outstanding "
                f"(batch={self._barrier.batch_index}, inflight={len(self._inflight)})"
            )

        return self._build_result()

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------

    def _launch_next_batch(self) -> None:
        batch = self._batches[self._next_batch_pos]
        self._next_batch_pos += 1
        self._barrier.open(batch.index, self.now())

        tasks = [self._factory.make(spec, batch.index) for spec in batch.specs]
        for task in tasks:
            self._barrier.add_task()
            self._record_lifecycle(TaskEventKind.CREATE, LAUNCHER_ACTOR, task.task_id)
        self._trace_actor = LAUNCHER_ACTOR
        self._policy.on_batch_start(batch, tasks)

        hist = self._level_histogram()
        self._trace.record_batch(
            BatchTrace(
                batch_index=batch.index,
                start_time=self.now(),
                duration=float("nan"),  # patched when the batch drains
                tasks_completed=0,
                level_histogram=hist,
                adjust_overhead_seconds=self._pending_adjust_overhead,
            )
        )
        self._pending_adjust_overhead = 0.0
        self._wake_all_idle()

    def _handle_core_ready(self, core_id: int) -> None:
        core = self._cores[core_id]
        if core.state is not CoreState.SPINNING:
            return  # stale wake: core got work or is mid-transition already
        self._dispatch(core)

    def _handle_task_done(self, core_id: int, task_id: int, seq: int) -> None:
        if self._expected_done_seq.get(core_id) != seq:
            return  # superseded by a mid-run retune reschedule
        core = self._cores[core_id]
        task = self._inflight.pop(task_id)
        self._run_state.pop(core_id, None)
        self._meter.observe(self.now())
        finished_id = core.finish_task()
        if finished_id != task.task_id:
            raise SimulationError(
                f"core {core_id} finished task {finished_id}, expected {task.task_id}"
            )
        task.finish_time = self.now()
        self._record_lifecycle(TaskEventKind.DONE, core_id, task.task_id)
        self._tasks_executed += 1
        if self._keep_tasks:
            self._finished_tasks.append(task)
        self._policy.on_task_complete(core_id, task)

        if self._barrier.task_done():
            self._end_batch()
        else:
            self._dispatch(core)

    def _handle_dvfs_done(self, core_id: int) -> None:
        core = self._cores[core_id]
        self._meter.observe(self.now())
        core.complete_transition()
        self._dispatch(core)

    def _end_batch(self) -> None:
        batch_index = self._barrier.batch_index
        assert batch_index is not None
        duration = self._barrier.close(self.now())
        self._patch_batch_trace(batch_index, duration)

        adjustment = self._policy.on_batch_end(batch_index)
        overhead = 0.0
        if adjustment is not None:
            overhead = max(0.0, adjustment.overhead_seconds)
            if adjustment.frequency_levels is not None:
                self._apply_levels_with_latency(adjustment.frequency_levels)
        self._pending_adjust_overhead = overhead

        if self._next_batch_pos >= len(self._batches):
            self._finish_program(overhead)
        else:
            self._queue.schedule(overhead, EventKind.BATCH_LAUNCH)

    def _finish_program(self, trailing_overhead: float) -> None:
        self._policy.on_program_end()
        end_time = self.now() + trailing_overhead
        self._meter.finalize(end_time)
        for core in self._cores:
            if core.state is CoreState.SPINNING:
                core.park()
        self._done = True

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, core: SimCore) -> None:
        """Ask the policy what ``core`` does next and enact it."""
        if core.state is not CoreState.SPINNING:
            raise SimulationError(
                f"dispatch of core {core.core_id} in state {core.state}"
            )
        self._waiting.discard(core.core_id)
        self._trace_actor = core.core_id
        action: Action = self._policy.next_action(core.core_id)

        if isinstance(action, RunTask):
            self._start_task(core, action)
        elif isinstance(action, SetFrequency):
            if action.level == self._requested[core.core_id]:
                raise SchedulingError(
                    f"policy requested a no-op frequency change on core {core.core_id}"
                )
            began = self._request_levels({core.core_id: action.level})
            if core.core_id not in began:
                # The request was absorbed by the DVFS domain (a faster
                # sibling pins the plane): ask the policy again now — its
                # view (requested_level) has changed, so it will not loop.
                self._queue.schedule(0.0, EventKind.CORE_READY, core_id=core.core_id)
        elif isinstance(action, Wait):
            # The core spins at full power; the failed scan consumes time
            # only in the sense that the core cannot react instantly.
            self._waiting.add(core.core_id)
            if action.retry_after is not None:
                if action.retry_after < 0:
                    raise SchedulingError("retry_after must be non-negative")
                self._queue.schedule(
                    action.retry_after, EventKind.CORE_READY, core_id=core.core_id
                )
        else:  # pragma: no cover - action union is closed
            raise SchedulingError(f"unknown action {action!r}")

    def _record_lifecycle(self, kind: TaskEventKind, actor: int, task_id: int) -> None:
        if self._record_task_events:
            self._trace.record_task_event(
                self.now(), kind, actor=actor, task_id=task_id,
                pool_core=actor if kind is not TaskEventKind.CREATE else -1,
            )

    def _start_task(self, core: SimCore, action: RunTask) -> None:
        task = action.task
        self._meter.observe(self.now())
        self._record_lifecycle(TaskEventKind.EXEC, core.core_id, task.task_id)
        core.start_task(task.task_id)
        acquire_seconds = action.acquire_cycles / core.frequency
        exec_seconds = core.exec_seconds(
            task.spec.cpu_cycles, task.spec.mem_stall_seconds
        )
        task.start_time = self.now() + acquire_seconds
        task.executed_on = core.core_id
        task.executed_level = core.level
        self._inflight[task.task_id] = task
        self._run_state[core.core_id] = {
            "cycles": action.acquire_cycles + task.spec.cpu_cycles,
            "stall": task.spec.mem_stall_seconds,
            "seg_start": self.now(),
        }
        event = self._queue.schedule(
            acquire_seconds + exec_seconds,
            EventKind.TASK_DONE,
            core_id=core.core_id,
            task_id=task.task_id,
        )
        self._expected_done_seq[core.core_id] = event.seq
        # Cilk semantics: spawned children become stealable when the parent
        # starts running.
        if task.spec.children:
            self._trace_actor = core.core_id
            for child_spec in task.spec.children:
                child = self._factory.make(child_spec, task.batch_index)
                self._barrier.add_task()
                self._record_lifecycle(
                    TaskEventKind.CREATE, core.core_id, child.task_id
                )
                self._policy.on_spawn(core.core_id, child)
            self._wake_all_idle()

    def _wake_all_idle(self) -> None:
        """Schedule a wake for every spinning core (waiting or fresh)."""
        self._waiting.clear()
        for core in self._cores:
            if core.state is CoreState.SPINNING:
                self._queue.schedule(0.0, EventKind.CORE_READY, core_id=core.core_id)

    # ------------------------------------------------------------------
    # frequency application helpers
    # ------------------------------------------------------------------

    def _effective_levels(self) -> list[int]:
        """Requested levels coerced by shared DVFS domains.

        Within a domain the hardware honours the *fastest* request (the
        lowest level index) — a voltage plane cannot go slower than its
        most demanding core requires.
        """
        effective = list(self._requested)
        domains = self._machine.dvfs_domains
        if domains is not None:
            for domain in domains:
                fastest = min(self._requested[c] for c in domain)
                for c in domain:
                    effective[c] = fastest
        return effective

    def _apply_levels_instantly(self, levels: Sequence[Optional[int]]) -> None:
        """Boot-time configuration: no latency, no transitions."""
        self._check_levels(levels)
        for cid, level in enumerate(levels):
            if level is not None:
                self._machine.scale.validate_index(level)
                self._requested[cid] = level
        for core, level in zip(self._cores, self._effective_levels()):
            core.level = level

    def _apply_levels_with_latency(self, levels: Sequence[Optional[int]]) -> None:
        self._check_levels(levels)
        targets = {
            cid: level for cid, level in enumerate(levels) if level is not None
        }
        self._request_levels(targets)

    def _request_levels(self, targets: dict[int, int]) -> set[int]:
        """Record DVFS requests and enact the resulting effective changes.

        Idle (spinning) cores transition with the DVFS latency; cores
        already mid-transition are redirected; RUNNING cores are retuned
        in place (their remaining work is rescaled to the new frequency) —
        this only happens under shared DVFS domains, where a sibling's
        request drags a busy core along. Returns the ids of cores that
        entered a timed transition.
        """
        for cid, level in targets.items():
            self._machine.scale.validate_index(level)
            self._requested[cid] = level
        effective = self._effective_levels()

        self._meter.observe(self.now())
        began: set[int] = set()
        for core in self._cores:
            target = effective[core.core_id]
            if core.state is CoreState.TRANSITION:
                if core.pending_level != target:
                    core.pending_level = target
                continue
            if core.level == target:
                continue
            old = core.level
            self._trace.record_transition(
                DvfsTransition(
                    time=self.now(), core_id=core.core_id,
                    from_level=old, to_level=target,
                )
            )
            if core.state is CoreState.RUNNING:
                self._retune_running(core, target)
                continue
            if core.state is CoreState.PARKED:
                core.level = target
                continue
            self._waiting.discard(core.core_id)
            core.begin_transition(target)
            began.add(core.core_id)
            self._queue.schedule(
                self._machine.dvfs_latency_s, EventKind.DVFS_DONE,
                core_id=core.core_id,
            )
        return began

    def _retune_running(self, core: SimCore, level: int) -> None:
        """Change a RUNNING core's frequency mid-task.

        The remaining CPU cycles and memory stall are scaled by the
        fraction of the in-flight segment still to run, the completion
        event is rescheduled, and the old one is invalidated. Applied
        instantly — the glitch of a plane transition is microseconds and
        the running core does not stall for it in hardware.
        """
        state = self._run_state.get(core.core_id)
        if state is None:
            raise SimulationError(
                f"core {core.core_id} RUNNING without execution state"
            )
        old_duration = state["cycles"] / core.frequency + state["stall"]
        elapsed = self.now() - state["seg_start"]
        fraction = 0.0 if old_duration <= 0 else min(1.0, elapsed / old_duration)
        state["cycles"] *= 1.0 - fraction
        state["stall"] *= 1.0 - fraction
        state["seg_start"] = self.now()

        core.level = level
        remaining = state["cycles"] / core.frequency + state["stall"]
        task_id = core.running_task_id
        assert task_id is not None
        event = self._queue.schedule(
            remaining, EventKind.TASK_DONE, core_id=core.core_id, task_id=task_id
        )
        self._expected_done_seq[core.core_id] = event.seq

    def _check_levels(self, levels: Sequence[Optional[int]]) -> None:
        if len(levels) != self._machine.num_cores:
            raise SchedulingError(
                f"frequency_levels has {len(levels)} entries for "
                f"{self._machine.num_cores} cores"
            )

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def _level_histogram(self) -> tuple[int, ...]:
        hist = [0] * self._machine.r
        for core in self._cores:
            # A core mid-transition counts at its destination level.
            level = core.pending_level if core.pending_level is not None else core.level
            hist[level] += 1
        return tuple(hist)

    def _patch_batch_trace(self, batch_index: int, duration: float) -> None:
        for i, bt in enumerate(self._trace.batches):
            if bt.batch_index == batch_index:
                self._trace.batches[i] = BatchTrace(
                    batch_index=bt.batch_index,
                    start_time=bt.start_time,
                    duration=duration,
                    tasks_completed=self._barrier.history[-1][1],
                    level_histogram=bt.level_histogram,
                    adjust_overhead_seconds=bt.adjust_overhead_seconds,
                )
                return
        raise SimulationError(f"no trace entry for batch {batch_index}")

    def _build_result(self) -> SimResult:
        stats = self._policy.stats
        return SimResult(
            policy_name=self._policy.name,
            machine=self._machine,
            total_time=self._meter.elapsed,
            total_joules=self._meter.total_joules(),
            core_joules=self._meter.core_joules(),
            baseline_joules=self._meter.baseline_joules(),
            spin_joules=self._meter.spin_joules(),
            running_joules=self._meter.running_joules(),
            tasks_executed=self._tasks_executed,
            batches_executed=len(self._trace.batches),
            trace=self._trace,
            meter=self._meter,
            tasks=self._finished_tasks,
            adjust_overhead_seconds=self._trace.total_adjust_overhead(),
            policy_stats={
                "tasks_executed": stats.tasks_executed,
                "tasks_stolen": stats.tasks_stolen,
                "local_pops": stats.local_pops,
                "failed_scans": stats.failed_scans,
                "cross_group_steals": stats.cross_group_steals,
                **stats.extra,
            },
        )


def simulate(
    program: Sequence[Batch],
    policy: SchedulerPolicy,
    machine: MachineConfig,
    *,
    seed: int = 0,
    keep_tasks: bool = True,
    record_power_series: bool = False,
    record_task_events: bool = False,
) -> SimResult:
    """One-call convenience wrapper around :class:`Simulator`."""
    return Simulator(
        machine,
        policy,
        seed=seed,
        keep_tasks=keep_tasks,
        record_power_series=record_power_series,
        record_task_events=record_task_events,
    ).run(program)
