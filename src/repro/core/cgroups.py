"""c-group assembly: from a k-tuple to concrete cores and pools.

A *c-group* is "a set of cores with the same operating frequency"
(Section II-A). The k-tuple gives real-valued core demands per frequency
level; this module turns them into an integral per-core frequency plan:

* demands are aggregated per level and rounded up (every class must still
  fit its share of the ideal iteration time);
* if rounding overflows the machine, the slowest selected level is merged
  into the next faster one (never the other way — a class moved to a faster
  group still meets its deadline);
* cores left over after all demands are met are parked in the machine's
  slowest level — they hold no allocated class, spin at minimum power, and
  help out at batch tails via the preference lists. This is what produces
  the paper's Fig. 8 shape (5 cores at 2.5 GHz, 11 at 0.8 GHz for SHA-1).

The leftover policy is configurable for the ablation study
(``"slowest"`` | ``"join_slowest_group"`` | ``"fastest"``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.cc_table import CCTable
from repro.core.ktuple import KTupleSolution
from repro.errors import SearchError

LEFTOVER_POLICIES = ("slowest", "join_slowest_group", "fastest")


@dataclass(frozen=True)
class CGroup:
    """One c-group: a frequency level and the cores pinned to it."""

    index: int  # position among used groups, 0 = fastest
    level: int  # frequency level in the machine scale
    core_ids: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.core_ids)


@dataclass(frozen=True)
class CGroupPlan:
    """Complete per-batch placement decision.

    Attributes
    ----------
    core_levels:
        Target DVFS level per core (dense, length ``m``).
    groups:
        Used c-groups, fastest first (``groups[0]`` is ``G_0``).
    class_to_group:
        Task-class function name -> group index holding its tasks.
    group_of_core:
        Core id -> group index.
    """

    core_levels: tuple[int, ...]
    groups: tuple[CGroup, ...]
    class_to_group: dict[str, int]
    group_of_core: tuple[int, ...]

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def level_histogram(self, r: int) -> tuple[int, ...]:
        hist = [0] * r
        for level in self.core_levels:
            hist[level] += 1
        return tuple(hist)

    def fastest_group_index(self) -> int:
        return 0


def build_cgroup_plan(
    solution: KTupleSolution,
    table: CCTable,
    num_cores: int,
    *,
    leftover_policy: str = "slowest",
) -> CGroupPlan:
    """Realise a k-tuple as an integral c-group plan."""
    if leftover_policy not in LEFTOVER_POLICIES:
        raise SearchError(f"unknown leftover policy {leftover_policy!r}")
    if len(solution.assignment) != table.k:
        raise SearchError("solution and table disagree on class count")
    r = table.r

    # Aggregate demand per selected level, then round up.
    demand = solution.demand_by_level()
    counts: dict[int, int] = {
        level: max(1, math.ceil(d - 1e-9)) for level, d in demand.items() if d > 0
    }
    # Classes with zero demand (empty classes) still need a home: the level
    # the tuple chose, or any selected one. Map them after group assembly.
    class_level = {i: solution.assignment[i] for i in range(table.k)}

    # Merge slowest levels into faster ones while the rounding overflows m.
    while sum(counts.values()) > num_cores and len(counts) > 1:
        levels_sorted = sorted(counts)  # ascending index = fastest..slowest
        slowest = levels_sorted[-1]
        target = levels_sorted[-2]
        counts[target] = counts[target] + counts[slowest] - 1
        del counts[slowest]
        for i, lvl in class_level.items():
            if lvl == slowest:
                class_level[i] = target
    if sum(counts.values()) > num_cores:
        # Single level still overflowing: clamp (performance will degrade,
        # but the plan stays valid — the search should have prevented this).
        only = next(iter(counts))
        counts[only] = num_cores

    # Park leftover cores.
    leftover = num_cores - sum(counts.values())
    if leftover > 0:
        if leftover_policy == "slowest":
            park_level = r - 1
        elif leftover_policy == "join_slowest_group":
            park_level = max(counts)
        else:  # "fastest"
            park_level = 0
        counts[park_level] = counts.get(park_level, 0) + leftover

    # Lay cores out deterministically: fastest group gets the lowest ids.
    used_levels = sorted(counts)
    core_levels: list[int] = []
    groups: list[CGroup] = []
    group_of_core: list[int] = [0] * num_cores
    next_core = 0
    for gidx, level in enumerate(used_levels):
        ids = tuple(range(next_core, next_core + counts[level]))
        next_core += counts[level]
        groups.append(CGroup(index=gidx, level=level, core_ids=ids))
        for cid in ids:
            group_of_core[cid] = gidx
        core_levels.extend([level] * counts[level])

    if next_core != num_cores:
        raise SearchError(
            f"core allocation mismatch: placed {next_core} of {num_cores}"
        )

    # Map classes to groups. A class whose level was merged/unselected goes
    # to the nearest *faster-or-equal* used level so it still meets T.
    level_to_group = {g.level: g.index for g in groups}
    class_to_group: dict[str, int] = {}
    for i, name in enumerate(table.class_names):
        lvl = class_level[i]
        if lvl in level_to_group:
            class_to_group[name] = level_to_group[lvl]
        else:
            faster = [g.index for g in groups if g.level <= lvl]
            class_to_group[name] = faster[-1] if faster else 0

    return CGroupPlan(
        core_levels=tuple(core_levels),
        groups=tuple(groups),
        class_to_group=class_to_group,
        group_of_core=tuple(group_of_core),
    )


def uniform_plan(num_cores: int, level: int, class_names: tuple[str, ...] = ()) -> CGroupPlan:
    """A degenerate one-group plan with every core at ``level``.

    Used for the first (profiling) batch and the memory-bound fallback.
    """
    group = CGroup(index=0, level=level, core_ids=tuple(range(num_cores)))
    return CGroupPlan(
        core_levels=tuple([level] * num_cores),
        groups=(group,),
        class_to_group={name: 0 for name in class_names},
        group_of_core=tuple([0] * num_cores),
    )
