"""EEWA reproduction: energy-efficient workload-aware task scheduling.

A full reproduction of *"EEWA: Energy-Efficient Workload-Aware Task
Scheduling in Multi-core Architectures"* (Chen, Zheng, Guo, Huang — IPDPS
2014), built on a deterministic discrete-event multicore/DVFS simulator.

Quickstart
----------
>>> from repro import (
...     EEWAScheduler, CilkScheduler, opteron_8380_machine, simulate,
... )
>>> from repro.workloads import benchmark_program
>>> machine = opteron_8380_machine()
>>> program = benchmark_program("MD5", batches=6, seed=7)
>>> eewa = simulate(program, EEWAScheduler(), machine, seed=7)
>>> cilk = simulate(program, CilkScheduler(), machine, seed=7)
>>> eewa.total_joules < cilk.total_joules
True

Package layout
--------------
``repro.machine``
    Simulated hardware: frequency scales, CMOS power model, cores, energy
    metering (replaces the paper's Opteron testbed and wall power meter).
``repro.sim``
    Deterministic discrete-event engine, RNG streams, traces.
``repro.runtime``
    Task model, work-stealing pools, and the Cilk / Cilk-D / WATS
    baselines.
``repro.core``
    The paper's contribution: online profiler (Eq. 1), CC table (Table I),
    backtracking k-tuple search (Algorithm 1), c-groups, preference lists,
    the frequency adjuster, and the EEWA policy.
``repro.kernels``
    Real implementations of the Table II benchmark algorithms (BWT, bzip2
    pipeline, DMC, JPEG, LZW, MD5, SHA-1) used to calibrate workloads.
``repro.workloads``
    Batch/task generators for the seven named benchmarks plus synthetic
    imbalance sweeps.
``repro.experiments``
    One module per paper exhibit (Fig. 1, 6, 7, 8, 9, Table III).
``repro.analysis``
    Normalisation and summary statistics used in reports.
"""

from repro.core import EEWAConfig, EEWAScheduler
from repro.machine import (
    FrequencyScale,
    MachineConfig,
    opteron_8380_machine,
    small_test_machine,
)
from repro.runtime import (
    Batch,
    CilkDScheduler,
    CilkScheduler,
    TaskSpec,
    WATSScheduler,
    flat_batch,
)
from repro.sim import SimResult, Simulator, simulate

__version__ = "1.0.0"

__all__ = [
    "Batch",
    "CilkDScheduler",
    "CilkScheduler",
    "EEWAConfig",
    "EEWAScheduler",
    "FrequencyScale",
    "MachineConfig",
    "SimResult",
    "Simulator",
    "TaskSpec",
    "WATSScheduler",
    "__version__",
    "flat_batch",
    "opteron_8380_machine",
    "simulate",
    "small_test_machine",
]
