"""Tests for the sweep engine's analytic-model tier (``fidelity`` axis).

The contracts the conformance/acceptance gates rely on:

* ``fidelity="auto"`` serves model-eligible cells in O(1) with
  ``CellOutcome.source == "model"`` and falls back to full simulation
  everywhere else — bit-identical to ``fidelity="sim"`` for every
  ineligible cell;
* model payloads are cached under a model-versioned key, so a model run
  never shadows (or is shadowed by) the simulation cache entry for the
  same cell;
* per-submit ``fidelity`` overrides let trace consumers force a full
  simulation through a model-tier engine.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.parallel import CellSpec, ResultCache
from repro.experiments.sweep import FIDELITIES, SweepEngine
from repro.model.predict import model_key
from repro.sim.fingerprint import trace_fingerprint

BATCHES = 3


def spec(policy="cilk", seed=11, benchmark="SHA-1", **kwargs):
    return CellSpec(
        benchmark=benchmark, policy=policy, seed=seed, batches=BATCHES,
        **kwargs,
    )


class TestFidelityValidation:
    def test_axis_values(self):
        assert FIDELITIES == ("sim", "model", "auto")

    def test_engine_rejects_unknown_fidelity(self):
        with pytest.raises(ConfigurationError):
            SweepEngine(workers=0, cache_dir=None, fidelity="oracle")

    def test_submit_rejects_unknown_fidelity(self):
        with SweepEngine(workers=0, cache_dir=None) as eng:
            with pytest.raises(ConfigurationError):
                eng.submit(spec(), fidelity="oracle")


class TestAutoTier:
    def test_eligible_cell_served_by_model(self):
        with SweepEngine(workers=0, cache_dir=None, fidelity="auto") as eng:
            outcome = eng.submit(spec()).result()
        assert outcome.source == "model"
        assert not outcome.from_cache
        assert eng.stats.model_cells == 1
        assert eng.stats.executed == 0

    def test_ineligible_cell_bit_identical_to_sim(self):
        # wats has no analytic form: auto must fall back to the exact
        # simulation the sim engine produces.
        levels = (0, 0, 0, 0, 2, 2, 2, 2, 0, 0, 0, 0, 2, 2, 2, 2)
        wats = spec(policy="wats", core_levels=levels)
        with SweepEngine(workers=0, cache_dir=None, fidelity="auto") as auto_eng:
            via_auto = auto_eng.submit(wats).result()
        with SweepEngine(workers=0, cache_dir=None, fidelity="sim") as sim_eng:
            via_sim = sim_eng.submit(wats).result()
        assert via_auto.source == "sim"
        assert auto_eng.stats.model_cells == 0
        assert trace_fingerprint(via_auto.result) == trace_fingerprint(
            via_sim.result
        )
        assert via_auto.result.total_joules == via_sim.result.total_joules

    def test_model_outcome_matches_sim_within_bounds(self):
        from repro.model.bounds import MAX_RELATIVE_ERROR

        cell = spec()
        with SweepEngine(workers=0, cache_dir=None, fidelity="auto") as eng:
            modeled = eng.submit(cell).result()
        with SweepEngine(workers=0, cache_dir=None, fidelity="sim") as eng:
            simulated = eng.submit(cell).result()
        assert modeled.result.total_time == pytest.approx(
            simulated.result.total_time, rel=MAX_RELATIVE_ERROR
        )
        assert modeled.result.total_joules == pytest.approx(
            simulated.result.total_joules, rel=MAX_RELATIVE_ERROR
        )


class TestModelCacheKeying:
    def test_model_cached_under_model_key(self, tmp_path):
        cell = spec()
        with SweepEngine(workers=0, cache_dir=None) as eng:
            sim_key = eng.submit(cell, fidelity="sim").result().key
        with SweepEngine(
            workers=0, cache_dir=tmp_path, fidelity="auto"
        ) as eng:
            outcome = eng.submit(cell).result()
        assert outcome.key == model_key(sim_key)
        cache = ResultCache(tmp_path)
        assert cache.get(model_key(sim_key)) is not None
        assert cache.get(sim_key) is None  # the sim entry is untouched

    def test_sim_results_never_shadowed(self, tmp_path):
        cell = spec()
        # Model run first, then a sim run of the same cell: both land in
        # the cache under distinct keys and both are served back.
        with SweepEngine(
            workers=0, cache_dir=tmp_path, fidelity="auto"
        ) as eng:
            eng.submit(cell).result()
        with SweepEngine(
            workers=0, cache_dir=tmp_path, fidelity="sim"
        ) as eng:
            simulated = eng.submit(cell).result()
            assert not simulated.from_cache  # model entry did not shadow
            assert simulated.source == "sim"
        with SweepEngine(
            workers=0, cache_dir=tmp_path, fidelity="sim"
        ) as eng:
            warm = eng.submit(cell).result()
            assert warm.from_cache
            assert warm.source == "sim"
        with SweepEngine(
            workers=0, cache_dir=tmp_path, fidelity="auto"
        ) as eng:
            warm_model = eng.submit(cell).result()
            assert warm_model.from_cache
            # Both entries exist now; the exact sim result always wins.
            assert warm_model.source == "sim"
            assert eng.stats.model_cells == 0  # cache hit, not recompute

    def test_sim_cache_hit_beats_model_tier(self, tmp_path):
        cell = spec()
        with SweepEngine(
            workers=0, cache_dir=tmp_path, fidelity="sim"
        ) as eng:
            eng.submit(cell).result()
        # A warm sim entry wins even under fidelity="auto": cached exact
        # results are always preferred over predictions.
        with SweepEngine(
            workers=0, cache_dir=tmp_path, fidelity="auto"
        ) as eng:
            outcome = eng.submit(cell).result()
        assert outcome.from_cache
        assert outcome.source == "sim"


class TestPerSubmitOverride:
    def test_force_sim_through_model_engine(self):
        with SweepEngine(workers=0, cache_dir=None, fidelity="model") as eng:
            outcome = eng.submit(spec(), fidelity="sim").result()
        assert outcome.source == "sim"
        # A full SimResult with a per-batch trace, as trace consumers need.
        assert outcome.result.trace.batches

    def test_force_model_through_sim_engine(self):
        with SweepEngine(workers=0, cache_dir=None) as eng:
            outcome = eng.submit(spec(), fidelity="model").result()
        assert outcome.source == "model"


class TestSessionFidelity:
    def test_run_single_always_simulates(self):
        from repro.scenario import ScenarioSpec, Session
        from repro.scenario.spec import PolicySpec

        scenario = ScenarioSpec(
            workload="SHA-1", policy=PolicySpec("cilk"), batches=BATCHES
        )
        with Session(fidelity="auto") as session:
            result = session.run_single(scenario)
        assert result.trace.batches  # full simulation despite auto

    def test_grid_serves_model_cells(self):
        from repro.scenario import ScenarioSpec, Session
        from repro.scenario.spec import PolicySpec

        scenario = ScenarioSpec(
            workload="SHA-1", policy=PolicySpec("cilk"),
            batches=BATCHES, seeds=(11,),
        )
        with Session(fidelity="auto") as session:
            cells = session.run_grid_detailed([scenario])
        assert [o.source for o in cells[0]] == ["model"]
