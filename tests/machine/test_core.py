"""Tests for the simulated core state machine."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.machine.core import BUSY_STATES, CoreState, SimCore
from repro.machine.frequency import opteron_8380_scale


@pytest.fixture
def core() -> SimCore:
    return SimCore(core_id=0, scale=opteron_8380_scale())


class TestLifecycle:
    def test_initial_state_parked_at_fastest(self, core):
        assert core.state is CoreState.PARKED
        assert core.level == 0
        assert core.frequency == opteron_8380_scale().fastest

    def test_run_finish_cycle(self, core):
        core.spin()
        core.start_task(7)
        assert core.state is CoreState.RUNNING
        assert core.running_task_id == 7
        assert core.finish_task() == 7
        assert core.state is CoreState.SPINNING

    def test_cannot_start_while_running(self, core):
        core.spin()
        core.start_task(1)
        with pytest.raises(SimulationError):
            core.start_task(2)

    def test_cannot_finish_when_not_running(self, core):
        with pytest.raises(SimulationError):
            core.finish_task()

    def test_cannot_park_or_spin_while_running(self, core):
        core.spin()
        core.start_task(1)
        with pytest.raises(SimulationError):
            core.park()
        with pytest.raises(SimulationError):
            core.spin()


class TestDvfs:
    def test_transition_changes_level(self, core):
        core.spin()
        core.begin_transition(3)
        assert core.in_transition
        assert core.level == 0  # not yet applied
        core.complete_transition()
        assert core.level == 3
        assert core.state is CoreState.SPINNING

    def test_cannot_transition_while_running(self, core):
        core.spin()
        core.start_task(1)
        with pytest.raises(SimulationError):
            core.begin_transition(1)

    def test_complete_without_begin_raises(self, core):
        with pytest.raises(SimulationError):
            core.complete_transition()

    def test_invalid_level_rejected(self, core):
        core.spin()
        with pytest.raises(ConfigurationError):
            core.begin_transition(9)


class TestExecTime:
    def test_cpu_time_scales_with_frequency(self, core):
        core.spin()
        cycles = 2.5e9  # one second at F0
        assert core.exec_seconds(cycles) == pytest.approx(1.0)
        core.begin_transition(3)
        core.complete_transition()
        assert core.exec_seconds(cycles) == pytest.approx(2.5 / 0.8)

    def test_mem_stall_does_not_scale(self, core):
        core.spin()
        t_fast = core.exec_seconds(0.0, mem_stall_seconds=0.5)
        core.begin_transition(3)
        core.complete_transition()
        t_slow = core.exec_seconds(0.0, mem_stall_seconds=0.5)
        assert t_fast == pytest.approx(t_slow) == pytest.approx(0.5)

    def test_negative_cost_rejected(self, core):
        with pytest.raises(SimulationError):
            core.exec_seconds(-1.0)

    def test_busy_states(self):
        assert CoreState.RUNNING in BUSY_STATES
        assert CoreState.SPINNING in BUSY_STATES
        assert CoreState.PARKED not in BUSY_STATES
        assert CoreState.TRANSITION not in BUSY_STATES

    def test_negative_core_id_rejected(self):
        with pytest.raises(ConfigurationError):
            SimCore(core_id=-1, scale=opteron_8380_scale())
