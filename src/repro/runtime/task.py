"""Task and batch model.

The paper targets *iteration-based* (batch-based) parallel applications:
the program launches a batch of parallel tasks (e.g. 128, as Cilk++
suggests), waits for all of them at a barrier, then launches the next batch
(Section IV). Tasks are grouped into *task classes by function name*; the
class is the unit the frequency adjuster reasons about.

A :class:`TaskSpec` is the immutable description of one task's cost; a
:class:`Task` is the engine's mutable execution record for one spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.errors import ConfigurationError
from repro.machine.counters import PerfCounters


@dataclass(frozen=True)
class TaskSpec:
    """Immutable cost description of one task.

    Parameters
    ----------
    function:
        The task's function name — its *task class* identity (paper
        Section III-A1: "tasks are grouped into task classes according to
        their function names").
    cpu_cycles:
        Cycles of frequency-scalable CPU work.
    mem_stall_seconds:
        Frequency-independent memory stall time (0 for the CPU-bound
        benchmarks of Table II; positive for memory-bound tasks used to
        exercise the Section IV-D fallback).
    counters:
        Simulated PMU readings delivered when the task retires.
    children:
        Specs spawned when this task starts executing (Cilk-style nested
        spawns). Empty for flat batch workloads.
    """

    function: str
    cpu_cycles: float
    mem_stall_seconds: float = 0.0
    counters: Optional[PerfCounters] = None
    children: tuple["TaskSpec", ...] = ()

    def __post_init__(self) -> None:
        if not self.function:
            raise ConfigurationError("a task needs a function name")
        if self.cpu_cycles < 0:
            raise ConfigurationError("cpu_cycles must be non-negative")
        if self.mem_stall_seconds < 0:
            raise ConfigurationError("mem_stall_seconds must be non-negative")

    def total_cpu_cycles(self) -> float:
        """CPU cycles of this spec plus all descendants."""
        return self.cpu_cycles + sum(c.total_cpu_cycles() for c in self.children)

    def count_tasks(self) -> int:
        """Number of tasks this spec expands to (itself plus descendants)."""
        return 1 + sum(c.count_tasks() for c in self.children)


@dataclass(slots=True)
class Task:
    """Mutable execution record for one spec instance.

    ``slots=True``: runs mint one instance per executed task (hundreds of
    thousands across a sweep) and the engine reads/writes these fields in
    its hot path.
    """

    task_id: int
    spec: TaskSpec
    batch_index: int
    stolen: bool = False
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    executed_on: Optional[int] = None
    executed_level: Optional[int] = None

    @property
    def function(self) -> str:
        return self.spec.function

    @property
    def elapsed(self) -> float:
        """Observed execution time (profiler input; Eq. 1 numerator)."""
        if self.start_time is None or self.finish_time is None:
            raise ConfigurationError(f"task {self.task_id} has not finished")
        return self.finish_time - self.start_time


@dataclass(frozen=True)
class Batch:
    """One iteration's worth of tasks."""

    index: int
    specs: tuple[TaskSpec, ...]

    def __post_init__(self) -> None:
        if not self.specs:
            raise ConfigurationError(f"batch {self.index} is empty")

    def __len__(self) -> int:
        return len(self.specs)

    def total_tasks(self) -> int:
        return sum(s.count_tasks() for s in self.specs)

    def total_cpu_cycles(self) -> float:
        return sum(s.total_cpu_cycles() for s in self.specs)

    def functions(self) -> set[str]:
        names: set[str] = set()
        stack = list(self.specs)
        while stack:
            spec = stack.pop()
            names.add(spec.function)
            stack.extend(spec.children)
        return names


class TaskFactory:
    """Mints :class:`Task` records with process-unique dense ids.

    The counter is a plain observable int (not :func:`itertools.count`) so
    the engine's steady-state fast-forward can mint replayed task ids
    arithmetically and :meth:`advance_to` the factory past them before
    resuming normal simulation.
    """

    def __init__(self) -> None:
        self._next_id = 0

    @property
    def next_id(self) -> int:
        """The id the next :meth:`make` call will assign."""
        return self._next_id

    def advance_to(self, next_id: int) -> None:
        """Skip the counter forward (fast-forward replay minted ids)."""
        if next_id < self._next_id:
            raise ConfigurationError(
                f"cannot rewind task ids from {self._next_id} to {next_id}"
            )
        self._next_id = next_id

    def make(self, spec: TaskSpec, batch_index: int) -> Task:
        task_id = self._next_id
        self._next_id = task_id + 1
        return Task(task_id=task_id, spec=spec, batch_index=batch_index)


def flat_batch(index: int, specs: Sequence[TaskSpec]) -> Batch:
    """Convenience constructor for a batch of independent tasks."""
    return Batch(index=index, specs=tuple(specs))


def iter_programs_batches(batches: Sequence[Batch]) -> Iterator[Batch]:
    """Validate batch indices are dense and yield them in order."""
    for expected, batch in enumerate(batches):
        if batch.index != expected:
            raise ConfigurationError(
                f"batch indices must be dense from 0; got {batch.index} at position {expected}"
            )
        yield batch
