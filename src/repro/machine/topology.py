"""Machine configuration and presets.

A :class:`MachineConfig` bundles everything the engine needs to know about
the hardware being simulated: core count, frequency ladder, power model, and
the latency constants that make scheduling decisions cost something.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.machine.frequency import FrequencyScale, opteron_8380_scale
from repro.machine.power import PowerModel, VoltageCurve, calibrated_power_model


@dataclass(frozen=True)
class MachineConfig:
    """Static description of the simulated multicore machine.

    Parameters
    ----------
    num_cores:
        Number of cores ``m``.
    scale:
        DVFS frequency ladder shared by all cores.
    power:
        Power model used by the energy meter.
    steal_cycles:
        Cycles charged to a core for one successful steal (victim scan +
        deque CAS). Converted to seconds at the thief's frequency.
    pop_cycles:
        Cycles charged for a local pool pop (cheap, lock-free path).
    failed_scan_cycles:
        Cycles charged for scanning all victims and finding nothing before
        the core settles into its spin-wait.
    dvfs_latency_s:
        Seconds a core is stalled while switching P-states.
    dvfs_domains:
        Optional partition of core ids into shared-frequency domains
        (voltage planes). Within a domain the hardware runs every core at
        the *fastest* requested level — the semantics of per-socket DVFS,
        which is what the real Opteron 8380 actually had (the paper
        assumes per-core control; the per-socket preset is the ablation).
        ``None`` (default) means fully independent per-core DVFS.
    """

    num_cores: int
    scale: FrequencyScale
    power: PowerModel
    steal_cycles: float = 6000.0
    pop_cycles: float = 400.0
    failed_scan_cycles: float = 12000.0
    dvfs_latency_s: float = 100e-6
    dvfs_domains: Optional[tuple[tuple[int, ...], ...]] = None

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigurationError("a machine needs at least one core")
        for name in ("steal_cycles", "pop_cycles", "failed_scan_cycles", "dvfs_latency_s"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.dvfs_domains is not None:
            seen = [c for dom in self.dvfs_domains for c in dom]
            if sorted(seen) != list(range(self.num_cores)):
                raise ConfigurationError(
                    "dvfs_domains must partition the core ids exactly"
                )
            if any(len(dom) == 0 for dom in self.dvfs_domains):
                raise ConfigurationError("dvfs_domains must be non-empty")

    @property
    def r(self) -> int:
        """Number of frequency levels."""
        return self.scale.r

    def with_cores(self, num_cores: int) -> "MachineConfig":
        """Copy of this config with a different core count (Fig. 9 sweeps)."""
        return replace(self, num_cores=num_cores)


def opteron_8380_machine(
    num_cores: int = 16,
    *,
    power: Optional[PowerModel] = None,
    per_socket_dvfs: bool = False,
) -> MachineConfig:
    """The paper's testbed: four quad-core AMD Opteron 8380 processors.

    Sixteen cores, four P-states (2.5/1.8/1.3/0.8 GHz), whole-machine power
    model calibrated in :func:`repro.machine.power.calibrated_power_model`.

    ``per_socket_dvfs=True`` groups cores into quad-core shared-frequency
    domains — the physical Opteron 8380's actual DVFS granularity — for
    the hardware-granularity ablation.
    """
    scale = opteron_8380_scale()
    if power is None:
        power = calibrated_power_model(scale)
    domains = None
    if per_socket_dvfs:
        if num_cores % 4:
            raise ConfigurationError("per-socket preset needs a multiple of 4 cores")
        domains = tuple(
            tuple(range(s, s + 4)) for s in range(0, num_cores, 4)
        )
    return MachineConfig(
        num_cores=num_cores, scale=scale, power=power, dvfs_domains=domains
    )


def dyadic_test_machine(num_cores: int = 8, r: int = 4) -> MachineConfig:
    """A machine on which every engine computation is float-exact.

    Frequencies are powers of two (halving from ``2^31`` Hz), the voltage
    curve is flat at 1.0, ``kappa`` and every latency constant are dyadic
    rationals, and cycle counts divide the frequencies exactly — so task
    durations, overheads, and per-interval energies are all dyadic and
    every ``+`` in the engine is exact (no rounding anywhere). On this
    machine a converged steady state has *bit-constant* per-batch deltas
    forever, which is what makes the steady-state fast-forward's arithmetic
    replay provably bit-identical to full simulation. The fast-forward
    tests, conformance parity check, and 100-batch benchmarks all run here.
    """
    if r < 1:
        raise ConfigurationError("need at least one frequency level")
    scale = FrequencyScale(tuple(2.0 ** (31 - i) for i in range(r)))
    curve = VoltageCurve(f_min=scale.slowest, f_max=scale.fastest, v_min=1.0, v_max=1.0)
    power = PowerModel(
        voltage_curve=curve,
        kappa=2.0**-28,
        core_idle_power=1.0,
        machine_base_power=2.0,
    )
    return MachineConfig(
        num_cores=num_cores,
        scale=scale,
        power=power,
        steal_cycles=8192.0,
        pop_cycles=512.0,
        failed_scan_cycles=16384.0,
        dvfs_latency_s=2.0**-13,
    )


def small_test_machine(
    num_cores: int = 2, levels: tuple[float, ...] = (2.0e9, 1.0e9)
) -> MachineConfig:
    """A tiny machine for unit tests and the Fig. 1 micro-experiment."""
    scale = FrequencyScale(levels)
    power = calibrated_power_model(
        scale, top_core_busy_watts=10.0, core_idle_watts=1.0, machine_base_watts=0.0
    )
    return MachineConfig(num_cores=num_cores, scale=scale, power=power)
