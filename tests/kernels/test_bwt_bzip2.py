"""Tests for the BWT, the BWC pipeline and the bzip2 pipeline."""

import pytest

from repro.errors import KernelError
from repro.kernels.bwt import (
    BWTResult,
    bwc_compress,
    bwc_decompress,
    bwt_forward,
    bwt_inverse,
    suffix_array,
)
from repro.kernels.bzip2 import (
    bzip2_compress,
    bzip2_decompress,
    compress_block,
    decompress_block,
)


class TestSuffixArray:
    def test_banana(self):
        # suffixes of "banana": a(5) ana(3) anana(1) banana(0) na(4) nana(2)
        assert suffix_array(b"banana") == [5, 3, 1, 0, 4, 2]

    def test_empty(self):
        assert suffix_array(b"") == []

    def test_matches_naive_sort(self):
        import random

        rng = random.Random(0)
        for _ in range(20):
            data = bytes(rng.randrange(0, 4) for _ in range(rng.randrange(1, 60)))
            naive = sorted(range(len(data)), key=lambda i: data[i:])
            assert suffix_array(data) == naive


class TestBWT:
    def test_banana_classic(self):
        result = bwt_forward(b"banana")
        assert result.transformed == b"annbaa"
        assert result.primary_index == 4

    def test_roundtrip(self):
        for data in (b"", b"a", b"abracadabra", b"aaaa", bytes(range(256))):
            assert bwt_inverse(bwt_forward(data)) == data

    def test_transform_is_permutation(self):
        data = b"the quick brown fox"
        result = bwt_forward(data)
        assert sorted(result.transformed) == sorted(data)

    def test_clusters_repeated_context(self):
        """BWT's raison d'etre: equal-context bytes cluster."""
        data = b"she sells sea shells on the sea shore " * 5
        transformed = bwt_forward(data).transformed
        runs = sum(1 for a, b in zip(transformed, transformed[1:]) if a == b)
        runs_raw = sum(1 for a, b in zip(data, data[1:]) if a == b)
        assert runs > runs_raw

    def test_bad_primary_index_rejected(self):
        with pytest.raises(KernelError):
            bwt_inverse(BWTResult(transformed=b"ab", primary_index=9))


class TestBWC:
    def test_roundtrip(self):
        for data in (b"", b"x", b"the quick brown fox " * 30, bytes(range(64)) * 4):
            assert bwc_decompress(bwc_compress(data)) == data

    def test_compresses_text(self):
        data = b"compression pipelines compress compressible content " * 40
        block = bwc_compress(data)
        assert len(block.payload) < len(data) / 4


class TestBzip2:
    def test_block_roundtrip(self):
        data = b"some block content with repeats repeats repeats" * 10
        assert decompress_block(compress_block(data)) == data

    def test_empty_block_rejected(self):
        with pytest.raises(KernelError):
            compress_block(b"")

    def test_stream_roundtrip_multi_block(self):
        data = (b"0123456789abcdef" * 400)[:5500]
        stream = bzip2_compress(data, block_size=1024)
        assert len(stream.blocks) == 6
        assert bzip2_decompress(stream) == data

    def test_stream_roundtrip_empty(self):
        stream = bzip2_compress(b"")
        assert stream.blocks == ()
        assert bzip2_decompress(stream) == b""

    def test_rle1_defuses_pathological_runs(self):
        """A megarun must not blow up the BWT stage."""
        data = b"a" * 5000
        stream = bzip2_compress(data, block_size=8192)
        assert bzip2_decompress(stream) == data
        # And it compresses extremely well.
        assert len(stream.blocks[0].payload) < 200

    def test_invalid_block_size(self):
        with pytest.raises(KernelError):
            bzip2_compress(b"abc", block_size=0)
