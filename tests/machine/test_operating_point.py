"""Tests for operating points and operating-point spaces."""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.machine.operating_point import (
    DEFAULT_CORE_TYPE,
    OperatingPoint,
    OperatingPointSpace,
    homogeneous_space,
    space_from_ladders,
)
from repro.machine.topology import big_little_test_machine


class TestOperatingPoint:
    def test_effective_speed_scales_by_ipc(self):
        p = OperatingPoint("little", 2.0e9, ipc_scale=0.5)
        assert p.effective_hz == 1.0e9

    def test_reference_ipc_is_identity(self):
        p = OperatingPoint("big", 2.0e9)
        assert p.effective_hz == 2.0e9

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"core_type": "", "frequency": 1.0e9},
            {"core_type": "big", "frequency": 0.0},
            {"core_type": "big", "frequency": -1.0},
            {"core_type": "big", "frequency": 1.0e9, "ipc_scale": 0.0},
        ],
    )
    def test_invalid_points_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            OperatingPoint(**kwargs)


class TestHomogeneousSpace:
    def test_flat_ladder_views(self):
        scale = homogeneous_space((2.5e9, 1.8e9, 0.8e9))
        assert scale.levels == (2.5e9, 1.8e9, 0.8e9)
        assert scale.r == 3
        assert (scale.fastest, scale.slowest) == (2.5e9, 0.8e9)
        assert scale.is_homogeneous
        assert scale.types == (DEFAULT_CORE_TYPE,)
        assert list(scale) == list(scale.levels)
        assert scale[1] == 1.8e9

    def test_slowdown_is_the_frequency_ratio(self):
        scale = homogeneous_space((2.0e9, 1.0e9))
        assert scale.slowdown(1) == 2.0
        assert scale.relative_speed(1) == 0.5

    def test_ladder_of_own_type_is_identity(self):
        scale = homogeneous_space((2.0e9, 1.0e9))
        assert scale.ladder(DEFAULT_CORE_TYPE) is scale
        with pytest.raises(ConfigurationError):
            scale.ladder("big")

    def test_non_descending_rejected(self):
        with pytest.raises(ConfigurationError):
            homogeneous_space((1.0e9, 2.0e9))
        with pytest.raises(ConfigurationError):
            homogeneous_space((2.0e9, 2.0e9))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            homogeneous_space(())


class TestMergedSpace:
    """The dyadic big.LITTLE space documented in the topology preset."""

    @pytest.fixture
    def scale(self):
        return big_little_test_machine().scale

    def test_merge_order_descending_effective_tie_by_declaration(self, scale):
        assert [(p.core_type, p.frequency) for p in scale.points] == [
            ("big", 2.0**31),
            ("big", 2.0**30),
            ("big", 2.0**29),  # eff 2^29 ...
            ("little", 2.0**30),  # ... ties; big declared first
            ("big", 2.0**28),
            ("little", 2.0**29),
            ("little", 2.0**28),
            ("little", 2.0**27),
        ]
        assert scale.r == 8
        assert not scale.is_homogeneous
        assert scale.types == ("big", "little")

    def test_slowdown_uses_effective_speed_not_frequency(self, scale):
        # little@2^30 electrical retires at 2^29 → 4x slower than big@2^31.
        assert scale.slowdown(3) == 4.0
        # Cross-type effective tie: identical arithmetic for both points.
        assert scale.slowdown(2) == scale.slowdown(3)
        assert scale.relative_speed(2) == scale.relative_speed(3)

    def test_index_arithmetic_round_trips(self, scale):
        for index in range(scale.r):
            core_type = scale.core_type_of(index)
            level = scale.type_level_of(index)
            assert scale.index_for(core_type, level) == index

    def test_type_levels(self, scale):
        assert [scale.type_level_of(i) for i in range(8)] == [
            0, 1, 2, 0, 3, 1, 2, 3,
        ]

    def test_unknown_type_level_rejected(self, scale):
        with pytest.raises(ConfigurationError):
            scale.index_for("big", 4)
        with pytest.raises(ConfigurationError):
            scale.index_for("huge", 0)

    def test_ladders_preserve_per_type_order(self, scale):
        big = scale.ladder("big")
        little = scale.ladder("little")
        assert big.levels == tuple(2.0 ** (31 - i) for i in range(4))
        assert little.levels == tuple(2.0 ** (30 - i) for i in range(4))
        assert big.is_homogeneous and little.is_homogeneous
        # Cached: repeated lookups share the sub-space object.
        assert scale.ladder("big") is big

    def test_pickle_round_trip_rebuilds_caches(self, scale):
        clone = pickle.loads(pickle.dumps(scale))
        assert clone == scale
        assert clone.index_for("little", 1) == scale.index_for("little", 1)
        assert clone.ladder("big").levels == scale.ladder("big").levels


class TestSpaceValidation:
    def test_duplicate_point_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            OperatingPointSpace(
                (
                    OperatingPoint("big", 2.0e9),
                    OperatingPoint("big", 2.0e9),
                )
            )

    def test_conflicting_ipc_rejected(self):
        with pytest.raises(ConfigurationError, match="conflicting"):
            OperatingPointSpace(
                (
                    OperatingPoint("big", 2.0e9, ipc_scale=1.0),
                    OperatingPoint("big", 1.0e9, ipc_scale=0.5),
                )
            )

    def test_unordered_points_rejected(self):
        with pytest.raises(ConfigurationError, match="descending"):
            OperatingPointSpace(
                (
                    OperatingPoint("big", 1.0e9),
                    OperatingPoint("big", 2.0e9),
                )
            )

    def test_space_from_ladders_validates_each_ladder(self):
        with pytest.raises(ConfigurationError, match="descending"):
            space_from_ladders([("big", (1.0e9, 2.0e9), 1.0)])
        with pytest.raises(ConfigurationError, match="duplicate core type"):
            space_from_ladders(
                [("big", (2.0e9,), 1.0), ("big", (1.0e9,), 1.0)]
            )
        with pytest.raises(ConfigurationError):
            space_from_ladders([])
