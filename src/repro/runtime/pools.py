"""Per-core multi-pool task storage.

Fig. 4 of the paper: "each core has ``r`` task pools corresponding to the
``r`` c-groups". A task allocated to c-group ``G_j`` lives in some core's
pool number ``j``; cores pop locally from their own group's pool and steal
within a pool index before escalating across groups via the preference list.

:class:`PoolGrid` is that structure plus the per-pool-index queued-task
counters that make "are all ``TP_j`` pools empty?" an O(1) question — the
check the preference-based scheduler performs on every escalation decision.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.errors import ConfigurationError, SchedulingError
from repro.runtime.deque import WorkStealingDeque
from repro.runtime.task import Task

#: Observer callback for pool mutations: ``(op, pool_core, pool_index,
#: task)`` where ``op`` is ``"push"`` / ``"pop"`` / ``"steal"`` and
#: ``pool_core`` is the owner of the touched pool (the victim for steals).
#: The engine supplies one when task-event tracing is enabled; see
#: :meth:`repro.sim.engine.Simulator.pool_observer`.
PoolObserver = Callable[[str, int, int, Task], None]


class PoolGrid:
    """``num_cores x num_pools`` grid of work-stealing deques."""

    def __init__(
        self,
        num_cores: int,
        num_pools: int,
        *,
        observer: Optional[PoolObserver] = None,
    ) -> None:
        if num_cores < 1 or num_pools < 1:
            raise ConfigurationError("PoolGrid needs at least one core and one pool")
        self.num_cores = num_cores
        self.num_pools = num_pools
        self._observer = observer
        self._pools: list[list[WorkStealingDeque[Task]]] = [
            [WorkStealingDeque() for _ in range(num_pools)] for _ in range(num_cores)
        ]
        self._queued_by_pool: list[int] = [0] * num_pools

    # -- index checks -------------------------------------------------------

    def _check(self, core_id: int, pool_index: int) -> None:
        if not 0 <= core_id < self.num_cores:
            raise SchedulingError(f"core {core_id} out of range [0, {self.num_cores})")
        if not 0 <= pool_index < self.num_pools:
            raise SchedulingError(f"pool {pool_index} out of range [0, {self.num_pools})")

    # -- mutation -----------------------------------------------------------

    def push(self, core_id: int, pool_index: int, task: Task) -> None:
        """Owner-side push of ``task`` into ``core_id``'s pool ``pool_index``."""
        self._check(core_id, pool_index)
        self._pools[core_id][pool_index].push_bottom(task)
        self._queued_by_pool[pool_index] += 1
        if self._observer is not None:
            self._observer("push", core_id, pool_index, task)

    def pop_local(self, core_id: int, pool_index: int) -> Optional[Task]:
        """Owner-side LIFO pop; ``None`` when the local pool is empty."""
        self._check(core_id, pool_index)
        task = self._pools[core_id][pool_index].pop_bottom()
        if task is not None:
            self._queued_by_pool[pool_index] -= 1
            if self._observer is not None:
                self._observer("pop", core_id, pool_index, task)
        return task

    def steal(self, victim_id: int, pool_index: int) -> Optional[Task]:
        """Thief-side FIFO steal from ``victim_id``'s pool ``pool_index``."""
        self._check(victim_id, pool_index)
        task = self._pools[victim_id][pool_index].steal_top()
        if task is not None:
            self._queued_by_pool[pool_index] -= 1
            task.stolen = True
            if self._observer is not None:
                self._observer("steal", victim_id, pool_index, task)
        return task

    def clear(self) -> None:
        for row in self._pools:
            for pool in row:
                pool.clear()
        self._queued_by_pool = [0] * self.num_pools

    # -- queries --------------------------------------------------------------

    def queued_in_pool_index(self, pool_index: int) -> int:
        """Tasks queued across all cores in pool ``pool_index`` (O(1))."""
        self._check(0, pool_index)
        return self._queued_by_pool[pool_index]

    def pool_index_empty(self, pool_index: int) -> bool:
        """True when every core's pool ``pool_index`` is empty (O(1))."""
        return self.queued_in_pool_index(pool_index) == 0

    def local_len(self, core_id: int, pool_index: int) -> int:
        self._check(core_id, pool_index)
        return len(self._pools[core_id][pool_index])

    def total_queued(self) -> int:
        return sum(self._queued_by_pool)

    def victims_with_work(
        self, pool_index: int, exclude: int, candidates: Sequence[int] | None = None
    ) -> list[int]:
        """Core ids (other than ``exclude``) holding work in ``pool_index``."""
        self._check(0, pool_index)
        ids: Iterable[int] = candidates if candidates is not None else range(self.num_cores)
        return [
            c
            for c in ids
            if c != exclude and len(self._pools[c][pool_index]) > 0
        ]
