"""Streaming client for the sweep service (``repro sweep --remote``).

Stdlib-only (:mod:`http.client`), speaking the JSON-lines protocol of
:mod:`repro.service.protocol` over TCP (``http://host:port``) or a unix
domain socket (``unix:/path/to.sock``).

Retry contract
--------------
Transient failures — connection refused/reset, HTTP 429 (queue-full
backpressure), HTTP 5xx, and a stream that ends without a terminal frame
— are retried up to ``retries`` times with bounded exponential backoff
and *seeded* jitter (deterministic for a given client, so test runs and
load harnesses reproduce their own timing). A 429's ``Retry-After`` is
honoured as the floor of the computed delay.

Retrying a sweep is idempotent by construction: submissions are
content-addressed cell keys, so a replayed request re-serves finished
cells from the engine's cache and coalesces unfinished ones onto the jobs
already in flight — nothing simulates twice. The client additionally
deduplicates frames across attempts by cell ``index``, so a consumer of
:meth:`SweepServiceClient.stream` sees each cell exactly once even when a
dropped connection forces a mid-stream replay.

Validation failures (HTTP 400) and protocol violations are *not* retried;
they raise :class:`ServiceError` immediately.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from typing import Any, Iterator, Mapping, Optional, Sequence, Union

from repro.errors import ScenarioError
from repro.scenario.spec import ScenarioSpec
from repro.service.protocol import build_sweep_request, decode_frame

#: Default retry budget and backoff shape.
DEFAULT_RETRIES = 4
DEFAULT_BACKOFF_BASE = 0.25
DEFAULT_BACKOFF_CAP = 4.0
DEFAULT_JITTER_SEED = 0x5EED


class ServiceError(RuntimeError):
    """A request the service refused, or a retry budget that ran out."""

    def __init__(self, message: str, *, code: Optional[str] = None) -> None:
        super().__init__(message)
        self.code = code


class _Retryable(Exception):
    """Internal: a transient failure worth another attempt."""

    def __init__(self, detail: str, *, retry_after: float = 0.0) -> None:
        super().__init__(detail)
        self.retry_after = retry_after


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` over ``AF_UNIX`` (the ``unix:`` URL scheme)."""

    def __init__(self, path: str, timeout: Optional[float] = None) -> None:
        super().__init__("localhost")
        if timeout is not None:
            self.timeout = timeout
        self._unix_path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if isinstance(self.timeout, (int, float)):
            sock.settimeout(self.timeout)
        sock.connect(self._unix_path)
        self.sock = sock


def _parse_url(url: str) -> tuple[str, str]:
    """``(kind, address)`` where kind is ``"tcp"`` or ``"unix"``."""
    if url.startswith("unix:"):
        path = url[len("unix:"):]
        if path.startswith("//"):
            path = path[2:]
        if not path:
            raise ScenarioError(f"unix socket URL has no path: {url!r}")
        return "unix", path
    if url.startswith("http://"):
        return "tcp", url[len("http://"):].rstrip("/")
    if "://" in url:
        raise ScenarioError(
            f"unsupported URL scheme in {url!r} (use http:// or unix:)"
        )
    return "tcp", url.rstrip("/")


class SweepServiceClient:
    """One service endpoint plus a retry policy.

    Parameters
    ----------
    url:
        ``http://host:port``, bare ``host:port``, or ``unix:/path.sock``.
    retries:
        Transient-failure attempts *beyond* the first (0 disables retry).
    backoff_base / backoff_cap:
        Exponential backoff shape: attempt *n* sleeps
        ``min(cap, base * 2**n) + jitter`` with jitter uniform in
        ``[0, base)`` from a generator seeded with ``jitter_seed``.
    timeout:
        Socket timeout per connection (``None``: block indefinitely).
    """

    def __init__(
        self,
        url: str,
        *,
        retries: int = DEFAULT_RETRIES,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        jitter_seed: int = DEFAULT_JITTER_SEED,
        timeout: Optional[float] = None,
    ) -> None:
        self.url = url
        self._kind, self._address = _parse_url(url)
        self._retries = max(0, retries)
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._rng = random.Random(jitter_seed)
        self._timeout = timeout
        #: Sleeps taken by the retry loop (observability/testing).
        self.backoff_log: list[float] = []

    # -- plumbing --------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._kind == "unix":
            return _UnixHTTPConnection(self._address, timeout=self._timeout)
        return http.client.HTTPConnection(self._address, timeout=self._timeout)

    def _sleep(self, attempt: int, retry_after: float) -> None:
        delay = min(self._backoff_cap, self._backoff_base * (2 ** attempt))
        delay += self._rng.uniform(0.0, self._backoff_base)
        delay = max(delay, retry_after)
        self.backoff_log.append(delay)
        time.sleep(delay)

    @staticmethod
    def _error_from_body(resp: http.client.HTTPResponse) -> ServiceError:
        detail = f"HTTP {resp.status}"
        code = None
        try:
            payload = json.loads(resp.read().decode("utf-8"))
            code = payload.get("code")
            detail = f"{detail}: {payload.get('detail', '')}"
        except (ValueError, UnicodeDecodeError):  # eewa: disable=EEWA006 - malformed error body: fall back to the bare HTTP status
            pass
        return ServiceError(detail, code=code)

    # -- API -------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """``GET /stats`` — engine, cache, and server observability."""
        conn = self._connect()
        try:
            conn.request("GET", "/stats")
            resp = conn.getresponse()
            if resp.status != 200:
                raise self._error_from_body(resp)
            return json.loads(resp.read().decode("utf-8"))
        finally:
            conn.close()

    def stream(
        self,
        scenarios: Sequence[Union[ScenarioSpec, Mapping[str, Any]]],
        *,
        fidelity: Optional[str] = None,
        priority: int = 0,
        deadline_s: Optional[float] = None,
    ) -> Iterator[dict[str, Any]]:
        """Stream one sweep: yields ``cell`` frames as they resolve, then
        the terminal ``end`` or ``error`` frame.

        Each cell is yielded exactly once (by ``index``) even across
        retried attempts. A terminal ``error`` frame is yielded, not
        raised — the cells streamed before it are valid; callers decide
        whether a partial sweep is acceptable.
        """
        body = json.dumps(build_sweep_request(
            [
                s.to_dict() if isinstance(s, ScenarioSpec) else dict(s)
                for s in scenarios
            ],
            fidelity=fidelity,
            priority=priority,
            deadline_s=deadline_s,
        )).encode("utf-8")
        seen: set[int] = set()
        attempt = 0
        while True:
            try:
                yield from self._stream_once(body, seen)
                return
            except _Retryable as exc:
                if attempt >= self._retries:
                    raise ServiceError(
                        f"retries exhausted after {attempt + 1} attempts: {exc}"
                    ) from exc
                self._sleep(attempt, exc.retry_after)
                attempt += 1

    def _stream_once(
        self, body: bytes, seen: set[int]
    ) -> Iterator[dict[str, Any]]:
        try:
            conn = self._connect()
            conn.request(
                "POST", "/sweep", body=body,
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
        except (ConnectionError, socket.timeout, OSError,
                http.client.HTTPException) as exc:
            raise _Retryable(f"connect failed: {exc}") from exc
        try:
            if resp.status == 429:
                retry_after = 0.0
                raw = resp.headers.get("Retry-After")
                if raw is not None:
                    try:
                        retry_after = float(raw)
                    except ValueError:
                        retry_after = 0.0
                resp.read()
                raise _Retryable("queue full (429)", retry_after=retry_after)
            if resp.status >= 500 or resp.status == 503:
                raise _Retryable(f"server error (HTTP {resp.status})")
            if resp.status != 200:
                raise self._error_from_body(resp)
            for line in resp:
                line = line.strip()
                if not line:
                    continue
                frame = decode_frame(line)
                if frame["frame"] == "cell":
                    index = frame["index"]
                    if index in seen:
                        continue  # replayed after a mid-stream retry
                    seen.add(index)
                    yield frame
                    continue
                yield frame  # terminal end/error frame
                return
            # EOF without a terminal frame: the connection died mid-stream.
            raise _Retryable("stream ended without a terminal frame")
        except (ConnectionError, socket.timeout, http.client.HTTPException) as exc:
            raise _Retryable(f"stream broke: {exc}") from exc
        finally:
            conn.close()

    def run(
        self,
        scenarios: Sequence[Union[ScenarioSpec, Mapping[str, Any]]],
        *,
        fidelity: Optional[str] = None,
        priority: int = 0,
        deadline_s: Optional[float] = None,
    ) -> tuple[list[dict[str, Any]], dict[str, Any]]:
        """Collect a whole sweep: ``(cell frames, terminal frame)``.

        Raises :class:`ServiceError` if the stream terminated with an
        ``error`` frame — use :meth:`stream` to consume partial sweeps.
        """
        cells: list[dict[str, Any]] = []
        terminal: Optional[dict[str, Any]] = None
        for frame in self.stream(
            scenarios, fidelity=fidelity, priority=priority,
            deadline_s=deadline_s,
        ):
            if frame["frame"] == "cell":
                cells.append(frame)
            else:
                terminal = frame
        if terminal is None or terminal["frame"] == "error":
            detail = "stream ended without a terminal frame" if terminal is None \
                else terminal.get("detail", "")
            code = None if terminal is None else terminal.get("code")
            raise ServiceError(
                f"sweep failed after {len(cells)} cells: {detail}", code=code
            )
        return cells, terminal


__all__ = [
    "DEFAULT_BACKOFF_BASE",
    "DEFAULT_BACKOFF_CAP",
    "DEFAULT_JITTER_SEED",
    "DEFAULT_RETRIES",
    "ServiceError",
    "SweepServiceClient",
]
