"""Metrics and multi-seed statistics for experiment reports."""

from repro.analysis.metrics import (
    edp,
    energy_reduction_percent,
    geometric_mean,
    mean,
    normalized_energy,
    normalized_time,
    percent_change,
    std,
    time_degradation_percent,
)
from repro.analysis.stats import Summary, aggregate
from repro.analysis.thermal import (
    CoreThermalSummary,
    ThermalParams,
    ThermalReport,
    socket_thermal_report,
    thermal_report,
)

__all__ = [
    "CoreThermalSummary",
    "Summary",
    "ThermalParams",
    "ThermalReport",
    "socket_thermal_report",
    "thermal_report",
    "aggregate",
    "edp",
    "energy_reduction_percent",
    "geometric_mean",
    "mean",
    "normalized_energy",
    "normalized_time",
    "percent_change",
    "std",
    "time_degradation_percent",
]
