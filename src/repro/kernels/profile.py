"""Kernel work profiling and calibration.

The simulator expresses a task's cost in CPU cycles. To make the seven
benchmark workloads realistic, each benchmark's task classes are calibrated
from the *real* kernels in this package: :func:`measure_kernel_costs` times
every (benchmark, task-class) stage on reference inputs, and
:data:`REFERENCE_COSTS` freezes one such measurement (relative seconds per
task on the development machine) so workload generation stays deterministic
across hosts.

The frozen numbers matter only in *ratio* — between classes of the same
benchmark they set the workload imbalance profile, and the workload specs
scale them to the paper's absolute batch durations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.kernels.bwt import bwc_compress
from repro.kernels.bzip2 import compress_block
from repro.kernels.dmc import dmc_compress
from repro.kernels.huffman import huffman_compress
from repro.kernels.jpeg import entropy_encode, forward_blocks, jpeg_encode
from repro.kernels.lzw import lzw_compress
from repro.kernels.md5 import md5_digest
from repro.kernels.mtf import mtf_encode
from repro.kernels.rle import rle2_encode_zeros, rle_encode
from repro.kernels.sha1 import sha1_digest


def _text(n: int, seed: int = 0) -> bytes:
    """Deterministic compressible pseudo-text."""
    words = [b"the", b"quick", b"brown", b"fox", b"jumps", b"over", b"lazy", b"dog"]
    rng = np.random.default_rng(seed)
    out = bytearray()
    while len(out) < n:
        out += words[int(rng.integers(len(words)))] + b" "
    return bytes(out[:n])


def _image(h: int, w: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    x, y = np.meshgrid(np.arange(w), np.arange(h))
    img = 128 + 60 * np.sin(x / 9.0) + 50 * np.cos(y / 7.0) + rng.normal(0, 6, (h, w))
    return np.clip(img, 0, 255).astype(np.uint8)


@dataclass(frozen=True)
class KernelStage:
    """One measurable task-class stage of a benchmark."""

    benchmark: str
    task_class: str
    run: Callable[[], object]


def reference_stages() -> list[KernelStage]:
    """The (benchmark, task class) stages the workloads are calibrated from."""
    text4k = _text(4096)
    text16k = _text(16384)
    mtf_input = bytes(sorted(text4k))  # post-BWT-like clustered bytes

    return [
        KernelStage("BWC", "bwt_block", lambda: bwc_compress(text4k)),
        KernelStage("BWC", "mtf_rle", lambda: rle2_encode_zeros(mtf_encode(mtf_input))),
        KernelStage("BWC", "entropy", lambda: huffman_compress(list(text4k))),
        KernelStage("Bzip-2", "compress_block", lambda: compress_block(text4k)),
        KernelStage("Bzip-2", "rle1", lambda: rle_encode(text16k)),
        KernelStage("Bzip-2", "entropy", lambda: huffman_compress(list(text4k))),
        KernelStage("DMC", "dmc_block", lambda: dmc_compress(text4k)),
        KernelStage("DMC", "model_flush", lambda: dmc_compress(text4k[:256])),
        KernelStage("JE", "dct_quant", lambda: forward_blocks(_image(64, 64), 75)),
        KernelStage(
            "JE",
            "entropy",
            lambda: entropy_encode(forward_blocks(_image(32, 32), 75)[0]),
        ),
        KernelStage("JE", "encode_tile", lambda: jpeg_encode(_image(48, 48), 75)),
        KernelStage("LZW", "lzw_chunk", lambda: lzw_compress(text16k)),
        KernelStage("LZW", "dict_reset", lambda: lzw_compress(text4k)),
        KernelStage("MD5", "md5_chunk", lambda: md5_digest(text16k)),
        KernelStage("MD5", "md5_small", lambda: md5_digest(text4k)),
        KernelStage("SHA-1", "sha1_chunk", lambda: sha1_digest(text16k)),
        KernelStage("SHA-1", "sha1_small", lambda: sha1_digest(text4k)),
    ]


def measure_kernel_costs(repeats: int = 3) -> dict[tuple[str, str], float]:
    """Median wall seconds per stage — recalibration helper.

    Used to (re)derive :data:`REFERENCE_COSTS`; not used at simulation time.
    """
    costs: dict[tuple[str, str], float] = {}
    for stage in reference_stages():
        samples = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            stage.run()
            samples.append(time.perf_counter() - t0)
        samples.sort()
        costs[(stage.benchmark, stage.task_class)] = samples[len(samples) // 2]
    return costs


#: Frozen relative per-task costs (seconds on the development machine,
#: via :func:`measure_kernel_costs`). Only the intra-benchmark ratios feed
#: the workload specs; see repro.workloads.benchmarks.
REFERENCE_COSTS: dict[tuple[str, str], float] = {
    ("BWC", "bwt_block"): 1.5e-02,
    ("BWC", "mtf_rle"): 3.5e-04,
    ("BWC", "entropy"): 4.2e-03,
    ("Bzip-2", "compress_block"): 1.8e-02,
    ("Bzip-2", "rle1"): 5.9e-03,
    ("Bzip-2", "entropy"): 4.5e-03,
    ("DMC", "dmc_block"): 4.7e-02,
    ("DMC", "model_flush"): 4.4e-03,
    ("JE", "dct_quant"): 7.4e-04,
    ("JE", "entropy"): 5.7e-04,
    ("JE", "encode_tile"): 1.9e-03,
    ("LZW", "lzw_chunk"): 8.6e-03,
    ("LZW", "dict_reset"): 3.4e-03,
    ("MD5", "md5_chunk"): 1.0e-02,
    ("MD5", "md5_small"): 2.4e-03,
    ("SHA-1", "sha1_chunk"): 2.4e-02,
    ("SHA-1", "sha1_small"): 6.5e-03,
}
