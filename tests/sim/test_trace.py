"""Tests for the trace recorder."""

import pytest

from repro.sim.trace import BatchTrace, DvfsTransition, TraceRecorder


def _batch(index: int, hist: tuple[int, ...], duration: float = 0.05) -> BatchTrace:
    return BatchTrace(
        batch_index=index,
        start_time=index * duration,
        duration=duration,
        tasks_completed=10,
        level_histogram=hist,
    )


class TestTraceRecorder:
    def test_level_histograms_order(self):
        tr = TraceRecorder()
        tr.record_batch(_batch(0, (2, 0)))
        tr.record_batch(_batch(1, (1, 1)))
        assert tr.level_histograms() == [(2, 0), (1, 1)]

    def test_modal_histogram_skips_first(self):
        tr = TraceRecorder()
        tr.record_batch(_batch(0, (4, 0)))  # profiling batch, skipped
        tr.record_batch(_batch(1, (1, 3)))
        tr.record_batch(_batch(2, (1, 3)))
        tr.record_batch(_batch(3, (2, 2)))
        assert tr.modal_histogram() == (1, 3)

    def test_modal_histogram_including_first(self):
        tr = TraceRecorder()
        tr.record_batch(_batch(0, (4, 0)))
        tr.record_batch(_batch(1, (1, 3)))
        assert tr.modal_histogram(skip_first=False) in ((4, 0), (1, 3))

    def test_modal_histogram_empty(self):
        tr = TraceRecorder()
        assert tr.modal_histogram() is None
        tr.record_batch(_batch(0, (4, 0)))
        assert tr.modal_histogram() is None  # only the skipped first batch

    def test_total_adjust_overhead(self):
        tr = TraceRecorder()
        tr.record_batch(
            BatchTrace(0, 0.0, 0.1, 5, (2, 0), adjust_overhead_seconds=0.001)
        )
        tr.record_batch(
            BatchTrace(1, 0.1, 0.1, 5, (2, 0), adjust_overhead_seconds=0.002)
        )
        assert tr.total_adjust_overhead() == pytest.approx(0.003)

    def test_transitions_for_core(self):
        tr = TraceRecorder()
        tr.record_transition(DvfsTransition(0.1, core_id=0, from_level=0, to_level=3))
        tr.record_transition(DvfsTransition(0.2, core_id=1, from_level=0, to_level=1))
        tr.record_transition(DvfsTransition(0.3, core_id=0, from_level=3, to_level=0))
        assert len(tr.transitions_for_core(0)) == 2
        assert len(tr.transitions_for_core(1)) == 1
        assert tr.transitions_for_core(2) == []

    def test_batch_durations(self):
        tr = TraceRecorder()
        tr.record_batch(_batch(0, (2, 0), duration=0.04))
        tr.record_batch(_batch(1, (2, 0), duration=0.06))
        assert tr.batch_durations() == pytest.approx([0.04, 0.06])
